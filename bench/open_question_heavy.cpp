// The paper's open question (Section 7): the heavily loaded behaviour of
// (k,d)-choice for k < d < 2k, where Theorem 2's sandwich collapses
// (floor(d/k) = 1 gives no upper bracket).
//
// This harness explores it empirically: for near-diagonal configurations it
// sweeps m/n and reports the gap (max - m/n). Two hypotheses it can
// distinguish:
//   (H1) the gap stays bounded in m (like d >= 2k / the d-choice family);
//   (H2) the gap grows with m (like single choice, whose gap is
//        Theta(sqrt((m/n) log n))).
// The single-choice and (1, 2)-choice columns anchor the two behaviours.
//
// All (factor, config) points run as ONE sweep on the shared work-stealing
// pool; numbers are bit-identical at any --threads value. The heavily
// loaded sweep is the level kernel's home turf: `--kernel=level` keeps
// every repetition in O(max-load) state, so --max-factor can grow by orders
// of magnitude without touching per-bin memory.
//
//   ./open_question_heavy [--n=16384] [--reps=5] [--seed=12] [--threads=0]
//                         [--max-factor=64] [--csv] [--kernel=perbin|level]
//                         [--scenario "kd:n=...,kernel=auto"]
//                         [--adaptive --ci-width=0.4 --min-reps=3
//                          --max-reps=40]
//
// Cells are declarative scenarios (core/scenario.hpp); --scenario
// overrides the legacy flags key by key, byte-identically for equivalent
// settings.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "16384", "number of bins");
    args.add_option("reps", "5", "repetitions per point");
    args.add_option("seed", "12", "master seed");
    args.add_option("max-factor", "64",
                    "largest m/n load factor (x4 steps from 1)");
    args.add_threads_option();
    args.add_kernel_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_snapshot_options();
    args.add_fault_options();
    args.add_option("warmup", "full",
                    "'ff' fast-forwards each run to the steady state "
                    "(see docs/scenario-grammar.md)");
    args.add_flag("csv", "also emit CSV rows (m/n, config, gap mean)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    kdc::core::arm_faults_from_cli(args);
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto max_factor =
        static_cast<std::uint64_t>(args.get_int("max-factor"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel =
        kdc::core::to_kernel_choice(kdc::core::kernel_from_cli(args));
    base.warmup = kdc::core::warmup_from_name(args.get_string("warmup"));
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto kernel = kdc::core::resolve_kernel(merged);

    // --snapshot-out / --resume turn the invocation into one stage of a
    // resumable heavy campaign instead of the full grid sweep.
    if (kdc::core::run_snapshot_stage(args, merged, seed, std::cout)) {
        return 0;
    }

    struct config {
        const char* label;
        std::uint64_t k, d; // k = 0 marks single choice
    };
    const std::vector<config> configs{
        {"single", 0, 0},   {"(1,2)", 1, 2},     {"(3,4)", 3, 4},
        {"(8,9)", 8, 9},    {"(16,17)", 16, 17}, {"(16,24)", 16, 24},
    };
    std::vector<std::uint64_t> load_factors;
    for (std::uint64_t factor = 1; factor <= max_factor; factor *= 4) {
        load_factors.push_back(factor);
    }

    // One cell per (factor, config) point, seeded exactly as the original
    // nested serial loop (factor-major, one seed increment per point).
    std::vector<kdc::core::sweep_cell> cells;
    std::uint64_t point_seed = seed;
    for (const auto factor : load_factors) {
        const std::uint64_t m = factor * n;
        for (const auto& cfg : configs) {
            ++point_seed;
            const std::string name =
                std::string(cfg.label) + " m/n=" + std::to_string(factor);
            auto cell_sc = merged;
            if (cfg.k == 0) {
                cell_sc.family = "single";
                cell_sc.probe = kdc::core::probe_policy::uniform;
                cells.push_back(kdc::core::make_scenario_cell(
                    name, cell_sc,
                    {.balls = m, .reps = reps, .seed = point_seed}));
            } else {
                cell_sc.k = cfg.k;
                cell_sc.d = cfg.d;
                cells.push_back(kdc::core::make_scenario_cell(
                    name, cell_sc,
                    {.balls = m - (m % cfg.k), .reps = reps,
                     .seed = point_seed}));
            }
        }
    }

    kdc::core::sweep_options options;
    options.threads = args.get_threads();
    options.stopping = kdc::core::stopping_rule_from_cli(args);
    const auto outcomes = kdc::core::run_sweep(cells, options);

    std::cout << "Open question (Section 7): heavily loaded gap for "
                 "k < d < 2k, n = " << n
              << ", kernel = " << kdc::core::kernel_name(kernel) << "\n"
              << "gap = max load - m/n; anchors: single choice grows ~ "
                 "sqrt((m/n) ln n), (1,2) stays flat\n\n";

    kdc::text_table table;
    std::vector<std::string> header{"m/n"};
    for (const auto& cfg : configs) {
        header.push_back(cfg.label);
    }
    table.set_header(header);

    std::size_t cursor = 0;
    for (const auto factor : load_factors) {
        std::vector<std::string> row{std::to_string(factor)};
        for (std::size_t c = 0; c < configs.size(); ++c) {
            row.push_back(kdc::format_fixed(
                outcomes[cursor++].result.gap_stats.mean(), 2));
        }
        table.add_row(std::move(row));
    }
    std::cout << table << '\n'
              << "Empirical reading: if the k < d < 2k columns stay flat "
                 "like (1,2) rather than\n"
                 "growing like single choice, the open question resolves "
                 "toward (H1) boundedness\n"
                 "at simulation scale.\n";

    if (args.get_flag("csv")) {
        kdc::core::sweep_emitter emitter;
        emitter.add_name_column("cell")
            .add_reps_column()
            .add_stat_column("gap_mean",
                             [](const kdc::core::sweep_outcome& outcome) {
                                 return outcome.result.gap_stats.mean();
                             })
            .add_stat_column("max_load_mean",
                             [](const kdc::core::sweep_outcome& outcome) {
                                 return outcome.result.max_load_stats.mean();
                             });
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, outcomes);
    }
    return 0;
}
