// Discrete-event simulation substrate: a time-ordered event queue with
// deterministic FIFO tie-breaking. Both application models of the paper's
// Section 1.3 (cluster scheduling, distributed storage) run on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/contracts.hpp"

namespace kdc::sim {

using sim_time = double;
using event_handler = std::function<void()>;

/// Priority queue of (time, sequence)-ordered events. Events scheduled for
/// the same time fire in scheduling order (sequence number), which keeps
/// simulations deterministic.
class event_queue {
public:
    /// Schedules `handler` at absolute time `when` (>= 0).
    void schedule_at(sim_time when, event_handler handler) {
        KD_EXPECTS(when >= 0.0);
        KD_EXPECTS(static_cast<bool>(handler));
        events_.push(event{when, next_sequence_++, std::move(handler)});
    }

    [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

    /// Time of the earliest pending event. Requires a non-empty queue.
    [[nodiscard]] sim_time next_time() const {
        KD_EXPECTS(!events_.empty());
        return events_.top().when;
    }

    /// Removes and returns the earliest event's handler, exposing its time
    /// via `when_out`.
    [[nodiscard]] event_handler pop(sim_time& when_out) {
        KD_EXPECTS(!events_.empty());
        // std::priority_queue::top() is const; moving the handler out
        // requires the const_cast idiom or re-wrapping. Copy-free pop:
        event top = std::move(const_cast<event&>(events_.top()));
        events_.pop();
        when_out = top.when;
        return std::move(top.handler);
    }

private:
    struct event {
        sim_time when = 0.0;
        std::uint64_t sequence = 0;
        event_handler handler;
    };
    struct later_first {
        bool operator()(const event& a, const event& b) const noexcept {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<event, std::vector<event>, later_first> events_;
    std::uint64_t next_sequence_ = 0;
};

/// A simulation clock plus event queue. Handlers may schedule more events.
class simulator {
public:
    [[nodiscard]] sim_time now() const noexcept { return now_; }

    /// Schedules `handler` to run `delay >= 0` after the current time.
    void schedule_after(sim_time delay, event_handler handler) {
        KD_EXPECTS(delay >= 0.0);
        queue_.schedule_at(now_ + delay, std::move(handler));
    }

    void schedule_at(sim_time when, event_handler handler) {
        KD_EXPECTS_MSG(when >= now_, "cannot schedule into the past");
        queue_.schedule_at(when, std::move(handler));
    }

    /// Runs events until the queue drains. Returns events processed.
    std::uint64_t run() {
        std::uint64_t processed = 0;
        while (!queue_.empty()) {
            step();
            ++processed;
        }
        return processed;
    }

    /// Runs events with time <= `until`. Events beyond stay queued; the
    /// clock advances to `until`. Returns events processed.
    std::uint64_t run_until(sim_time until) {
        KD_EXPECTS(until >= now_);
        std::uint64_t processed = 0;
        while (!queue_.empty() && queue_.next_time() <= until) {
            step();
            ++processed;
        }
        now_ = until;
        return processed;
    }

    [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

private:
    void step() {
        sim_time when = 0.0;
        auto handler = queue_.pop(when);
        KD_ASSERT_MSG(when >= now_, "event queue went back in time");
        now_ = when;
        handler();
    }

    sim_time now_ = 0.0;
    event_queue queue_;
};

} // namespace kdc::sim
