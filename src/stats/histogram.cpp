#include "stats/histogram.hpp"

#include <sstream>

namespace kdc::stats {

std::string integer_histogram::support_string() const {
    std::ostringstream out;
    bool first = true;
    for (std::uint64_t v = 0; v < counts_.size(); ++v) {
        if (counts_[v] == 0) {
            continue;
        }
        if (!first) {
            out << ", ";
        }
        first = false;
        out << v;
    }
    return out.str();
}

} // namespace kdc::stats
