#include "support/text_table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/contracts.hpp"

namespace {

using kdc::text_table;

TEST(TextTable, RendersHeaderAndRows) {
    text_table table;
    table.set_header({"k", "d", "max"});
    table.add_row({"1", "2", "4"});
    table.add_row({"128", "193", "2"});
    const std::string out = table.to_string();
    EXPECT_NE(out.find("k"), std::string::npos);
    EXPECT_NE(out.find("128"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
    text_table table;
    table.set_header({"name", "value"});
    table.add_row({"a", "1"});
    table.add_row({"long-name", "22"});
    std::istringstream lines(table.to_string());
    std::string header;
    std::string sep;
    std::string row1;
    std::string row2;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, row1);
    std::getline(lines, row2);
    EXPECT_EQ(row1.size(), row2.size());
    EXPECT_EQ(header.size(), row2.size());
}

TEST(TextTable, RightAlignsNumericColumnsByDefault) {
    text_table table;
    table.set_header({"param", "value"});
    table.add_row({"n", "5"});
    const std::string out = table.to_string();
    // "value" is 5 wide; the single digit should be right-aligned under it.
    EXPECT_NE(out.find("    5"), std::string::npos);
}

TEST(TextTable, LeftAlignOverride) {
    text_table table;
    table.set_header({"a", "b"});
    table.set_align(1, kdc::table_align::left);
    table.add_row({"x", "y"});
    std::istringstream lines(table.to_string());
    std::string header;
    std::string sep;
    std::string row;
    std::getline(lines, header);
    std::getline(lines, sep);
    std::getline(lines, row);
    EXPECT_EQ(row.substr(0, 4), "x  y");
}

TEST(TextTable, RaggedRowsRenderEmptyCells) {
    text_table table;
    table.set_header({"a", "b", "c"});
    table.add_row({"1"});
    EXPECT_NO_THROW((void)table.to_string());
    EXPECT_EQ(table.row_count(), 1u);
}

TEST(TextTable, StreamsViaOperator) {
    text_table table;
    table.set_header({"x"});
    table.add_row({"42"});
    std::ostringstream out;
    out << table;
    EXPECT_EQ(out.str(), table.to_string());
}

TEST(FormatHelpers, FixedPrecision) {
    EXPECT_EQ(kdc::format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(kdc::format_fixed(2.0, 0), "2");
    EXPECT_EQ(kdc::format_fixed(-0.5, 1), "-0.5");
}

TEST(FormatHelpers, GeneralStripsTrailingNoise) {
    EXPECT_EQ(kdc::format_general(2.5), "2.5");
    EXPECT_EQ(kdc::format_general(1234.5678, 6), "1234.57");
}

TEST(FormatHelpers, FixedRejectsNegativePrecision) {
    EXPECT_THROW((void)kdc::format_fixed(1.0, -1), kdc::contract_violation);
}

} // namespace
