// The allocation service's dispatcher: accepts batched requests from a
// channel and routes them through gather / select / commit phases over the
// per-shard bin state (serve/bin_shard.hpp).
//
// One batch is processed like one chunk of the sharded kernel, shrunk to
// request granularity:
//
//   pregen  (parallel over requests)  every request's probes and tie keys
//           are drawn from a generator seeded derive_seed(seed, id), so the
//           tape is a pure function of the request — independent of how
//           requests were batched or which worker draws them;
//   gather  (parallel over shards)    each shard copies the batch-start
//           load of every probed bin it owns into the batch's slot table —
//           the only phase that reads shard state, and it reads only the
//           owner's stripe;
//   select  (serial, id order)        requests are resolved one by one in
//           id order against gathered loads PLUS an overlay of the deltas
//           committed earlier in this batch. Effective load = batch-start
//           load + overlay delta is exactly the live load a serial server
//           would see, so the chosen bins equal the serial oracle's
//           (serve/service.hpp) choice for every batching;
//   commit  (parallel over shards)    each shard applies its own bins'
//           deltas, in batch id order per shard, to its loads and its
//           level_profile mirror. Disjoint ownership makes this phase
//           lock-free; +1/-1 deltas make cross-shard order irrelevant.
//
// Releases are resolved SERVER-side: a release names the id of an earlier
// allocate, and the dispatcher keeps an id -> bins map of live allocations
// (erased on release). Clients never echo bins back, so a request's content
// cannot depend on an in-flight response — one of the two properties (with
// per-request tapes) that make the oracle comparison byte-exact.
//
// Fault sites (docs/robustness.md): serve.accept fires when a non-empty
// batch is drained from the channel, serve.batch before a batch's phases,
// serve.commit before the parallel commit phase.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/level_profile.hpp"
#include "core/sharded_kernel.hpp"
#include "core/types.hpp"
#include "serve/bin_shard.hpp"
#include "serve/channel.hpp"
#include "serve/message.hpp"

namespace kdc::core {
class thread_pool;
} // namespace kdc::core

namespace kdc::serve {

struct dispatcher_config {
    std::uint64_t bins = 1;
    std::uint64_t k = 1;          ///< balls per allocate request
    std::uint64_t d = 2;          ///< probe budget per allocate request
    probing mode = probing::batch;
    std::uint64_t seed = 1;       ///< master seed; request id selects the stream
    std::uint64_t shards = 1;     ///< resolved shard count (1 <= shards <= bins)
};

class dispatcher {
public:
    /// `pool` may be null (every phase runs on the calling thread). The
    /// pool is borrowed — keep it alive for the dispatcher's lifetime.
    dispatcher(const dispatcher_config& config, core::thread_pool* pool);

    /// Drains up to `max` requests from `in` (FIFO, so ids arrive in
    /// increasing order when the sender respects arrival order). Fires the
    /// serve.accept fault site once per non-empty batch.
    [[nodiscard]] std::vector<request> accept(channel<request>& in,
                                              std::size_t max);

    /// Processes one batch (ids strictly increasing) through the four
    /// phases and returns responses in id order. Fires serve.batch before
    /// the phases and serve.commit before the commit phase.
    [[nodiscard]] std::vector<response>
    process(const std::vector<request>& batch);

    [[nodiscard]] const dispatcher_config& config() const noexcept {
        return config_;
    }

    /// Concatenation of the shard stripes: the full per-bin load vector.
    [[nodiscard]] core::load_vector loads() const;

    /// merge_profiles over the shard mirrors — equals
    /// level_profile::from_loads(loads()) by invariant.
    [[nodiscard]] core::level_profile occupancy() const;

    /// Allocations not yet released (id -> bins).
    [[nodiscard]] std::uint64_t live_allocations() const noexcept {
        return live_.size();
    }

    /// Probe messages the service has spent so far: d per batch-mode
    /// allocate, k*d per per-task allocate, 0 per release.
    [[nodiscard]] std::uint64_t probe_messages() const noexcept {
        return probe_messages_;
    }

    [[nodiscard]] std::uint64_t balls_held() const noexcept;

private:
    /// Runs body(0..count) on the pool's phase barrier, or serially when
    /// the dispatcher has no pool. Bodies write disjoint state per index.
    void run_phase(std::size_t count,
                   const std::function<void(std::size_t)>& body);

    dispatcher_config config_;
    core::thread_pool* pool_;
    core::shard_layout layout_;
    std::vector<bin_shard> shards_;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> live_;
    std::uint64_t probe_messages_ = 0;
};

} // namespace kdc::serve
