#include "rng/xoshiro256ss.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace {

using kdc::rng::xoshiro256ss;

TEST(Xoshiro256ss, DeterministicForEqualSeeds) {
    xoshiro256ss a(42);
    xoshiro256ss b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(Xoshiro256ss, SeedingUsesSplitMixExpansion) {
    // State words must equal the first four SplitMix64 outputs of the seed.
    std::uint64_t sm = 123;
    std::array<std::uint64_t, 4> expected{};
    for (auto& word : expected) {
        word = kdc::rng::splitmix64_next(sm);
    }
    xoshiro256ss gen(123);
    EXPECT_EQ(gen.state(), expected);
}

TEST(Xoshiro256ss, FirstOutputMatchesHandComputation) {
    // From the reference update rule: output = rotl(s1 * 5, 7) * 9.
    xoshiro256ss gen(2024);
    const std::uint64_t s1 = gen.state()[1];
    const std::uint64_t x = s1 * 5;
    const std::uint64_t rot = (x << 7) | (x >> 57);
    EXPECT_EQ(gen(), rot * 9);
}

TEST(Xoshiro256ss, ExplicitStateConstructorRoundTrips) {
    const std::array<std::uint64_t, 4> state{1, 2, 3, 4};
    xoshiro256ss gen(state);
    EXPECT_EQ(gen.state(), state);
}

TEST(Xoshiro256ss, JumpChangesStateDeterministically) {
    xoshiro256ss a(7);
    xoshiro256ss b(7);
    a.jump();
    b.jump();
    EXPECT_EQ(a.state(), b.state());
    xoshiro256ss c(7);
    EXPECT_NE(a.state(), c.state());
}

TEST(Xoshiro256ss, JumpedStreamsDoNotOverlapInPrefix) {
    xoshiro256ss base(99);
    xoshiro256ss jumped(99);
    jumped.jump();

    std::set<std::uint64_t> prefix;
    for (int i = 0; i < 10000; ++i) {
        prefix.insert(base());
    }
    int collisions = 0;
    for (int i = 0; i < 10000; ++i) {
        collisions += prefix.count(jumped()) ? 1 : 0;
    }
    // 10^4 draws from a 2^64 space: any collision would be suspicious.
    EXPECT_LE(collisions, 1);
}

TEST(Xoshiro256ss, LongJumpDiffersFromJump) {
    xoshiro256ss a(5);
    xoshiro256ss b(5);
    a.jump();
    b.long_jump();
    EXPECT_NE(a.state(), b.state());
}

TEST(Xoshiro256ss, OutputBitsAreBalanced) {
    xoshiro256ss gen(31337);
    std::array<int, 64> ones{};
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t x = gen();
        for (int bit = 0; bit < 64; ++bit) {
            ones[bit] += static_cast<int>((x >> bit) & 1u);
        }
    }
    // Each bit is Binomial(draws, 1/2): 5 sigma ~ 0.5*sqrt(draws)*5 = 790.
    for (int bit = 0; bit < 64; ++bit) {
        EXPECT_NEAR(ones[bit], draws / 2, 800) << "bit " << bit;
    }
}

TEST(Xoshiro256ss, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<xoshiro256ss>);
    EXPECT_EQ(xoshiro256ss::min(), 0u);
    EXPECT_EQ(xoshiro256ss::max(), ~std::uint64_t{0});
}

TEST(Xoshiro256ss, EqualityComparesState) {
    xoshiro256ss a(1);
    xoshiro256ss b(1);
    EXPECT_EQ(a, b);
    (void)a();
    EXPECT_NE(a, b);
}

} // namespace
