// Umbrella header: the public API of the kdchoice library.
//
//   #include "core/kdchoice.hpp"
//
//   kdc::core::kd_choice_process process(/*n=*/1 << 16, /*k=*/8, /*d=*/16,
//                                        /*seed=*/42);
//   process.run_balls(process.n());
//   auto metrics = kdc::core::compute_load_metrics(process.loads());
//
// See examples/quickstart.cpp for a complete walk-through.
#pragma once

#include "core/baselines.hpp"   // (1+beta), batched-greedy, adaptive
#include "core/coupling.hpp"    // Section 3 coupling experiments
#include "core/exact.hpp"       // exact small-instance distributions
#include "core/fault_injection.hpp" // deterministic fault-plan sites
#include "core/level_process.hpp" // level-compressed kernels (huge n)
#include "core/level_profile.hpp" // counts-per-load-level state
#include "core/metrics.hpp"     // nu_y / mu_y / sorted loads / gap
#include "core/process.hpp"     // kd_choice_process + classic baselines
#include "core/round_kernel.hpp" // one-round primitive (advanced use)
#include "core/runner.hpp"      // multi-repetition experiments
#include "core/scenario.hpp"    // declarative scenarios: registry + factory
#include "core/serialized.hpp"  // Definition 1 serialization
#include "core/sharded_kernel.hpp" // sharded round-parallel kernels
#include "core/snapshot_stage.hpp" // --snapshot-out/--resume bench staging
#include "core/steady_state.hpp" // warmup=ff steady-state fast-forward
#include "core/sweep.hpp"       // cross-cell grid sweeps on a shared pool
#include "core/threshold.hpp"   // Definition 3 SA_{x0}
#include "core/types.hpp"
#include "core/weighted.hpp"    // weighted (k,d)-choice
