#include "core/fault_injection.hpp"

#include <array>
#include <csignal>
#include <cstdlib>
#include <mutex>
#include <new>

#include "support/cli.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

namespace {

constexpr std::array<const char*, fault_site_count> site_names = {
    "shard.pregen",       "shard.bucket",   "shard.gather",
    "shard.select",       "shard.handoff",  "shard.commit",
    "snapshot.serialize", "snapshot.write", "snapshot.rename",
    "journal.commit",     "resume.load",    "resume.validate",
    "steady.pilot",       "perbin.alloc",   "serve.accept",
    "serve.batch",        "serve.commit",
};

/// The armed plan and its hit counters. The plan is written under the
/// mutex by arm/disarm and read under it by the slow path; the counters
/// are plain values behind the same mutex (the slow path only runs at
/// phase boundaries, a handful of times per chunk, so contention is nil).
std::mutex plan_mutex;
fault_plan armed_plan;                              // NOLINT
std::array<std::uint64_t, fault_site_count> hits{}; // NOLINT

std::string known_sites() {
    std::string out;
    for (const char* name : site_names) {
        if (!out.empty()) {
            out += ", ";
        }
        out += name;
    }
    return out;
}

fault_site parse_site(std::string_view text) {
    for (std::size_t i = 0; i < site_names.size(); ++i) {
        if (text == site_names[i]) {
            return static_cast<fault_site>(i);
        }
    }
    throw cli_error("fault plan: unknown site '" + std::string(text) +
                    "'; known sites: " + known_sites());
}

fault_action parse_action(std::string_view text) {
    if (text == "crash") {
        return fault_action::crash;
    }
    if (text == "io_error") {
        return fault_action::io_error;
    }
    if (text == "alloc_fail") {
        return fault_action::alloc_fail;
    }
    throw cli_error("fault plan: unknown action '" + std::string(text) +
                    "'; actions: crash, io_error, alloc_fail");
}

std::uint64_t parse_hit(std::string_view text) {
    if (text.empty()) {
        throw cli_error("fault plan: empty hit count after '@'");
    }
    std::uint64_t value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9' || value > 1'000'000'000'000ULL) {
            throw cli_error("fault plan: hit count must be a positive "
                            "integer, got '" +
                            std::string(text) + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (value == 0) {
        throw cli_error("fault plan: hit count is 1-based, got '" +
                        std::string(text) + "'");
    }
    return value;
}

fault_rule parse_rule(std::string_view text) {
    const auto colon = text.find(':');
    if (colon == std::string_view::npos || colon == 0) {
        throw cli_error("fault plan: malformed rule '" + std::string(text) +
                        "': expected site:action[@hit]");
    }
    fault_rule rule;
    rule.site = parse_site(text.substr(0, colon));
    std::string_view action = text.substr(colon + 1);
    const auto at = action.find('@');
    if (at != std::string_view::npos) {
        rule.hit = parse_hit(action.substr(at + 1));
        action = action.substr(0, at);
    }
    rule.action = parse_action(action);
    return rule;
}

} // namespace

namespace detail {

std::atomic<bool> faults_armed_flag{false}; // NOLINT

void fault_point_slow(fault_site site) {
    fault_action action{};
    bool fire = false;
    {
        const std::lock_guard<std::mutex> lock(plan_mutex);
        const auto index = static_cast<std::size_t>(site);
        const std::uint64_t hit = ++hits[index];
        for (const fault_rule& rule : armed_plan.rules) {
            if (rule.site == site && rule.hit == hit) {
                action = rule.action;
                fire = true;
                break;
            }
        }
    }
    if (!fire) {
        return;
    }
    switch (action) {
    case fault_action::crash:
        // A simulated power cut: no unwinding, no flushes, no atexit.
        std::raise(SIGKILL);
        std::abort(); // unreachable on POSIX; keeps the path total
    case fault_action::io_error:
        throw injected_io_error(site);
    case fault_action::alloc_fail:
        throw std::bad_alloc();
    }
}

} // namespace detail

const char* fault_site_name(fault_site site) noexcept {
    const auto index = static_cast<std::size_t>(site);
    return index < site_names.size() ? site_names[index] : "invalid";
}

std::vector<std::string> fault_site_names() {
    return {site_names.begin(), site_names.end()};
}

std::vector<fault_site> snapshot_path_sites() {
    return {fault_site::snapshot_serialize, fault_site::snapshot_write,
            fault_site::snapshot_rename,    fault_site::journal_commit,
            fault_site::resume_load,        fault_site::resume_validate,
            fault_site::steady_pilot};
}

std::vector<fault_site> serve_sites() {
    return {fault_site::serve_accept, fault_site::serve_batch,
            fault_site::serve_commit};
}

const char* fault_action_name(fault_action action) noexcept {
    switch (action) {
    case fault_action::io_error:
        return "io_error";
    case fault_action::alloc_fail:
        return "alloc_fail";
    case fault_action::crash:
        break;
    }
    return "crash";
}

fault_plan fault_plan::parse(std::string_view spec) {
    fault_plan plan;
    std::string_view rest = spec;
    while (!rest.empty()) {
        const auto semi = rest.find(';');
        const std::string_view rule = rest.substr(0, semi);
        rest = semi == std::string_view::npos ? std::string_view{}
                                              : rest.substr(semi + 1);
        if (rule.empty()) {
            throw cli_error("fault plan: empty rule (double or trailing "
                            "';'?) in '" +
                            std::string(spec) + "'");
        }
        plan.rules.push_back(parse_rule(rule));
    }
    return plan;
}

injected_io_error::injected_io_error(fault_site site)
    : std::runtime_error(std::string("injected io_error at site ") +
                         fault_site_name(site)),
      site_(site) {}

void arm_faults(fault_plan plan) {
    const bool arm = !plan.empty();
    {
        const std::lock_guard<std::mutex> lock(plan_mutex);
        armed_plan = std::move(plan);
        hits.fill(0);
    }
    detail::faults_armed_flag.store(arm, std::memory_order_relaxed);
}

void disarm_faults() noexcept {
    detail::faults_armed_flag.store(false, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> lock(plan_mutex);
    armed_plan.rules.clear();
    hits.fill(0);
}

bool faults_armed() noexcept {
    return detail::faults_armed_flag.load(std::memory_order_relaxed);
}

bool arm_faults_from_cli(const arg_parser& args) {
    std::string spec;
    if (const char* env = std::getenv("KDC_FAULTS");
        env != nullptr && *env != '\0') {
        spec = env; // the env override wins over the flag
    } else {
        spec = args.get_string("inject-faults");
    }
    if (spec.empty()) {
        return false;
    }
    arm_faults(fault_plan::parse(spec));
    return true;
}

} // namespace kdc::core
