#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using kdc::stats::integer_histogram;

TEST(IntegerHistogram, CountsValues) {
    integer_histogram h;
    h.add(3);
    h.add(3);
    h.add(7);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.count(5), 0u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(IntegerHistogram, WeightedAdd) {
    integer_histogram h;
    h.add(2, 10);
    EXPECT_EQ(h.count(2), 10u);
    EXPECT_EQ(h.total(), 10u);
}

TEST(IntegerHistogram, MinMax) {
    integer_histogram h;
    h.add(5);
    h.add(1);
    h.add(9);
    EXPECT_EQ(h.min_value(), 1u);
    EXPECT_EQ(h.max_value(), 9u);
}

TEST(IntegerHistogram, EmptyAccessorsViolateContract) {
    const integer_histogram h;
    EXPECT_THROW((void)h.max_value(), kdc::contract_violation);
    EXPECT_THROW((void)h.min_value(), kdc::contract_violation);
    EXPECT_THROW((void)h.mean(), kdc::contract_violation);
}

TEST(IntegerHistogram, CountAtLeastIsSuffixSum) {
    integer_histogram h;
    h.add(0, 4);
    h.add(1, 3);
    h.add(2, 2);
    h.add(5, 1);
    EXPECT_EQ(h.count_at_least(0), 10u);
    EXPECT_EQ(h.count_at_least(1), 6u);
    EXPECT_EQ(h.count_at_least(2), 3u);
    EXPECT_EQ(h.count_at_least(3), 1u);
    EXPECT_EQ(h.count_at_least(6), 0u);
}

TEST(IntegerHistogram, Mean) {
    integer_histogram h;
    h.add(1, 2);
    h.add(4, 2);
    EXPECT_DOUBLE_EQ(h.mean(), 2.5);
}

TEST(IntegerHistogram, QuantileNearestRank) {
    integer_histogram h;
    for (std::uint64_t v = 1; v <= 10; ++v) {
        h.add(v);
    }
    EXPECT_EQ(h.quantile(0.0), 1u);
    EXPECT_EQ(h.quantile(0.5), 5u);
    EXPECT_EQ(h.quantile(1.0), 10u);
}

TEST(IntegerHistogram, MergeAddsCounts) {
    integer_histogram a;
    a.add(1);
    a.add(2);
    integer_histogram b;
    b.add(2);
    b.add(9);
    a.merge(b);
    EXPECT_EQ(a.total(), 4u);
    EXPECT_EQ(a.count(2), 2u);
    EXPECT_EQ(a.count(9), 1u);
}

TEST(IntegerHistogram, SupportStringMatchesPaperTableFormat) {
    integer_histogram h;
    h.add(8);
    h.add(7);
    h.add(9);
    h.add(8);
    EXPECT_EQ(h.support_string(), "7, 8, 9");

    integer_histogram single;
    single.add(2, 10);
    EXPECT_EQ(single.support_string(), "2");
}

TEST(IntegerHistogram, SupportStringEmpty) {
    const integer_histogram h;
    EXPECT_EQ(h.support_string(), "");
}

} // namespace
