#include "core/sharded_kernel.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/fault_injection.hpp"
#include "core/process.hpp"
#include "core/thread_pool.hpp"
#include "rng/xoshiro_skip.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#if defined(KDC_ENABLE_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#define KDC_SIMD_SSE2 1
#endif

namespace kdc::core {

static_assert(allocation_process<sharded_kd_process>);
static_assert(allocation_process<sharded_kd_level_process>);

namespace {

/// Bit 31 of a gathered chunk-start load flags a conflicted bin (probed by
/// more than one slot this chunk): heights for those slots come from a
/// conflict table instead of the gathered value.
constexpr std::uint32_t conflict_flag = 0x80000000u;

/// Bit 31 of a segment-table VALUE marks the bin tainted: a dirty round
/// touched it, its live value is frozen in the segment's capture list and
/// every later probe of it defers to the hand-off replay. Loads stay below
/// 2^31 (guarded in the gather pass), so the bit is free.
constexpr std::uint32_t taint_flag = 0x80000000u;

/// Software-prefetch distance (bucket entries) for the gather and commit
/// passes: the bucket is read sequentially, so the bin-state line each
/// entry will touch is known this far ahead — enough slack to overlap the
/// random-access miss latency, short enough to stay resident.
constexpr std::uint64_t prefetch_ahead = 16;

/// Chunk sizing: n/128 slots per chunk. Two competing forces — more slots
/// amortize the per-chunk fixed costs, while FEWER slots (a) keep the
/// per-slot arrays (tape, probe loads, kept flags, bucket) L2-resident for
/// the select sweep and (b) shrink the conflict count, which is quadratic
/// in the chunk's probe count (birthday collisions: ~slots^2 / 2n
/// conflicted bins per chunk, so total conflict work across a run scales
/// LINEARLY with the chunk size). n/128 measured fastest on the reference
/// box across d in {2, 4, 16}; the cap keeps the tape a modest,
/// streamable buffer even at huge n. Chunk boundaries never change the
/// output — every chunk replays the same serial tape.
constexpr std::uint64_t max_chunk_slots = std::uint64_t{1} << 23;

std::uint64_t resolve_chunk_rounds(std::uint64_t n, std::uint64_t d) {
    const std::uint64_t target =
        std::clamp<std::uint64_t>(n / 128, d, max_chunk_slots);
    return std::max<std::uint64_t>(1, target / d);
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

/// L2 data-cache size in bytes, or 0 when the platform offers no answer.
/// sysconf first (glibc fills it from the same sysfs), then a direct scan
/// of cpu0's cache indices for a level-2 non-instruction entry.
std::uint64_t detect_l2_bytes() {
#if defined(__unix__) || defined(__APPLE__)
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long via_sysconf = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (via_sysconf > 0) {
        return static_cast<std::uint64_t>(via_sysconf);
    }
#endif
    for (int index = 0; index < 16; ++index) {
        const std::string dir = "/sys/devices/system/cpu/cpu0/cache/index" +
                                std::to_string(index) + "/";
        std::ifstream level_file(dir + "level");
        int level = 0;
        if (!(level_file >> level)) {
            break; // indices are contiguous: no more caches to inspect
        }
        if (level != 2) {
            continue;
        }
        std::string type;
        std::ifstream type_file(dir + "type");
        type_file >> type;
        if (type == "Instruction") {
            continue;
        }
        std::string size;
        std::ifstream size_file(dir + "size");
        if (!(size_file >> size) || size.empty()) {
            continue;
        }
        std::uint64_t multiplier = 1;
        const char suffix = size.back();
        if (suffix == 'K') {
            multiplier = 1024;
        } else if (suffix == 'M') {
            multiplier = 1024 * 1024;
        }
        const std::uint64_t value =
            std::strtoull(size.c_str(), nullptr, 10);
        if (value != 0) {
            return value * multiplier;
        }
    }
#endif
    return 0;
}

/// True when any of the d sampled bins repeats within the round. `samples`
/// is padded to a multiple of 4 with 0xFFFFFFFF (an impossible bin index:
/// n < 2^32 - 1 is a constructor contract), so the vectorized path may
/// read whole 4-lane blocks.
bool round_has_duplicates(const std::uint32_t* samples, std::uint64_t d,
                          std::uint64_t padded,
                          std::vector<std::uint32_t>& sorted) {
    if (d < 2) {
        return false;
    }
#if defined(KDC_SIMD_SSE2)
    if (d >= 8 && d <= 64) {
        // All-pairs equality count: every element matches itself exactly
        // once, so the total match count equals d iff the d samples are
        // distinct. Broadcast-vs-block keeps the inner loop branch-free;
        // the padding lanes are never broadcast and match nothing.
        int matches = 0;
        for (std::uint64_t i = 0; i < d; ++i) {
            const __m128i broadcast =
                _mm_set1_epi32(static_cast<int>(samples[i]));
            for (std::uint64_t block = 0; block < padded; block += 4) {
                const __m128i eq = _mm_cmpeq_epi32(
                    broadcast, _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                                   samples + block)));
                matches += std::popcount(static_cast<unsigned>(
                    _mm_movemask_ps(_mm_castsi128_ps(eq))));
            }
        }
        return matches != static_cast<int>(d);
    }
#else
    (void)padded;
#endif
    if (d <= 64) {
        bool duplicate = false;
        for (std::uint64_t i = 0; i + 1 < d; ++i) {
            for (std::uint64_t j = i + 1; j < d; ++j) {
                duplicate |= samples[i] == samples[j];
            }
        }
        return duplicate;
    }
    // Large d: a sort beats the O(d^2) scan (and the duplicate branch will
    // re-sort anyway — duplicates are near-certain at d > sqrt(n)).
    sorted.assign(samples, samples + d);
    std::sort(sorted.begin(), sorted.end());
    return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

/// True when any gathered load in p[0..d) carries the conflict flag
/// (bit 31 — the sign bit, which movemask extracts directly).
bool any_conflict(const std::uint32_t* p, std::uint64_t d) {
#if defined(KDC_SIMD_SSE2)
    if (d >= 4) {
        __m128i acc = _mm_setzero_si128();
        std::uint64_t i = 0;
        for (; i + 4 <= d; i += 4) {
            acc = _mm_or_si128(
                acc, _mm_loadu_si128(
                         reinterpret_cast<const __m128i*>(p + i)));
        }
        auto any = static_cast<std::uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(acc)));
        for (; i < d; ++i) {
            any |= p[i] >> 31;
        }
        return any != 0;
    }
#endif
    std::uint32_t folded = 0;
    for (std::uint64_t i = 0; i < d; ++i) {
        folded |= p[i];
    }
    return (folded & conflict_flag) != 0;
}

/// Packs one candidate slot for the 128-bit selection: lexicographic
/// integer order on the packed word is exactly (height, tie key, probe
/// index) order, so a plain `<` on kd_uint128 replaces the struct
/// comparator, and the low 32 bits recover the probe index of a winner.
kd_uint128 pack_candidate(std::uint64_t height, std::uint64_t tie_key,
                          std::uint64_t probe) noexcept {
    return (static_cast<kd_uint128>(height) << 96) |
           (static_cast<kd_uint128>(tie_key) << 32) | probe;
}

} // namespace

const shard_auto_layout& shard_auto_config() {
    static const shard_auto_layout config = [] {
        shard_auto_layout out;
        const std::uint64_t l2 = detect_l2_bytes();
        if (l2 != 0) {
            out.l2_bytes = l2;
            out.detected = true;
            // 16 B of L2 budget per window bin: the gather window itself
            // is 8 B/bin (load + first-slot detector); the rest absorbs
            // the streamed bucket and tape lines sharing the cache.
            out.window_bins = std::clamp<std::uint64_t>(
                l2 / 16, 32768, std::uint64_t{1} << 20);
        }
        return out;
    }();
    return config;
}

std::uint64_t resolve_shard_count(std::uint64_t n, std::uint64_t requested) {
    KD_EXPECTS_MSG(n >= 1, "need at least one bin");
    // One shard per window_bins keeps a shard's load window L2-resident;
    // the 4096 cap bounds the bucketing tables at any n.
    const std::uint64_t cap = std::min<std::uint64_t>(n, 4096);
    const std::uint64_t want =
        requested == 0 ? n / shard_auto_config().window_bins : requested;
    return std::clamp<std::uint64_t>(want, 1, cap);
}

std::uint64_t resolve_selection_segments(std::uint64_t rounds,
                                         std::uint64_t requested,
                                         std::uint64_t workers) {
    if (rounds == 0) {
        return 1;
    }
    if (requested != 0) {
        return std::clamp<std::uint64_t>(requested, 1, rounds);
    }
    if (workers < 2) {
        return 1; // no second thread: segmentation is pure overhead
    }
    const std::uint64_t by_rounds =
        std::max<std::uint64_t>(1, rounds / 64);
    return std::clamp<std::uint64_t>(std::min(workers, by_rounds), 1,
                                     rounds);
}

// ---------------------------------------------------------------------------
// sharded_kd_process
// ---------------------------------------------------------------------------

sharded_kd_process::sharded_kd_process(std::uint64_t n, std::uint64_t k,
                                       std::uint64_t d, std::uint64_t seed,
                                       std::uint64_t shards,
                                       std::uint64_t selpar)
    : sharded_kd_process(load_vector(n, 0), k, d, seed, shards, selpar) {}

sharded_kd_process::sharded_kd_process(load_vector initial_loads,
                                       std::uint64_t k, std::uint64_t d,
                                       std::uint64_t seed,
                                       std::uint64_t shards,
                                       std::uint64_t selpar)
    : loads_(std::move(initial_loads)), k_(k), d_(d),
      layout_(loads_.size(), resolve_shard_count(loads_.size(), shards)),
      selpar_(selpar), gen_(seed), probe_draws_(loads_.size()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= loads_.size(), "cannot probe more bins than exist");
    KD_EXPECTS_MSG(loads_.size() < 0xFFFFFFFFull,
                   "bins are 32-bit indices (one value reserved)");
    KD_EXPECTS_MSG(d <= (std::uint64_t{1} << 31),
                   "slot indices and packed candidates are 32-bit");
    max_chunk_rounds_ = resolve_chunk_rounds(loads_.size(), d_);
    bin_state_.resize(loads_.size());
    for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
        KD_EXPECTS_MSG(loads_[bin] < conflict_flag,
                       "bin load exceeds 2^31 - 1");
        bin_state_[bin] = (std::uint64_t{slot_unseen} << 32) | loads_[bin];
    }
    const std::uint64_t shard_count = layout_.shards();
    conflicts_.resize(shard_count);
    shard_counts_.resize(shard_count);
    bucket_start_.resize(shard_count + 1);
}

void sharded_kd_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    std::uint64_t rounds = balls / k_;
    while (rounds > 0) {
        const std::uint64_t take = std::min(rounds, max_chunk_rounds_);
        run_chunk(take);
        rounds -= take;
    }
    // The chunks keep the live load packed in bin_state_; refresh the
    // public load vector in one sequential sweep.
    for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
        loads_[bin] = static_cast<std::uint32_t>(bin_state_[bin]);
    }
}

void sharded_kd_process::run_chunk(std::uint64_t rounds) {
    using clock = std::chrono::steady_clock;
    const std::uint64_t slots = rounds * d_;
    slot_bin_.resize(slots);
    slot_key_.resize(slots);
    probe_load_.resize(slots);
    kept_.assign(slots, 0);
    bucket_.resize(slots);

    const auto t0 = clock::now();
    fault_point(fault_site::shard_pregen);
    pregenerate(rounds);
    const auto t1 = clock::now();
    fault_point(fault_site::shard_bucket);
    bucket_by_shard(rounds);
    const auto t2 = clock::now();
    fault_point(fault_site::shard_gather);
    for_each_shard_parallel(&sharded_kd_process::gather_shard);
    const auto t3 = clock::now();
    select_rounds(rounds); // accounts its own select/handoff split
    const auto t4 = clock::now();
    fault_point(fault_site::shard_commit);
    for_each_shard_parallel(&sharded_kd_process::commit_shard);
    const auto t5 = clock::now();
    phase_times_.pregen += seconds_between(t0, t1);
    phase_times_.bucket += seconds_between(t1, t2);
    phase_times_.gather += seconds_between(t2, t3);
    phase_times_.commit += seconds_between(t4, t5);

    balls_placed_ += k_ * rounds;
    rounds_run_ += rounds;
    messages_ += d_ * rounds;
}

// --- pregen ----------------------------------------------------------------

void sharded_kd_process::pregen_scratch::prepare(std::uint64_t d) {
    // Pad to a whole 4-lane block with an impossible bin index so the SIMD
    // duplicate scan can read full blocks; rounds only overwrite the first
    // d lanes, so the padding survives.
    const auto padded = static_cast<std::size_t>((d + 3) & ~std::uint64_t{3});
    if (samples.size() != padded) {
        samples.assign(padded, 0xFFFFFFFFu);
    }
}

void sharded_kd_process::pregen_rounds(
    std::uint64_t round_begin, std::uint64_t round_end,
    rng::xoshiro256ss& gen, rng::batched_uniform& draws,
    std::vector<std::uint32_t>& dup_rounds,
    std::vector<std::uint32_t>& dup_occ,
    std::vector<std::uint64_t>& shard_counts, pregen_scratch& scratch) {
    // Replays kd_choice_process's RNG call order exactly: per round, d
    // batched probe draws, then one direct generator word per slot for the
    // tie key — probe order when the d samples are distinct, sorted-group
    // order (occurrence heights) when any duplicate exists, as in
    // place_round. Duplicates are detected sample-locally (this phase must
    // not touch per-bin state); the boolean agrees with the serial
    // kernel's stamp test, and the generator is only consumed by the key
    // draws, so the tape is bit-identical to the serial kernel's.
    //
    // Occurrence indices are recorded ONLY for duplicate rounds (the side
    // table dup_rounds/dup_occ): a bin duplicated within a round owns >= 2
    // slots of the chunk, so it is necessarily conflicted and every other
    // slot's occurrence is 1. Per-shard slot counts accumulate here too —
    // the bucket phase's counting pass, fused into the sampling loop.
    scratch.prepare(d_);
    std::uint32_t* samples = scratch.samples.data();
    const std::uint64_t padded = scratch.samples.size();
    std::uint64_t pos = round_begin * d_;
    for (std::uint64_t round = round_begin; round < round_end; ++round) {
        for (std::uint64_t j = 0; j < d_; ++j) {
            samples[j] = static_cast<std::uint32_t>(draws.next(gen));
        }
        if (!round_has_duplicates(samples, d_, padded, scratch.sorted)) {
            for (std::uint64_t j = 0; j < d_; ++j) {
                const std::uint32_t bin = samples[j];
                slot_bin_[pos] = bin;
                slot_key_[pos] = static_cast<std::uint64_t>(gen());
                ++shard_counts[layout_.shard_of(bin)];
                ++pos;
            }
        } else {
            dup_rounds.push_back(static_cast<std::uint32_t>(round));
            scratch.sorted.assign(samples, samples + d_);
            std::sort(scratch.sorted.begin(), scratch.sorted.end());
            for (std::size_t i = 0; i < scratch.sorted.size();) {
                const std::uint32_t bin = scratch.sorted[i];
                std::uint32_t occurrence = 0;
                for (; i < scratch.sorted.size() && scratch.sorted[i] == bin;
                     ++i) {
                    ++occurrence;
                    slot_bin_[pos] = bin;
                    slot_key_[pos] = static_cast<std::uint64_t>(gen());
                    dup_occ.push_back(occurrence);
                    ++shard_counts[layout_.shard_of(bin)];
                    ++pos;
                }
            }
        }
    }
}

void sharded_kd_process::pregenerate(std::uint64_t rounds) {
    dup_rounds_.clear();
    dup_occ_.clear();
    std::fill(shard_counts_.begin(), shard_counts_.end(), 0);
    pregen_parts_ = 0;
    if (pool_ != nullptr && pool_->size() >= 2 && rounds >= 2) {
        if (pregenerate_parallel(rounds)) {
            return;
        }
        // A Lemire rejection fired somewhere in the stream: the slice
        // position arithmetic is off past that point. gen_/probe_draws_
        // were never touched (the slices worked on copies), so redraw the
        // whole chunk serially — the correct-by-construction path.
        dup_rounds_.clear();
        dup_occ_.clear();
        std::fill(shard_counts_.begin(), shard_counts_.end(), 0);
    }
    pregen_rounds(0, rounds, gen_, probe_draws_, dup_rounds_, dup_occ_,
                  shard_counts_, serial_scratch_);
}

bool sharded_kd_process::pregenerate_parallel(std::uint64_t rounds) {
    // Each worker reconstructs the exact serial generator/sampler state at
    // its slice's first round and then draws its slice exactly as the
    // serial loop would. Positions are pure arithmetic because, absent
    // Lemire rejections, one round consumes exactly d sampler words and d
    // direct key words, and the sampler refills in fixed blocks; the
    // xoshiro skip-ahead (F2-linear) jumps the generator to any call
    // index. Rejections (probability < n/2^64 per draw) are counted by
    // every worker; the first one in the stream is always observed by the
    // slice that contains it (every earlier position is exact), and any
    // observation discards the chunk in favor of the serial redraw.
    const std::uint64_t parts = std::min<std::uint64_t>(pool_->size(), rounds);
    if (parts < 2) {
        return false;
    }
    const rng::xoshiro256ss start_gen = gen_;
    const rng::batched_uniform start_draws = probe_draws_;
    const std::uint64_t avail0 = start_draws.buffered();
    constexpr std::uint64_t block = rng::batched_uniform::block_size;
    pregen_slices_.resize(parts);
    for (auto& slice : pregen_slices_) {
        slice.dup_rounds.clear();
        slice.dup_occ.clear();
        slice.shard_counts.assign(layout_.shards(), 0);
        slice.rejections = 0;
    }
    pool_->run_ranges(
        rounds, parts,
        [&](std::size_t part, std::uint64_t round_begin,
            std::uint64_t round_end) {
            auto& slice = pregen_slices_[part];
            const std::uint64_t probes = round_begin * d_; // sampler words
            const std::uint64_t keys = round_begin * d_;   // direct words
            rng::xoshiro256ss gen(0);
            rng::batched_uniform draws(1);
            if (probes <= avail0) {
                // Still inside the chunk-start buffer: no refill happened
                // before this slice, the generator has only served keys.
                gen = rng::xoshiro_skip(start_gen, keys);
                draws = start_draws;
                draws.drop(probes);
            } else {
                const std::uint64_t past = probes - avail0;
                const std::uint64_t refills = (past + block - 1) / block;
                const std::uint64_t rem = past - (refills - 1) * block;
                if (rem == block) {
                    // The last refill block is exactly exhausted: the next
                    // draw refills, matching a freshly built sampler.
                    gen = rng::xoshiro_skip(start_gen, keys + refills * block);
                    draws = rng::batched_uniform(loads_.size());
                } else {
                    // Refill #refills is in flight: it fired at draw index
                    // q0 inside round rq, when the generator had served
                    // rq*d keys plus the refills-1 earlier blocks. Rebuild
                    // that block, consume rem of it, then skip the keys of
                    // rounds rq..round_begin-1 that interleaved after it.
                    const std::uint64_t q0 = avail0 + (refills - 1) * block;
                    const std::uint64_t rq = q0 / d_;
                    gen = rng::xoshiro_skip(start_gen,
                                            rq * d_ + (refills - 1) * block);
                    draws = rng::batched_uniform(loads_.size());
                    draws.refill(gen);
                    draws.drop(rem);
                    gen = rng::xoshiro_skip(gen, (round_begin - rq) * d_);
                }
            }
            const std::uint64_t seen = draws.rejections();
            pregen_rounds(round_begin, round_end, gen, draws,
                          slice.dup_rounds, slice.dup_occ,
                          slice.shard_counts, slice.scratch);
            slice.rejections = draws.rejections() - seen;
            slice.end_gen = gen;
            slice.end_draws = draws;
        });
    std::uint64_t rejections = 0;
    for (const auto& slice : pregen_slices_) {
        rejections += slice.rejections;
    }
    if (rejections != 0) {
        return false;
    }
    // The last slice's end state IS the serial end state; adopt it and
    // merge the side products (slices are time-contiguous and ascending,
    // so concatenation preserves the serial duplicate-round order).
    gen_ = pregen_slices_[parts - 1].end_gen;
    probe_draws_ = pregen_slices_[parts - 1].end_draws;
    for (const auto& slice : pregen_slices_) {
        dup_rounds_.insert(dup_rounds_.end(), slice.dup_rounds.begin(),
                           slice.dup_rounds.end());
        dup_occ_.insert(dup_occ_.end(), slice.dup_occ.begin(),
                        slice.dup_occ.end());
        for (std::uint64_t s = 0; s < layout_.shards(); ++s) {
            shard_counts_[s] += slice.shard_counts[s];
        }
    }
    pregen_parts_ = parts;
    return true;
}

// --- bucket ----------------------------------------------------------------

void sharded_kd_process::bucket_by_shard(std::uint64_t rounds) {
    // Stable counting sort of the chunk's slots by owning shard; the pair
    // encoding (bin << 32 | slot) lets gather_shard see bin and time order
    // together. The counting pass already ran fused into pregen; only the
    // prefix sums and the scatter remain.
    const std::uint64_t slots = rounds * d_;
    const std::uint64_t shard_count = layout_.shards();
    bucket_start_[0] = 0;
    for (std::uint64_t s = 0; s < shard_count; ++s) {
        bucket_start_[s + 1] = bucket_start_[s] + shard_counts_[s];
    }
    if (pregen_parts_ >= 2) {
        // Parallel scatter over the SAME slices as the pregen phase: each
        // (slice, shard) pair owns a disjoint cursor range computed from
        // the per-slice counts, and slices are time-contiguous, so the
        // bucket bytes equal the serial stable scatter's exactly.
        scatter_cursors_.resize(pregen_parts_ * shard_count);
        for (std::uint64_t s = 0; s < shard_count; ++s) {
            std::uint64_t run = bucket_start_[s];
            for (std::uint64_t w = 0; w < pregen_parts_; ++w) {
                scatter_cursors_[w * shard_count + s] = run;
                run += pregen_slices_[w].shard_counts[s];
            }
        }
        pool_->run_ranges(
            rounds, pregen_parts_,
            [this, shard_count](std::size_t part, std::uint64_t round_begin,
                                std::uint64_t round_end) {
                std::uint64_t* cursors =
                    scatter_cursors_.data() + part * shard_count;
                for (std::uint64_t idx = round_begin * d_;
                     idx < round_end * d_; ++idx) {
                    const std::uint32_t bin = slot_bin_[idx];
                    bucket_[cursors[layout_.shard_of(bin)]++] =
                        (static_cast<std::uint64_t>(bin) << 32) | idx;
                }
            });
    } else {
        std::copy(bucket_start_.begin(), bucket_start_.end() - 1,
                  shard_counts_.begin()); // reuse as write cursors
        for (std::uint64_t idx = 0; idx < slots; ++idx) {
            const std::uint32_t bin = slot_bin_[idx];
            const std::uint64_t s = layout_.shard_of(bin);
            bucket_[shard_counts_[s]++] =
                (static_cast<std::uint64_t>(bin) << 32) | idx;
        }
    }
}

// --- gather ----------------------------------------------------------------

void sharded_kd_process::gather_shard(std::uint64_t shard) {
    // Everything this phase touches is shard-local: the bucket slice, the
    // shard's stripe of bin_state_, its conflict list — plus scattered
    // writes into probe_load_ (stores overlap; the latency-bound random
    // READS of the serial kernel are what this pipeline removes). The
    // packed bin state serves the load and the conflict detector from ONE
    // random cache-line touch per probe. Conflict detection is one linear
    // pass over the slice: a bin's first probe parks its slot index in
    // the detector word; a second probe upgrades both to conflicted and
    // records the bin once, parking the entry index instead so later
    // probes can extend the bin's [min_slot, max_slot] span (which
    // decides segment locality in the select phase).
    auto& list = conflicts_[shard];
    list.clear();
    const std::uint64_t end = bucket_start_[shard + 1];
    for (std::uint64_t pos = bucket_start_[shard]; pos < end; ++pos) {
        if (pos + prefetch_ahead < end) {
            __builtin_prefetch(
                &bin_state_[static_cast<std::uint32_t>(
                    bucket_[pos + prefetch_ahead] >> 32)],
                1);
        }
        const std::uint64_t pair = bucket_[pos];
        const auto bin = static_cast<std::uint32_t>(pair >> 32);
        const auto idx = static_cast<std::uint32_t>(pair);
        const std::uint64_t state = bin_state_[bin];
        const auto base = static_cast<std::uint32_t>(state);
        KD_EXPECTS_MSG(base < conflict_flag, "bin load exceeds 2^31 - 1");
        const auto seen = static_cast<std::uint32_t>(state >> 32);
        if (seen == slot_unseen) {
            bin_state_[bin] = (std::uint64_t{idx} << 32) | base;
            probe_load_[idx] = base;
        } else if ((seen & conflict_marker) == 0) {
            probe_load_[seen] |= conflict_flag;
            probe_load_[idx] = base | conflict_flag;
            bin_state_[bin] =
                (std::uint64_t{conflict_marker |
                               static_cast<std::uint32_t>(list.size())}
                 << 32) |
                base;
            list.push_back(conflict_entry{bin, base, seen, idx});
        } else {
            probe_load_[idx] = base | conflict_flag;
            list[seen & ~conflict_marker].max_slot = idx;
        }
    }
}

// --- select ----------------------------------------------------------------

void sharded_kd_process::select_rounds(std::uint64_t rounds) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    fault_point(fault_site::shard_select);
    const std::uint64_t workers = pool_ != nullptr ? pool_->size() : 1;
    const std::uint64_t parts =
        resolve_selection_segments(rounds, selpar_, workers);

    if (parts == 1) {
        // One segment owning every conflicted bin: the sweep is the plain
        // serial round order and nothing can be dirty.
        std::size_t conflicted = 0;
        for (const auto& list : conflicts_) {
            conflicted += list.size();
        }
        segments_.resize(1);
        auto& seg = segments_[0];
        seg.table.rebuild(conflicted);
        for (const auto& list : conflicts_) {
            for (const auto& entry : list) {
                seg.table.insert(entry.bin, entry.base);
            }
        }
        seg.captures.clear();
        seg.dirty.clear();
        sweep_segment(0, 0, rounds);
        phase_times_.select += seconds_between(t0, clock::now());
        return;
    }

    // Partition the conflicted bins: a bin whose first and last probes
    // fall inside one segment's rounds is LOCAL to it (contiguity — see
    // the file comment), anything else is CROSS and goes straight to the
    // hand-off table at its chunk-start load.
    const shard_layout seg_layout(rounds, parts);
    segments_.resize(parts);
    cross_list_.clear();
    std::vector<std::uint64_t> local_counts(parts, 0);
    for (const auto& list : conflicts_) {
        for (const auto& entry : list) {
            const std::uint64_t seg_min =
                seg_layout.shard_of(entry.min_slot / d_);
            const std::uint64_t seg_max =
                seg_layout.shard_of(entry.max_slot / d_);
            if (seg_min == seg_max) {
                ++local_counts[seg_min];
            } else {
                cross_list_.emplace_back(entry.bin, entry.base);
            }
        }
    }
    for (std::uint64_t s = 0; s < parts; ++s) {
        segments_[s].table.rebuild(local_counts[s]);
        segments_[s].captures.clear();
        segments_[s].dirty.clear();
    }
    for (const auto& list : conflicts_) {
        for (const auto& entry : list) {
            const std::uint64_t seg_min =
                seg_layout.shard_of(entry.min_slot / d_);
            const std::uint64_t seg_max =
                seg_layout.shard_of(entry.max_slot / d_);
            if (seg_min == seg_max) {
                segments_[seg_min].table.insert(entry.bin, entry.base);
            }
        }
    }

    if (pool_ != nullptr) {
        pool_->run_ranges(rounds, parts,
                          [this](std::size_t segment,
                                 std::uint64_t round_begin,
                                 std::uint64_t round_end) {
                              sweep_segment(segment, round_begin, round_end);
                          });
    } else {
        for (std::uint64_t s = 0; s < parts; ++s) {
            const auto [round_begin, round_end] =
                thread_pool::phase_range(rounds, parts, s);
            sweep_segment(s, round_begin, round_end);
        }
    }

    const auto t_handoff = clock::now();
    fault_point(fault_site::shard_handoff);
    std::size_t entries = cross_list_.size();
    for (const auto& seg : segments_) {
        entries += seg.captures.size();
    }
    handoff_.rebuild(entries);
    for (const auto& [bin, base] : cross_list_) {
        handoff_.insert(bin, base);
    }
    for (const auto& seg : segments_) {
        for (const auto& [bin, value] : seg.captures) {
            handoff_.insert(bin, value);
        }
    }
    replay_dirty_rounds();
    const auto t_end = clock::now();
    phase_times_.select += seconds_between(t0, t_handoff);
    phase_times_.handoff += seconds_between(t_handoff, t_end);
}

void sharded_kd_process::sweep_segment(std::uint64_t segment,
                                       std::uint64_t round_begin,
                                       std::uint64_t round_end) {
    // One segment's in-order sweep. A round is CLEAN when every conflicted
    // bin it probes is local to this segment and untainted: it selects and
    // commits against the segment's private table exactly as the serial
    // sweep would (no other segment's rounds touch those bins). A DIRTY
    // round — one probing a cross bin (table miss) or a tainted local bin
    // — commits nothing; it taints every local conflicted bin it probes,
    // capturing the bin's current value (= chunk-start + all commits of
    // this segment's earlier clean rounds) for the hand-off table, and is
    // deferred to the serial replay in global round order.
    auto& seg = segments_[segment];
    if (seg.cand.size() < d_) {
        seg.cand.resize(d_);
        seg.vals.resize(d_);
    }
    kd_uint128* cand = seg.cand.data();
    std::uint32_t** vals = seg.vals.data();
    std::size_t dup_cursor = static_cast<std::size_t>(
        std::lower_bound(dup_rounds_.begin(), dup_rounds_.end(),
                         static_cast<std::uint32_t>(round_begin)) -
        dup_rounds_.begin());
    for (std::uint64_t round = round_begin; round < round_end; ++round) {
        const std::uint64_t first = round * d_;
        const std::uint32_t* gathered = probe_load_.data() + first;
        const std::uint32_t* occs = nullptr;
        if (dup_cursor < dup_rounds_.size() &&
            dup_rounds_[dup_cursor] == round) {
            occs = dup_occ_.data() + dup_cursor * d_;
            ++dup_cursor;
        }
        if (!any_conflict(gathered, d_)) {
            // A duplicated bin is always conflicted, so every occurrence
            // here is 1 and the candidates need no table at all.
            if (k_ == 1) {
                // Min scan on (height, tie key) directly — no 128-bit
                // packing; ascending j keeps the first of a full tie,
                // matching the packed order.
                std::uint64_t best_h = gathered[0];
                std::uint64_t best_key = slot_key_[first];
                std::uint64_t best_j = 0;
                for (std::uint64_t j = 1; j < d_; ++j) {
                    const std::uint64_t h = gathered[j];
                    const std::uint64_t key = slot_key_[first + j];
                    if (h < best_h || (h == best_h && key < best_key)) {
                        best_h = h;
                        best_key = key;
                        best_j = j;
                    }
                }
                kept_[first + best_j] = 1;
                continue;
            }
            for (std::uint64_t j = 0; j < d_; ++j) {
                cand[j] = pack_candidate(gathered[j] + std::uint64_t{1},
                                         slot_key_[first + j], j);
            }
            commit_candidates(round, cand, nullptr, false);
            continue;
        }
        bool dirty = false;
        for (std::uint64_t j = 0; j < d_; ++j) {
            const std::uint32_t g = gathered[j];
            std::uint64_t height = 0;
            if ((g & conflict_flag) != 0) {
                std::uint32_t* live =
                    seg.table.find_or_null(slot_bin_[first + j]);
                vals[j] = live;
                if (live == nullptr || (*live & taint_flag) != 0) {
                    dirty = true; // keep scanning: vals[] feeds the taint
                } else {
                    height = *live + (occs != nullptr ? occs[j] : 1);
                }
            } else {
                vals[j] = nullptr;
                height = g + (occs != nullptr ? occs[j] : 1);
            }
            cand[j] = pack_candidate(height, slot_key_[first + j], j);
        }
        if (dirty) {
            for (std::uint64_t j = 0; j < d_; ++j) {
                std::uint32_t* live =
                    (gathered[j] & conflict_flag) != 0 ? vals[j] : nullptr;
                if (live != nullptr && (*live & taint_flag) == 0) {
                    seg.captures.emplace_back(slot_bin_[first + j], *live);
                    *live |= taint_flag;
                }
            }
            seg.dirty.push_back(static_cast<std::uint32_t>(round));
            continue;
        }
        commit_candidates(round, cand, vals, true);
    }
}

void sharded_kd_process::replay_dirty_rounds() {
    // Serial hand-off: the deferred rounds in GLOBAL round order (segments
    // are contiguous and ascending, each dirty list is ascending). Every
    // conflicted bin a dirty round probes is in the hand-off table — cross
    // bins by construction, local bins because the round that went dirty
    // tainted (and thus captured) them.
    if (replay_cand_.size() < d_) {
        replay_cand_.resize(d_);
        replay_vals_.resize(d_);
    }
    for (const auto& seg : segments_) {
        for (const std::uint32_t round : seg.dirty) {
            const std::uint64_t first = std::uint64_t{round} * d_;
            const std::uint32_t* occs = nullptr;
            const auto it = std::lower_bound(dup_rounds_.begin(),
                                             dup_rounds_.end(), round);
            if (it != dup_rounds_.end() && *it == round) {
                occs = dup_occ_.data() +
                       static_cast<std::size_t>(it - dup_rounds_.begin()) *
                           d_;
            }
            for (std::uint64_t j = 0; j < d_; ++j) {
                const std::uint32_t g = probe_load_[first + j];
                std::uint64_t height = 0;
                if ((g & conflict_flag) != 0) {
                    std::uint32_t* live = handoff_.find(slot_bin_[first + j]);
                    replay_vals_[j] = live;
                    height = *live + (occs != nullptr ? occs[j] : 1);
                } else {
                    replay_vals_[j] = nullptr;
                    height = g + (occs != nullptr ? occs[j] : 1);
                }
                replay_cand_[j] =
                    pack_candidate(height, slot_key_[first + j], j);
            }
            commit_candidates(round, replay_cand_.data(),
                              replay_vals_.data(), true);
        }
    }
}

void sharded_kd_process::commit_candidates(std::uint64_t round,
                                           kd_uint128* cand,
                                           std::uint32_t* const* vals,
                                           bool with_vals) {
    // Keep the k smallest packed candidates. The packed order is (height,
    // tie key, probe index); the serial kernel's nth_element orders by
    // (height, tie key) only, so the kept SET agrees whenever no two
    // probes of the round tie on both — see the file comment for the
    // d^2/2^64 caveat. k = 1 (the common benchmark shape) is a plain min
    // scan; small d uses an insertion sort (branch-predictable, no
    // libstdc++ dispatch); large d falls back to nth_element, now on
    // trivially comparable 128-bit words.
    const std::uint64_t first = round * d_;
    if (k_ == 1) {
        kd_uint128 best = cand[0];
        for (std::uint64_t j = 1; j < d_; ++j) {
            best = cand[j] < best ? cand[j] : best;
        }
        const auto j = static_cast<std::uint32_t>(best);
        kept_[first + j] = 1;
        if (with_vals && vals[j] != nullptr) {
            *vals[j] += 1;
        }
        return;
    }
    if (k_ == 2) {
        // Two-smallest scan: d comparisons, no array shuffling.
        kd_uint128 best = cand[0] < cand[1] ? cand[0] : cand[1];
        kd_uint128 second = cand[0] < cand[1] ? cand[1] : cand[0];
        for (std::uint64_t j = 2; j < d_; ++j) {
            const kd_uint128 x = cand[j];
            if (x < second) {
                if (x < best) {
                    second = best;
                    best = x;
                } else {
                    second = x;
                }
            }
        }
        for (const kd_uint128 won : {best, second}) {
            const auto j = static_cast<std::uint32_t>(won);
            kept_[first + j] = 1;
            if (with_vals && vals[j] != nullptr) {
                *vals[j] += 1;
            }
        }
        return;
    }
    if (d_ <= 32) {
        for (std::uint64_t i = 1; i < d_; ++i) {
            const kd_uint128 x = cand[i];
            std::uint64_t at = i;
            for (; at > 0 && x < cand[at - 1]; --at) {
                cand[at] = cand[at - 1];
            }
            cand[at] = x;
        }
    } else {
        std::nth_element(cand, cand + (k_ - 1), cand + d_);
    }
    for (std::uint64_t i = 0; i < k_; ++i) {
        const auto j = static_cast<std::uint32_t>(cand[i]);
        kept_[first + j] = 1;
        if (with_vals && vals[j] != nullptr) {
            *vals[j] += 1;
        }
    }
}

// --- commit ----------------------------------------------------------------

void sharded_kd_process::commit_shard(std::uint64_t shard) {
    // The same cache window as gather_shard, with +1 commits whose order
    // cannot matter; the same packed store resets the detector word to
    // `unseen` (every probed bin appears in this slice), readying the
    // next chunk for free.
    const std::uint64_t end = bucket_start_[shard + 1];
    for (std::uint64_t pos = bucket_start_[shard]; pos < end; ++pos) {
        if (pos + prefetch_ahead < end) {
            __builtin_prefetch(
                &bin_state_[static_cast<std::uint32_t>(
                    bucket_[pos + prefetch_ahead] >> 32)],
                1);
        }
        const std::uint64_t pair = bucket_[pos];
        const auto bin = static_cast<std::uint32_t>(pair >> 32);
        bin_state_[bin] =
            (std::uint64_t{slot_unseen} << 32) |
            (static_cast<std::uint32_t>(bin_state_[bin]) +
             kept_[static_cast<std::uint32_t>(pair)]);
    }
}

void sharded_kd_process::for_each_shard_parallel(
    void (sharded_kd_process::*phase)(std::uint64_t)) {
    const std::uint64_t shard_count = layout_.shards();
    if (pool_ != nullptr && shard_count > 1) {
        pool_->run_phase(static_cast<std::size_t>(shard_count),
                         [this, phase](std::size_t s) { (this->*phase)(s); });
    } else {
        for (std::uint64_t s = 0; s < shard_count; ++s) {
            (this->*phase)(s);
        }
    }
}

void sharded_kd_process::conflict_table::rebuild(std::size_t entries) {
    std::size_t capacity = 16;
    while (capacity < entries * 2) {
        capacity <<= 1;
    }
    keys.assign(capacity, empty_key);
    vals.assign(capacity, 0);
    mask = capacity - 1;
}

void sharded_kd_process::conflict_table::insert(std::uint32_t bin,
                                                std::uint32_t load) {
    std::uint64_t h =
        (static_cast<std::uint64_t>(bin) * 0x9E3779B97F4A7C15ull >> 32) &
        mask;
    while (keys[h] != empty_key) {
        h = (h + 1) & mask;
    }
    keys[h] = bin;
    vals[h] = load;
}

std::uint32_t* sharded_kd_process::conflict_table::find(std::uint32_t bin) {
    // Callers only look up bins inserted this chunk, so the probe chain
    // always terminates at the key (never at an empty slot).
    std::uint64_t h =
        (static_cast<std::uint64_t>(bin) * 0x9E3779B97F4A7C15ull >> 32) &
        mask;
    while (keys[h] != bin) {
        h = (h + 1) & mask;
    }
    return &vals[h];
}

std::uint32_t*
sharded_kd_process::conflict_table::find_or_null(std::uint32_t bin) {
    std::uint64_t h =
        (static_cast<std::uint64_t>(bin) * 0x9E3779B97F4A7C15ull >> 32) &
        mask;
    while (keys[h] != bin) {
        if (keys[h] == empty_key) {
            return nullptr;
        }
        h = (h + 1) & mask;
    }
    return &vals[h];
}

// ---------------------------------------------------------------------------
// sharded_kd_level_process
// ---------------------------------------------------------------------------

sharded_kd_level_process::sharded_kd_level_process(std::uint64_t n,
                                                   std::uint64_t k,
                                                   std::uint64_t d,
                                                   std::uint64_t seed,
                                                   std::uint64_t shards,
                                                   std::uint64_t selpar)
    : sharded_kd_level_process(level_profile(n), k, d, seed, shards,
                               selpar) {}

sharded_kd_level_process::sharded_kd_level_process(level_profile initial,
                                                   std::uint64_t k,
                                                   std::uint64_t d,
                                                   std::uint64_t seed,
                                                   std::uint64_t shards,
                                                   std::uint64_t selpar)
    : profile_(std::move(initial)),
      shard_profiles_(split_profile(
          profile_, resolve_shard_count(profile_.n(), shards))),
      k_(k), d_(d), selpar_(selpar), gen_(seed), probe_draws_(profile_.n()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= profile_.n(), "cannot probe more bins than exist");
    distinct_.reserve(d);
    slots_.reserve(d);
    kept_per_probe_.reserve(d);
}

void sharded_kd_level_process::run_round() {
    // Authoritative replay of kd_choice_level_process::run_round on the
    // global profile (identical draws, ranks and selection), with the S
    // shard profiles maintained in lockstep: every fresh probe extracts a
    // bin from the lowest-indexed shard holding one at the probed level
    // and reinserts into that same shard post-round — a pure function of
    // the tape, so the partition never depends on scheduling.
    profile_.ensure_levels(profile_.max_level() + d_ + 1);

    distinct_.clear();
    for (std::uint64_t probe = 0; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto j = static_cast<std::uint64_t>(distinct_.size());
        if (v < j) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const std::uint64_t level = profile_.level_at_rank(v - j);
            profile_.extract_bin(level);
            std::uint32_t shard = 0;
            while (shard_profiles_[shard].bins_at(level) == 0) {
                ++shard; // terminates: the shard counts sum to the global
            }
            shard_profiles_[shard].extract_bin(level);
            distinct_.push_back({level, 1, shard});
        }
    }

    // Tie keys follow the serial level kernel's discipline: drawn only in
    // rounds with a duplicated probe; duplicate-free rounds break height
    // ties by probe order (bins at a level are exchangeable, so the global
    // profile is identical either way, and the shard assignment stays a
    // pure function of the tape).
    const bool has_duplicate = distinct_.size() < d_;
    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const auto& probe = distinct_[t];
        for (std::uint32_t occurrence = 1; occurrence <= probe.multiplicity;
             ++occurrence) {
            slots_.push_back(
                slot{probe.level + occurrence,
                     has_duplicate ? static_cast<std::uint64_t>(gen_()) : t,
                     t});
        }
    }
    if (k_ < slots_.size()) {
        std::nth_element(
            slots_.begin(),
            slots_.begin() + static_cast<std::ptrdiff_t>(k_ - 1), slots_.end(),
            [](const slot& a, const slot& b) {
                if (a.height != b.height) {
                    return a.height < b.height;
                }
                return a.tie_key < b.tie_key;
            });
    }

    kept_per_probe_.assign(distinct_.size(), 0);
    for (std::size_t i = 0; i < k_; ++i) {
        ++kept_per_probe_[slots_[i].probe];
    }
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const std::uint64_t target = distinct_[t].level + kept_per_probe_[t];
        profile_.insert_bin(target);
        auto& shard = shard_profiles_[distinct_[t].shard];
        shard.ensure_levels(target + 1);
        shard.insert_bin(target);
    }

    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void sharded_kd_level_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    for (std::uint64_t placed = 0; placed < balls; placed += k_) {
        run_round();
    }
}

} // namespace kdc::core
