// The behavioural contract of the scenario API: cells and experiments
// built from scenarios are BYTE-identical to the legacy factories for
// equivalent settings, and the new level-compressed weighted / (1+beta)
// kernels are distributionally identical to their per-bin counterparts
// (two-sample KS at n = 10^4).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/baselines.hpp"
#include "core/level_process.hpp"
#include "core/process.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "core/thread_pool.hpp"
#include "core/weighted.hpp"
#include "rng/splitmix64.hpp"
#include "stats/hypothesis.hpp"

using namespace kdc::core;

namespace {

bool same_rep(const repetition_result& a, const repetition_result& b) {
    return a.max_load == b.max_load && a.gap == b.gap &&
           a.messages == b.messages && a.empty_bins == b.empty_bins;
}

/// Runs one repetition of a legacy process factory exactly as the sweep
/// layer does.
template <typename Factory>
repetition_result legacy_rep(Factory factory, std::uint64_t seed,
                             std::uint64_t balls) {
    return run_one_repetition(seed, balls, factory);
}

repetition_result scenario_rep(const scenario& sc, std::uint64_t seed,
                               std::uint64_t balls) {
    auto cell = make_scenario_cell("cell", sc,
                                   {.balls = balls, .reps = 1, .seed = 1});
    return cell.run_rep(seed);
}

} // namespace

TEST(ScenarioEquivalence, KdPerBinMatchesLegacyFactoryByteForByte) {
    constexpr std::uint64_t n = 4096;
    auto sc = parse_scenario("kd:n=4096,k=2,d=4,kernel=perbin");
    for (std::uint64_t seed : {1ull, 99ull, 12345ull}) {
        const auto expected = legacy_rep(
            [&](std::uint64_t s) { return kd_choice_process(n, 2, 4, s); },
            seed, n);
        EXPECT_TRUE(same_rep(scenario_rep(sc, seed, n), expected)) << seed;
    }
}

TEST(ScenarioEquivalence, KdLevelMatchesLegacyFactoryByteForByte) {
    constexpr std::uint64_t n = 4096;
    auto sc = parse_scenario("kd:n=4096,k=2,d=4,kernel=level");
    const auto expected = legacy_rep(
        [&](std::uint64_t s) { return kd_choice_level_process(n, 2, 4, s); },
        42, n);
    EXPECT_TRUE(same_rep(scenario_rep(sc, 42, n), expected));
}

TEST(ScenarioEquivalence, EveryBaselinePolicyMatchesItsLegacyProcess) {
    constexpr std::uint64_t n = 2048;
    const std::uint64_t seed = 7;
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario("single:n=2048,kernel=perbin"), seed, n),
        legacy_rep([&](std::uint64_t s) { return single_choice_process(n, s); },
                   seed, n)));
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario("dchoice:n=2048,k=1,d=3,kernel=perbin"),
                     seed, n),
        legacy_rep([&](std::uint64_t s) { return d_choice_process(n, 3, s); },
                   seed, n)));
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario(
                         "kd:n=2048,probe=one_plus_beta,beta=0.25,"
                         "kernel=perbin"),
                     seed, n),
        legacy_rep(
            [&](std::uint64_t s) {
                return one_plus_beta_process(n, 0.25, s);
            },
            seed, n)));
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario("kd:n=2048,probe=threshold,threshold=2,"
                                    "cap=16"),
                     seed, n),
        legacy_rep(
            [&](std::uint64_t s) {
                return adaptive_threshold_process(n, 2, 16, s);
            },
            seed, n)));
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario("greedy:n=2048,k=2,d=4"), seed, n),
        legacy_rep(
            [&](std::uint64_t s) {
                return batched_greedy_process(n, 2, 4, s);
            },
            seed, n)));
    // The Table-1 (1,1) degeneration is single choice by construction.
    EXPECT_TRUE(same_rep(
        scenario_rep(parse_scenario("kd:n=2048,k=1,d=1,kernel=perbin"), seed,
                     n),
        legacy_rep([&](std::uint64_t s) { return single_choice_process(n, s); },
                   seed, n)));
}

TEST(ScenarioEquivalence, ScenarioExperimentMatchesLegacyRunner) {
    constexpr std::uint64_t n = 2048;
    const experiment_config config{.balls = n, .reps = 5, .seed = 11};
    const auto legacy = run_kd_experiment(n, 2, 4, config);
    const auto via_scenario = run_scenario_experiment(
        parse_scenario("kd:n=2048,k=2,d=4,kernel=perbin"), config);
    ASSERT_EQ(legacy.reps.size(), via_scenario.reps.size());
    for (std::size_t i = 0; i < legacy.reps.size(); ++i) {
        EXPECT_TRUE(same_rep(legacy.reps[i], via_scenario.reps[i])) << i;
    }
    EXPECT_EQ(legacy.max_load_set(), via_scenario.max_load_set());
    EXPECT_EQ(legacy.max_load_stats.mean(),
              via_scenario.max_load_stats.mean());
}

TEST(ScenarioEquivalence, WithoutReplacementReachesThePerBinProcess) {
    constexpr std::uint64_t n = 1024;
    auto sc = parse_scenario(
        "kd:n=1024,k=2,d=8,replacement=without,kernel=perbin");
    const auto expected = legacy_rep(
        [&](std::uint64_t s) {
            kd_choice_process process(n, 2, 8, s);
            process.set_probe_mode(probe_mode::without_replacement);
            return process;
        },
        5, n);
    EXPECT_TRUE(same_rep(scenario_rep(sc, 5, n), expected));
}

// ---------------------------------------------------------------------------
// KS equivalence of the NEW level-compressed kernels vs per-bin, n = 10^4.
// ---------------------------------------------------------------------------

namespace {

template <typename Factory>
std::pair<std::vector<double>, std::vector<double>>
collect_max_and_gap(Factory factory, std::uint64_t balls, int reps,
                    std::uint64_t seed_base) {
    std::vector<double> max_loads;
    std::vector<double> gaps;
    max_loads.reserve(static_cast<std::size_t>(reps));
    gaps.reserve(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
        auto process =
            factory(kdc::rng::derive_seed(seed_base,
                                          static_cast<std::uint32_t>(rep)));
        process.run_balls(balls);
        max_loads.push_back(process.max_load());
        gaps.push_back(process.gap());
    }
    return {std::move(max_loads), std::move(gaps)};
}

} // namespace

TEST(WeightedLevelProcess, KsAgreementWithPerBinKernelAtTenThousandBins) {
    constexpr std::uint64_t n = 10'000;
    constexpr int reps = 100;
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{{2, 4},
                                                              {8, 16}}) {
        const std::uint64_t balls = n - (n % k);
        auto [perbin_max, perbin_gap] = collect_max_and_gap(
            [&](std::uint64_t s) {
                return weighted_kd_process(n, k, d, s,
                                           pareto_weights(3.0, 1.0));
            },
            balls, reps, 800);
        auto [level_max, level_gap] = collect_max_and_gap(
            [&](std::uint64_t s) {
                return weighted_kd_level_process(n, k, d, s,
                                                 pareto_weights(3.0, 1.0));
            },
            balls, reps, 93'000);
        const auto ks_max = kdc::stats::ks_two_sample(perbin_max, level_max);
        EXPECT_GT(ks_max.p_value, 1e-3)
            << "weighted max mismatch at k=" << k << " d=" << d
            << " D=" << ks_max.statistic;
        const auto ks_gap = kdc::stats::ks_two_sample(perbin_gap, level_gap);
        EXPECT_GT(ks_gap.p_value, 1e-3)
            << "weighted gap mismatch at k=" << k << " d=" << d
            << " D=" << ks_gap.statistic;
    }
}

TEST(WeightedLevelProcess, UnitWeightsMatchUnweightedLevelKd) {
    // With unit weights the weighted process reduces to the paper's
    // process; compare the level variant against the unweighted level
    // kernel distributionally.
    constexpr std::uint64_t n = 4'096;
    constexpr int reps = 100;
    std::vector<double> weighted_max;
    std::vector<double> plain_max;
    for (int rep = 0; rep < reps; ++rep) {
        const auto seed =
            kdc::rng::derive_seed(17, static_cast<std::uint32_t>(rep));
        weighted_kd_level_process weighted(n, 2, 4, seed, unit_weights());
        weighted.run_balls(n);
        weighted_max.push_back(weighted.max_load());
        kd_choice_level_process plain(
            n, 2, 4, kdc::rng::derive_seed(7'717, static_cast<std::uint32_t>(rep)));
        plain.run_balls(n);
        plain_max.push_back(
            static_cast<double>(plain.profile().metrics().max_load));
    }
    const auto ks = kdc::stats::ks_two_sample(weighted_max, plain_max);
    EXPECT_GT(ks.p_value, 1e-3) << "D=" << ks.statistic;
}

namespace {

std::vector<double> collect_integer_max(
    const std::function<std::vector<double>(std::uint64_t)>& run, int reps,
    std::uint64_t seed_base) {
    std::vector<double> out;
    for (int rep = 0; rep < reps; ++rep) {
        const auto values = run(
            kdc::rng::derive_seed(seed_base, static_cast<std::uint32_t>(rep)));
        out.insert(out.end(), values.begin(), values.end());
    }
    return out;
}

} // namespace

TEST(OnePlusBetaLevelProcess, KsAgreementWithPerBinKernelAtTenThousandBins) {
    constexpr std::uint64_t n = 10'000;
    constexpr int reps = 120;
    for (const double beta : {0.25, 0.5, 1.0}) {
        auto perbin = collect_integer_max(
            [&](std::uint64_t s) {
                one_plus_beta_process process(n, beta, s);
                process.run_balls(n);
                const auto metrics = observed_load_metrics(process);
                return std::vector<double>{
                    static_cast<double>(metrics.max_load),
                    static_cast<double>(metrics.empty_bins)};
            },
            reps, 2'200);
        auto level = collect_integer_max(
            [&](std::uint64_t s) {
                one_plus_beta_level_process process(n, beta, s);
                process.run_balls(n);
                const auto metrics = observed_load_metrics(process);
                return std::vector<double>{
                    static_cast<double>(metrics.max_load),
                    static_cast<double>(metrics.empty_bins)};
            },
            reps, 64'200);
        // Split the interleaved (max, empty) samples back apart.
        std::vector<double> perbin_max;
        std::vector<double> perbin_empty;
        std::vector<double> level_max;
        std::vector<double> level_empty;
        for (std::size_t i = 0; i < perbin.size(); i += 2) {
            perbin_max.push_back(perbin[i]);
            perbin_empty.push_back(perbin[i + 1]);
            level_max.push_back(level[i]);
            level_empty.push_back(level[i + 1]);
        }
        const auto ks_max = kdc::stats::ks_two_sample(perbin_max, level_max);
        EXPECT_GT(ks_max.p_value, 1e-3)
            << "(1+beta) max mismatch at beta=" << beta
            << " D=" << ks_max.statistic;
        const auto ks_empty =
            kdc::stats::ks_two_sample(perbin_empty, level_empty);
        EXPECT_GT(ks_empty.p_value, 1e-3)
            << "(1+beta) empty-bins mismatch at beta=" << beta
            << " D=" << ks_empty.statistic;
    }
}

TEST(OnePlusBetaLevelProcess, CountsMessagesAndDegenerateBetas) {
    // beta = 0 is single choice: exactly one message per ball.
    one_plus_beta_level_process zero(64, 0.0, 3);
    zero.run_balls(128);
    EXPECT_EQ(zero.balls_placed(), 128u);
    EXPECT_EQ(zero.messages(), 128u);
    EXPECT_EQ(zero.profile().total_balls(), 128u);
    // beta = 1 is two-choice: exactly two messages per ball.
    one_plus_beta_level_process one(64, 1.0, 3);
    one.run_balls(128);
    EXPECT_EQ(one.messages(), 256u);
    EXPECT_EQ(one.profile().total_balls(), 128u);
    // A one-bin instance cannot lose balls to the duplicate-probe path.
    one_plus_beta_level_process tiny(1, 0.7, 9);
    tiny.run_balls(50);
    EXPECT_EQ(tiny.profile().max_level(), 50u);
}

TEST(WeightedLevelProcess, CountsAndProfileInvariants) {
    weighted_kd_level_process process(256, 2, 4, 11,
                                      uniform_weights(0.5, 1.5));
    process.run_balls(512);
    EXPECT_EQ(process.balls_placed(), 512u);
    EXPECT_EQ(process.messages(), 4u * 256u);
    EXPECT_EQ(process.profile().remaining_bins(), 256u);
    EXPECT_GT(process.total_weight(), 0.0);
    EXPECT_GE(process.max_load(), process.total_weight() / 256.0);
    const auto sorted = process.profile().to_sorted_weights();
    ASSERT_EQ(sorted.size(), 256u);
    EXPECT_TRUE(std::is_sorted(sorted.rbegin(), sorted.rend()));
    EXPECT_DOUBLE_EQ(sorted.front(), process.max_load());
    // run_balls must be whole rounds.
    EXPECT_THROW(process.run_balls(3), kdc::contract_violation);
}

TEST(ScenarioEquivalence, SweepCellMetricFollowsTheScenario) {
    const auto sc = parse_scenario("kd:n=512,k=2,d=4,metric=gap");
    const auto cell = make_scenario_cell("cell", sc, {.reps = 3, .seed = 1});
    EXPECT_EQ(cell.metric, metric_kind::gap);
    EXPECT_EQ(cell.config.balls, 512u); // resolved whole-rounds default
}

TEST(ScenarioEquivalence, ParRoundMatchesParRepByteForByte) {
    // par=round swaps the execution strategy, never the numbers: through
    // the registry, a sharded repetition is byte-identical to the serial
    // one for both kernels, at every shard count, with or without a pool.
    for (const char* kernel : {"perbin", "level"}) {
        const auto serial = parse_scenario(
            std::string("kd:n=10000,k=3,d=8,kernel=") + kernel);
        const auto base_rep = run_scenario_repetition(serial, 42, 10'000 * 3);
        for (const char* shards : {"auto", "1", "4", "64"}) {
            auto sharded = parse_scenario(
                std::string("kd:n=10000,k=3,d=8,par=round,kernel=") +
                kernel + ",shards=" + shards);
            const auto inline_rep =
                run_scenario_repetition(sharded, 42, 10'000 * 3);
            EXPECT_TRUE(same_rep(base_rep, inline_rep))
                << kernel << " shards=" << shards;
            for (const unsigned threads : {1u, 2u, 8u}) {
                thread_pool pool(threads);
                const auto pooled_rep = run_scenario_repetition(
                    sharded, 42, 10'000 * 3, &pool);
                EXPECT_TRUE(same_rep(base_rep, pooled_rep))
                    << kernel << " shards=" << shards
                    << " threads=" << threads;
            }
        }
    }
}

TEST(ScenarioEquivalence, ParRoundExperimentMatchesSerialExperiment) {
    // Whole experiments (multiple repetitions, rep-order folds) agree too,
    // on the pool-sharing engine overload.
    const auto serial = parse_scenario("kd:n=4096,k=2,d=4");
    auto sharded = parse_scenario("kd:n=4096,k=2,d=4,par=round,shards=8");
    const experiment_config config{.balls = 8192, .reps = 5, .seed = 9};
    const auto a = run_scenario_experiment(serial, config);
    thread_pool pool(4);
    const auto b = run_scenario_experiment(sharded, config, pool);
    ASSERT_EQ(a.reps.size(), b.reps.size());
    for (std::size_t i = 0; i < a.reps.size(); ++i) {
        EXPECT_TRUE(same_rep(a.reps[i], b.reps[i])) << "rep " << i;
    }
}
