// Contract checking in the spirit of C++ Core Guidelines I.5-I.8 (Expects/Ensures).
//
// Violations throw `kdc::contract_violation` so that library misuse is testable
// and never silently corrupts an experiment. The checks are cheap (a branch) and
// stay enabled in release builds: this library's hot loops validate their inputs
// once per process/round, not per ball.
#pragma once

#include <stdexcept>
#include <string>

namespace kdc {

/// Thrown when a precondition (KD_EXPECTS), postcondition (KD_ENSURES) or
/// internal invariant (KD_ASSERT) is violated.
class contract_violation : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line,
                                const char* message);

} // namespace detail

} // namespace kdc

#define KDC_CONTRACT_CHECK(kind, cond, msg)                                    \
    do {                                                                       \
        if (!(cond)) {                                                         \
            ::kdc::detail::contract_fail(kind, #cond, __FILE__, __LINE__,      \
                                         msg);                                 \
        }                                                                      \
    } while (false)

/// Precondition: caller must satisfy `cond` before the call.
#define KD_EXPECTS(cond) KDC_CONTRACT_CHECK("precondition", cond, nullptr)
#define KD_EXPECTS_MSG(cond, msg) KDC_CONTRACT_CHECK("precondition", cond, msg)

/// Postcondition: callee guarantees `cond` on exit.
#define KD_ENSURES(cond) KDC_CONTRACT_CHECK("postcondition", cond, nullptr)
#define KD_ENSURES_MSG(cond, msg) KDC_CONTRACT_CHECK("postcondition", cond, msg)

/// Internal invariant that should hold mid-computation.
#define KD_ASSERT(cond) KDC_CONTRACT_CHECK("assertion", cond, nullptr)
#define KD_ASSERT_MSG(cond, msg) KDC_CONTRACT_CHECK("assertion", cond, msg)
