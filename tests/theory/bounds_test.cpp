#include "theory/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.hpp"

namespace {

using namespace kdc::theory;

constexpr std::uint64_t table1_n = 3ULL << 16; // the paper's n = 3 * 2^16

TEST(KdParams, ValidatesPaperConstraints) {
    kd_params ok{.n = 12, .k = 2, .d = 3};
    EXPECT_NO_THROW(ok.validate());

    kd_params k_not_less_than_d{.n = 12, .k = 3, .d = 3};
    EXPECT_THROW(k_not_less_than_d.validate(), kdc::contract_violation);

    kd_params d_exceeds_n{.n = 4, .k = 1, .d = 5};
    EXPECT_THROW(d_exceeds_n.validate(), kdc::contract_violation);

    kd_params k_does_not_divide_n{.n = 10, .k = 3, .d = 4};
    EXPECT_THROW(k_does_not_divide_n.validate(), kdc::contract_violation);
}

TEST(DkRatio, MatchesDefinition) {
    EXPECT_DOUBLE_EQ(dk_ratio(1, 2), 2.0);
    EXPECT_DOUBLE_EQ(dk_ratio(2, 3), 3.0);
    EXPECT_DOUBLE_EQ(dk_ratio(128, 193), 193.0 / 65.0);
    EXPECT_DOUBLE_EQ(dk_ratio(192, 193), 193.0);
}

TEST(DkRatio, RequiresKLessThanD) {
    EXPECT_THROW((void)dk_ratio(3, 3), kdc::contract_violation);
}

TEST(FirstTerm, MatchesClosedForm) {
    const double expected =
        std::log(std::log(static_cast<double>(table1_n))) / std::log(2.0);
    EXPECT_NEAR(first_term(table1_n, 1, 2), expected, 1e-12);
}

TEST(FirstTerm, DecreasesInD) {
    double prev = 1e300;
    for (std::uint64_t d = 2; d <= 100; d += 7) {
        const double term = first_term(table1_n, 1, d);
        EXPECT_LT(term, prev);
        prev = term;
    }
}

TEST(FirstTerm, KeepingDMinusKFixedKeepsFirstTermFixed) {
    // The first term depends on (k,d) only through d-k.
    EXPECT_DOUBLE_EQ(first_term(table1_n, 1, 9),
                     first_term(table1_n, 92, 100));
}

TEST(SecondTerm, SmallDkGivesZero) {
    EXPECT_DOUBLE_EQ(second_term(1, 2), 0.0); // dk = 2 < e
}

TEST(SecondTerm, GrowsWithDk) {
    // dk = 193 vs dk = 193/65.
    EXPECT_GT(second_term(192, 193), second_term(128, 193));
}

TEST(Theorem1Bound, SingleChoiceLimitRecoversLnOverLnLn) {
    // k = d-1 with d = n gives dk = n, so the Corollary 1 term
    // ln dk / ln ln dk is *exactly* the single-choice law ln n / ln ln n —
    // the paper's consistency check in Section 1.1.
    const std::uint64_t n = 1 << 20;
    EXPECT_NEAR(second_term(n - 1, n), single_choice_max_load(n), 1e-9);
}

TEST(Theorem1Bound, DChoiceLimitRecoversAzar) {
    const auto pred = theorem1_bound(table1_n, 1, 5);
    EXPECT_TRUE(pred.dk_small);
    EXPECT_NEAR(pred.total, d_choice_max_load(table1_n, 5), 1e-12);
}

TEST(Theorem2Bound, SandwichOrdered) {
    const auto pred = theorem2_bound(table1_n, 3, 12);
    EXPECT_LE(pred.lower, pred.upper);
}

TEST(Theorem2Bound, RequiresDAtLeastTwoK) {
    EXPECT_THROW((void)theorem2_bound(table1_n, 8, 9),
                 kdc::contract_violation);
}

TEST(Theorem2Bound, ExactWhenDIsMultipleOfK) {
    // floor(d/k) = d/k and d-k+1 vs d/k: with k=1 both bounds collapse to
    // the d-choice law when d-k+1 == d.
    const auto pred = theorem2_bound(table1_n, 1, 2);
    EXPECT_NEAR(pred.lower, pred.upper, 1e-12);
}

TEST(Landmarks, MatchDefinitions) {
    EXPECT_DOUBLE_EQ(beta0_landmark(600, 1, 2), 600.0 / 12.0);
    EXPECT_DOUBLE_EQ(gamma_star_landmark(600, 1, 2), 4.0 * 600.0 / 2.0);
    EXPECT_DOUBLE_EQ(gamma0_landmark(600, 3), 200.0);
}

TEST(Landmarks, OrderingGammaStarAboveBeta0) {
    // gamma* = 4n/dk > beta0 = n/(6 dk) always.
    for (const auto& [k, d] : std::vector<std::pair<std::uint64_t,
                                                    std::uint64_t>>{
             {1, 2}, {2, 3}, {16, 17}, {128, 193}}) {
        EXPECT_GT(gamma_star_landmark(table1_n, k, d),
                  beta0_landmark(table1_n, k, d));
    }
}

TEST(LogBinomial, ExactSmallValues) {
    EXPECT_NEAR(log_binomial(4, 2), std::log(6.0), 1e-10);
    EXPECT_NEAR(log_binomial(10, 3), std::log(120.0), 1e-9);
    EXPECT_NEAR(log_binomial(5, 0), 0.0, 1e-12);
    EXPECT_NEAR(log_binomial(5, 5), 0.0, 1e-12);
}

TEST(BetaSequence, StartsAtBeta0AndDecreases) {
    const auto seq = beta_sequence(table1_n, 2, 3);
    ASSERT_GE(seq.size(), 2u);
    EXPECT_DOUBLE_EQ(seq.front(), beta0_landmark(table1_n, 2, 3));
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_LT(seq[i], seq[i - 1]);
    }
}

TEST(BetaSequence, LengthWithinTheoremBound) {
    // i* <= ln ln n / ln(d-k+1) + O(1) (Theorem 4, Part B).
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {1, 2}, {2, 3}, {4, 9}, {16, 25}}) {
        const auto seq = beta_sequence(table1_n, k, d);
        const double bound = i_star_bound(table1_n, k, d);
        EXPECT_LE(static_cast<double>(seq.size()), bound + 4.0)
            << "k=" << k << " d=" << d;
    }
}

TEST(BetaSequence, CollapsesDoublyExponentially) {
    const auto seq = beta_sequence(1ULL << 24, 1, 2);
    // Once below n/16 or so, each step should at least square the ratio
    // beta_i / n (up to the constant F), so log(n/beta) at least doubles.
    for (std::size_t i = 1; i + 1 < seq.size(); ++i) {
        const double ratio_log_before =
            std::log(static_cast<double>(1ULL << 24) / seq[i]);
        const double ratio_log_after =
            std::log(static_cast<double>(1ULL << 24) / seq[i + 1]);
        if (ratio_log_before > 4.0) {
            EXPECT_GT(ratio_log_after, 1.5 * ratio_log_before);
        }
    }
}

TEST(GammaSequence, StartsAtGamma0AndDecreases) {
    const auto seq = gamma_sequence(table1_n, 2, 3);
    ASSERT_GE(seq.size(), 2u);
    EXPECT_DOUBLE_EQ(seq.front(), gamma0_landmark(table1_n, 3));
    for (std::size_t i = 1; i < seq.size(); ++i) {
        EXPECT_LT(seq[i], seq[i - 1]);
    }
}

TEST(SingleChoiceMaxLoad, Table1Magnitude) {
    // For n = 3*2^16 the law gives ~ 12.2/2.5 ~ 4.9; the measured Table 1
    // value is 7-9, consistent with the (1+o(1)) slack at finite n.
    const double law = single_choice_max_load(table1_n);
    EXPECT_GT(law, 3.0);
    EXPECT_LT(law, 10.0);
}

TEST(MessageCost, MatchesFootnote1) {
    EXPECT_EQ(message_cost(1000, 1, 2), 2000u);
    EXPECT_EQ(message_cost(1000, 2, 3), 1500u);
    EXPECT_EQ(message_cost(192, 192, 193), 193u);
}

TEST(MessageCost, RequiresWholeRounds) {
    EXPECT_THROW((void)message_cost(10, 3, 4), kdc::contract_violation);
}

TEST(Corollary1, AppliesOnlyForHugeDk) {
    // dk = 193 is nowhere near e^{(ln ln n)^3} at n = 3*2^16.
    EXPECT_FALSE(corollary1_applies(table1_n, 192, 193));
    // For tiny n the cutoff e^{(ln ln n)^3} is small; k=d-1 with large d
    // (dk = d) can satisfy it.
    EXPECT_TRUE(corollary1_applies(20, 19, 20));
}

} // namespace
