#include "core/coupling.hpp"

#include <algorithm>
#include <vector>

#include "core/metrics.hpp"
#include "core/round_kernel.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

namespace {

/// Counts, for every prefix length x, whether the top-x load sums are
/// ordered better <= worse; accumulates into the report.
void compare_prefixes(const load_vector& better, const load_vector& worse,
                      coupling_report& report) {
    auto sorted_better = sorted_loads_desc(better);
    auto sorted_worse = sorted_loads_desc(worse);
    std::uint64_t sum_better = 0;
    std::uint64_t sum_worse = 0;
    for (std::size_t x = 0; x < sorted_better.size(); ++x) {
        sum_better += sorted_better[x];
        sum_worse += sorted_worse[x];
        ++report.comparisons;
        if (sum_better > sum_worse) {
            ++report.violations;
        }
    }
}

} // namespace

coupling_report couple_property_ii(std::uint64_t n, std::uint64_t k,
                                   std::uint64_t d, std::uint64_t alpha,
                                   std::uint64_t rounds, std::uint64_t seed) {
    KD_EXPECTS(k >= 1 && k < d);
    KD_EXPECTS(alpha >= 1);
    KD_EXPECTS(d + alpha <= n);

    rng::xoshiro256ss sample_gen(seed);
    rng::xoshiro256ss tie_gen_better(seed ^ 0x9e3779b97f4a7c15ULL);
    rng::xoshiro256ss tie_gen_worse(seed ^ 0xda942042e4dd58b5ULL);

    load_vector better(n, 0); // A(k, d+alpha)
    load_vector worse(n, 0);  // A(k, d)
    round_scratch scratch_better;
    round_scratch scratch_worse;

    std::vector<std::uint32_t> probes(d + alpha);
    coupling_report report;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        rng::sample_with_replacement(sample_gen, n,
                                     std::span<std::uint32_t>(probes));
        // The d-probe process uses a random subset of the d+alpha probes:
        // shuffle and take the prefix.
        rng::shuffle(sample_gen, std::span<std::uint32_t>(probes));
        place_round(better, probes, k, tie_gen_better, scratch_better);
        place_round(worse,
                    std::span<const std::uint32_t>(probes.data(), d), k,
                    tie_gen_worse, scratch_worse);
        ++report.rounds;
        compare_prefixes(better, worse, report);
    }
    report.final_better = std::move(better);
    report.final_worse = std::move(worse);
    return report;
}

coupling_report couple_property_iv(std::uint64_t n, std::uint64_t k,
                                   std::uint64_t d, std::uint64_t alpha,
                                   std::uint64_t super_rounds,
                                   std::uint64_t seed) {
    KD_EXPECTS(k >= 1 && k < d);
    KD_EXPECTS(alpha >= 1);
    KD_EXPECTS(alpha * d <= n);

    rng::xoshiro256ss sample_gen(seed);
    rng::xoshiro256ss tie_gen_better(seed ^ 0x9e3779b97f4a7c15ULL);
    rng::xoshiro256ss tie_gen_worse(seed ^ 0xda942042e4dd58b5ULL);

    load_vector better(n, 0); // A(alpha*k, alpha*d)
    load_vector worse(n, 0);  // A(k, d), alpha rounds per super-round
    round_scratch scratch_better;
    round_scratch scratch_worse;

    std::vector<std::uint32_t> probes(alpha * d);
    coupling_report report;
    for (std::uint64_t r = 0; r < super_rounds; ++r) {
        rng::sample_with_replacement(sample_gen, n,
                                     std::span<std::uint32_t>(probes));
        place_round(better, probes, alpha * k, tie_gen_better,
                    scratch_better);
        // Partition into alpha random groups of d: a shuffle makes the
        // groups exchangeable, exactly the paper's random partition.
        rng::shuffle(sample_gen, std::span<std::uint32_t>(probes));
        for (std::uint64_t g = 0; g < alpha; ++g) {
            place_round(worse,
                        std::span<const std::uint32_t>(
                            probes.data() + g * d, d),
                        k, tie_gen_worse, scratch_worse);
        }
        ++report.rounds;
        compare_prefixes(better, worse, report);
    }
    report.final_better = std::move(better);
    report.final_worse = std::move(worse);
    return report;
}

} // namespace kdc::core
