// Ablation over the allocation-policy design choices the paper discusses:
//
//  1. The multiplicity rule (Section 1) vs the Section 7 "modified policy"
//     (batched greedy: less-loaded bins may receive multiple balls). The
//     paper conjectures the modified policy achieves O(1) max load even for
//     k ~ d, where the standard policy degrades toward single choice —
//     the (192,193) cell of Table 1 reads "5, 6"; greedy should read ~2.
//  2. Serialization order sigma (Definition 1): by Property (i) the final
//     load distribution is invariant — identity, reversal and random
//     schedules must agree (an ablation that *should* show nothing).
//
//   ./ablation_policies [--n=196608] [--reps=10] [--seed=8]
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("reps", "10", "repetitions per configuration");
    args.add_option("seed", "8", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    struct config {
        std::uint64_t k, d;
    };
    const std::vector<config> configs{{2, 3},   {8, 9},    {32, 33},
                                      {96, 97}, {192, 193}, {128, 193}};

    std::cout << "Ablation 1 — multiplicity rule vs Section 7 greedy "
                 "policy, n = " << n << "\n\n";
    kdc::text_table policy_table;
    policy_table.set_header({"(k,d)", "standard mean max", "standard set",
                             "greedy mean max", "greedy set"});
    std::uint64_t cfg_seed = seed;
    for (const auto& cfg : configs) {
        ++cfg_seed;
        const auto balls = n - (n % cfg.k);
        const auto standard = kdc::core::run_kd_experiment(
            n, cfg.k, cfg.d, {.balls = balls, .reps = reps, .seed = cfg_seed});
        const auto greedy = kdc::core::run_experiment(
            {.balls = balls, .reps = reps, .seed = cfg_seed + 5000},
            [n, cfg](std::uint64_t s) {
                return kdc::core::batched_greedy_process(n, cfg.k, cfg.d, s);
            });
        policy_table.add_row(
            {"(" + std::to_string(cfg.k) + "," + std::to_string(cfg.d) + ")",
             kdc::format_fixed(standard.max_load_stats.mean(), 2),
             standard.max_load_set(),
             kdc::format_fixed(greedy.max_load_stats.mean(), 2),
             greedy.max_load_set()});
    }
    std::cout << policy_table << '\n'
              << "Conjecture (Section 7): greedy stays O(1) even at k ~ d "
                 "(watch the (192,193) row).\n\n";

    std::cout << "Ablation 2 — serialization schedule sigma (Property (i): "
                 "no effect expected)\n\n";
    kdc::text_table sigma_table;
    sigma_table.set_header({"sigma", "mean max", "set"});
    sigma_table.set_align(0, kdc::table_align::left);
    struct schedule_case {
        const char* name;
        kdc::core::sigma_schedule schedule;
    };
    const std::uint64_t sk = 8;
    const std::uint64_t sd = 16;
    std::vector<schedule_case> schedules;
    schedules.push_back({"identity", kdc::core::identity_schedule()});
    schedules.push_back({"reverse", kdc::core::reverse_schedule()});
    schedules.push_back({"random", kdc::core::random_schedule(seed + 999)});
    for (const auto& sched : schedules) {
        const auto result = kdc::core::run_experiment(
            {.balls = n, .reps = reps, .seed = seed + 31},
            [n, sk, sd, &sched](std::uint64_t s) {
                return kdc::core::serialized_process(n, sk, sd, s,
                                                     sched.schedule);
            });
        sigma_table.add_row({sched.name,
                             kdc::format_fixed(result.max_load_stats.mean(), 2),
                             result.max_load_set()});
    }
    std::cout << sigma_table << '\n'
              << "All three rows must agree (identical seeds -> identical "
                 "samples -> identical loads).\n";
    return 0;
}
