#include "stats/special_functions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/contracts.hpp"

namespace {

using kdc::stats::chi_square_cdf;
using kdc::stats::kolmogorov_q;
using kdc::stats::log_factorial;
using kdc::stats::regularized_beta;
using kdc::stats::regularized_gamma_p;
using kdc::stats::regularized_gamma_q;
using kdc::stats::smallest_factorial_exceeding_log;
using kdc::stats::student_t_cdf;
using kdc::stats::student_t_quantile;

TEST(RegularizedGamma, BoundaryValues) {
    EXPECT_DOUBLE_EQ(regularized_gamma_p(1.0, 0.0), 0.0);
    EXPECT_NEAR(regularized_gamma_p(1.0, 1000.0), 1.0, 1e-12);
}

TEST(RegularizedGamma, ExponentialSpecialCase) {
    // P(1, x) = 1 - e^{-x}.
    for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10)
            << "x=" << x;
    }
}

TEST(RegularizedGamma, HalfIntegerMatchesErf) {
    // P(1/2, x) = erf(sqrt(x)).
    for (const double x : {0.25, 1.0, 2.25, 4.0}) {
        EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10)
            << "x=" << x;
    }
}

TEST(RegularizedGamma, PPlusQIsOne) {
    for (const double a : {0.5, 1.0, 3.0, 10.0}) {
        for (const double x : {0.1, 1.0, 5.0, 20.0}) {
            EXPECT_NEAR(regularized_gamma_p(a, x) + regularized_gamma_q(a, x),
                        1.0, 1e-12);
        }
    }
}

TEST(RegularizedGamma, MonotoneInX) {
    double prev = 0.0;
    for (double x = 0.0; x <= 10.0; x += 0.5) {
        const double p = regularized_gamma_p(3.0, x);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(RegularizedGamma, InvalidInputsViolateContract) {
    EXPECT_THROW((void)regularized_gamma_p(0.0, 1.0),
                 kdc::contract_violation);
    EXPECT_THROW((void)regularized_gamma_p(1.0, -1.0),
                 kdc::contract_violation);
}

TEST(ChiSquareCdf, KnownQuantiles) {
    // chi^2_1: P(X <= 3.841) ~ 0.95; chi^2_5: P(X <= 11.070) ~ 0.95.
    EXPECT_NEAR(chi_square_cdf(3.841, 1.0), 0.95, 1e-3);
    EXPECT_NEAR(chi_square_cdf(11.070, 5.0), 0.95, 1e-3);
    // Median of chi^2_2 is 2 ln 2.
    EXPECT_NEAR(chi_square_cdf(2.0 * std::log(2.0), 2.0), 0.5, 1e-10);
}

TEST(ChiSquareCdf, ZeroAndNegative) {
    EXPECT_DOUBLE_EQ(chi_square_cdf(0.0, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(chi_square_cdf(-5.0, 3.0), 0.0);
}

TEST(KolmogorovQ, KnownValues) {
    EXPECT_DOUBLE_EQ(kolmogorov_q(0.0), 1.0);
    // Q(1.36) ~ 0.049 (the classic 5% critical value).
    EXPECT_NEAR(kolmogorov_q(1.36), 0.049, 2e-3);
    EXPECT_LT(kolmogorov_q(2.0), 1e-3);
}

TEST(KolmogorovQ, MonotoneDecreasing) {
    double prev = 1.0;
    for (double lambda = 0.1; lambda <= 3.0; lambda += 0.1) {
        const double q = kolmogorov_q(lambda);
        EXPECT_LE(q, prev + 1e-12);
        prev = q;
    }
}

TEST(LogFactorial, SmallExactValues) {
    EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
    EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
    EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
    EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(SmallestFactorialExceeding, InvertsFactorial) {
    // smallest y with y! > 100: 5! = 120 > 100, 4! = 24 <= 100.
    EXPECT_EQ(smallest_factorial_exceeding_log(std::log(100.0)), 5u);
    // smallest y with y! > 1: 2 (since 0! = 1! = 1).
    EXPECT_EQ(smallest_factorial_exceeding_log(0.0), 2u);
    // y! > 0.5: even 0! = 1 exceeds it.
    EXPECT_EQ(smallest_factorial_exceeding_log(std::log(0.5)), 0u);
}

TEST(SmallestFactorialExceeding, AgreesWithBruteForce) {
    double log_bound = std::log(48.0 * 7.0); // a Theorem 3 style bound
    const auto y = smallest_factorial_exceeding_log(log_bound);
    EXPECT_GT(log_factorial(y), log_bound);
    EXPECT_LE(log_factorial(y - 1), log_bound);
}

TEST(RegularizedBeta, ClosedFormCases) {
    EXPECT_DOUBLE_EQ(regularized_beta(1.0, 1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(regularized_beta(1.0, 1.0, 1.0), 1.0);
    // I_x(1, 1) = x (uniform CDF).
    EXPECT_NEAR(regularized_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
    // I_x(a, 1) = x^a and I_x(1, b) = 1 - (1-x)^b.
    EXPECT_NEAR(regularized_beta(3.0, 1.0, 0.5), 0.125, 1e-12);
    EXPECT_NEAR(regularized_beta(1.0, 4.0, 0.25),
                1.0 - std::pow(0.75, 4.0), 1e-12);
    // Symmetry I_x(a, b) = 1 - I_{1-x}(b, a).
    EXPECT_NEAR(regularized_beta(2.5, 4.0, 0.3) +
                    regularized_beta(4.0, 2.5, 0.7),
                1.0, 1e-12);
}

TEST(RegularizedBeta, RejectsOutOfDomainArguments) {
    EXPECT_THROW((void)regularized_beta(0.0, 1.0, 0.5),
                 kdc::contract_violation);
    EXPECT_THROW((void)regularized_beta(1.0, -1.0, 0.5),
                 kdc::contract_violation);
    EXPECT_THROW((void)regularized_beta(1.0, 1.0, 1.5),
                 kdc::contract_violation);
}

TEST(StudentT, CdfMatchesReferenceValues) {
    EXPECT_DOUBLE_EQ(student_t_cdf(0.0, 5.0), 0.5);
    // Symmetry about zero.
    EXPECT_NEAR(student_t_cdf(1.3, 7.0) + student_t_cdf(-1.3, 7.0), 1.0,
                1e-12);
    // Reference: P(T_10 <= 1.812461) = 0.95 (t table / mpmath).
    EXPECT_NEAR(student_t_cdf(1.812461, 10.0), 0.95, 1e-6);
    // With one degree of freedom the t distribution is standard Cauchy:
    // CDF(1) = 3/4.
    EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-12);
}

TEST(StudentT, QuantileMatchesReferenceValues) {
    // Classic two-sided 95% / 99% critical values (mpmath, 15 digits).
    EXPECT_NEAR(student_t_quantile(0.975, 1.0), 12.7062047361747, 1e-8);
    EXPECT_NEAR(student_t_quantile(0.975, 2.0), 4.30265272974946, 1e-9);
    EXPECT_NEAR(student_t_quantile(0.975, 7.0), 2.36462425159278, 1e-9);
    EXPECT_NEAR(student_t_quantile(0.975, 10.0), 2.22813885198627, 1e-9);
    EXPECT_NEAR(student_t_quantile(0.995, 30.0), 2.74999565356722, 1e-9);
    EXPECT_NEAR(student_t_quantile(0.95, 5.0), 2.01504837333302, 1e-9);
    // Large dof approaches the normal quantile 1.959964.
    EXPECT_NEAR(student_t_quantile(0.975, 120.0), 1.97993040508244, 1e-9);
}

TEST(StudentT, QuantileRoundTripsThroughCdf) {
    for (const double p : {0.05, 0.25, 0.5, 0.9, 0.999}) {
        for (const double dof : {1.0, 3.0, 9.0, 29.0}) {
            EXPECT_NEAR(student_t_cdf(student_t_quantile(p, dof), dof), p,
                        1e-10)
                << "p=" << p << " dof=" << dof;
        }
    }
    // Symmetry: the lower-tail quantile is the negated upper-tail one.
    EXPECT_NEAR(student_t_quantile(0.025, 10.0),
                -student_t_quantile(0.975, 10.0), 1e-10);
}

TEST(StudentT, RejectsDegenerateArguments) {
    EXPECT_THROW((void)student_t_cdf(1.0, 0.0), kdc::contract_violation);
    EXPECT_THROW((void)student_t_quantile(0.0, 5.0),
                 kdc::contract_violation);
    EXPECT_THROW((void)student_t_quantile(1.0, 5.0),
                 kdc::contract_violation);
}

} // namespace
