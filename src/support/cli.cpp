#include "support/cli.hpp"

#include <charconv>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "support/contracts.hpp"

namespace kdc {

void arg_parser::add_option(std::string name, std::string default_value,
                            std::string help) {
    KD_EXPECTS(!name.empty());
    specs_[std::move(name)] =
        option_spec{std::move(default_value), std::move(help), false};
}

void arg_parser::add_flag(std::string name, std::string help) {
    KD_EXPECTS(!name.empty());
    specs_[std::move(name)] = option_spec{"false", std::move(help), true};
}

void arg_parser::add_threads_option() {
    add_option("threads", "0",
               "worker threads shared by the whole sweep: every cell and "
               "repetition runs on one work-stealing pool (0 = all hardware "
               "threads); never changes reported numbers");
}

void arg_parser::add_kernel_option() {
    add_option("kernel", "perbin",
               "simulation kernel: 'perbin' (O(n) per-bin loads, the "
               "reference) or 'level' (O(max-load) level-compressed state; "
               "distributionally identical, different RNG stream — use for "
               "huge n and heavily loaded runs)");
}

void arg_parser::add_adaptive_options() {
    add_flag("adaptive",
             "stop each cell's repetitions early once the 95% Student-t CI "
             "half-width of its mean max load drops below --ci-width "
             "(decisions on rep-order folds: output is still bit-identical "
             "at any --threads value)");
    add_option("ci-width", "0.5",
               "adaptive mode: target CI half-width of the monitored "
               "metric's mean; must be a positive finite number");
    add_option("ci-rel", "0",
               "adaptive mode: relative (mean-scaled) width target — stop "
               "once the CI half-width is <= ci-rel * |mean|; positive "
               "finite, mutually exclusive with an explicit --ci-width");
    add_option("min-reps", "3",
               "adaptive mode: repetitions every cell runs before the first "
               "stop decision (>= 2, variance needs two samples)");
    add_option("max-reps", "0",
               "adaptive mode: hard cap on repetitions per cell (0 = the "
               "cell's configured --reps)");
}

void arg_parser::add_scenario_option() {
    add_option("scenario", "",
               "declarative scenario string, e.g. "
               "'kd:n=1e6,k=2,d=4,probe=uniform,kernel=auto,"
               "metric=max_load'; keys override the matching legacy flags "
               "(see core/scenario.hpp for the grammar)");
}

void arg_parser::add_snapshot_options() {
    add_option("snapshot-out", "",
               "write the run's final level profile to this file "
               "(core/level_profile.hpp text format) — O(max-load) bytes, "
               "so billion-bin runs stay resumable; requires the level "
               "kernel");
    add_option("resume", "",
               "start from the level-profile snapshot in this file instead "
               "of empty bins (pairs with --snapshot-out for staged heavy "
               "runs); requires the level kernel");
}

void arg_parser::add_fault_options() {
    add_option("inject-faults", "",
               "deterministic fault plan: 'site:action[@hit]' rules joined "
               "by ';' (actions: crash, io_error, alloc_fail; e.g. "
               "'snapshot.rename:crash@1'); the KDC_FAULTS environment "
               "variable wins over this option — see docs/robustness.md");
}

unsigned arg_parser::get_threads() const {
    const std::int64_t value = get_int("threads");
    if (value < 0 ||
        value > static_cast<std::int64_t>(
                    std::numeric_limits<unsigned>::max())) {
        throw cli_error("option --threads out of range, got " +
                        std::to_string(value));
    }
    return static_cast<unsigned>(value);
}

bool arg_parser::parse(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::cout << usage(argv[0]);
            return false;
        }
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        const auto body = arg.substr(2);
        const auto eq = body.find('=');
        const std::string key = body.substr(0, eq);
        if (key.empty()) {
            // Catches both a bare `--` and `--=value`; without this check
            // the empty key would fall through to the misleading
            // "unknown option --" diagnostic.
            throw cli_error("malformed argument '" + arg +
                            "': missing option name after --");
        }
        const auto spec = specs_.find(key);
        if (spec == specs_.end()) {
            throw cli_error("unknown option --" + key);
        }
        if (spec->second.is_flag) {
            if (eq != std::string::npos) {
                throw cli_error("flag --" + key + " does not take a value");
            }
            values_[key] = "true";
        } else {
            if (eq == std::string::npos) {
                throw cli_error("option --" + key + " requires =value");
            }
            values_[key] = body.substr(eq + 1);
        }
    }
    return true;
}

std::string arg_parser::get_string(const std::string& name) const {
    const auto spec = specs_.find(name);
    KD_EXPECTS_MSG(spec != specs_.end(), "option was never declared");
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : spec->second.default_value;
}

std::int64_t arg_parser::get_int(const std::string& name) const {
    const std::string text = get_string(name);
    std::int64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || ptr != text.data() + text.size()) {
        throw cli_error("option --" + name + " expects an integer, got '" +
                        text + "'");
    }
    return value;
}

double arg_parser::get_double(const std::string& name) const {
    const std::string text = get_string(name);
    double value = 0.0;
    try {
        std::size_t pos = 0;
        value = std::stod(text, &pos);
        if (pos != text.size()) {
            throw cli_error("option --" + name +
                            " expects a number, got '" + text +
                            "' (trailing characters after the value)");
        }
    } catch (const std::invalid_argument&) {
        throw cli_error("option --" + name + " expects a number, got '" + text +
                        "'");
    } catch (const std::out_of_range&) {
        throw cli_error("option --" + name + " value '" + text +
                        "' is out of range for a double");
    }
    // stod happily parses "inf" and "nan"; neither is a usable option value
    // anywhere in this repo, so reject them here with a clear message
    // instead of letting them leak into downstream contract violations.
    if (!std::isfinite(value)) {
        throw cli_error("option --" + name + " must be finite, got '" + text +
                        "'");
    }
    return value;
}

double arg_parser::get_positive_double(const std::string& name) const {
    const double value = get_double(name);
    if (value <= 0.0) {
        throw cli_error("option --" + name + " must be > 0, got '" +
                        get_string(name) + "'");
    }
    return value;
}

bool arg_parser::get_flag(const std::string& name) const {
    return get_string(name) == "true";
}

std::string arg_parser::usage(const std::string& program) const {
    std::ostringstream out;
    out << "usage: " << program << " [options]\n";
    for (const auto& [name, spec] : specs_) {
        out << "  --" << name;
        if (!spec.is_flag) {
            out << "=<value> (default: " << spec.default_value << ")";
        }
        out << "\n      " << spec.help << '\n';
    }
    return out.str();
}

} // namespace kdc
