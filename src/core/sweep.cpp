#include "core/sweep.hpp"

#include "core/level_process.hpp"

namespace kdc::core {

sweep_cell make_kd_sweep_cell(std::string name, std::uint64_t n,
                              std::uint64_t k, std::uint64_t d,
                              const experiment_config& config,
                              kernel_kind kernel) {
    if (kernel == kernel_kind::level) {
        return make_sweep_cell(std::move(name), config,
                               [n, k, d](std::uint64_t seed) {
                                   return kd_choice_level_process(n, k, d,
                                                                  seed);
                               });
    }
    return make_sweep_cell(std::move(name), config,
                           [n, k, d](std::uint64_t seed) {
                               return kd_choice_process(n, k, d, seed);
                           });
}

sweep_cell make_single_choice_sweep_cell(std::string name, std::uint64_t n,
                                         const experiment_config& config,
                                         kernel_kind kernel) {
    if (kernel == kernel_kind::level) {
        return make_sweep_cell(std::move(name), config,
                               [n](std::uint64_t seed) {
                                   return single_choice_level_process(n,
                                                                      seed);
                               });
    }
    return make_sweep_cell(std::move(name), config,
                           [n](std::uint64_t seed) {
                               return single_choice_process(n, seed);
                           });
}

sweep_cell make_d_choice_sweep_cell(std::string name, std::uint64_t n,
                                    std::uint64_t d,
                                    const experiment_config& config,
                                    kernel_kind kernel) {
    if (kernel == kernel_kind::level) {
        return make_sweep_cell(std::move(name), config,
                               [n, d](std::uint64_t seed) {
                                   return d_choice_level_process(n, d, seed);
                               });
    }
    return make_sweep_cell(std::move(name), config,
                           [n, d](std::uint64_t seed) {
                               return d_choice_process(n, d, seed);
                           });
}

std::vector<sweep_outcome> run_sweep(thread_pool& pool,
                                     const std::vector<sweep_cell>& cells,
                                     const sweep_options& options) {
    std::vector<std::uint32_t> reps_per_cell;
    reps_per_cell.reserve(cells.size());
    for (const auto& cell : cells) {
        KD_EXPECTS_MSG(cell.run_rep != nullptr,
                       "sweep cell has no repetition runner");
        KD_EXPECTS(cell.config.reps >= 1);
        KD_EXPECTS(cell.config.balls >= 1);
        reps_per_cell.push_back(cell.config.reps);
    }

    auto grid = run_engine_grid<repetition_result>(
        pool, reps_per_cell,
        [&cells](std::size_t cell, std::uint32_t rep) {
            return cells[cell].run_rep(
                rng::derive_seed(cells[cell].config.seed, rep));
        },
        // The confidence_width rule monitors each cell's chosen metric
        // (max load by default — the statistic the paper's tables report).
        [&cells](std::size_t cell, const repetition_result& rep) {
            return monitored_value(cells[cell].metric, rep);
        },
        options.stopping, options.progress);

    std::vector<sweep_outcome> outcomes;
    outcomes.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        sweep_outcome outcome;
        outcome.name = cells[c].name;
        outcome.config = cells[c].config;
        outcome.result.reps = std::move(grid[c]);
        for (const auto& r : outcome.result.reps) {
            accumulate_repetition(outcome.result, r);
        }
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::vector<sweep_outcome> run_sweep(const std::vector<sweep_cell>& cells,
                                     const sweep_options& options) {
    if (cells.empty()) {
        return {};
    }
    return run_sweep(persistent_pool(options.threads), cells, options);
}

sweep_emitter& sweep_emitter::add_name_column(std::string header) {
    return add_column(
        std::move(header),
        [](const sweep_outcome& outcome, std::size_t) {
            return outcome.name;
        },
        table_align::left);
}

sweep_emitter& sweep_emitter::add_max_load_set_column(std::string header) {
    return add_column(std::move(header),
                      [](const sweep_outcome& outcome, std::size_t) {
                          return outcome.result.max_load_set();
                      });
}

sweep_emitter& sweep_emitter::add_reps_column(std::string header) {
    return add_column(std::move(header),
                      [](const sweep_outcome& outcome, std::size_t) {
                          return std::to_string(outcome.result.reps.size());
                      });
}

} // namespace kdc::core
