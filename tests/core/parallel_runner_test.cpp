#include "core/parallel_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/runner.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::experiment_config;
using kdc::core::experiment_result;
using kdc::core::run_d_choice_experiment;
using kdc::core::run_d_choice_experiment_parallel;
using kdc::core::run_experiment;
using kdc::core::run_kd_experiment;
using kdc::core::run_kd_experiment_parallel;
using kdc::core::run_parallel_experiment;
using kdc::core::run_single_choice_experiment;
using kdc::core::run_single_choice_experiment_parallel;
using kdc::core::thread_pool;

/// Rep-for-rep and aggregate-for-aggregate bitwise equality. running_stats
/// and histogram aggregates are compared through their exact accessors, so
/// any fold-order difference (which would perturb floating-point sums) fails.
void expect_identical(const experiment_result& serial,
                      const experiment_result& parallel) {
    ASSERT_EQ(serial.reps.size(), parallel.reps.size());
    for (std::size_t i = 0; i < serial.reps.size(); ++i) {
        EXPECT_EQ(serial.reps[i].max_load, parallel.reps[i].max_load) << i;
        EXPECT_EQ(serial.reps[i].gap, parallel.reps[i].gap) << i;
        EXPECT_EQ(serial.reps[i].messages, parallel.reps[i].messages) << i;
        EXPECT_EQ(serial.reps[i].empty_bins, parallel.reps[i].empty_bins)
            << i;
    }
    EXPECT_EQ(serial.max_load_set(), parallel.max_load_set());
    EXPECT_EQ(serial.max_load_stats.count(), parallel.max_load_stats.count());
    // Bitwise, not approximate: the parallel runner promises the identical
    // fold, so even the variance accumulators must match exactly.
    EXPECT_EQ(serial.max_load_stats.mean(), parallel.max_load_stats.mean());
    EXPECT_EQ(serial.max_load_stats.variance(),
              parallel.max_load_stats.variance());
    EXPECT_EQ(serial.gap_stats.mean(), parallel.gap_stats.mean());
    EXPECT_EQ(serial.gap_stats.variance(), parallel.gap_stats.variance());
    EXPECT_EQ(serial.message_stats.mean(), parallel.message_stats.mean());
    EXPECT_EQ(serial.message_stats.variance(),
              parallel.message_stats.variance());
}

TEST(ParallelRunner, MatchesSerialAtOneTwoAndEightThreads) {
    const experiment_config config{.balls = 512, .reps = 12, .seed = 42};
    const auto serial = run_kd_experiment(512, 2, 4, config);
    for (const unsigned threads : {1u, 2u, 8u}) {
        const auto parallel =
            run_kd_experiment_parallel(512, 2, 4, config, threads);
        expect_identical(serial, parallel);
    }
}

TEST(ParallelRunner, MatchesSerialForSingleAndDChoice) {
    const experiment_config config{.balls = 256, .reps = 9, .seed = 7};
    for (const unsigned threads : {1u, 2u, 8u}) {
        expect_identical(run_single_choice_experiment(256, config),
                         run_single_choice_experiment_parallel(256, config,
                                                               threads));
        expect_identical(run_d_choice_experiment(256, 3, config),
                         run_d_choice_experiment_parallel(256, 3, config,
                                                          threads));
    }
}

TEST(ParallelRunner, MatchesSerialWithCustomFactory) {
    const experiment_config config{.balls = 300, .reps = 10, .seed = 3};
    const auto factory = [](std::uint64_t seed) {
        return kdc::core::kd_choice_process(300, 3, 7, seed);
    };
    const auto serial = run_experiment(config, factory);
    for (const unsigned threads : {1u, 2u, 8u}) {
        expect_identical(serial,
                         run_parallel_experiment(config, factory, threads));
    }
}

TEST(ParallelRunner, ZeroThreadsMeansHardwareConcurrency) {
    const experiment_config config{.balls = 128, .reps = 4, .seed = 11};
    expect_identical(run_kd_experiment(128, 2, 4, config),
                     run_kd_experiment_parallel(128, 2, 4, config, 0));
}

TEST(ParallelRunner, MoreThreadsThanRepsIsFine) {
    const experiment_config config{.balls = 64, .reps = 2, .seed = 5};
    expect_identical(run_kd_experiment(64, 2, 4, config),
                     run_kd_experiment_parallel(64, 2, 4, config, 16));
}

TEST(ParallelRunner, DefaultBallsRoundsDownToWholeRounds) {
    // n = 100, k = 3: serial and parallel must agree on the 99-ball default.
    const experiment_config config{.balls = 0, .reps = 3, .seed = 2};
    expect_identical(run_kd_experiment(100, 3, 7, config),
                     run_kd_experiment_parallel(100, 3, 7, config, 4));
}

TEST(ParallelRunner, PropagatesFactoryExceptions) {
    const experiment_config config{.balls = 30, .reps = 8, .seed = 1};
    EXPECT_THROW(
        (void)run_parallel_experiment(
            config,
            [](std::uint64_t seed) {
                if (seed != 0) { // every derived seed in practice
                    throw std::runtime_error("factory failed");
                }
                return kdc::core::single_choice_process(16, seed);
            },
            4),
        std::runtime_error);
}

TEST(ParallelRunner, RejectsZeroReps) {
    const experiment_config config{.balls = 16, .reps = 0, .seed = 1};
    EXPECT_THROW((void)run_kd_experiment_parallel(16, 2, 4, config, 2),
                 kdc::contract_violation);
}

TEST(ThreadPool, RunsEverySubmittedJobAcrossWorkers) {
    thread_pool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleWithNothingSubmittedReturns) {
    thread_pool pool(2);
    pool.wait_idle();
}

TEST(ThreadPool, CanBeReusedAfterWaitIdle) {
    thread_pool pool(3);
    std::atomic<int> counter{0};
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i) {
            pool.submit([&counter] { ++counter; });
        }
        pool.wait_idle();
    }
    EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPool, RejectsZeroWorkers) {
    EXPECT_THROW(thread_pool pool(0), kdc::contract_violation);
}

TEST(ThreadPool, DrainsManyTinyJobsAcrossStealingWorkers) {
    // Far more jobs than workers: round-robin placement plus stealing must
    // still execute every job exactly once.
    thread_pool pool(8);
    std::atomic<int> counter{0};
    for (int i = 0; i < 2000; ++i) {
        pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 2000);
}

TEST(ThreadPool, SubmitFromInsideAJobIsSafe) {
    // Workers may enqueue follow-up work; wait_idle must cover jobs
    // submitted by jobs.
    thread_pool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&pool, &counter] {
            for (int child = 0; child < 8; ++child) {
                pool.submit([&counter] { ++counter; });
            }
        });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 16 * 8);
}

TEST(ThreadPool, SingleWorkerStillDrainsEverything) {
    thread_pool pool(1);
    std::atomic<int> counter{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&counter] { ++counter; });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 50);
}

} // namespace
