#include "core/serialized.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::fixed_schedule;
using kdc::core::identity_schedule;
using kdc::core::kd_choice_process;
using kdc::core::random_schedule;
using kdc::core::reverse_schedule;
using kdc::core::serialized_process;

TEST(SerializedProcess, PlacesAllBalls) {
    serialized_process process(100, 3, 5, 7, identity_schedule());
    process.run_balls(99);
    EXPECT_EQ(process.balls_placed(), 99u);
    EXPECT_EQ(process.placements().size(), 99u);
    const auto& loads = process.loads();
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
              99u);
}

TEST(SerializedProcess, IdentityScheduleGivesNondecreasingHeightsPerRound) {
    serialized_process process(200, 4, 8, 1, identity_schedule());
    process.run_balls(200);
    const auto& log = process.placements();
    for (std::size_t r = 0; r < log.size(); r += 4) {
        for (std::size_t s = 1; s < 4; ++s) {
            EXPECT_LE(log[r + s - 1].height, log[r + s].height);
        }
    }
}

TEST(SerializedProcess, ReverseScheduleGivesNonincreasingHeightsPerRound) {
    serialized_process process(200, 4, 8, 1, reverse_schedule());
    process.run_balls(200);
    const auto& log = process.placements();
    for (std::size_t r = 0; r < log.size(); r += 4) {
        for (std::size_t s = 1; s < 4; ++s) {
            EXPECT_GE(log[r + s - 1].height, log[r + s].height);
        }
    }
}

TEST(SerializedProcess, PropertyI_FinalLoadsEqualKdChoiceUnderCoupledSamples) {
    // Property (i) of Section 3: A_sigma(k,d) == A(k,d). Coupling: identical
    // probe multisets. With the same underlying seed both processes draw the
    // same samples and tie keys, so final loads must be *identical*,
    // whatever sigma is.
    for (const auto& schedule :
         {identity_schedule(), reverse_schedule(), random_schedule(77)}) {
        kd_choice_process reference(128, 3, 6, 55);
        serialized_process serialized(128, 3, 6, 55, schedule);
        reference.run_balls(126);
        serialized.run_balls(126);
        EXPECT_EQ(reference.loads(), serialized.loads());
    }
}

TEST(SerializedProcess, PropertyI_DistributionalEquality) {
    // Independent seeds, sigma = reversal vs sigma = identity: the max-load
    // distributions must agree (KS test).
    std::vector<double> identity_max;
    std::vector<double> reverse_max;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        serialized_process a(256, 2, 4, 9000 + seed, identity_schedule());
        a.run_balls(256);
        identity_max.push_back(static_cast<double>(
            compute_load_metrics(a.loads()).max_load));
        serialized_process b(256, 2, 4, 5000 + seed, reverse_schedule());
        b.run_balls(256);
        reverse_max.push_back(static_cast<double>(
            compute_load_metrics(b.loads()).max_load));
    }
    const auto ks = kdc::stats::ks_two_sample(identity_max, reverse_max);
    EXPECT_GT(ks.p_value, 1e-3);
}

TEST(SerializedProcess, FixedScheduleApplies) {
    serialized_process process(64, 3, 6, 3,
                               fixed_schedule({2u, 0u, 1u}));
    process.run_balls(63);
    ASSERT_EQ(process.placements().size(), 63u);
    // With sigma = (2,0,1) the first ball of each round goes to the highest
    // of the three kept slots, the second to the lowest.
    const auto& log = process.placements();
    for (std::size_t r = 0; r < log.size(); r += 3) {
        EXPECT_GE(log[r].height, log[r + 1].height);
        EXPECT_LE(log[r + 1].height, log[r + 2].height);
    }
}

TEST(SerializedProcess, InvalidScheduleRejected) {
    serialized_process process(64, 3, 6, 3,
                               fixed_schedule({0u, 0u, 1u})); // not a perm
    EXPECT_THROW(process.run_round(), kdc::contract_violation);

    serialized_process wrong_size(64, 3, 6, 3, fixed_schedule({0u, 1u}));
    EXPECT_THROW(wrong_size.run_round(), kdc::contract_violation);
}

TEST(SerializedProcess, MessagesMatchNonSerialized) {
    serialized_process process(100, 2, 5, 1, identity_schedule());
    process.run_balls(100);
    EXPECT_EQ(process.messages(), (100 / 2) * 5);
}

TEST(SerializedProcess, HeightsConsistentWithFinalLoads) {
    serialized_process process(100, 4, 8, 21, random_schedule(5));
    process.run_balls(100);
    for (const auto& ball : process.placements()) {
        EXPECT_GE(ball.height, 1u);
        EXPECT_LE(ball.height, process.loads()[ball.bin]);
    }
}

} // namespace
