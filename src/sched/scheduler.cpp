#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "core/round_kernel.hpp"
#include "rng/sampling.hpp"
#include "rng/uniform.hpp"
#include "support/contracts.hpp"

namespace kdc::sched {

const char* to_string(probe_strategy strategy) noexcept {
    switch (strategy) {
    case probe_strategy::random_worker:
        return "random";
    case probe_strategy::per_task_d_choice:
        return "per-task-d-choice";
    case probe_strategy::batch_kd_choice:
        return "(k,d)-choice";
    case probe_strategy::batch_greedy:
        return "batch-greedy";
    }
    return "unknown";
}

double scheduler_config::utilization() const noexcept {
    return arrival_rate * static_cast<double>(tasks_per_job) * mean_service /
           static_cast<double>(workers);
}

void scheduler_config::validate() const {
    KD_EXPECTS(workers >= 1);
    KD_EXPECTS(tasks_per_job >= 1);
    KD_EXPECTS(probes >= 1);
    KD_EXPECTS(probes <= workers);
    KD_EXPECTS(arrival_rate > 0.0);
    KD_EXPECTS(mean_service > 0.0);
    if (service == service_model::pareto) {
        KD_EXPECTS_MSG(pareto_shape > 1.0,
                       "Pareto service needs shape > 1 for a finite mean");
    }
    if (strategy == probe_strategy::batch_kd_choice ||
        strategy == probe_strategy::batch_greedy) {
        KD_EXPECTS_MSG(probes > tasks_per_job,
                       "batch strategies need d > k probes per job");
    }
}

cluster_scheduler::cluster_scheduler(const scheduler_config& config)
    : config_(config), workers_(config.workers),
      queue_lengths_(config.workers, 0), gen_(config.seed) {
    config_.validate();
}

double cluster_scheduler::draw_service() {
    switch (config_.service) {
    case service_model::deterministic:
        return config_.mean_service;
    case service_model::exponential:
        return rng::exponential(gen_, config_.mean_service);
    case service_model::pareto: {
        // Scale x_min so the mean is mean_service: mean = x_min * s/(s-1).
        const double shape = config_.pareto_shape;
        const double x_min =
            config_.mean_service * (shape - 1.0) / shape;
        return x_min *
               std::pow(1.0 - rng::uniform_double(gen_), -1.0 / shape);
    }
    }
    KD_ASSERT_MSG(false, "unreachable service model");
    return config_.mean_service;
}

std::vector<std::uint32_t> cluster_scheduler::choose_workers(std::size_t k) {
    std::vector<std::uint32_t> chosen;
    chosen.reserve(k);
    const std::uint64_t w = config_.workers;

    switch (config_.strategy) {
    case probe_strategy::random_worker: {
        for (std::size_t i = 0; i < k; ++i) {
            chosen.push_back(
                static_cast<std::uint32_t>(rng::uniform_below(gen_, w)));
        }
        break;
    }
    case probe_strategy::per_task_d_choice: {
        // Each task independently: least loaded of `probes` samples.
        for (std::size_t i = 0; i < k; ++i) {
            std::uint32_t best = 0;
            core::bin_load best_load = 0;
            for (std::uint64_t probe = 0; probe < config_.probes; ++probe) {
                const auto candidate =
                    static_cast<std::uint32_t>(rng::uniform_below(gen_, w));
                ++probe_messages_;
                if (probe == 0 || queue_lengths_[candidate] < best_load) {
                    best = candidate;
                    best_load = queue_lengths_[candidate];
                }
            }
            chosen.push_back(best);
        }
        break;
    }
    case probe_strategy::batch_kd_choice: {
        // One shared probe pool; the k least-loaded slots under the
        // multiplicity rule, exactly the (k,d)-choice round kernel. The
        // kernel increments queue_lengths_, which is correct here: the k
        // tasks will occupy those queue slots.
        probe_buffer_.resize(config_.probes);
        rng::sample_with_replacement(
            gen_, w, std::span<std::uint32_t>(probe_buffer_));
        probe_messages_ += config_.probes;
        std::vector<core::placed_ball> placed;
        core::round_scratch scratch;
        core::place_round(queue_lengths_, probe_buffer_, k, gen_, scratch,
                          &placed);
        // Undo the kernel's increments: assign_task re-applies them so the
        // accounting below stays uniform across strategies.
        for (const auto& ball : placed) {
            queue_lengths_[ball.bin] -= 1;
            chosen.push_back(ball.bin);
        }
        break;
    }
    case probe_strategy::batch_greedy: {
        probe_buffer_.resize(config_.probes);
        rng::sample_with_replacement(
            gen_, w, std::span<std::uint32_t>(probe_buffer_));
        probe_messages_ += config_.probes;
        std::sort(probe_buffer_.begin(), probe_buffer_.end());
        probe_buffer_.erase(
            std::unique(probe_buffer_.begin(), probe_buffer_.end()),
            probe_buffer_.end());
        for (std::size_t task = 0; task < k; ++task) {
            std::uint32_t best = probe_buffer_.front();
            core::bin_load best_load =
                queue_lengths_[best] +
                static_cast<core::bin_load>(std::count(
                    chosen.begin(), chosen.end(), best));
            for (std::size_t i = 1; i < probe_buffer_.size(); ++i) {
                const auto candidate = probe_buffer_[i];
                const core::bin_load load =
                    queue_lengths_[candidate] +
                    static_cast<core::bin_load>(std::count(
                        chosen.begin(), chosen.end(), candidate));
                if (load < best_load) {
                    best = candidate;
                    best_load = load;
                }
            }
            chosen.push_back(best);
        }
        break;
    }
    }
    KD_ENSURES(chosen.size() == k);
    return chosen;
}

std::uint64_t
cluster_scheduler::submit_job(const std::vector<double>& service_times) {
    KD_EXPECTS(service_times.size() == config_.tasks_per_job);

    const std::uint64_t job_id = jobs_.size();
    jobs_.push_back(job_state{sim_.now(), config_.tasks_per_job});

    const auto chosen = choose_workers(config_.tasks_per_job);
    for (std::size_t i = 0; i < service_times.size(); ++i) {
        const std::uint64_t task_id = tasks_.size();
        tasks_.push_back(task_state{job_id, service_times[i], sim_.now()});
        assign_task(task_id, chosen[i]);
    }
    return job_id;
}

void cluster_scheduler::assign_task(std::uint64_t task, std::uint32_t worker) {
    queue_lengths_[worker] += 1;
    max_queue_seen_ =
        std::max<std::uint64_t>(max_queue_seen_, queue_lengths_[worker]);
    if (!workers_[worker].busy) {
        start_service(task, worker);
    } else {
        workers_[worker].pending.push_back(task);
    }
}

void cluster_scheduler::start_service(std::uint64_t task,
                                      std::uint32_t worker) {
    workers_[worker].busy = true;
    task_waits_.push_back(sim_.now() - tasks_[task].assigned_at);
    sim_.schedule_after(tasks_[task].service,
                        [this, task, worker] { complete_task(task, worker); });
}

void cluster_scheduler::complete_task(std::uint64_t task,
                                      std::uint32_t worker) {
    queue_lengths_[worker] -= 1;
    ++tasks_completed_;

    auto& job = jobs_[tasks_[task].job];
    KD_ASSERT(job.remaining > 0);
    if (--job.remaining == 0) {
        response_times_.push_back(sim_.now() - job.arrival);
    }

    auto& w = workers_[worker];
    if (!w.pending.empty()) {
        const std::uint64_t next = w.pending.front();
        w.pending.pop_front();
        start_service(next, worker);
    } else {
        w.busy = false;
    }
}

void cluster_scheduler::drain() { (void)sim_.run(); }

scheduler_result cluster_scheduler::run_to_completion() {
    // Pre-draw all Poisson arrivals, then let the event loop interleave
    // arrivals with completions.
    double at = 0.0;
    for (std::uint64_t j = 0; j < config_.jobs; ++j) {
        at += rng::exponential(gen_, 1.0 / config_.arrival_rate);
        sim_.schedule_at(at, [this] {
            std::vector<double> services(config_.tasks_per_job);
            for (auto& s : services) {
                s = draw_service();
            }
            (void)submit_job(services);
        });
    }
    drain();

    scheduler_result out;
    out.response_time = stats::summarize(response_times_);
    out.task_wait = stats::summarize(task_waits_);
    out.probe_messages = probe_messages_;
    out.tasks_completed = tasks_completed_;
    out.makespan = sim_.now();
    out.max_queue_seen = max_queue_seen_;
    return out;
}

scheduler_result simulate(const scheduler_config& config) {
    cluster_scheduler scheduler(config);
    return scheduler.run_to_completion();
}

} // namespace kdc::sched
