#include "support/contracts.hpp"

#include <sstream>

namespace kdc::detail {

[[noreturn]] void contract_fail(const char* kind, const char* condition,
                                const char* file, int line,
                                const char* message) {
    std::ostringstream out;
    out << kind << " violated: `" << condition << "` at " << file << ':'
        << line;
    if (message != nullptr) {
        out << " — " << message;
    }
    throw contract_violation(out.str());
}

} // namespace kdc::detail
