#include "serve/service.hpp"

#include <algorithm>
#include <functional>
#include <span>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sharded_kernel.hpp"
#include "core/thread_pool.hpp"
#include "rng/sampling.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/channel.hpp"
#include "serve/dispatcher.hpp"
#include "serve/session.hpp"
#include "stats/summary.hpp"
#include "support/contracts.hpp"

namespace kdc::serve {

namespace {

/// The merged, id-ordered request sequence plus each request's arrival
/// time. Built identically by run_service and run_serial_oracle: per-client
/// schedules (serve/session.hpp), merged by (time, client, seq), ids
/// assigned in merged order, release targets resolved from client-local
/// seqs to global ids.
struct request_sequence {
    std::vector<request> requests;      // index == id
    std::vector<sim::sim_time> at;      // arrival time per id
};

request_sequence build_sequence(const service_config& config) {
    KD_EXPECTS_MSG(config.clients >= 1 && config.requests >= 1,
                   "service needs clients >= 1 and requests >= 1");
    KD_EXPECTS(config.arrival_rate > 0.0);
    std::vector<client_arrival> merged;
    merged.reserve(config.requests);
    const std::uint64_t base = config.requests / config.clients;
    const std::uint64_t extra = config.requests % config.clients;
    for (std::uint64_t c = 0; c < config.clients; ++c) {
        session_config sc;
        sc.client = c;
        sc.seed = config.seed;
        sc.rate = config.arrival_rate / static_cast<double>(config.clients);
        sc.arrivals = base + (c < extra ? 1 : 0);
        sc.churn = config.churn;
        const auto schedule = draw_arrivals(sc);
        merged.insert(merged.end(), schedule.begin(), schedule.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const client_arrival& a, const client_arrival& b) {
                  return std::tuple{a.at, a.client, a.seq} <
                         std::tuple{b.at, b.client, b.seq};
              });

    request_sequence seq;
    seq.requests.reserve(merged.size());
    seq.at.reserve(merged.size());
    // (client, client seq) -> global id, filled as ids are assigned. A
    // release's target always precedes it in time within one client, so
    // the lookup below never misses.
    std::unordered_map<std::uint64_t, std::uint64_t> id_of;
    const auto key = [](std::uint64_t client, std::uint64_t s) {
        return (client << 32) | s;
    };
    for (std::size_t id = 0; id < merged.size(); ++id) {
        const client_arrival& arrival = merged[id];
        request req;
        req.client = arrival.client;
        req.id = id;
        if (arrival.kind == request_kind::release) {
            req.kind = request_kind::release;
            const auto it = id_of.find(key(arrival.client,
                                           arrival.target_seq));
            KD_ASSERT_MSG(it != id_of.end(),
                          "release target precedes its allocate");
            req.target = it->second;
        } else {
            id_of.emplace(key(arrival.client, arrival.seq), id);
        }
        seq.requests.push_back(req);
        seq.at.push_back(arrival.at);
    }
    return seq;
}

void append_log_line(std::string& log, const response& resp,
                     request_kind kind) {
    log += std::to_string(resp.id);
    log += kind == request_kind::release ? " r" : " a";
    for (const std::uint32_t bin : resp.bins) {
        log += ' ';
        log += std::to_string(bin);
    }
    log += '\n';
}

void fill_latency_summary(service_result& result,
                          std::vector<double> samples) {
    if (samples.empty()) {
        return;
    }
    std::sort(samples.begin(), samples.end());
    double sum = 0.0;
    for (const double s : samples) {
        sum += s;
    }
    result.latency_mean = sum / static_cast<double>(samples.size());
    result.latency_p50 = stats::sorted_quantile(samples, 0.5);
    result.latency_p99 = stats::sorted_quantile(samples, 0.99);
    result.latency_p999 = stats::sorted_quantile(samples, 0.999);
    result.latency_max = samples.back();
}

void fill_message_rates(service_result& result, std::uint64_t k) {
    if (result.allocations == 0) {
        return;
    }
    result.messages_per_request =
        static_cast<double>(result.probe_messages) /
        static_cast<double>(result.allocations);
    result.messages_per_ball =
        result.messages_per_request / static_cast<double>(k);
}

} // namespace

service_result run_service(const service_config& config) {
    const request_sequence seq = build_sequence(config);

    dispatcher_config dc;
    dc.bins = config.bins;
    dc.k = config.k;
    dc.d = config.d;
    dc.mode = config.mode;
    dc.seed = config.seed;
    dc.shards = core::resolve_shard_count(config.bins, config.shards);
    const unsigned threads = core::resolve_thread_count(config.threads);
    core::thread_pool* pool =
        threads > 1 ? &core::persistent_pool(threads) : nullptr;
    dispatcher dispatcher(dc, pool);

    sim::simulator sim;
    memory_channel<request> inbox;
    std::vector<session> sessions(config.clients);
    service_result result;
    std::vector<double> allocate_latencies;
    allocate_latencies.reserve(seq.requests.size());

    // Dispatcher-side scheduling state. One dispatch event is in flight at
    // a time; it fires batch_window after the first pending request, but
    // never while the dispatcher is still busy with the previous batch.
    bool dispatch_pending = false;
    sim::sim_time busy_until = 0.0;
    std::function<void()> maybe_dispatch; // forward-declared for recursion
    const auto do_dispatch = [&] {
        dispatch_pending = false;
        const std::vector<request> batch =
            dispatcher.accept(inbox, config.max_batch);
        if (batch.empty()) {
            return;
        }
        const std::vector<response> responses = dispatcher.process(batch);
        busy_until = sim.now() + config.service_time *
                                     static_cast<double>(batch.size());
        result.batches += 1;
        for (std::size_t i = 0; i < responses.size(); ++i) {
            const request& req = batch[i];
            append_log_line(result.allocation_log, responses[i], req.kind);
            if (req.kind == request_kind::allocate) {
                result.allocations += 1;
            } else {
                result.releases += 1;
            }
            const sim::sim_time delivered =
                busy_until + config.channel_delay;
            sim.schedule_at(
                delivered, [&, resp = responses[i], kind = req.kind,
                            arrived = seq.at[responses[i].id]] {
                    sessions[resp.client].on_response(resp, sim.now());
                    if (kind == request_kind::allocate) {
                        allocate_latencies.push_back(sim.now() - arrived);
                    }
                    result.completed_at =
                        std::max(result.completed_at, sim.now());
                });
        }
        maybe_dispatch();
    };
    maybe_dispatch = [&] {
        if (dispatch_pending || inbox.pending() == 0) {
            return;
        }
        dispatch_pending = true;
        const sim::sim_time when =
            std::max(sim.now() + config.batch_window, busy_until);
        sim.schedule_at(when, do_dispatch);
    };

    // One delivery event per request, scheduled upfront in id order: the
    // event queue's FIFO tie-breaking then guarantees the inbox receives
    // ids in increasing order even when arrival times collide.
    for (std::size_t id = 0; id < seq.requests.size(); ++id) {
        sessions[seq.requests[id].client].on_send(id, seq.at[id]);
        sim.schedule_at(seq.at[id] + config.channel_delay,
                        [&, id] {
                            inbox.send(seq.requests[id]);
                            maybe_dispatch();
                        });
    }
    sim.run();

    KD_ENSURES_MSG(inbox.pending() == 0, "service drained its inbox");
    result.probe_messages = dispatcher.probe_messages();
    result.balls_held = dispatcher.balls_held();
    result.final_loads = dispatcher.loads();
    for (const core::bin_load load : result.final_loads) {
        result.max_load = std::max<std::uint64_t>(result.max_load, load);
    }
    fill_message_rates(result, config.k);
    fill_latency_summary(result, std::move(allocate_latencies));
    return result;
}

service_result run_serial_oracle(const service_config& config) {
    const request_sequence seq = build_sequence(config);
    KD_EXPECTS_MSG(config.mode != probing::batch || config.k <= config.d,
                   "batch (k,d)-choice needs k <= d");

    // Independent straight-line server: plain per-bin loads, one request
    // at a time in id order, drawing each tape exactly per the contract
    // (derive_seed(seed, id); probes then keys per pool).
    std::vector<std::int64_t> loads(config.bins, 0);
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> live;
    service_result result;
    result.batches = seq.requests.size();
    std::vector<std::uint32_t> probes(config.d);
    std::vector<std::uint64_t> keys(config.d);
    for (const request& req : seq.requests) {
        response resp;
        resp.client = req.client;
        resp.id = req.id;
        if (req.kind == request_kind::release) {
            const auto it = live.find(req.target);
            KD_ASSERT_MSG(it != live.end(), "oracle: target not live");
            resp.bins = std::move(it->second);
            live.erase(it);
            for (const std::uint32_t bin : resp.bins) {
                KD_ASSERT_MSG(loads[bin] > 0, "oracle: empty-bin release");
                loads[bin] -= 1;
            }
            result.releases += 1;
        } else {
            rng::xoshiro256ss gen(rng::derive_seed(config.seed, req.id));
            if (config.mode == probing::batch) {
                rng::sample_with_replacement(
                    gen, config.bins, std::span<std::uint32_t>(probes));
                for (auto& tie_key : keys) {
                    tie_key = gen();
                }
                std::vector<std::tuple<std::int64_t, std::uint64_t,
                                       std::uint32_t>>
                    cands(config.d);
                for (std::uint64_t j = 0; j < config.d; ++j) {
                    std::int64_t occ = 0;
                    for (std::uint64_t e = 0; e < j; ++e) {
                        occ += probes[e] == probes[j] ? 1 : 0;
                    }
                    cands[j] = {loads[probes[j]] + occ, keys[j],
                                static_cast<std::uint32_t>(j)};
                }
                std::sort(cands.begin(), cands.end());
                for (std::uint64_t j = 0; j < config.k; ++j) {
                    const std::uint32_t bin = probes[std::get<2>(cands[j])];
                    resp.bins.push_back(bin);
                }
                for (const std::uint32_t bin : resp.bins) {
                    loads[bin] += 1;
                }
                resp.probe_messages = config.d;
            } else {
                for (std::uint64_t t = 0; t < config.k; ++t) {
                    rng::sample_with_replacement(
                        gen, config.bins,
                        std::span<std::uint32_t>(probes));
                    for (auto& tie_key : keys) {
                        tie_key = gen();
                    }
                    std::size_t best = 0;
                    for (std::uint64_t j = 1; j < config.d; ++j) {
                        const auto a = std::tuple{loads[probes[j]],
                                                  keys[j], j};
                        const auto b =
                            std::tuple{loads[probes[best]], keys[best],
                                       static_cast<std::uint64_t>(best)};
                        if (a < b) {
                            best = static_cast<std::size_t>(j);
                        }
                    }
                    resp.bins.push_back(probes[best]);
                    loads[probes[best]] += 1;
                }
                resp.probe_messages = config.k * config.d;
            }
            result.probe_messages += resp.probe_messages;
            live.emplace(req.id, resp.bins);
            result.allocations += 1;
        }
        append_log_line(result.allocation_log, resp, req.kind);
    }

    result.final_loads.reserve(config.bins);
    for (const std::int64_t load : loads) {
        result.balls_held += static_cast<std::uint64_t>(load);
        result.max_load =
            std::max(result.max_load, static_cast<std::uint64_t>(load));
        result.final_loads.push_back(static_cast<core::bin_load>(load));
    }
    fill_message_rates(result, config.k);
    return result;
}

} // namespace kdc::serve
