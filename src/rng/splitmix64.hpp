// SplitMix64 (Steele, Lea, Flood 2014; public-domain reference by Vigna).
//
// Used here for two jobs the xoshiro authors recommend it for:
//   1. expanding a single 64-bit seed into larger generator state, and
//   2. deriving independent per-repetition / per-stream seeds, so every
//      experiment in this repo is reproducible from one master seed.
#pragma once

#include <cstdint>
#include <limits>

namespace kdc::rng {

/// Advances a SplitMix64 state and returns the next output. Exposed as a free
/// function so seeding code can use it without constructing a generator.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// SplitMix64 as a UniformRandomBitGenerator.
class splitmix64 {
public:
    using result_type = std::uint64_t;

    constexpr explicit splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        return splitmix64_next(state_);
    }

    /// Current internal state (useful for checkpointing experiments).
    [[nodiscard]] constexpr std::uint64_t state() const noexcept {
        return state_;
    }

    friend constexpr bool operator==(const splitmix64&,
                                     const splitmix64&) noexcept = default;

private:
    std::uint64_t state_;
};

/// Derives the `stream`-th child seed from a master seed. Children are
/// decorrelated by running SplitMix64 from a state offset by the stream id
/// mixed with a large odd constant, so (master, 0), (master, 1), ... give
/// independent-looking sequences even for adjacent masters.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream) noexcept {
    std::uint64_t state = master;
    const std::uint64_t a = splitmix64_next(state);
    state ^= (stream + 1) * 0xda942042e4dd58b5ULL;
    const std::uint64_t b = splitmix64_next(state);
    return a ^ (b + 0x9e3779b97f4a7c15ULL);
}

} // namespace kdc::rng
