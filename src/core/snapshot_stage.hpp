// Snapshot staging for the heavy benches: run a level-kernel scenario as
// ONE stage of a longer campaign, resuming from and/or writing an
// O(max-load) level-profile snapshot (core/level_profile.hpp save/load).
//
// The heavily loaded regime the paper's open question lives in (m >> n,
// billion-bin runs measured in hours) is exactly where a bench invocation
// wants to be interruptible: `--snapshot-out=s1.profile` persists the final
// profile in a few kilobytes, and a later `--resume=s1.profile` continues
// piling balls onto that state instead of starting from empty bins. Each
// stage is a fresh process with its own seed, so a staged campaign is a
// sequence of independent-seeded segments over one evolving profile — the
// right semantics for "keep loading this system", not a bit-replay of one
// long run.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "core/scenario.hpp"

namespace kdc {
class arg_parser;
} // namespace kdc

namespace kdc::core {

/// Consumes the standard snapshot options (arg_parser::add_snapshot_options)
/// against an effective scenario. Returns false — without touching `out` —
/// when neither --snapshot-out nor --resume was supplied: the caller runs
/// its normal bench path. Otherwise runs ONE repetition of the scenario as
/// a staging run (seed derived as repetition 0 of `seed`, resolved_balls
/// balls), resuming from --resume's profile when given, writes the final
/// profile to --snapshot-out when given, prints a deterministic summary to
/// `out`, and returns true (the caller should exit successfully).
///
/// Staging requires the level kernel (profiles are level state) and the
/// "kd" family with d >= 2; sc.par = round runs the stage on the sharded
/// level kernel — identical output. Violations and unreadable or mismatched
/// snapshots (a profile whose n differs from the scenario's) throw
/// cli_error / std::runtime_error with a precise message.
bool run_snapshot_stage(const arg_parser& args, const scenario& sc,
                        std::uint64_t seed, std::ostream& out);

} // namespace kdc::core
