#include "core/threshold.hpp"

#include "rng/uniform.hpp"

namespace kdc::core {

sa_threshold_process::sa_threshold_process(std::uint64_t n, std::uint64_t x0,
                                           std::uint64_t seed)
    : loads_(n, 0), x0_(x0), bins_at_load_(8), gen_(seed) {
    KD_EXPECTS(n >= 1);
    KD_EXPECTS_MSG(x0 <= n, "rank threshold cannot exceed the bin count");
    bins_at_load_.add(0, static_cast<std::int64_t>(n));
}

void sa_threshold_process::run_balls(std::uint64_t balls) {
    const std::uint64_t n = loads_.size();
    for (std::uint64_t i = 0; i < balls; ++i) {
        ++balls_offered_;
        const auto bin =
            static_cast<std::uint32_t>(rng::uniform_below(gen_, n));
        const bin_load load = loads_[bin];
        if (load + 2 > bins_at_load_.size()) {
            bins_at_load_.grow_to(load + 2);
        }

        // Rank with random tie order among equally loaded bins.
        const std::uint64_t strictly_above = bins_at_load_.suffix_sum(load + 1);
        const std::uint64_t tied = bins_at_load_.value_at(load);
        KD_ASSERT(tied >= 1);
        const std::uint64_t rank =
            strictly_above + 1 + rng::uniform_below(gen_, tied);

        if (rank <= x0_) {
            continue; // discarded: the chosen bin is among the x0 most loaded
        }
        bins_at_load_.add(load, -1);
        bins_at_load_.add(load + 1, +1);
        loads_[bin] = load + 1;
        ++balls_placed_;
    }
}

} // namespace kdc::core
