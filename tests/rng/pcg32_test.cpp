#include "rng/pcg32.hpp"

#include <gtest/gtest.h>

#include <random>

namespace {

using kdc::rng::pcg32;

// Round 1 of the pcg32-demo program from the reference distribution,
// seeded with pcg32_srandom(42u, 54u).
TEST(Pcg32, MatchesReferenceVector) {
    pcg32 gen(42u, 54u);
    EXPECT_EQ(gen(), 0xa15c02b7u);
    EXPECT_EQ(gen(), 0x7b47f409u);
    EXPECT_EQ(gen(), 0xba1d3330u);
    EXPECT_EQ(gen(), 0x83d2f293u);
    EXPECT_EQ(gen(), 0xbfa4784bu);
    EXPECT_EQ(gen(), 0xcbed606eu);
}

TEST(Pcg32, DeterministicForEqualSeeds) {
    pcg32 a(3, 5);
    pcg32 b(3, 5);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a(), b());
    }
}

TEST(Pcg32, DifferentStreamsDiverge) {
    pcg32 a(3, 5);
    pcg32 b(3, 6);
    int equal = 0;
    for (int i = 0; i < 1000; ++i) {
        equal += (a() == b()) ? 1 : 0;
    }
    EXPECT_LT(equal, 2);
}

TEST(Pcg32, SingleArgumentConstructorIsDeterministic) {
    pcg32 a(11);
    pcg32 b(11);
    EXPECT_EQ(a(), b());
}

TEST(Pcg32, SatisfiesUniformRandomBitGenerator) {
    static_assert(std::uniform_random_bit_generator<pcg32>);
    EXPECT_EQ(pcg32::min(), 0u);
    EXPECT_EQ(pcg32::max(), ~std::uint32_t{0});
}

TEST(Pcg32, BitsAreBalanced) {
    pcg32 gen(2718);
    int ones = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        ones += __builtin_popcount(gen());
    }
    const double mean_bits = static_cast<double>(ones) / draws;
    EXPECT_NEAR(mean_bits, 16.0, 0.1);
}

} // namespace
