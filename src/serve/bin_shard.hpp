// One shard of the allocation service's bin state: the exclusive owner of
// a contiguous stripe of bins.
//
// The stripe boundaries come from core/sharded_kernel.hpp's shard_layout —
// the same dealing rule the round-parallel kernel uses — so the service's
// shards, the kernel's bin windows and thread_pool::phase_range all slice
// [0, n) identically. Exclusivity is the whole concurrency story: during a
// batch's parallel gather and commit phases each shard is touched only by
// the worker that owns it (thread_pool::run_phase hands out disjoint shard
// indices), so loads need no locks and no atomics — the dispatcher
// (serve/dispatcher.hpp) serializes phases with the pool's barrier instead.
//
// Next to the raw per-bin loads every shard keeps a level_profile mirror
// of its stripe (counts-per-load-level, core/level_profile.hpp). Allocate
// moves a bin up one level, release extracts it from its level and
// reinserts it one below — the profile's extract/insert pair — which gives
// the service O(max load) occupancy metrics per shard and keeps the merged
// profile (merge_profiles) equal to the profile of the concatenated
// stripes as an invariant the tests check.
#pragma once

#include <cstdint>
#include <vector>

#include "core/level_profile.hpp"
#include "core/sharded_kernel.hpp"
#include "core/types.hpp"
#include "support/contracts.hpp"

namespace kdc::serve {

class bin_shard {
public:
    /// The shard owning stripe `index` of `layout`, all bins empty.
    bin_shard(const core::shard_layout& layout, std::uint64_t index)
        : begin_(layout.begin(index)), loads_(layout.size(index), 0),
          profile_(layout.size(index)) {}

    /// First global bin of the stripe.
    [[nodiscard]] std::uint64_t begin() const noexcept { return begin_; }
    /// One past the last global bin of the stripe.
    [[nodiscard]] std::uint64_t end() const noexcept {
        return begin_ + loads_.size();
    }
    [[nodiscard]] std::uint64_t size() const noexcept {
        return loads_.size();
    }

    /// Load of a GLOBAL bin id owned by this shard.
    [[nodiscard]] core::bin_load load(std::uint64_t bin) const {
        KD_EXPECTS(bin >= begin_ && bin < end());
        return loads_[bin - begin_];
    }

    /// Adds one ball to `bin` (global id). Caller must be the shard's
    /// owning worker for the current phase — no synchronization inside.
    void commit_alloc(std::uint64_t bin) {
        KD_EXPECTS(bin >= begin_ && bin < end());
        core::bin_load& load = loads_[bin - begin_];
        profile_.ensure_levels(static_cast<std::uint64_t>(load) + 2);
        profile_.move_bin(load, load + 1);
        load += 1;
    }

    /// Removes one ball from `bin` (global id); the churn direction.
    /// Requires the bin to be non-empty.
    void commit_release(std::uint64_t bin) {
        KD_EXPECTS(bin >= begin_ && bin < end());
        core::bin_load& load = loads_[bin - begin_];
        KD_EXPECTS_MSG(load > 0, "release of an empty bin");
        profile_.move_bin(load, load - 1);
        load -= 1;
    }

    /// The stripe's per-bin loads (local index = global bin - begin()).
    [[nodiscard]] const core::load_vector& loads() const noexcept {
        return loads_;
    }

    /// Counts-per-level mirror of the stripe; merge_profiles over all
    /// shards equals the profile of the full service state.
    [[nodiscard]] const core::level_profile& occupancy() const noexcept {
        return profile_;
    }

    /// Balls currently held by the stripe.
    [[nodiscard]] std::uint64_t balls_held() const noexcept {
        return profile_.total_balls();
    }

private:
    std::uint64_t begin_;
    core::load_vector loads_;
    core::level_profile profile_;
};

} // namespace kdc::serve
