#include "rng/uniform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/pcg32.hpp"
#include "rng/xoshiro256ss.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::rng::pcg32;
using kdc::rng::uniform_below;
using kdc::rng::uniform_between;
using kdc::rng::uniform_double;
using kdc::rng::xoshiro256ss;

TEST(UniformBelow, AlwaysInRange) {
    xoshiro256ss gen(1);
    for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 193ULL,
                                      1ULL << 33, ~0ULL}) {
        for (int i = 0; i < 1000; ++i) {
            EXPECT_LT(uniform_below(gen, bound), bound);
        }
    }
}

TEST(UniformBelow, BoundOneAlwaysZero) {
    xoshiro256ss gen(2);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(uniform_below(gen, 1), 0u);
    }
}

TEST(UniformBelow, ZeroBoundViolatesContract) {
    xoshiro256ss gen(3);
    EXPECT_THROW((void)uniform_below(gen, 0), kdc::contract_violation);
}

TEST(UniformBelow, ChiSquareUniformOverSmallDomain) {
    xoshiro256ss gen(4);
    constexpr std::uint64_t bound = 17;
    std::vector<std::uint64_t> counts(bound, 0);
    for (int i = 0; i < 170000; ++i) {
        ++counts[uniform_below(gen, bound)];
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4) << "statistic=" << result.statistic;
}

TEST(UniformBelow, ChiSquareUniformOverNonPowerOfTwoDomain) {
    // 193 does not divide 2^64: this exercises the rejection path and the
    // absence of modulo bias.
    xoshiro256ss gen(5);
    constexpr std::uint64_t bound = 193;
    std::vector<std::uint64_t> counts(bound, 0);
    for (int i = 0; i < 193000; ++i) {
        ++counts[uniform_below(gen, bound)];
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(UniformBelow, WorksWith32BitGenerator) {
    pcg32 gen(42);
    constexpr std::uint64_t bound = 100;
    std::vector<std::uint64_t> counts(bound, 0);
    for (int i = 0; i < 100000; ++i) {
        const auto v = uniform_below(gen, bound);
        ASSERT_LT(v, bound);
        ++counts[v];
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(UniformBetween, CoversInclusiveRange) {
    xoshiro256ss gen(6);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = uniform_between(gen, -3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(UniformBetween, DegenerateRange) {
    xoshiro256ss gen(7);
    EXPECT_EQ(uniform_between(gen, 5, 5), 5);
}

TEST(UniformDouble, InHalfOpenUnitInterval) {
    xoshiro256ss gen(8);
    for (int i = 0; i < 100000; ++i) {
        const double u = uniform_double(gen);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(UniformDouble, MeanIsOneHalf) {
    xoshiro256ss gen(9);
    double sum = 0.0;
    constexpr int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        sum += uniform_double(gen);
    }
    EXPECT_NEAR(sum / draws, 0.5, 0.005);
}

TEST(Bernoulli, EdgeProbabilities) {
    xoshiro256ss gen(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(kdc::rng::bernoulli(gen, 0.0));
        EXPECT_TRUE(kdc::rng::bernoulli(gen, 1.0));
    }
}

TEST(Bernoulli, FrequencyMatchesP) {
    xoshiro256ss gen(11);
    int hits = 0;
    constexpr int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        hits += kdc::rng::bernoulli(gen, 0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / draws, 0.3, 0.01);
}

TEST(Exponential, MeanAndPositivity) {
    xoshiro256ss gen(12);
    double sum = 0.0;
    constexpr int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        const double x = kdc::rng::exponential(gen, 2.0);
        ASSERT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / draws, 2.0, 0.05);
}

TEST(Exponential, NonPositiveMeanViolatesContract) {
    xoshiro256ss gen(13);
    EXPECT_THROW((void)kdc::rng::exponential(gen, 0.0),
                 kdc::contract_violation);
}

} // namespace
