#include "core/snapshot_stage.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "core/fault_injection.hpp"
#include "core/level_process.hpp"
#include "core/sharded_kernel.hpp"
#include "core/steady_state.hpp"
#include "rng/splitmix64.hpp"
#include "support/cli.hpp"
#include "support/crc32.hpp"

namespace kdc::core {

namespace {

std::string hex32(std::uint32_t value) {
    std::ostringstream out;
    out << std::hex << std::setw(8) << std::setfill('0') << value;
    return std::move(out).str();
}

struct loaded_snapshot {
    level_profile profile;
    std::uint32_t crc = 0; ///< CRC-32 of the snapshot FILE bytes (body+trailer)
};

loaded_snapshot load_snapshot(const std::string& path, std::uint64_t n) {
    fault_point(fault_site::resume_load);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw cli_error("--resume: cannot open snapshot file '" + path + "'");
    }
    std::string bytes{std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>()};
    if (in.bad()) {
        throw cli_error("--resume: read error on snapshot file '" + path +
                        "'");
    }
    fault_point(fault_site::resume_validate);
    std::istringstream stream(bytes);
    level_profile profile = level_profile::load(stream);
    if (profile.n() != n) {
        throw cli_error("--resume: snapshot '" + path + "' holds " +
                        std::to_string(profile.n()) +
                        " bins but the scenario asks for n=" +
                        std::to_string(n));
    }
    return {std::move(profile), crc32(bytes)};
}

/// Retries `fn` on injected_io_error (the transient-failure class) with a
/// short linear backoff; persistent failure surfaces as cli_error.
template <typename Fn>
void with_io_retry(const char* what, Fn&& fn) {
    constexpr int max_attempts = 3;
    for (int attempt = 1;; ++attempt) {
        try {
            fn();
            return;
        } catch (const injected_io_error& err) {
            if (attempt == max_attempts) {
                throw cli_error(
                    std::string(what) + ": transient I/O failure at " +
                    fault_site_name(err.site()) + " persisted after " +
                    std::to_string(max_attempts) + " attempts");
            }
            std::cerr << "snapshot-stage: transient I/O failure at "
                      << fault_site_name(err.site()) << " (attempt "
                      << attempt << "/" << max_attempts << "); retrying\n";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10 * attempt));
        }
    }
}

/// Crash-safe file write: the bytes land in `path + ".tmp"`, are flushed,
/// and only then atomically renamed over `path` — a crash at any point
/// leaves either the old file or the new one, never a torn mix. The two
/// fault sites bracket the write and the rename.
void write_file_atomic(const std::string& path, const std::string& bytes,
                       fault_site write_site, fault_site rename_site) {
    const std::string tmp = path + ".tmp";
    {
        fault_point(write_site);
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            throw cli_error("cannot open '" + tmp + "' for writing");
        }
        out << bytes;
        out.flush();
        if (!out) {
            throw cli_error("write to '" + tmp + "' failed");
        }
    }
    fault_point(rename_site);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        throw cli_error("cannot rename '" + tmp + "' over '" + path + "'");
    }
}

// ---------------------------------------------------------------------------
// Stage journal: `<snapshot-out>.journal` records that one exact stage ran
// to completion — its identifying key, the CRC of the snapshot it wrote and
// the stage's full stdout — inside the shared CRC-trailed envelope. The
// commit order is snapshot rename FIRST, journal rename second, so every
// crash point is recoverable: no journal (or a stale one) just means the
// deterministic stage is redone from its inputs, while a committed journal
// replays the recorded stdout byte-for-byte and skips the simulation.
// ---------------------------------------------------------------------------

constexpr const char* journal_magic = "kdc-stage-journal 1";

std::string journal_path(const std::string& snapshot_out) {
    return snapshot_out + ".journal";
}

std::string make_journal(const std::string& key, std::uint32_t snapshot_crc,
                         const std::string& output) {
    std::ostringstream body;
    body << journal_magic << '\n'
         << "key " << key << '\n'
         << "snapshot-crc " << hex32(snapshot_crc) << '\n'
         << "output-bytes " << output.size() << '\n'
         << output;
    const std::string text = std::move(body).str();
    std::ostringstream full;
    full << text << "crc32 " << hex32(crc32(text)) << '\n';
    return std::move(full).str();
}

struct journal_record {
    std::string key;
    std::string snapshot_crc;
    std::string output;
};

std::optional<journal_record> parse_journal(const std::string& body) {
    journal_record record;
    std::size_t pos = 0;
    const auto next_line = [&](std::string& line) {
        const std::size_t nl = body.find('\n', pos);
        if (nl == std::string::npos) {
            return false;
        }
        line.assign(body, pos, nl - pos);
        pos = nl + 1;
        return true;
    };
    std::string line;
    if (!next_line(line) || line != journal_magic) {
        return std::nullopt;
    }
    if (!next_line(line) || line.rfind("key ", 0) != 0) {
        return std::nullopt;
    }
    record.key = line.substr(4);
    if (!next_line(line) || line.rfind("snapshot-crc ", 0) != 0) {
        return std::nullopt;
    }
    record.snapshot_crc = line.substr(13);
    if (!next_line(line) || line.rfind("output-bytes ", 0) != 0) {
        return std::nullopt;
    }
    std::uint64_t output_bytes = 0;
    try {
        std::size_t parsed = 0;
        output_bytes = std::stoull(line.substr(13), &parsed);
        if (parsed != line.size() - 13) {
            return std::nullopt;
        }
    } catch (const std::exception&) {
        return std::nullopt;
    }
    if (body.size() - pos != output_bytes) {
        return std::nullopt;
    }
    record.output = body.substr(pos);
    return record;
}

/// The committed stdout when the journal proves THIS stage (same key)
/// already completed and the snapshot on disk matches the recorded CRC;
/// nullopt (after a stderr notice when a journal exists but is unusable or
/// belongs to a different stage) otherwise.
std::optional<std::string> committed_output(const std::string& snapshot_out,
                                            const std::string& key) {
    const std::string path = journal_path(snapshot_out);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt; // no journal: a fresh stage
    }
    const auto redo = [&](const std::string& why) {
        std::cerr << "snapshot-stage: ignoring journal '" << path << "' ("
                  << why << "); redoing the stage\n";
        return std::nullopt;
    };
    std::string body;
    try {
        body = checked_snapshot_body(in, "stage-journal");
    } catch (const cli_error& err) {
        return redo(err.what());
    }
    const auto record = parse_journal(body);
    if (!record) {
        return redo("malformed journal body");
    }
    if (record->key != key) {
        return redo("journal is for a different stage");
    }
    std::ifstream snap(snapshot_out, std::ios::binary);
    if (!snap) {
        return redo("committed snapshot '" + snapshot_out + "' is missing");
    }
    const std::string snap_bytes{std::istreambuf_iterator<char>(snap),
                                 std::istreambuf_iterator<char>()};
    if (hex32(crc32(snap_bytes)) != record->snapshot_crc) {
        return redo("snapshot '" + snapshot_out +
                    "' does not match the journal's CRC");
    }
    return record->output;
}

void print_profile_line(std::ostream& out, const char* label,
                        const level_profile& profile) {
    const auto metrics = profile.metrics();
    out << label << " n=" << profile.n()
        << " total_balls=" << profile.total_balls()
        << " max_load=" << metrics.max_load << " gap=" << metrics.gap
        << '\n';
}

} // namespace

bool run_snapshot_stage(const arg_parser& args, const scenario& sc,
                        std::uint64_t seed, std::ostream& out) {
    const std::string snapshot_out = args.get_string("snapshot-out");
    const std::string resume = args.get_string("resume");
    if (snapshot_out.empty() && resume.empty()) {
        return false;
    }

    validate_scenario(sc);
    if (resolve_kernel(sc) != kernel_kind::level) {
        throw cli_error("snapshot staging persists level profiles; the "
                        "scenario must resolve to kernel=level (use "
                        "kernel=level or kernel=auto with a level-capable "
                        "policy)");
    }
    if (resolved_policy(sc) != "kd" || sc.d < 2) {
        throw cli_error("snapshot staging supports the 'kd' family with "
                        "d >= 2, got policy '" + resolved_policy(sc) + "'");
    }

    std::optional<loaded_snapshot> resumed;
    if (!resume.empty()) {
        resumed = load_snapshot(resume, sc.n);
    }
    level_profile initial =
        resumed ? std::move(resumed->profile) : level_profile(sc.n);
    std::uint64_t balls = resolved_balls(sc);
    const std::uint64_t derived = rng::derive_seed(seed, 0);

    // The stage key pins everything the stage's output is a function of:
    // the scenario (which embeds n/k/d/balls/par/shards/warmup), the seed
    // and the exact bytes resumed from. A journal whose key differs belongs
    // to a different stage and is ignored.
    const std::string stage_key =
        to_string(sc) + " seed=" + std::to_string(seed) + " resume=" +
        (resumed ? hex32(resumed->crc) : std::string("none"));
    if (!snapshot_out.empty()) {
        if (const auto replay = committed_output(snapshot_out, stage_key)) {
            std::cerr << "snapshot-stage: stage already committed (journal '"
                      << journal_path(snapshot_out)
                      << "'); replaying its recorded output\n";
            out << *replay;
            return true;
        }
    }

    // Stage stdout is accumulated here so a committed stage can journal it
    // and a later rerun can replay it byte-for-byte.
    std::ostringstream stage_out;
    stage_out << "snapshot-stage scenario=" << to_string(sc)
              << " seed=" << seed << " balls=" << balls << '\n';
    if (resumed) {
        print_profile_line(stage_out, "resumed", initial);
    } else if (sc.warmup == warmup_mode::fast_forward) {
        // A fresh warmup=ff stage starts from the synthesized steady-state
        // profile and simulates only the settle suffix; a --resume snapshot
        // always wins over the synthesis (its profile is the real thing).
        const ff_plan plan = plan_fast_forward(sc);
        const ff_split split = fast_forward_split(sc, balls);
        if (split.ff_balls > 0) {
            initial = steady_state_profile(sc, plan, split.ff_balls,
                                           rng::derive_seed(seed, 1));
            balls = split.settle_balls;
            print_profile_line(stage_out, "fast-forwarded", initial);
        }
    }

    // Each stage is its own independently seeded process over the evolving
    // profile; par=round swaps in the sharded level kernel (identical
    // profile output — its contract).
    level_profile final_profile = [&] {
        if (sc.par == par_mode::round) {
            sharded_kd_level_process process(std::move(initial), sc.k, sc.d,
                                             derived, sc.shards);
            process.run_balls(balls);
            return process.profile();
        }
        kd_choice_level_process process(std::move(initial), sc.k, sc.d,
                                        derived);
        process.run_balls(balls);
        return process.profile();
    }();

    print_profile_line(stage_out, "final", final_profile);
    if (!snapshot_out.empty()) {
        std::string snapshot_bytes;
        with_io_retry("--snapshot-out", [&] {
            fault_point(fault_site::snapshot_serialize);
            std::ostringstream serialized;
            final_profile.save(serialized);
            snapshot_bytes = std::move(serialized).str();
            write_file_atomic(snapshot_out, snapshot_bytes,
                              fault_site::snapshot_write,
                              fault_site::snapshot_rename);
        });
        stage_out << "snapshot written to " << snapshot_out << '\n';
        // Snapshot is committed; now journal the stage so a rerun replays
        // instead of recomputing. journal.commit sits before the rename —
        // the last crash window — and a crash there still recovers (the
        // rerun just redoes the deterministic stage).
        const std::string journal = make_journal(
            stage_key, crc32(snapshot_bytes), stage_out.str());
        with_io_retry("stage journal", [&] {
            write_file_atomic(journal_path(snapshot_out), journal,
                              fault_site::snapshot_write,
                              fault_site::journal_commit);
        });
    }
    out << stage_out.str();
    return true;
}

} // namespace kdc::core
