// Adaptive-precision execution engine: the one scheduling core behind
// run_grid, run_parallel_experiment and run_sweep.
//
// Every experiment in this repo is a grid of cells, each cell a sequence of
// independent repetitions (rep r of a cell depends only on its derived
// seed). The engine schedules a cell's repetitions in deterministic CHUNKS
// on the shared work-stealing pool and, between chunks, consults a pluggable
// STOPPING RULE:
//
//   * fixed_reps — run exactly the configured repetition count. One chunk,
//     byte-identical to the pre-engine runners.
//   * confidence_width — keep adding chunks until the Student-t confidence
//     interval for the mean of a monitored per-rep statistic (the max load,
//     for the standard runners) is narrower than a target half-width, or a
//     repetition cap is hit. Cells whose variance is low stop at the floor;
//     high-variance cells buy precision with more repetitions instead of
//     every cell paying a blindly chosen worst-case count.
//
// Determinism contract: repetitions are folded — and stopping decisions are
// taken — in repetition order at chunk boundaries only. Chunk boundaries
// depend on the rule and the folded values, never on the thread count or
// steal schedule, so the executed repetition counts AND every reported
// number are bit-identical at --threads=1 and --threads=64.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/thread_pool.hpp"
#include "stats/running_stats.hpp"
#include "support/contracts.hpp"

namespace kdc {
class arg_parser;
} // namespace kdc

namespace kdc::core {

/// Optional progress hook for grid runs: called after every finished
/// (cell, rep) job with the number of completed jobs and the grid's maximum
/// possible job count. Calls are serialized by an internal mutex and
/// `completed` is strictly increasing, but they come from worker threads —
/// write to stderr, never to the stream carrying the run's deterministic
/// output. Under an adaptive rule cells may stop early, so the final
/// `completed` can be below `total`.
using sweep_progress =
    std::function<void(std::size_t completed, std::size_t total)>;

/// Which stopping rule governs a run's repetition counts.
enum class stopping_mode {
    fixed_reps,       ///< exactly the configured reps (legacy behavior)
    confidence_width, ///< reps until the CI half-width target is met
};

/// The pluggable stopping rule. Zero-valued fields mean "use the default":
/// min_reps 0 -> 3, max_reps 0 -> the cell's configured repetition count,
/// chunk_reps 0 -> max(1, min_reps / 2). All fields are ignored under
/// fixed_reps except mode itself.
struct stopping_rule {
    stopping_mode mode = stopping_mode::fixed_reps;
    /// confidence_width: stop once the Student-t CI half-width of the
    /// monitored statistic's mean is <= this. Must be positive and finite
    /// (unless ci_rel carries the target instead).
    double ci_half_width = 0.0;
    /// Relative (mean-scaled) alternative to ci_half_width: when > 0 the
    /// target half-width is ci_rel * |mean of the monitored statistic|,
    /// re-evaluated at every chunk boundary. Exactly one of ci_half_width
    /// and ci_rel must be set under confidence_width.
    double ci_rel = 0.0;
    /// Confidence level of that interval (two-sided), in (0, 1).
    double confidence = 0.95;
    std::uint32_t min_reps = 0;   ///< floor before any stop decision (>= 2)
    std::uint32_t max_reps = 0;   ///< hard cap; 0 = the cell's configured reps
    std::uint32_t chunk_reps = 0; ///< reps scheduled per adaptive chunk
};

/// Convenience factories for the two modes.
[[nodiscard]] stopping_rule fixed_reps_rule() noexcept;
[[nodiscard]] stopping_rule
confidence_width_rule(double ci_half_width, std::uint32_t min_reps = 0,
                      std::uint32_t max_reps = 0, double confidence = 0.95);
/// The mean-scaled variant: stop once the CI half-width is <= ci_rel times
/// the monitored mean's magnitude.
[[nodiscard]] stopping_rule
relative_width_rule(double ci_rel, std::uint32_t min_reps = 0,
                    std::uint32_t max_reps = 0, double confidence = 0.95);

/// Validates rule invariants (positive finite width, confidence in (0,1),
/// min <= max where both are given); throws contract_violation otherwise.
void validate_stopping_rule(const stopping_rule& rule);

/// Builds a stopping_rule from the standard CLI options declared by
/// arg_parser::add_adaptive_options() (--adaptive, --ci-width, --min-reps,
/// --max-reps). Throws cli_error with a precise message on out-of-range
/// values; returns the fixed_reps rule when --adaptive is absent.
[[nodiscard]] stopping_rule stopping_rule_from_cli(const arg_parser& args);

/// A cell's resolved repetition schedule under a rule: run `first_chunk`
/// reps, then decide/extend by `chunk` reps at a time up to `max_reps`.
struct cell_plan {
    std::uint32_t first_chunk = 0;
    std::uint32_t chunk = 0;
    std::uint32_t max_reps = 0;
    bool adaptive = false;
};

/// Resolves a rule against one cell's configured repetition count.
[[nodiscard]] cell_plan resolve_cell_plan(const stopping_rule& rule,
                                          std::uint32_t configured_reps);

/// True once the monitored fold satisfies the confidence_width target
/// (Student-t half-width of the mean <= rule.ci_half_width). Requires at
/// least two folded samples.
[[nodiscard]] bool confidence_reached(const stats::running_stats& monitor,
                                      const stopping_rule& rule);

namespace detail {

/// Shared bookkeeping of one engine run. Pool jobs must not throw, so the
/// engine captures the first exception and rethrows after the grid drains.
struct engine_control {
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::size_t completed_jobs = 0; // guarded by progress_mutex
    std::mutex progress_mutex;

    void capture_error() {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
            first_error = std::current_exception();
        }
    }

    [[nodiscard]] bool failed() {
        const std::lock_guard<std::mutex> lock(error_mutex);
        return first_error != nullptr;
    }
};

/// One cell's adaptive state. The mutex serializes chunk-boundary folds and
/// the scheduling of follow-up chunks; repetition slots themselves are
/// written lock-free (each slot by exactly one job).
struct cell_control {
    std::mutex mutex;
    std::uint32_t scheduled = 0; ///< reps submitted so far
    std::uint32_t done = 0;      ///< reps finished among scheduled
    std::uint32_t folded = 0;    ///< reps folded into the monitor
    stats::running_stats monitor;
    bool stopped = false;
    std::uint32_t final_reps = 0;
};

} // namespace detail

/// The engine core: runs every cell of the grid under `rule` on the
/// caller's pool and returns the per-cell, per-rep results in a
/// grid[cell][rep] layout, grid[c] truncated to the repetitions the rule
/// actually executed (always reps_per_cell[c] under fixed_reps).
///
/// `run(cell, rep)` must be callable concurrently from many threads and is
/// invoked at most once per pair; the placement of results is by index, so
/// folding grid[c] in rep order afterwards is deterministic.
/// `metric(cell, T)` maps one repetition's payload to the double the
/// confidence_width rule monitors — the cell index lets callers monitor a
/// different statistic per cell (core/sweep.hpp dispatches on each cell's
/// metric_kind); it is only invoked (in repetition order, at chunk
/// boundaries) under that rule, and must be const-callable concurrently —
/// distinct cells fold their chunks independently. Rethrows the first
/// exception any
/// job, metric or
/// progress hook threw — scheduled jobs still run to completion (no new
/// chunks start) so the pool is quiescent on return.
///
/// Must be called from outside the pool's own workers.
template <typename T, typename RunFn, typename MetricFn>
[[nodiscard]] std::vector<std::vector<T>>
run_engine_grid(thread_pool& pool,
                std::span<const std::uint32_t> reps_per_cell, RunFn&& run,
                MetricFn&& metric, const stopping_rule& rule = {},
                const sweep_progress& progress = {}) {
    // std::vector<bool> packs bits: adjacent rep slots would share a byte
    // and concurrent writes from workers would race. Wrap bools in a struct.
    static_assert(!std::is_same_v<T, bool>,
                  "run_engine_grid<bool> is unsafe: vector<bool> slots are "
                  "not independent objects");
    validate_stopping_rule(rule);

    const std::size_t cell_count = reps_per_cell.size();
    std::vector<cell_plan> plans;
    plans.reserve(cell_count);
    std::vector<std::vector<T>> grid(cell_count);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cell_count; ++c) {
        KD_EXPECTS_MSG(reps_per_cell[c] >= 1,
                       "every grid cell needs at least one repetition");
        plans.push_back(resolve_cell_plan(rule, reps_per_cell[c]));
        // Slots exist only for scheduled chunks (the cap may be huge, e.g.
        // --max-reps=1e9 with an easily met width target); the vector grows
        // at chunk boundaries, where no worker holds a pointer into it.
        grid[c].resize(plans[c].first_chunk);
        total += plans[c].max_reps;
    }

    detail::engine_control control;
    std::vector<std::unique_ptr<detail::cell_control>> cells(cell_count);
    for (auto& cell : cells) {
        cell = std::make_unique<detail::cell_control>();
    }

    // submit_chunk / on_rep_done recurse through the pool: the last rep of a
    // chunk folds the chunk and may submit the next one from inside its own
    // pool job, which thread_pool::submit supports.
    std::function<void(std::size_t, std::uint32_t, std::uint32_t)>
        submit_chunk;
    auto on_rep_done = [&](std::size_t c) {
        auto& cell = *cells[c];
        const std::lock_guard<std::mutex> lock(cell.mutex);
        ++cell.done;
        if (cell.done != cell.scheduled || cell.stopped) {
            return; // mid-chunk, or a straggler after an error stop
        }
        // Chunk boundary: every scheduled rep of this cell has finished.
        const auto& plan = plans[c];
        if (control.failed()) {
            cell.stopped = true;
            cell.final_reps = cell.done;
            return;
        }
        if (plan.adaptive) {
            // Pool jobs must not throw: a failing metric, stop decision or
            // chunk allocation is captured like a failing repetition.
            try {
                for (std::uint32_t r = cell.folded; r < cell.scheduled; ++r) {
                    cell.monitor.push(metric(c, std::as_const(grid[c][r])));
                }
                cell.folded = cell.scheduled;
                if (cell.scheduled >= plan.max_reps ||
                    confidence_reached(cell.monitor, rule)) {
                    cell.stopped = true;
                    cell.final_reps = cell.scheduled;
                    return;
                }
                const std::uint32_t next = std::min<std::uint32_t>(
                    plan.max_reps, cell.scheduled + plan.chunk);
                // Safe to grow here: every scheduled rep of this cell is
                // done, so no worker writes (or reads) this cell's slots
                // concurrently, and pool submission orders the resize
                // before the new jobs.
                grid[c].resize(next);
                submit_chunk(c, cell.scheduled, next);
                cell.scheduled = next;
            } catch (...) {
                control.capture_error();
                cell.stopped = true;
                cell.final_reps = cell.done;
                return;
            }
        } else {
            cell.stopped = true;
            cell.final_reps = cell.scheduled;
        }
    };
    submit_chunk = [&](std::size_t c, std::uint32_t from, std::uint32_t to) {
        for (std::uint32_t rep = from; rep < to; ++rep) {
            pool.submit([&, c, rep] {
                try {
                    grid[c][rep] = run(c, rep);
                } catch (...) {
                    control.capture_error();
                }
                if (progress) {
                    // Pool jobs must not throw; a throwing hook is captured
                    // like a failing repetition.
                    try {
                        const std::lock_guard<std::mutex> lock(
                            control.progress_mutex);
                        progress(++control.completed_jobs, total);
                    } catch (...) {
                        control.capture_error();
                    }
                }
                on_rep_done(c);
            });
        }
    };

    // First chunks go out in cell order — under fixed_reps this is exactly
    // the legacy cell-major submission of every (cell, rep) pair.
    for (std::size_t c = 0; c < cell_count; ++c) {
        cells[c]->scheduled = plans[c].first_chunk;
    }
    for (std::size_t c = 0; c < cell_count; ++c) {
        submit_chunk(c, 0, cells[c]->scheduled);
    }
    pool.wait_idle();

    if (control.first_error) {
        std::rethrow_exception(control.first_error);
    }
    for (std::size_t c = 0; c < cell_count; ++c) {
        grid[c].resize(cells[c]->final_reps);
    }
    return grid;
}

} // namespace kdc::core
