#include "core/runner.hpp"

namespace kdc::core {

std::uint64_t whole_rounds_balls(std::uint64_t n, std::uint64_t k) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(n >= k,
                   "need n >= k bins: not even one round of k balls fits");
    return n - (n % k);
}

experiment_result run_kd_experiment(std::uint64_t n, std::uint64_t k,
                                    std::uint64_t d,
                                    const experiment_config& config) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = whole_rounds_balls(n, k);
    }
    return run_experiment(actual, [n, k, d](std::uint64_t seed) {
        return kd_choice_process(n, k, d, seed);
    });
}

experiment_result
run_single_choice_experiment(std::uint64_t n, const experiment_config& config) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_experiment(actual, [n](std::uint64_t seed) {
        return single_choice_process(n, seed);
    });
}

experiment_result run_d_choice_experiment(std::uint64_t n, std::uint64_t d,
                                          const experiment_config& config) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_experiment(actual, [n, d](std::uint64_t seed) {
        return d_choice_process(n, d, seed);
    });
}

} // namespace kdc::core
