#include "core/serialized.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

namespace kdc::core {

namespace {

void check_permutation(const std::vector<std::uint32_t>& sigma,
                       std::size_t k) {
    KD_ENSURES_MSG(sigma.size() == k, "sigma_r must have size k");
    std::vector<bool> seen(k, false);
    for (const auto v : sigma) {
        KD_ENSURES_MSG(v < k && !seen[v], "sigma_r must be a permutation");
        seen[v] = true;
    }
}

} // namespace

sigma_schedule identity_schedule() {
    return [](std::uint64_t, std::size_t k) {
        std::vector<std::uint32_t> sigma(k);
        std::iota(sigma.begin(), sigma.end(), 0u);
        return sigma;
    };
}

sigma_schedule reverse_schedule() {
    return [](std::uint64_t, std::size_t k) {
        std::vector<std::uint32_t> sigma(k);
        std::iota(sigma.rbegin(), sigma.rend(), 0u);
        return sigma;
    };
}

sigma_schedule random_schedule(std::uint64_t seed) {
    // Owns its own generator; shared_ptr keeps the schedule copyable.
    auto gen = std::make_shared<rng::xoshiro256ss>(seed);
    return [gen](std::uint64_t, std::size_t k) {
        return rng::random_permutation(*gen, static_cast<std::uint32_t>(k));
    };
}

sigma_schedule fixed_schedule(std::vector<std::uint32_t> sigma) {
    return [sigma = std::move(sigma)](std::uint64_t, std::size_t) {
        return sigma;
    };
}

serialized_process::serialized_process(std::uint64_t n, std::uint64_t k,
                                       std::uint64_t d, std::uint64_t seed,
                                       sigma_schedule schedule)
    : loads_(n, 0), k_(k), d_(d), schedule_(std::move(schedule)), gen_(seed),
      probe_draws_(n) {
    KD_EXPECTS_MSG(k >= 1 && k < d && d <= n, "requires 1 <= k < d <= n");
    KD_EXPECTS_MSG(static_cast<bool>(schedule_), "schedule must be callable");
    sample_buffer_.resize(d);
}

void serialized_process::run_round() {
    for (auto& slot : sample_buffer_) {
        slot = static_cast<std::uint32_t>(probe_draws_.next(gen_));
    }
    run_round_with_samples(sample_buffer_);
}

void serialized_process::run_round_with_samples(
    std::span<const std::uint32_t> samples) {
    KD_EXPECTS_MSG(samples.size() == d_, "a round probes exactly d bins");

    // The kernel appends the k kept slots in increasing height order; those
    // are the round's destinations regardless of sigma (Property (i)).
    round_slots_.clear();
    place_round(loads_, samples, k_, gen_, scratch_, &round_slots_);

    const auto sigma = schedule_(rounds_run_, k_);
    check_permutation(sigma, k_);
    for (std::size_t s = 0; s < k_; ++s) {
        placements_.push_back(round_slots_[sigma[s]]);
    }

    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void serialized_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    for (std::uint64_t placed = 0; placed < balls; placed += k_) {
        run_round();
    }
}

} // namespace kdc::core
