// Reproduces Table 1 of the paper: the maximum bin load of (k,d)-choice
// after n = 3 * 2^16 balls are placed into n bins, over the exact k x d grid
// the paper uses, with ten runs per cell. Each cell lists the distinct
// maximum loads observed across the runs (the paper's "7, 8, 9" format).
//
// The d = 1 column is the classical single-choice process; the k = 1 row is
// the classical d-choice of Azar et al.
//
// The whole grid runs as ONE sweep on a shared work-stealing pool
// (core/sweep.hpp): every (cell, rep) pair is a pool job, so --threads=16
// stays busy even at --reps=3. Results are bit-identical to a serial run at
// any thread count because per-rep seeds and the per-cell fold order are
// fixed.
//
//   ./table1_maxload [--n=196608] [--reps=10] [--seed=1] [--threads=0]
//                    [--csv] [--progress] [--kernel=perbin|level]
//                    [--scenario "kd:n=...,kernel=auto,metric=gap"]
//                    [--adaptive --ci-width=0.4 --min-reps=3 --max-reps=40]
//
// Every cell is a declarative scenario (core/scenario.hpp): the grid
// stamps k and d onto one merged base scenario, and `--scenario` overrides
// the legacy flags key by key (--n, --kernel are thin aliases for its n
// and kernel keys — equivalent settings produce byte-identical output).
//
// kernel=level runs every cell on the level-compressed kernel
// (O(max-load) state, core/level_process.hpp): distributionally identical
// numbers from a different RNG stream — the switch for n far beyond the
// per-bin kernel's memory reach. kernel=auto picks it whenever the policy
// supports it.
//
// --adaptive switches the engine's stopping rule to confidence_width: each
// cell runs repetitions until the 95% Student-t CI half-width of its mean
// max load drops below --ci-width (or --max-reps is hit). Low-variance
// cells stop at --min-reps; the executed counts are part of the
// deterministic output (same at any --threads value).
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

namespace {

const std::vector<std::uint64_t> k_values{1, 2,  3,  4,  6,  8,  12, 16,
                                          24, 32, 48, 64, 96, 128, 192};
const std::vector<std::uint64_t> d_values{1, 2, 3, 5, 9, 17, 25, 49, 65, 193};

struct cell_meta {
    std::uint64_t k = 0;
    std::uint64_t d = 0;
};

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls (3 * 2^16)");
    args.add_option("reps", "10", "simulation runs per cell (paper: 10)");
    args.add_option("seed", "1", "master seed");
    args.add_threads_option();
    args.add_kernel_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (k, d, max-load set, mean)");
    args.add_flag("progress", "report sweep progress on stderr");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    // Legacy flags become the base scenario; --scenario overrides it key by
    // key. All knobs below come from the merged value.
    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel =
        kdc::core::to_kernel_choice(kdc::core::kernel_from_cli(args));
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto kernel = kdc::core::resolve_kernel(merged);

    // One cell per valid grid entry, seeded exactly as the original nested
    // loop did (the counter also advances over invalid '-' cells).
    std::vector<kdc::core::sweep_cell> cells;
    std::vector<cell_meta> meta;
    std::uint64_t cell_seed = seed;
    for (const auto k : k_values) {
        for (const auto d : d_values) {
            ++cell_seed;
            const std::string name =
                "k=" + std::to_string(k) + ",d=" + std::to_string(d);
            if (k >= d && !(d == 1 && k == 1)) {
                // d = 1, k = 1 is the single-choice column; everything else
                // with k >= d is undefined for (k,d)-choice.
                continue;
            }
            auto cell_sc = merged;
            cell_sc.k = k;
            cell_sc.d = d; // d = 1 degenerates to single choice in "kd"
            cells.push_back(kdc::core::make_scenario_cell(
                name, cell_sc,
                {.balls = kdc::core::resolved_balls(cell_sc), .reps = reps,
                 .seed = cell_seed}));
            meta.push_back({k, d});
        }
    }

    kdc::core::sweep_options options;
    options.threads = args.get_threads();
    options.stopping = kdc::core::stopping_rule_from_cli(args);
    if (args.get_flag("progress")) {
        options.progress = [](std::size_t done, std::size_t total) {
            std::cerr << "\r" << done << "/" << total << " reps done";
            if (done == total) {
                std::cerr << '\n';
            }
        };
    }
    const auto outcomes = kdc::core::run_sweep(cells, options);

    std::cout << "Table 1: maximum bin load for (k,d)-choice, n = " << n
              << ", " << reps << " runs per cell, kernel = "
              << kdc::core::kernel_name(kernel) << "\n"
              << "(cells list the distinct max loads seen across runs; '-' "
                 "marks invalid cells with k >= d)\n\n";

    // Pivot the flat outcomes back into the paper's k x d layout.
    kdc::text_table table;
    std::vector<std::string> header{"k \\ d"};
    for (const auto d : d_values) {
        header.push_back("d=" + std::to_string(d));
    }
    table.set_header(header);

    // meta is the single source of which (k,d) cells were computed: a grid
    // position with no matching meta entry renders as '-'.
    std::size_t cursor = 0;
    for (const auto k : k_values) {
        std::vector<std::string> row{"k=" + std::to_string(k)};
        for (const auto d : d_values) {
            if (cursor < outcomes.size() && meta[cursor].k == k &&
                meta[cursor].d == d) {
                row.push_back(outcomes[cursor].result.max_load_set());
                ++cursor;
            } else {
                row.push_back("-");
            }
        }
        table.add_row(std::move(row));
    }
    std::cout << table << '\n';

    std::cout << "Paper reference points (Table 1):\n"
                 "  single choice (k=1,d=1): 7, 8, 9      two-choice "
                 "(k=1,d=2): 3, 4\n"
                 "  (2,3): 4    (8,9): 4    (128,193): 2    (192,193): 5, 6\n";

    if (args.get_flag("csv")) {
        kdc::core::sweep_emitter emitter;
        emitter
            .add_column("k",
                        [&meta](const kdc::core::sweep_outcome&,
                                std::size_t row) {
                            return std::to_string(meta[row].k);
                        })
            .add_column("d",
                        [&meta](const kdc::core::sweep_outcome&,
                                std::size_t row) {
                            return std::to_string(meta[row].d);
                        })
            .add_reps_column()
            .add_max_load_set_column("max_load_set")
            .add_stat_column("max_load_mean",
                             [](const kdc::core::sweep_outcome& outcome) {
                                 return outcome.result.max_load_stats.mean();
                             });
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, outcomes);
    }
    return 0;
}
