// Allocation processes on the level-compressed state of
// core/level_profile.hpp: O(max-load) words instead of O(n), so the heavily
// loaded m >> n regime runs at billion-bin scale in a few kilobytes.
//
// Every process here is DISTRIBUTIONALLY IDENTICAL to its per-bin
// counterpart in core/process.hpp (verified against the exact small-n
// distributions of core/exact.cpp and by two-sample tests in the suite) but
// draws from a different point of the RNG stream, so individual runs are
// not bit-identical across kernels — see "Choosing a kernel" in README.md.
//
// The subtle part is the paper's with-replacement probe step (Section 1.1):
// duplicates in a round's d probes are meaningful (a bin sampled m times
// owns m candidate slots). The level kernel simulates the collisions
// explicitly. With j distinct bins probed so far, one uniform draw
// v in [0, n) decides probe i exactly:
//
//   * v < j       — the probe duplicates distinct probe v (each previously
//                   probed bin is hit with probability exactly 1/n);
//   * v >= j      — the probe lands on a fresh bin, and v - j is uniform in
//                   [0, n - j), i.e. a without-replacement draw from the
//                   remaining profile (extract_bin keeps the Fenwick
//                   weights in sync).
//
// One draw per probe, one level per distinct bin: the whole round never
// touches per-bin state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/level_profile.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

namespace detail {

/// The dense per-level counts behind a profile, plus the occupied span.
/// The level-process fast paths run whole run_balls calls on this mirror —
/// plain array arithmetic, no Fenwick updates, no per-probe contract
/// checks — and flush it back through level_profile::from_counts once at
/// the end of the call.
struct dense_mirror {
    std::vector<std::uint64_t> counts;
    std::uint64_t base = 0; // minimum occupied level
    std::uint64_t top = 0;  // maximum occupied level

    explicit dense_mirror(const level_profile& profile);

    /// Guarantees levels [0, top + headroom] are addressable.
    void ensure_headroom(std::uint64_t headroom) {
        if (top + headroom >= counts.size()) {
            counts.resize(
                std::max<std::size_t>(counts.size() * 2, top + headroom + 1),
                0);
        }
    }

    /// The level of the bin with rank `r` among the mirrored bins — the
    /// subtract-scan replacement for fenwick_tree::find_kth. The scan
    /// starts at the minimum occupied level and walks at most the
    /// min-to-max load span, which for every process here is the paper's
    /// gap: a handful of levels, each probe a couple of L1 loads.
    [[nodiscard]] std::uint64_t level_of_rank(std::uint64_t r) const {
        std::uint64_t level = base;
        while (counts[level] <= r) {
            r -= counts[level];
            ++level;
        }
        return level;
    }
};

} // namespace detail

/// The (k,d)-choice process of Section 1.1 on level-compressed state.
/// Distributionally identical to kd_choice_process; O(max-load) memory and
/// O(d log L) work per round. Requires 1 <= k < d <= n.
class kd_choice_level_process {
public:
    kd_choice_level_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                            std::uint64_t seed);

    /// Starts from an existing profile (snapshot resume, heavily loaded
    /// starts). balls_placed()/messages() count only post-construction
    /// activity.
    kd_choice_level_process(level_profile initial, std::uint64_t k,
                            std::uint64_t d, std::uint64_t seed);

    /// Runs one round: d probes (with-replacement collisions simulated
    /// exactly), k balls kept by the multiplicity rule. This is the
    /// reference implementation, operating directly on the Fenwick-backed
    /// profile; run_balls takes a faster dense-counts path that consumes
    /// the RNG stream in exactly the same order and keeps exactly the same
    /// slots, so both paths produce byte-identical profiles.
    void run_round();

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    /// Byte-identical to calling run_round balls/k times, but runs on a
    /// dense per-level counts mirror: the probe→level lookup is a short
    /// subtract-scan from the minimum occupied level (the span between the
    /// minimum and maximum load is the paper's GAP — O(ln ln n), a handful
    /// of levels) instead of a Fenwick descent, and extraction/reinsertion
    /// are plain array decrements/increments. The mirror is flushed back
    /// into the profile once per call.
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    /// Probe messages issued so far: d per round (footnote 1 of the paper).
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

private:
    /// One distinct bin probed this round: its pre-round level and how many
    /// of the d probes hit it.
    struct distinct_probe {
        std::uint64_t level = 0;
        std::uint32_t multiplicity = 0;
    };
    /// One candidate slot of the multiplicity rule: height level + occurrence
    /// index, random tie key, owning distinct probe.
    struct slot {
        std::uint64_t height = 0;
        std::uint64_t tie_key = 0;
        std::uint32_t probe = 0;
    };

    /// Fills kept_per_probe_ with each distinct probe's kept-slot count —
    /// the k smallest slots of slots_ under the strict weak order
    /// (height, tie_key). Instead of sorting, slots are bucketed by height
    /// (the height range is the load span plus d — a handful of buckets):
    /// every slot strictly below the threshold height is kept outright and
    /// only the few slots AT the threshold compare tie keys, which keeps
    /// the identical slot set as the nth_element formulation (tie keys are
    /// unique w.p. 1) at a fraction of the branches.
    void count_kept();

    /// The dense-mirror fast path behind run_balls (see its comment).
    void run_rounds_fast(std::uint64_t rounds);

    /// Finishes a round whose probe step hit a with-replacement duplicate
    /// (rare at large n): falls back to the generic multiplicity-rule
    /// selection over materialized slots, on the same mirror.
    void run_duplicate_round_tail(detail::dense_mirror& mirror,
                                  std::uint64_t j, std::uint64_t probe,
                                  std::uint64_t dup_at);

    level_profile profile_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    std::vector<distinct_probe> distinct_;
    std::vector<slot> slots_;
    std::vector<std::uint32_t> kept_per_probe_;
    std::vector<std::uint32_t> height_hist_;     // selection scratch
    std::vector<std::uint32_t> threshold_slots_; // selection scratch
    std::vector<std::uint64_t> fast_levels_;     // fast-path probe levels
    std::vector<std::uint64_t> fast_cum_;        // fast-path running cumsum
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched
};

/// Classical single-choice on level-compressed state: one probe, one ball,
/// O(log L) per ball. Distributionally identical to single_choice_process.
class single_choice_level_process {
public:
    single_choice_level_process(std::uint64_t n, std::uint64_t seed);

    /// Starts from an existing profile (snapshot resume, steady-state
    /// fast-forward). balls_placed()/messages() count only
    /// post-construction activity.
    single_choice_level_process(level_profile initial, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept {
        return balls_placed_; // one probe per ball
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }

private:
    level_profile profile_;
    std::uint64_t balls_placed_ = 0;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_;
};

/// Classical d-choice of Azar et al. on level-compressed state. For k = 1
/// probe collisions are irrelevant (the ball goes to the minimum-level
/// probe either way), so each ball is just "min of d level draws", O(d log
/// L). Distributionally identical to d_choice_process.
class d_choice_level_process {
public:
    d_choice_level_process(std::uint64_t n, std::uint64_t d,
                           std::uint64_t seed);

    /// Starts from an existing profile (snapshot resume, steady-state
    /// fast-forward). balls_placed()/messages() count only
    /// post-construction activity.
    d_choice_level_process(level_profile initial, std::uint64_t d,
                           std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept {
        return balls_placed_ * d_;
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

private:
    level_profile profile_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_;
};

} // namespace kdc::core
