#include "core/metrics.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace kdc::core {

load_metrics compute_load_metrics(const load_vector& loads) {
    KD_EXPECTS(!loads.empty());
    load_metrics out;
    out.min_load = loads.front();
    for (const bin_load load : loads) {
        out.total_balls += load;
        out.max_load = std::max<std::uint64_t>(out.max_load, load);
        out.min_load = std::min<std::uint64_t>(out.min_load, load);
        if (load == 0) {
            ++out.empty_bins;
        }
    }
    out.mean_load =
        static_cast<double>(out.total_balls) / static_cast<double>(loads.size());
    out.gap = static_cast<double>(out.max_load) - out.mean_load;
    return out;
}

std::uint64_t nu_y(const load_vector& loads, std::uint64_t y) {
    std::uint64_t count = 0;
    for (const bin_load load : loads) {
        if (load >= y) {
            ++count;
        }
    }
    return count;
}

std::uint64_t mu_y(const load_vector& loads, std::uint64_t y) {
    if (y == 0) {
        // Every ball has height >= 0; also every "phantom" ball of height 0
        // would, but heights start at 1, so mu_0 = total balls.
        std::uint64_t total = 0;
        for (const bin_load load : loads) {
            total += load;
        }
        return total;
    }
    std::uint64_t count = 0;
    for (const bin_load load : loads) {
        if (load >= y) {
            count += load - y + 1;
        }
    }
    return count;
}

std::vector<std::uint64_t> load_histogram(const load_vector& loads) {
    std::vector<std::uint64_t> hist;
    for (const bin_load load : loads) {
        if (load >= hist.size()) {
            hist.resize(load + 1, 0);
        }
        ++hist[load];
    }
    if (hist.empty()) {
        hist.resize(1, 0);
    }
    return hist;
}

std::vector<std::uint64_t> nu_profile(const load_vector& loads) {
    const auto hist = load_histogram(loads);
    std::vector<std::uint64_t> profile(hist.size() + 1, 0);
    // Suffix-sum the histogram: nu_y = #bins with load >= y.
    for (std::uint64_t y = hist.size(); y-- > 0;) {
        profile[y] = profile[y + 1] + hist[y];
    }
    return profile;
}

std::vector<bin_load> sorted_loads_desc(const load_vector& loads) {
    std::vector<bin_load> sorted(loads);
    std::sort(sorted.begin(), sorted.end(), std::greater<>{});
    return sorted;
}

bin_load load_of_rank(const load_vector& loads, std::uint64_t x) {
    KD_EXPECTS(x >= 1 && x <= loads.size());
    std::vector<bin_load> copy(loads);
    auto nth = copy.begin() + static_cast<std::ptrdiff_t>(x - 1);
    std::nth_element(copy.begin(), nth, copy.end(), std::greater<>{});
    return *nth;
}

} // namespace kdc::core
