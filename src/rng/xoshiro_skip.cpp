#include "rng/xoshiro_skip.hpp"

#include <array>
#include <bit>

namespace kdc::rng {

namespace {

/// 256x256 GF(2) matrix in column form: col[j] is the next state produced
/// from the basis state with only bit j set (bit b = state word b/64, bit
/// b%64). Applying the matrix XORs together the columns of the set bits.
struct state_matrix {
    std::array<std::array<std::uint64_t, 4>, 256> col;
};

std::array<std::uint64_t, 4> apply(const state_matrix& m,
                                   const std::array<std::uint64_t, 4>& s) {
    std::array<std::uint64_t, 4> acc{};
    for (std::size_t w = 0; w < 4; ++w) {
        std::uint64_t word = s[w];
        while (word != 0) {
            const auto bit = static_cast<std::size_t>(std::countr_zero(word));
            word &= word - 1;
            const auto& c = m.col[w * 64 + bit];
            acc[0] ^= c[0];
            acc[1] ^= c[1];
            acc[2] ^= c[2];
            acc[3] ^= c[3];
        }
    }
    return acc;
}

/// One generator step on a raw state vector — the state_ update of
/// xoshiro256ss::operator() with the output scrambler dropped (the
/// scrambler reads state but never feeds back into it).
std::array<std::uint64_t, 4> step(std::array<std::uint64_t, 4> s) {
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = (s[3] << 45) | (s[3] >> 19);
    return s;
}

/// The 64 repeated squares M^(2^j), built once per process. Basis columns
/// of M come from stepping each unit vector; each squaring applies the
/// previous matrix to its own columns.
const std::array<state_matrix, 64>& skip_tables() {
    static const std::array<state_matrix, 64> tables = [] {
        std::array<state_matrix, 64> t{};
        for (std::size_t j = 0; j < 256; ++j) {
            std::array<std::uint64_t, 4> unit{};
            unit[j / 64] = std::uint64_t{1} << (j % 64);
            t[0].col[j] = step(unit);
        }
        for (std::size_t p = 1; p < t.size(); ++p) {
            for (std::size_t j = 0; j < 256; ++j) {
                t[p].col[j] = apply(t[p - 1], t[p - 1].col[j]);
            }
        }
        return t;
    }();
    return tables;
}

} // namespace

xoshiro256ss xoshiro_skip(const xoshiro256ss& gen, std::uint64_t steps) {
    std::array<std::uint64_t, 4> state = gen.state();
    const auto& tables = skip_tables();
    for (std::size_t bit = 0; steps != 0; ++bit, steps >>= 1) {
        if ((steps & 1) != 0) {
            state = apply(tables[bit], state);
        }
    }
    return xoshiro256ss(state);
}

} // namespace kdc::rng
