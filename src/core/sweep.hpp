// Cross-cell sweep engine: runs a whole parameter grid — many named
// experiment cells, each with its own repetition count — on ONE shared
// work-stealing thread pool, instead of parallelizing only within a cell.
//
// The paper's headline artifacts (Table 1 over the (k,d) grid, the tradeoff
// frontier, the d*k = Theta(log n) landmark sweeps) are grids of independent
// cells; scheduling every (cell, rep) pair onto one pool keeps all hardware
// threads busy even when individual cells have few repetitions.
//
// Determinism contract, inherited from core/runner.hpp: repetition r of a
// cell always runs with rng::derive_seed(cell.config.seed, r), and each
// cell's repetitions are folded in repetition order. The returned outcomes
// are therefore bit-identical to running every cell serially with
// run_experiment — at any thread count, under any steal schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/parallel_runner.hpp"
#include "support/text_table.hpp"

namespace kdc::core {

/// One named cell of a sweep: an experiment configuration plus a type-erased
/// per-repetition runner. `run_rep(derived_seed)` receives the already
/// derived seed for its repetition and must be callable concurrently.
struct sweep_cell {
    std::string name;
    experiment_config config;
    std::function<repetition_result(std::uint64_t derived_seed)> run_rep;
};

/// Builds a sweep_cell from a process factory (the same factory shape the
/// serial and parallel runners accept). The factory must be const-callable:
/// repetitions of the cell invoke it concurrently. config.balls must be the
/// resolved ball count (>= 1); use whole_rounds_balls for the k-round
/// default.
template <typename Factory>
[[nodiscard]] sweep_cell make_sweep_cell(std::string name,
                                         const experiment_config& config,
                                         Factory factory) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);
    return sweep_cell{
        std::move(name), config,
        [factory = std::move(factory),
         balls = config.balls](std::uint64_t derived_seed) {
            return run_one_repetition(derived_seed, balls, factory);
        }};
}

/// One cell's folded outcome; `result` is bit-identical to
/// run_experiment(config, factory) on the same cell.
struct sweep_outcome {
    std::string name;
    experiment_config config;
    experiment_result result;
};

/// Options for the pool-owning run_sweep overload.
struct sweep_options {
    /// Worker threads, resolved by resolve_thread_count (0 = all hardware
    /// threads); the pool is capped at the grid's total job count.
    unsigned threads = 0;
    sweep_progress progress;
};

/// Runs every (cell, rep) pair of the grid on the caller's pool and folds
/// each cell in repetition order. Sharing one pool across successive sweeps
/// (e.g. the two ablation phases of a bench) avoids re-spawning workers.
/// Must be called from outside the pool's own workers.
[[nodiscard]] std::vector<sweep_outcome>
run_sweep(thread_pool& pool, const std::vector<sweep_cell>& cells,
          const sweep_progress& progress = {});

/// Convenience overload: spins up a private pool sized by options.threads
/// and runs the grid on it. An empty grid returns an empty vector without
/// creating a pool.
[[nodiscard]] std::vector<sweep_outcome>
run_sweep(const std::vector<sweep_cell>& cells,
          const sweep_options& options = {});

/// Structured emission for sweep outcomes: declare columns once, then render
/// the same rows as an aligned text table and/or CSV. Replaces the
/// per-bench re-implementations of "build text_table rows / build csv rows"
/// for every bench whose rows are one-outcome-per-row.
class sweep_emitter {
public:
    /// Renders one column value. `row_index` is the outcome's position in
    /// the emitted vector, so benches can look up side metadata (e.g. the
    /// (k, d) pair a cell was built from).
    using value_fn = std::function<std::string(const sweep_outcome& outcome,
                                               std::size_t row_index)>;

    /// Appends a column. Returns *this for chaining.
    sweep_emitter& add_column(std::string header, value_fn value,
                              table_align align = table_align::right);

    /// Canned column: the cell name (left-aligned by convention).
    sweep_emitter& add_name_column(std::string header = "cell");

    /// Canned column: the paper's Table-1 "distinct max loads" set.
    sweep_emitter& add_max_load_set_column(
        std::string header = "max loads seen");

    /// Canned column: any scalar statistic of the outcome, fixed-precision.
    sweep_emitter& add_stat_column(
        std::string header,
        std::function<double(const sweep_outcome&)> stat, int precision = 2);

    /// Renders the outcomes as an aligned text_table (header + one row per
    /// outcome, column alignments applied).
    [[nodiscard]] text_table
    to_table(const std::vector<sweep_outcome>& outcomes) const;

    /// Streams to_table() followed by a newline.
    void write_table(std::ostream& out,
                     const std::vector<sweep_outcome>& outcomes) const;

    /// Streams an RFC-4180 CSV: a header row of column names, then one row
    /// per outcome.
    void write_csv(std::ostream& out,
                   const std::vector<sweep_outcome>& outcomes) const;

private:
    struct column {
        std::string header;
        value_fn value;
        table_align align;
    };
    std::vector<column> columns_;
};

} // namespace kdc::core
