// Steady-state fast-forward (warmup=ff): split arithmetic, synthesized
// profile invariants, grammar/factory wiring, and the KS evidence that a
// fast-forwarded run is statistically indistinguishable from a full warmup
// — including the snapshot save/load/continue path.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/level_process.hpp"
#include "core/scenario.hpp"
#include "core/steady_state.hpp"
#include "rng/splitmix64.hpp"
#include "stats/hypothesis.hpp"
#include "support/cli.hpp"

using kdc::cli_error;
using kdc::core::fast_forward_split;
using kdc::core::fast_forwarded_process;
using kdc::core::ff_plan;
using kdc::core::ff_split;
using kdc::core::kd_choice_level_process;
using kdc::core::level_profile;
using kdc::core::make_process;
using kdc::core::parse_scenario;
using kdc::core::plan_fast_forward;
using kdc::core::resolved_balls;
using kdc::core::scenario;
using kdc::core::steady_state_options;
using kdc::core::steady_state_profile;
using kdc::core::validate_fast_forward;
using kdc::core::warmup_mode;

namespace {

/// The cli_error message for a parse, or "" when none is thrown.
std::string parse_error(const std::string& text) {
    try {
        (void)parse_scenario(text);
    } catch (const cli_error& error) {
        return error.what();
    }
    return "";
}

std::vector<double> pooled_loads(const level_profile& profile) {
    std::vector<double> loads;
    loads.reserve(profile.n());
    for (std::uint64_t level = 0; level <= profile.max_level(); ++level) {
        loads.insert(loads.end(), profile.bins_at(level),
                     static_cast<double>(level));
    }
    return loads;
}

} // namespace

TEST(FastForwardSplit, LightRunsAreNeverSplit) {
    const auto sc = parse_scenario("kd:n=10000,k=8,d=16");
    for (const std::uint64_t total : {1ull, 8ull, 9999ull, 10000ull}) {
        const ff_split split = fast_forward_split(sc, total);
        EXPECT_EQ(split.ff_balls, 0u);
        EXPECT_EQ(split.settle_balls, total);
    }
}

TEST(FastForwardSplit, HeavySplitInvariants) {
    for (const std::uint64_t n : {1000ull, 100000ull}) {
        for (const std::uint64_t k : {1ull, 8ull}) {
            auto sc = parse_scenario("kd:n=" + std::to_string(n) +
                                     ",k=" + std::to_string(k) +
                                     ",d=" + std::to_string(2 * k));
            for (const std::uint64_t total :
                 {n + 1, 2 * n, 10 * n, 10 * n + 37}) {
                const ff_split split = fast_forward_split(sc, total);
                EXPECT_EQ(split.ff_balls + split.settle_balls, total);
                EXPECT_EQ(split.ff_balls % k, 0u)
                    << "the skipped prefix must hold whole rounds";
                if (split.ff_balls > 0) {
                    // The settle suffix keeps enough balls to regenerate
                    // the top-tail randomness the synthesis lacks.
                    EXPECT_GE(split.settle_balls,
                              std::max<std::uint64_t>(k, n / 8));
                }
            }
        }
    }
    // The canonical heavy cell: m = 10n skips 9 whole waves of n balls.
    const auto sc = parse_scenario("kd:n=100000,k=8,d=16");
    const ff_split split = fast_forward_split(sc, 1'000'000);
    EXPECT_EQ(split.ff_balls, 900'000u);
    EXPECT_EQ(split.settle_balls, 100'000u);
}

TEST(FastForwardPlan, ResolvesPoliciesAndRejectsUnsupported) {
    EXPECT_EQ(plan_fast_forward(parse_scenario("kd:n=1024,k=2,d=4")).policy,
              ff_plan::policy_kind::kd);
    EXPECT_EQ(plan_fast_forward(parse_scenario("kd:n=1024,k=1,d=1")).policy,
              ff_plan::policy_kind::single);
    EXPECT_EQ(plan_fast_forward(parse_scenario("single:n=1024")).policy,
              ff_plan::policy_kind::single);
    EXPECT_EQ(plan_fast_forward(parse_scenario("dchoice:n=1024,d=2")).policy,
              ff_plan::policy_kind::dchoice);
    EXPECT_EQ(plan_fast_forward(
                  parse_scenario("one_plus_beta:n=1024,beta=0.5"))
                  .policy,
              ff_plan::policy_kind::one_plus_beta);
    EXPECT_TRUE(
        plan_fast_forward(parse_scenario("kd:n=1024,k=2,d=4,par=round"))
            .sharded);
    EXPECT_FALSE(
        plan_fast_forward(parse_scenario("kd:n=1024,k=2,d=4")).sharded);

    // The per-bin kernel keeps state the fast-forward cannot synthesize.
    const auto kernel_message =
        parse_error("kd:n=1024,k=2,d=4,kernel=perbin,warmup=ff");
    EXPECT_NE(kernel_message.find("kernel=level"), std::string::npos);
    // Level-capable but no known steady-state shape.
    const auto policy_message =
        parse_error("weighted:n=1024,k=2,d=4,kernel=level,warmup=ff");
    EXPECT_NE(policy_message.find("warmup=ff knows the steady-state shape"),
              std::string::npos);
    EXPECT_NE(policy_message.find("'weighted'"), std::string::npos);
}

TEST(WarmupGrammar, ParsesRoundTripsAndValidates) {
    EXPECT_EQ(parse_scenario("kd:n=1024,k=2,d=4").warmup, warmup_mode::full);
    const auto sc = parse_scenario("kd:n=1024,k=2,d=4,warmup=ff");
    EXPECT_EQ(sc.warmup, warmup_mode::fast_forward);
    const std::string text = kdc::core::to_string(sc);
    EXPECT_NE(text.find("warmup=ff"), std::string::npos);
    EXPECT_EQ(parse_scenario(text).warmup, warmup_mode::fast_forward);

    const auto message = parse_error("kd:n=1024,k=2,d=4,warmup=bogus");
    EXPECT_NE(message.find("scenario key 'warmup'"), std::string::npos);
    EXPECT_NE(message.find("'ff'"), std::string::npos);
}

TEST(SteadyStateProfile, ExactBinsAndBallsForEveryPolicy) {
    // Small pilots stress the rescale/extrapolate path; the invariants must
    // hold exactly regardless: sum(counts) == n, sum(level*counts) == ff.
    const steady_state_options options{.pilot_bins = 4096, .pilot_reps = 2};
    const std::vector<std::string> texts{
        "kd:n=20000,k=8,d=16,kernel=level",
        "kd:n=20000,k=8,d=16,kernel=level,par=round",
        "single:n=20000",
        "dchoice:n=20000,d=2",
        "one_plus_beta:n=20000,beta=0.5",
    };
    for (const auto& text : texts) {
        const auto sc = parse_scenario(text);
        const ff_plan plan = plan_fast_forward(sc);
        const level_profile profile =
            steady_state_profile(sc, plan, 200'000, /*seed=*/3, options);
        EXPECT_EQ(profile.n(), 20'000u) << text;
        EXPECT_EQ(profile.total_balls(), 200'000u) << text;
    }
}

TEST(SteadyStateProfile, SingleChoicePoissonShape) {
    // Single-choice at density 10 is Poisson(10): the closed form must put
    // the profile's mode at the distribution's (levels 9/10) and keep a
    // spread-out tail rather than piling everything on one level.
    const auto sc = parse_scenario("single:n=200000");
    const level_profile profile =
        steady_state_profile(sc, plan_fast_forward(sc), 2'000'000,
                             /*seed=*/5);
    std::uint64_t mode = 0;
    for (std::uint64_t level = 0; level <= profile.max_level(); ++level) {
        if (profile.bins_at(level) > profile.bins_at(mode)) {
            mode = level;
        }
    }
    EXPECT_GE(mode, 8u);
    EXPECT_LE(mode, 12u);
    EXPECT_GE(profile.max_level(), 15u);
    EXPECT_LT(profile.bins_at(mode), profile.n() / 2);
}

TEST(FastForwardedProcess, AccountingAndLightRunDegeneration) {
    const auto sc =
        parse_scenario("kd:n=10000,k=8,d=16,kernel=level,warmup=ff");
    const ff_plan plan = plan_fast_forward(sc);

    fast_forwarded_process heavy(sc, plan, /*seed=*/11);
    // Before the first run_balls nothing has happened yet.
    EXPECT_EQ(heavy.skipped_balls(), 0u);
    EXPECT_EQ(heavy.observe().balls_placed, 0u);
    EXPECT_EQ(heavy.observe().empty_bins, 10'000u);

    heavy.run_balls(100'000);
    const ff_split split = fast_forward_split(sc, 100'000);
    EXPECT_EQ(heavy.skipped_balls(), split.ff_balls);
    EXPECT_GT(heavy.skipped_balls(), 0u);
    // balls_placed counts the skipped prefix (the profile really holds
    // those balls); messages counts the settled suffix only.
    EXPECT_EQ(heavy.observe().balls_placed, 100'000u);
    EXPECT_EQ(heavy.observe().messages,
              split.settle_balls * (sc.d / sc.k));
    EXPECT_EQ(heavy.sorted_loads().size(), 10'000u);

    // total <= n: warmup=ff degenerates to warmup=full exactly.
    fast_forwarded_process light(sc, plan, /*seed=*/11);
    light.run_balls(10'000);
    EXPECT_EQ(light.skipped_balls(), 0u);
    EXPECT_EQ(light.observe().balls_placed, 10'000u);

    // Through the declarative factory the wrapper's own accounting wins
    // (any_process defers to the self-observable wrapper).
    auto process = make_process(sc, /*seed=*/11);
    process.run_balls(100'000);
    EXPECT_EQ(process.observe().balls_placed, 100'000u);
}

TEST(FastForwardValidation, IndistinguishableFromFullWarmupAtReachableN) {
    const auto sc = parse_scenario(
        "kd:n=100000,k=8,d=16,balls=1000000,kernel=level,warmup=ff");
    const auto result = validate_fast_forward(sc, /*reps=*/10,
                                              /*seed=*/2026);
    EXPECT_EQ(result.reps, 10u);
    // The acceptance gate mirrors `micro_throughput --validate-warmup`:
    // none of the three KS comparisons may reject at the 0.001 level.
    EXPECT_GT(result.max_load_ks.p_value, 0.001);
    EXPECT_GT(result.gap_ks.p_value, 0.001);
    EXPECT_GT(result.loads_ks.p_value, 0.001);
}

TEST(FastForwardSnapshot, ResumedRunMatchesUninterruptedKS) {
    // The snapshot-staging path end to end: synthesize the fast-forward
    // profile, persist it, reload it, continue the run from the reloaded
    // profile — and show the result is statistically indistinguishable
    // from an uninterrupted full simulation at n = 10^5.
    const auto sc = parse_scenario(
        "kd:n=100000,k=8,d=16,balls=1000000,kernel=level,warmup=ff");
    const ff_plan plan = plan_fast_forward(sc);
    const std::uint64_t total = resolved_balls(sc);
    const ff_split split = fast_forward_split(sc, total);
    ASSERT_EQ(split.ff_balls, 900'000u);

    const std::uint32_t reps = 10;
    std::vector<double> resumed_max, resumed_gap, full_max, full_gap;
    std::vector<double> resumed_loads, full_loads;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        const std::uint64_t seed = kdc::rng::derive_seed(77, rep);
        const level_profile synthesized =
            steady_state_profile(sc, plan, split.ff_balls, seed);
        std::stringstream buffer;
        synthesized.save(buffer);
        level_profile reloaded = level_profile::load(buffer);
        ASSERT_EQ(reloaded, synthesized);

        kd_choice_level_process resumed(std::move(reloaded), sc.k, sc.d,
                                        seed);
        resumed.run_balls(split.settle_balls);
        const auto metrics = resumed.profile().metrics();
        resumed_max.push_back(static_cast<double>(metrics.max_load));
        resumed_gap.push_back(metrics.gap);
        if (rep == 0) {
            resumed_loads = pooled_loads(resumed.profile());
        }

        kd_choice_level_process full(sc.n, sc.k, sc.d,
                                     kdc::rng::derive_seed(77, reps + rep));
        full.run_balls(total);
        const auto full_metrics = full.profile().metrics();
        full_max.push_back(static_cast<double>(full_metrics.max_load));
        full_gap.push_back(full_metrics.gap);
        if (rep == 0) {
            full_loads = pooled_loads(full.profile());
        }
    }

    const auto max_ks = kdc::stats::ks_two_sample(resumed_max, full_max);
    const auto gap_ks = kdc::stats::ks_two_sample(resumed_gap, full_gap);
    const auto loads_ks =
        kdc::stats::ks_two_sample(resumed_loads, full_loads);
    EXPECT_GT(max_ks.p_value, 0.001);
    EXPECT_GT(gap_ks.p_value, 0.001);
    EXPECT_GT(loads_ks.p_value, 0.001);
}
