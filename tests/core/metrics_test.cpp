#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::load_histogram;
using kdc::core::load_of_rank;
using kdc::core::load_vector;
using kdc::core::mu_y;
using kdc::core::nu_profile;
using kdc::core::nu_y;
using kdc::core::sorted_loads_desc;

const load_vector sample{3, 0, 2, 2, 0, 5};

TEST(LoadMetrics, BasicQuantities) {
    const auto m = compute_load_metrics(sample);
    EXPECT_EQ(m.max_load, 5u);
    EXPECT_EQ(m.min_load, 0u);
    EXPECT_EQ(m.total_balls, 12u);
    EXPECT_DOUBLE_EQ(m.mean_load, 2.0);
    EXPECT_DOUBLE_EQ(m.gap, 3.0);
    EXPECT_EQ(m.empty_bins, 2u);
}

TEST(LoadMetrics, EmptyVectorViolatesContract) {
    EXPECT_THROW((void)compute_load_metrics({}), kdc::contract_violation);
}

TEST(NuY, CountsBinsAtLeastY) {
    EXPECT_EQ(nu_y(sample, 0), 6u);
    EXPECT_EQ(nu_y(sample, 1), 4u);
    EXPECT_EQ(nu_y(sample, 2), 4u);
    EXPECT_EQ(nu_y(sample, 3), 2u);
    EXPECT_EQ(nu_y(sample, 5), 1u);
    EXPECT_EQ(nu_y(sample, 6), 0u);
}

TEST(MuY, CountsBallsWithHeightAtLeastY) {
    // Heights in a bin of load L are 1..L.
    EXPECT_EQ(mu_y(sample, 0), 12u); // all balls
    EXPECT_EQ(mu_y(sample, 1), 12u);
    EXPECT_EQ(mu_y(sample, 2), 8u);  // (3-1)+(2-1)+(2-1)+(5-1)
    EXPECT_EQ(mu_y(sample, 3), 4u);  // 1 + 0 + 0 + 3
    EXPECT_EQ(mu_y(sample, 5), 1u);
    EXPECT_EQ(mu_y(sample, 6), 0u);
}

TEST(MuNuRelation, NuNeverExceedsMu) {
    // nu_y <= mu_y (Section 4.1 uses this).
    for (std::uint64_t y = 0; y <= 6; ++y) {
        EXPECT_LE(nu_y(sample, y), mu_y(sample, y));
    }
}

TEST(LoadHistogram, CountsPerValue) {
    const auto hist = load_histogram(sample);
    ASSERT_EQ(hist.size(), 6u);
    EXPECT_EQ(hist[0], 2u);
    EXPECT_EQ(hist[2], 2u);
    EXPECT_EQ(hist[3], 1u);
    EXPECT_EQ(hist[5], 1u);
    EXPECT_EQ(hist[1], 0u);
    EXPECT_EQ(hist[4], 0u);
}

TEST(LoadHistogram, EmptyInputGivesSingleZeroCell) {
    const auto hist = load_histogram({});
    ASSERT_EQ(hist.size(), 1u);
    EXPECT_EQ(hist[0], 0u);
}

TEST(NuProfile, MatchesNuYPointwise) {
    const auto profile = nu_profile(sample);
    ASSERT_EQ(profile.size(), 7u);
    for (std::uint64_t y = 0; y < profile.size(); ++y) {
        EXPECT_EQ(profile[y], nu_y(sample, y)) << "y=" << y;
    }
    EXPECT_EQ(profile.back(), 0u);
}

TEST(SortedLoadsDesc, IsTheFigureProfile) {
    const auto sorted = sorted_loads_desc(sample);
    const load_vector expected{5, 3, 2, 2, 0, 0};
    EXPECT_EQ(sorted, expected);
}

TEST(LoadOfRank, MatchesSortedVector) {
    const auto sorted = sorted_loads_desc(sample);
    for (std::uint64_t x = 1; x <= sample.size(); ++x) {
        EXPECT_EQ(load_of_rank(sample, x), sorted[x - 1]) << "x=" << x;
    }
}

TEST(LoadOfRank, RankBoundsChecked) {
    EXPECT_THROW((void)load_of_rank(sample, 0), kdc::contract_violation);
    EXPECT_THROW((void)load_of_rank(sample, 7), kdc::contract_violation);
}

} // namespace
