#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/process.hpp"
#include "core/sweep.hpp"

namespace {

using kdc::core::make_sweep_cell;
using kdc::core::persistent_pool;
using kdc::core::resolve_thread_count;
using kdc::core::run_sweep;
using kdc::core::sweep_options;
using kdc::core::thread_pool;

std::vector<kdc::core::sweep_cell> small_grid() {
    std::vector<kdc::core::sweep_cell> cells;
    cells.push_back(make_sweep_cell(
        "kd(2,4)", {.balls = 64, .reps = 6, .seed = 3},
        [](std::uint64_t s) {
            return kdc::core::kd_choice_process(64, 2, 4, s);
        }));
    cells.push_back(make_sweep_cell(
        "single", {.balls = 48, .reps = 4, .seed = 9},
        [](std::uint64_t s) {
            return kdc::core::single_choice_process(48, s);
        }));
    return cells;
}

/// The set of worker thread ids that executed at least one job of a sweep
/// on the persistent pool.
std::set<std::thread::id> worker_ids_during_sweep(unsigned threads) {
    std::mutex mutex;
    std::set<std::thread::id> ids;
    auto cells = small_grid();
    for (auto& cell : cells) {
        const auto inner = cell.run_rep;
        cell.run_rep = [inner, &mutex, &ids](std::uint64_t seed) {
            {
                const std::lock_guard<std::mutex> lock(mutex);
                ids.insert(std::this_thread::get_id());
            }
            return inner(seed);
        };
    }
    sweep_options options;
    options.threads = threads;
    (void)run_sweep(cells, options);
    return ids;
}

TEST(ThreadPool, PhaseRangeDealsLikeShardLayout) {
    for (const std::uint64_t total : {1ull, 7ull, 64ull, 1001ull}) {
        for (std::size_t parts = 1; parts <= 9; ++parts) {
            std::uint64_t cursor = 0;
            std::uint64_t previous_size = total; // sizes are non-increasing
            for (std::size_t part = 0; part < parts; ++part) {
                const auto [begin, end] =
                    thread_pool::phase_range(total, parts, part);
                EXPECT_EQ(begin, cursor);
                EXPECT_GE(end, begin);
                EXPECT_LE(end - begin, previous_size);
                previous_size = end - begin;
                cursor = end;
            }
            EXPECT_EQ(cursor, total);
        }
    }
}

TEST(ThreadPool, RunRangesCoversEveryIndexExactlyOnce) {
    thread_pool pool(4);
    std::vector<std::uint32_t> hits(1000, 0);
    pool.run_ranges(hits.size(), 7,
                    [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                            ++hits[i]; // ranges are disjoint: no race
                        }
                    });
    for (const auto hit : hits) {
        EXPECT_EQ(hit, 1u);
    }
    // More parts than indices: the empty tail ranges must be harmless.
    std::fill(hits.begin(), hits.end(), 0u);
    pool.run_ranges(5, 9,
                    [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t i = begin; i < end; ++i) {
                            ++hits[i];
                        }
                    });
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(hits[i], 1u);
    }
}

TEST(ThreadPool, PersistentPoolReusesWorkersAcrossConsecutiveSweeps) {
    // Warm the pool at a fixed size, then run two sweeps: the process-wide
    // spawn counter must not move (no thread was re-spawned), and every
    // job-executing thread id must belong to the warm pool's worker set.
    thread_pool& pool = persistent_pool(3);
    ASSERT_EQ(pool.size(), 3u);
    const std::uint64_t spawned_before = thread_pool::threads_spawned();

    const auto first = worker_ids_during_sweep(3);
    const auto second = worker_ids_during_sweep(3);
    EXPECT_EQ(thread_pool::threads_spawned(), spawned_before)
        << "consecutive sweeps respawned pool workers";
    EXPECT_FALSE(first.empty());
    EXPECT_FALSE(second.empty());

    // Same singleton, untouched.
    EXPECT_EQ(&persistent_pool(3), &pool);

    // Both sweeps ran on workers of one 3-thread pool.
    std::set<std::thread::id> all(first.begin(), first.end());
    all.insert(second.begin(), second.end());
    EXPECT_LE(all.size(), 3u);
}

TEST(ThreadPool, PersistentPoolResizesOnlyWhenTheRequestChanges) {
    thread_pool& two = persistent_pool(2);
    EXPECT_EQ(two.size(), 2u);
    const std::uint64_t spawned_before = thread_pool::threads_spawned();
    EXPECT_EQ(persistent_pool(2).size(), 2u);
    EXPECT_EQ(thread_pool::threads_spawned(), spawned_before)
        << "same-size request must not respawn";
    // A different request tears down and respawns at the new size.
    EXPECT_EQ(persistent_pool(5).size(), 5u);
    EXPECT_EQ(thread_pool::threads_spawned(), spawned_before + 5);
}

TEST(ThreadPool, PersistentPoolResolvesZeroToHardwareThreads) {
    EXPECT_EQ(persistent_pool(0).size(), resolve_thread_count(0));
}

TEST(ThreadPool, SubmitExceptionRethrowsAtWaitIdleAndPoolStaysUsable) {
    thread_pool pool(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran, i] {
            if (i == 4) {
                throw std::runtime_error("job 4 failed");
            }
            ++ran;
        });
    }
    try {
        pool.wait_idle();
        FAIL() << "wait_idle should rethrow the job's exception";
    } catch (const std::runtime_error& err) {
        EXPECT_STREQ(err.what(), "job 4 failed");
    }
    EXPECT_EQ(ran.load(), 7);

    // The error is cleared on rethrow: the pool is reusable and a clean
    // second batch neither throws nor resurrects the old exception.
    ran = 0;
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran] { ++ran; });
    }
    EXPECT_NO_THROW(pool.wait_idle());
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, FirstSubmitExceptionWinsWhenManyJobsThrow) {
    thread_pool pool(4);
    for (int i = 0; i < 32; ++i) {
        pool.submit([] { throw std::runtime_error("boom"); });
    }
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // Exactly one exception is kept; the rest were swallowed, and the
    // pool drains clean afterwards.
    EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, RunPhaseBodyExceptionRethrowsAtTheBarrier) {
    thread_pool pool(4);
    std::atomic<std::uint32_t> executed{0};
    try {
        pool.run_phase(64, [&](std::size_t index) {
            if (index == 10) {
                throw std::runtime_error("phase body 10 failed");
            }
            ++executed;
        });
        FAIL() << "run_phase should rethrow the body's exception";
    } catch (const std::runtime_error& err) {
        EXPECT_STREQ(err.what(), "phase body 10 failed");
    }
    // The thrower short-circuits the remaining indices, so not all 63
    // healthy bodies need have run — but the barrier completed (we are
    // here) and nothing ran twice.
    EXPECT_LE(executed.load(), 63u);

    // The next phase on the same pool is clean and complete.
    executed = 0;
    EXPECT_NO_THROW(pool.run_phase(64, [&](std::size_t) { ++executed; }));
    EXPECT_EQ(executed.load(), 64u);
}

TEST(ThreadPool, RunPhaseFirstExceptionWinsUnderConcurrentThrowers) {
    thread_pool pool(4);
    for (int round = 0; round < 20; ++round) {
        EXPECT_THROW(pool.run_phase(16,
                                    [](std::size_t) {
                                        throw std::runtime_error("any");
                                    }),
                     std::runtime_error);
        // Each failed phase leaves the pool reusable for the next round.
    }
    std::atomic<std::uint32_t> executed{0};
    pool.run_phase(16, [&](std::size_t) { ++executed; });
    EXPECT_EQ(executed.load(), 16u);
}

TEST(ThreadPool, SpawnCounterTracksPrivatePools) {
    const std::uint64_t before = thread_pool::threads_spawned();
    {
        thread_pool pool(4);
        EXPECT_EQ(thread_pool::threads_spawned(), before + 4);
    }
    EXPECT_EQ(thread_pool::threads_spawned(), before + 4);
}

} // namespace
