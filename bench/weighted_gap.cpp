// Extension bench: weighted (k,d)-choice (the Talwar-Wieder axis cited in
// Section 1 of the paper). Compares the weighted gap (max weight load minus
// average) across weight distributions and (k,d) configurations.
//
// Shape to verify: the (k,d) ordering of the unweighted process survives
// weighting — more probes / smaller k still shrink the gap — and
// heavy-tailed weights (Pareto) inflate every scheme's gap toward the
// single-ball dominance regime where the placement policy stops mattering.
//
//   ./weighted_gap [--n=65536] [--rounds-factor=4] [--reps=5]
#include <iostream>
#include <vector>

#include "core/weighted.hpp"
#include "stats/running_stats.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins");
    args.add_option("rounds-factor", "4",
                    "rounds = factor * n / k (total balls = factor * n)");
    args.add_option("reps", "5", "repetitions per cell");
    args.add_option("seed", "11", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto factor =
        static_cast<std::uint64_t>(args.get_int("rounds-factor"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    struct weight_case {
        const char* name;
        kdc::core::weight_distribution dist;
    };
    const std::vector<weight_case> weight_cases{
        {"unit", kdc::core::unit_weights()},
        {"uniform[0.5,1.5]", kdc::core::uniform_weights(0.5, 1.5)},
        {"exponential(1)", kdc::core::exponential_weights(1.0)},
        {"pareto(2.5)", kdc::core::pareto_weights(2.5, 0.6)},
    };
    struct kd_case {
        std::uint64_t k, d;
    };
    const std::vector<kd_case> kd_cases{{1, 2}, {2, 4}, {8, 16}, {31, 32}};

    std::cout << "Weighted (k,d)-choice gap, n = " << n << ", "
              << factor << "n total weight-1-mean balls, " << reps
              << " reps\n\n";
    kdc::text_table table;
    table.set_header({"weights", "(k,d)", "mean gap", "mean max load"});
    table.set_align(0, kdc::table_align::left);

    std::uint64_t cell_seed = seed;
    for (const auto& w : weight_cases) {
        for (const auto& kd : kd_cases) {
            kdc::stats::running_stats gap_stats;
            kdc::stats::running_stats max_stats;
            for (std::uint32_t rep = 0; rep < reps; ++rep) {
                kdc::core::weighted_kd_process process(
                    n, kd.k, kd.d,
                    kdc::rng::derive_seed(++cell_seed, rep), w.dist);
                process.run_rounds(factor * n / kd.k);
                gap_stats.push(process.gap());
                max_stats.push(process.max_load());
            }
            table.add_row({w.name,
                           "(" + std::to_string(kd.k) + "," +
                               std::to_string(kd.d) + ")",
                           kdc::format_fixed(gap_stats.mean(), 3),
                           kdc::format_fixed(max_stats.mean(), 3)});
        }
    }
    std::cout << table << '\n'
              << "Shapes: within each weight family the gap shrinks with "
                 "more probes per ball\n"
                 "(smaller k/d ratio); heavier tails raise all gaps.\n";
    return 0;
}
