#include "rng/sampling.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::rng::random_permutation;
using kdc::rng::sample_with_replacement;
using kdc::rng::sample_without_replacement;
using kdc::rng::xoshiro256ss;

TEST(SampleWithReplacement, AllInRange) {
    xoshiro256ss gen(1);
    std::vector<std::uint32_t> out(64);
    sample_with_replacement(gen, 100, std::span<std::uint32_t>(out));
    for (const auto v : out) {
        EXPECT_LT(v, 100u);
    }
}

TEST(SampleWithReplacement, ProducesDuplicatesOnTinyDomain) {
    xoshiro256ss gen(2);
    std::vector<std::uint32_t> out(32);
    sample_with_replacement(gen, 2, std::span<std::uint32_t>(out));
    const std::set<std::uint32_t> distinct(out.begin(), out.end());
    EXPECT_LE(distinct.size(), 2u);
    EXPECT_LT(distinct.size(), out.size()); // with-replacement must repeat
}

TEST(SampleWithReplacement, MarginalIsUniform) {
    xoshiro256ss gen(3);
    constexpr std::uint64_t n = 10;
    std::vector<std::uint64_t> counts(n, 0);
    std::vector<std::uint32_t> out(5);
    for (int i = 0; i < 20000; ++i) {
        sample_with_replacement(gen, n, std::span<std::uint32_t>(out));
        for (const auto v : out) {
            ++counts[v];
        }
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
    xoshiro256ss gen(4);
    for (int trial = 0; trial < 100; ++trial) {
        const auto sample = sample_without_replacement(gen, 50, 10);
        ASSERT_EQ(sample.size(), 10u);
        const std::set<std::uint32_t> distinct(sample.begin(), sample.end());
        EXPECT_EQ(distinct.size(), 10u);
        for (const auto v : sample) {
            EXPECT_LT(v, 50u);
        }
    }
}

TEST(SampleWithoutReplacement, FullDomainIsPermutation) {
    xoshiro256ss gen(5);
    auto sample = sample_without_replacement(gen, 8, 8);
    std::sort(sample.begin(), sample.end());
    for (std::uint32_t i = 0; i < 8; ++i) {
        EXPECT_EQ(sample[i], i);
    }
}

TEST(SampleWithoutReplacement, CountZeroIsEmpty) {
    xoshiro256ss gen(6);
    EXPECT_TRUE(sample_without_replacement(gen, 5, 0).empty());
}

TEST(SampleWithoutReplacement, ScratchOverloadMatchesAllocatingOverload) {
    // The epoch-stamp scratch is an implementation detail: for same-seeded
    // generators both overloads must consume the same RNG stream and return
    // the same sequence.
    xoshiro256ss gen_a(12);
    xoshiro256ss gen_b(12);
    kdc::rng::sample_scratch scratch;
    for (int trial = 0; trial < 50; ++trial) {
        const auto allocated = sample_without_replacement(gen_a, 40, 7);
        std::vector<std::uint32_t> reused(7);
        sample_without_replacement(gen_b, 40, scratch,
                                   std::span<std::uint32_t>(reused));
        EXPECT_EQ(allocated, reused);
    }
}

TEST(SampleWithoutReplacement, SharedScratchStaysDistinctAcrossCalls) {
    // Epochs must isolate calls: stamps from earlier draws may not leak into
    // later ones (which would show up as skipped or repeated indices).
    xoshiro256ss gen(13);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> out(30);
    for (int trial = 0; trial < 200; ++trial) {
        sample_without_replacement(gen, 32, scratch,
                                   std::span<std::uint32_t>(out));
        const std::set<std::uint32_t> distinct(out.begin(), out.end());
        ASSERT_EQ(distinct.size(), out.size());
        for (const auto v : out) {
            ASSERT_LT(v, 32u);
        }
    }
}

TEST(SampleWithoutReplacement, ScratchGrowsWithDomain) {
    xoshiro256ss gen(14);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> small(4);
    sample_without_replacement(gen, 8, scratch,
                               std::span<std::uint32_t>(small));
    std::vector<std::uint32_t> large(50);
    sample_without_replacement(gen, 1000, scratch,
                               std::span<std::uint32_t>(large));
    const std::set<std::uint32_t> distinct(large.begin(), large.end());
    EXPECT_EQ(distinct.size(), large.size());
    for (const auto v : large) {
        EXPECT_LT(v, 1000u);
    }
}

TEST(SampleWithoutReplacement, EachElementEquallyLikely) {
    xoshiro256ss gen(7);
    constexpr std::uint64_t n = 12;
    std::vector<std::uint64_t> counts(n, 0);
    for (int i = 0; i < 24000; ++i) {
        for (const auto v : sample_without_replacement(gen, n, 3)) {
            ++counts[v];
        }
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(Shuffle, PreservesMultiset) {
    xoshiro256ss gen(8);
    std::vector<int> items{1, 2, 2, 3, 5, 8, 13};
    auto shuffled = items;
    kdc::rng::shuffle(gen, std::span<int>(shuffled));
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, items);
}

TEST(Shuffle, SingleAndEmptyAreNoOps) {
    xoshiro256ss gen(9);
    std::vector<int> empty;
    kdc::rng::shuffle(gen, std::span<int>(empty));
    std::vector<int> one{7};
    kdc::rng::shuffle(gen, std::span<int>(one));
    EXPECT_EQ(one[0], 7);
}

TEST(RandomPermutation, IsAPermutation) {
    xoshiro256ss gen(10);
    const auto perm = random_permutation(gen, 100);
    std::vector<bool> seen(100, false);
    for (const auto v : perm) {
        ASSERT_LT(v, 100u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(SampleScratch, ShrinkingDomainReusesLargerStampArray) {
    // The scratch sizes its stamp array to the largest n seen; a smaller n
    // must keep working against the oversized array (stale high stamps are
    // simply never read).
    xoshiro256ss gen(20);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> big(50);
    sample_without_replacement(gen, 100, scratch,
                               std::span<std::uint32_t>(big));
    const std::size_t stamp_size = scratch.stamps.size();
    EXPECT_GE(stamp_size, 100u);

    std::vector<std::uint32_t> small(10);
    sample_without_replacement(gen, 10, scratch,
                               std::span<std::uint32_t>(small));
    EXPECT_EQ(scratch.stamps.size(), stamp_size) << "shrink must not realloc";
    std::sort(small.begin(), small.end());
    for (std::uint32_t i = 0; i < 10; ++i) {
        EXPECT_EQ(small[i], i); // count == n: must be exactly {0..9}
    }
}

TEST(SampleScratch, GrowingDomainResizesAndStaysDistinct) {
    xoshiro256ss gen(21);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> first(5);
    sample_without_replacement(gen, 8, scratch,
                               std::span<std::uint32_t>(first));
    // Grow: the stamp array is reassigned and the epoch restarts; the draw
    // must still be distinct and in the new range.
    std::vector<std::uint32_t> second(40);
    sample_without_replacement(gen, 200, scratch,
                               std::span<std::uint32_t>(second));
    EXPECT_GE(scratch.stamps.size(), 200u);
    std::set<std::uint32_t> distinct(second.begin(), second.end());
    EXPECT_EQ(distinct.size(), second.size());
    for (const auto v : second) {
        EXPECT_LT(v, 200u);
    }
}

TEST(SampleScratch, EpochWrapAroundClearsStamps) {
    xoshiro256ss gen(22);
    kdc::rng::sample_scratch scratch;
    std::vector<std::uint32_t> out(30);
    sample_without_replacement(gen, 40, scratch,
                               std::span<std::uint32_t>(out)); // warm stamps
    scratch.epoch = std::numeric_limits<std::uint32_t>::max();
    for (int call = 0; call < 3; ++call) {
        sample_without_replacement(gen, 40, scratch,
                                   std::span<std::uint32_t>(out));
        std::set<std::uint32_t> distinct(out.begin(), out.end());
        EXPECT_EQ(distinct.size(), out.size()) << "call " << call;
        for (const auto v : out) {
            EXPECT_LT(v, 40u);
        }
    }
    EXPECT_EQ(scratch.epoch, 3u) << "wrap restarts the epoch at 1";
}

TEST(BatchedUniform, MatchesUniformBelowStream) {
    // The batched sampler consumes generator words in the same order and
    // accepts on the same condition as uniform_below, so for a same-seeded
    // generator the two output streams are bit-identical.
    for (const std::uint64_t bound :
         {1ULL, 2ULL, 193ULL, (1ULL << 16) + 1, (1ULL << 62) + 12345}) {
        xoshiro256ss reference_gen(33);
        xoshiro256ss batched_gen(33);
        kdc::rng::batched_uniform batched(bound);
        for (int draw = 0; draw < 1500; ++draw) {
            EXPECT_EQ(batched.next(batched_gen),
                      kdc::rng::uniform_below(reference_gen, bound))
                << "bound " << bound << " draw " << draw;
        }
    }
}

TEST(BatchedUniform, MarginalIsUniform) {
    xoshiro256ss gen(34);
    constexpr std::uint64_t n = 12;
    kdc::rng::batched_uniform batched(n);
    std::vector<std::uint64_t> counts(n, 0);
    for (int draw = 0; draw < 120000; ++draw) {
        ++counts[batched.next(gen)];
    }
    const auto result = kdc::stats::chi_square_uniform(counts);
    EXPECT_GT(result.p_value, 1e-4) << "chi2=" << result.statistic;
}

TEST(BatchedUniform, BufferedDropAndRefillReconstructMidBlockState) {
    // The parallel-replay API: a replica that refills from the right
    // generator position and drops the consumed prefix produces the same
    // stream as the original sampler mid-block.
    constexpr std::uint64_t bound = 1000;
    xoshiro256ss gen(91);
    kdc::rng::batched_uniform live(bound);
    EXPECT_EQ(live.buffered(), 0u); // first next() triggers the refill
    for (int i = 0; i < 100; ++i) {
        (void)live.next(gen);
    }
    ASSERT_EQ(live.rejections(), 0u); // P < 2^-54 per draw at this bound
    EXPECT_EQ(live.buffered(), kdc::rng::batched_uniform::block_size - 100);

    // Replica: same refill block from a same-seeded generator, then skip
    // the 100 words the live sampler already consumed.
    xoshiro256ss replica_gen(91);
    kdc::rng::batched_uniform replica(bound);
    replica.refill(replica_gen);
    replica.drop(100);
    EXPECT_EQ(replica.buffered(), live.buffered());
    for (int i = 0; i < 400; ++i) { // crosses the next refill boundary
        ASSERT_EQ(replica.next(replica_gen), live.next(gen));
    }
}

TEST(BatchedUniform, DropPastBufferedViolatesContract) {
    kdc::rng::batched_uniform batched(7);
    EXPECT_THROW(batched.drop(1), kdc::contract_violation);
}

TEST(BatchedUniform, RejectionCounterSeesForcedRejections) {
    // bound = 2^63 + 1 rejects ~half of all words, so a few hundred draws
    // must record rejections (the sharded kernel's fallback trigger).
    xoshiro256ss gen(5);
    kdc::rng::batched_uniform batched((1ull << 63) + 1);
    for (int i = 0; i < 256; ++i) {
        (void)batched.next(gen);
    }
    EXPECT_GT(batched.rejections(), 0u);
}

TEST(BatchedUniform, BoundZeroViolatesContract) {
    EXPECT_THROW(kdc::rng::batched_uniform(0), kdc::contract_violation);
}

TEST(BatchedUniform, BoundOneAlwaysZero) {
    xoshiro256ss gen(35);
    kdc::rng::batched_uniform batched(1);
    for (int draw = 0; draw < 300; ++draw) {
        EXPECT_EQ(batched.next(gen), 0u);
    }
}

TEST(RandomPermutation, AllOrdersReachableOnThreeElements) {
    xoshiro256ss gen(11);
    std::map<std::vector<std::uint32_t>, int> orders;
    for (int i = 0; i < 6000; ++i) {
        ++orders[random_permutation(gen, 3)];
    }
    EXPECT_EQ(orders.size(), 6u);
    // Every order should appear ~1000 times; 5-sigma band ~ +-150.
    for (const auto& [order, count] : orders) {
        EXPECT_NEAR(count, 1000, 200);
    }
}

} // namespace
