// Unbiased bounded uniform integers (Lemire 2019, "Fast Random Integer
// Generation in an Interval") and uniform doubles in [0,1).
//
// Sampling `d` bins i.u.r. is the single hottest operation in every
// balls-into-bins experiment; these routines avoid both modulo bias and the
// division in the common rejection loop (division only happens on the rare
// rejection path).
#pragma once

#include <cmath>
#include <concepts>
#include <cstdint>
#include <random>

#include "support/contracts.hpp"

namespace kdc::rng {

/// Concept for a generator producing full-width 64-bit outputs.
template <typename G>
concept bit_generator_64 = std::uniform_random_bit_generator<G> &&
                           std::same_as<typename G::result_type, std::uint64_t>;

/// Returns an integer uniform in [0, bound) without modulo bias.
/// Requires bound >= 1.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::uint64_t uniform_below(G& gen, std::uint64_t bound) {
    KD_EXPECTS(bound >= 1);
    // GCC/Clang extension; the pragma scopes the -Wpedantic exemption to this
    // one alias (the 64x64->128 multiply is the core of Lemire's method).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
    using u128 = unsigned __int128;
#pragma GCC diagnostic pop
    std::uint64_t x = static_cast<std::uint64_t>(gen());
    if constexpr (sizeof(typename G::result_type) == 4) {
        // Widen 32-bit generators to 64 bits so one code path serves both.
        x = (x << 32) | static_cast<std::uint64_t>(gen());
    }
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
        const std::uint64_t threshold = (0 - bound) % bound;
        while (lo < threshold) {
            x = static_cast<std::uint64_t>(gen());
            if constexpr (sizeof(typename G::result_type) == 4) {
                x = (x << 32) | static_cast<std::uint64_t>(gen());
            }
            m = static_cast<u128>(x) * static_cast<u128>(bound);
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

/// Returns an integer uniform in [lo, hi] (inclusive). Requires lo <= hi.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::int64_t uniform_between(G& gen, std::int64_t lo,
                                           std::int64_t hi) {
    KD_EXPECTS(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
    if (span == 0) {
        return static_cast<std::int64_t>(gen());
    }
    return lo + static_cast<std::int64_t>(uniform_below(gen, span));
}

/// Returns a double uniform in [0, 1) with 53 random mantissa bits.
template <bit_generator_64 G>
[[nodiscard]] double uniform_double(G& gen) {
    return static_cast<double>(gen() >> 11) * 0x1.0p-53;
}

/// Returns true with probability p (p clamped to [0,1]).
template <bit_generator_64 G>
[[nodiscard]] bool bernoulli(G& gen, double p) {
    if (p <= 0.0) {
        return false;
    }
    if (p >= 1.0) {
        return true;
    }
    return uniform_double(gen) < p;
}

/// Samples an exponential random variable with the given mean.
template <bit_generator_64 G>
[[nodiscard]] double exponential(G& gen, double mean) {
    KD_EXPECTS(mean > 0.0);
    // 1 - U is in (0, 1], so the log is finite.
    return -mean * std::log(1.0 - uniform_double(gen));
}

} // namespace kdc::rng
