#include "core/weighted.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "core/level_profile.hpp" // checked_snapshot_body (shared trailer)
#include "rng/sampling.hpp"
#include "rng/uniform.hpp"
#include "support/cli.hpp"
#include "support/crc32.hpp"

namespace kdc::core {

weight_distribution unit_weights() {
    return [](rng::xoshiro256ss&) { return 1.0; };
}

weight_distribution uniform_weights(double lo, double hi) {
    KD_EXPECTS(lo > 0.0 && lo <= hi);
    return [lo, hi](rng::xoshiro256ss& gen) {
        return lo + (hi - lo) * rng::uniform_double(gen);
    };
}

weight_distribution exponential_weights(double mean) {
    KD_EXPECTS(mean > 0.0);
    return [mean](rng::xoshiro256ss& gen) {
        return rng::exponential(gen, mean);
    };
}

weight_distribution pareto_weights(double shape, double x_min) {
    KD_EXPECTS(shape > 0.0);
    KD_EXPECTS(x_min > 0.0);
    return [shape, x_min](rng::xoshiro256ss& gen) {
        // Inverse CDF: x_min * (1 - U)^(-1/shape); 1 - U in (0, 1].
        return x_min *
               std::pow(1.0 - rng::uniform_double(gen), -1.0 / shape);
    };
}

weighted_kd_process::weighted_kd_process(std::uint64_t n, std::uint64_t k,
                                         std::uint64_t d, std::uint64_t seed,
                                         weight_distribution weights)
    : loads_(n, 0.0), k_(k), d_(d), weights_(std::move(weights)), gen_(seed) {
    KD_EXPECTS_MSG(k >= 1 && k < d && d <= n, "requires 1 <= k < d <= n");
    KD_EXPECTS_MSG(static_cast<bool>(weights_),
                   "weight distribution must be callable");
    sample_buffer_.resize(d);
    weight_buffer_.resize(k);
}

void weighted_kd_process::run_round() {
    rng::sample_with_replacement(gen_, loads_.size(),
                                 std::span<std::uint32_t>(sample_buffer_));
    for (auto& w : weight_buffer_) {
        w = weights_(gen_);
        KD_ENSURES_MSG(w > 0.0 && std::isfinite(w),
                       "ball weights must be positive and finite");
    }
    run_round_with(sample_buffer_, weight_buffer_);
}

void weighted_kd_process::run_round_with(
    std::span<const std::uint32_t> samples,
    std::span<const double> ball_weights) {
    KD_EXPECTS_MSG(samples.size() == d_, "a round probes exactly d bins");
    KD_EXPECTS_MSG(ball_weights.size() == k_, "a round places exactly k balls");

    // Build one slot per sample occurrence (multiplicity rule).
    slots_.clear();
    slots_.reserve(samples.size());
    // Count occurrences: sort a copy of the samples so occurrence indices
    // are well defined (duplicates are adjacent after sorting).
    std::vector<std::uint32_t> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
        const std::uint32_t bin = sorted[i];
        KD_EXPECTS(bin < loads_.size());
        std::uint32_t occurrence = 0;
        for (; i < sorted.size() && sorted[i] == bin; ++i) {
            slots_.push_back(slot{loads_[bin],
                                  static_cast<std::uint64_t>(gen_()), bin,
                                  occurrence++});
        }
    }

    // Order slots by current load (ties random); order the round's balls by
    // descending weight; match heaviest ball to lightest slot. A slot's
    // effective load for the s-th extra ball in the same bin includes the
    // balls already matched to lower occurrences, which the greedy matching
    // below accounts for by updating loads as it assigns.
    std::sort(slots_.begin(), slots_.end(), [](const slot& a, const slot& b) {
        if (a.load != b.load) {
            return a.load < b.load;
        }
        if (a.bin != b.bin) {
            return a.key < b.key;
        }
        return a.occurrence < b.occurrence;
    });

    std::vector<double> weights_desc(ball_weights.begin(), ball_weights.end());
    std::sort(weights_desc.begin(), weights_desc.end(), std::greater<>{});

    // Greedy: for each ball (heaviest first) pick the currently lightest
    // remaining slot. Slots of the same bin become heavier as earlier balls
    // land, so re-scan; k and d are small (k < d <= a few hundred in all
    // experiments), so the quadratic scan is cheap and allocation-free.
    std::vector<bool> used(slots_.size(), false);
    for (const double w : weights_desc) {
        std::size_t best = slots_.size();
        double best_load = 0.0;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (used[s]) {
                continue;
            }
            const double current = loads_[slots_[s].bin];
            if (best == slots_.size() || current < best_load ||
                (current == best_load &&
                 slots_[s].key < slots_[best].key)) {
                best = s;
                best_load = current;
            }
        }
        KD_ASSERT(best < slots_.size());
        used[best] = true;
        loads_[slots_[best].bin] += w;
        total_weight_ += w;
    }

    balls_placed_ += k_;
    messages_ += d_;
}

void weighted_kd_process::run_rounds(std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
        run_round();
    }
}

void weighted_kd_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    run_rounds(balls / k_);
}

// ---------------------------------------------------------------------------
// weight_profile
// ---------------------------------------------------------------------------

weight_profile::weight_profile(std::uint64_t n)
    : values_(1, 0.0), counts_(1), n_(n) {
    KD_EXPECTS_MSG(n >= 1, "a profile needs at least one bin");
    index_.emplace(0.0, 0);
    counts_.add(0, static_cast<std::int64_t>(n));
}

std::uint64_t weight_profile::bins_at(double value) const {
    const auto it = index_.find(value);
    return it != index_.end() ? counts_.value_at(it->second) : 0;
}

void weight_profile::extract_value(double value) {
    const auto it = index_.find(value);
    KD_EXPECTS_MSG(it != index_.end() && counts_.value_at(it->second) >= 1,
                   "extract_value needs a bin at that weight load");
    const std::size_t slot = it->second;
    counts_.add(slot, -1);
    total_weight_ -= value;
    if (counts_.value_at(slot) == 0) {
        index_.erase(it);
        free_slots_.push_back(slot);
    }
}

void weight_profile::insert_value(double value) {
    KD_EXPECTS_MSG(value >= 0.0, "weight loads are non-negative");
    const auto it = index_.find(value);
    if (it != index_.end()) {
        counts_.add(it->second, 1);
        total_weight_ += value;
        return;
    }
    std::size_t slot = 0;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        values_[slot] = value;
    } else {
        slot = values_.size();
        values_.push_back(value);
        if (slot >= counts_.size()) {
            counts_.grow_to(slot + 1); // doubles internally, amortized
        }
    }
    index_.emplace(value, slot);
    counts_.add(slot, 1);
    total_weight_ += value;
}

double weight_profile::max_load() const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "profile has extracted bins mid-round");
    KD_ASSERT(!index_.empty());
    return index_.rbegin()->first;
}

double weight_profile::gap() const {
    return max_load() - total_weight_ / static_cast<double>(n_);
}

std::vector<double> weight_profile::to_sorted_weights() const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "profile has extracted bins mid-round");
    std::vector<double> out;
    out.reserve(n_);
    for (auto it = index_.rbegin(); it != index_.rend(); ++it) {
        out.insert(out.end(), counts_.value_at(it->second), it->first);
    }
    return out;
}

namespace {

constexpr const char* weight_snapshot_magic = "kdc-weight-profile";
constexpr int weight_snapshot_version = 1;

} // namespace

void weight_profile::save(std::ostream& out) const {
    KD_EXPECTS_MSG(remaining_bins() == n_,
                   "cannot snapshot a profile with extracted bins mid-round");
    std::ostringstream body;
    body.precision(std::numeric_limits<double>::max_digits10);
    body << weight_snapshot_magic << ' ' << weight_snapshot_version << '\n';
    body << n_ << ' ' << index_.size() << '\n';
    // Ascending value order: the snapshot is a pure function of the
    // multiset, independent of slot-creation history.
    for (const auto& [value, slot] : index_) {
        body << value << ' ' << counts_.value_at(slot) << '\n';
    }
    const std::string text = body.str();
    out << text << "crc32 " << std::hex << std::setw(8) << std::setfill('0')
        << crc32(text) << std::dec << '\n';
    if (!out) {
        throw cli_error("weight_profile snapshot write failed");
    }
}

weight_profile weight_profile::load(std::istream& in) {
    const std::string body = checked_snapshot_body(in, "weight_profile");
    std::istringstream fields(body);
    std::string magic;
    int version = 0;
    if (!(fields >> magic >> version)) {
        throw cli_error(
            "weight_profile snapshot: missing header (expected '" +
            std::string(weight_snapshot_magic) + " <version>')");
    }
    if (magic != weight_snapshot_magic) {
        throw cli_error("weight_profile snapshot: bad magic '" + magic +
                        "' (expected '" + std::string(weight_snapshot_magic) +
                        "')");
    }
    if (version != weight_snapshot_version) {
        throw cli_error("weight_profile snapshot: unsupported version " +
                        std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(weight_snapshot_version) + ")");
    }
    std::uint64_t n = 0;
    std::uint64_t distinct = 0;
    if (!(fields >> n >> distinct) || n == 0 || distinct == 0) {
        throw cli_error("weight_profile snapshot: malformed bin or distinct "
                        "value count");
    }
    if (distinct > body.size()) {
        throw cli_error("weight_profile snapshot: declared distinct count " +
                        std::to_string(distinct) +
                        " exceeds what the file could hold");
    }
    weight_profile profile(n);
    profile.values_.clear();
    profile.index_.clear();
    profile.free_slots_.clear();
    profile.counts_ = fenwick_tree(distinct);
    profile.total_weight_ = 0.0;
    std::uint64_t bins = 0;
    double previous = -1.0;
    for (std::uint64_t row = 0; row < distinct; ++row) {
        double value = 0.0;
        std::uint64_t count = 0;
        if (!(fields >> value >> count)) {
            throw cli_error("weight_profile snapshot: expected " +
                            std::to_string(distinct) +
                            " '<value> <count>' rows, got " +
                            std::to_string(row));
        }
        if (!std::isfinite(value) || value < 0.0 || value <= previous) {
            throw cli_error("weight_profile snapshot: values must be "
                            "non-negative, finite and strictly ascending; "
                            "row " +
                            std::to_string(row) + " violates that");
        }
        if (count == 0) {
            throw cli_error("weight_profile snapshot: row " +
                            std::to_string(row) +
                            " declares zero bins at its value");
        }
        previous = value;
        const std::size_t slot = profile.values_.size();
        profile.values_.push_back(value);
        profile.index_.emplace(value, slot);
        profile.counts_.add(slot, static_cast<std::int64_t>(count));
        profile.total_weight_ += value * static_cast<double>(count);
        bins += count;
    }
    fields >> std::ws;
    if (!fields.eof()) {
        throw cli_error("weight_profile snapshot: trailing data after the "
                        "declared " +
                        std::to_string(distinct) + " rows");
    }
    if (bins != n) {
        throw cli_error("weight_profile snapshot: counts sum to " +
                        std::to_string(bins) +
                        " bins but the header promises " + std::to_string(n));
    }
    return profile;
}

// ---------------------------------------------------------------------------
// weighted_kd_level_process
// ---------------------------------------------------------------------------

weighted_kd_level_process::weighted_kd_level_process(
    std::uint64_t n, std::uint64_t k, std::uint64_t d, std::uint64_t seed,
    weight_distribution weights)
    : profile_(n), k_(k), d_(d), weights_(std::move(weights)), gen_(seed),
      probe_draws_(n) {
    KD_EXPECTS_MSG(k >= 1 && k < d && d <= n, "requires 1 <= k < d <= n");
    KD_EXPECTS_MSG(static_cast<bool>(weights_),
                   "weight distribution must be callable");
    weight_buffer_.resize(k);
    distinct_.reserve(d);
    slots_.reserve(d);
}

void weighted_kd_level_process::run_round() {
    // Probe step: exact with-replacement collision simulation (header
    // comment); fresh bins are extracted so later draws sample the
    // remaining profile without replacement.
    distinct_.clear();
    for (std::uint64_t probe = 0; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto j = static_cast<std::uint64_t>(distinct_.size());
        if (v < j) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const double value = profile_.value_at_rank(v - j);
            profile_.extract_value(value);
            distinct_.push_back({value, value, 1});
        }
    }

    for (auto& w : weight_buffer_) {
        w = weights_(gen_);
        KD_ENSURES_MSG(w > 0.0 && std::isfinite(w),
                       "ball weights must be positive and finite");
    }

    // One slot per probe occurrence (multiplicity rule: a bin sampled m
    // times owns m candidate slots and can gain at most m balls).
    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        for (std::uint32_t o = 0; o < distinct_[t].multiplicity; ++o) {
            slots_.push_back(slot{static_cast<std::uint64_t>(gen_()), t});
        }
    }

    // Heaviest ball to lightest slot, re-scanning current loads exactly as
    // the per-bin greedy does (slots of one bin get heavier as earlier
    // balls land on it); ties on load break by slot key.
    std::sort(weight_buffer_.begin(), weight_buffer_.end(),
              std::greater<>{});
    slot_used_.assign(slots_.size(), 0);
    for (const double w : weight_buffer_) {
        std::size_t best = slots_.size();
        double best_load = 0.0;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (slot_used_[s]) {
                continue;
            }
            const double current = distinct_[slots_[s].probe].current;
            if (best == slots_.size() || current < best_load ||
                (current == best_load &&
                 slots_[s].tie_key < slots_[best].tie_key)) {
                best = s;
                best_load = current;
            }
        }
        KD_ASSERT(best < slots_.size());
        slot_used_[best] = 1;
        distinct_[slots_[best].probe].current += w;
    }

    for (const auto& probe : distinct_) {
        profile_.insert_value(probe.current);
    }

    balls_placed_ += k_;
    messages_ += d_;
}

void weighted_kd_level_process::run_rounds(std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
        run_round();
    }
}

void weighted_kd_level_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    run_rounds(balls / k_);
}

double weighted_kd_process::max_load() const {
    KD_EXPECTS(!loads_.empty());
    return *std::max_element(loads_.begin(), loads_.end());
}

double weighted_kd_process::gap() const {
    return max_load() - total_weight_ / static_cast<double>(loads_.size());
}

} // namespace kdc::core
