// The paper's open question (Section 7): the heavily loaded behaviour of
// (k,d)-choice for k < d < 2k, where Theorem 2's sandwich collapses
// (floor(d/k) = 1 gives no upper bracket).
//
// This harness explores it empirically: for near-diagonal configurations it
// sweeps m/n and reports the gap (max - m/n). Two hypotheses it can
// distinguish:
//   (H1) the gap stays bounded in m (like d >= 2k / the d-choice family);
//   (H2) the gap grows with m (like single choice, whose gap is
//        Theta(sqrt((m/n) log n))).
// The single-choice and (1, 2)-choice columns anchor the two behaviours.
//
//   ./open_question_heavy [--n=16384] [--reps=5] [--seed=12]
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "16384", "number of bins");
    args.add_option("reps", "5", "repetitions per point");
    args.add_option("seed", "12", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    struct config {
        const char* label;
        std::uint64_t k, d; // k = 0 marks single choice
    };
    const std::vector<config> configs{
        {"single", 0, 0},   {"(1,2)", 1, 2},     {"(3,4)", 3, 4},
        {"(8,9)", 8, 9},    {"(16,17)", 16, 17}, {"(16,24)", 16, 24},
    };
    const std::vector<std::uint64_t> load_factors{1, 4, 16, 64};

    std::cout << "Open question (Section 7): heavily loaded gap for "
                 "k < d < 2k, n = " << n << "\n"
              << "gap = max load - m/n; anchors: single choice grows ~ "
                 "sqrt((m/n) ln n), (1,2) stays flat\n\n";

    kdc::text_table table;
    std::vector<std::string> header{"m/n"};
    for (const auto& cfg : configs) {
        header.push_back(cfg.label);
    }
    table.set_header(header);

    std::uint64_t point_seed = seed;
    for (const auto factor : load_factors) {
        std::vector<std::string> row{std::to_string(factor)};
        const std::uint64_t m = factor * n;
        for (const auto& cfg : configs) {
            ++point_seed;
            kdc::core::experiment_result result;
            if (cfg.k == 0) {
                result = kdc::core::run_single_choice_experiment(
                    n, {.balls = m, .reps = reps, .seed = point_seed});
            } else {
                result = kdc::core::run_kd_experiment(
                    n, cfg.k, cfg.d,
                    {.balls = m - (m % cfg.k), .reps = reps,
                     .seed = point_seed});
            }
            row.push_back(kdc::format_fixed(result.gap_stats.mean(), 2));
        }
        table.add_row(std::move(row));
    }
    std::cout << table << '\n'
              << "Empirical reading: if the k < d < 2k columns stay flat "
                 "like (1,2) rather than\n"
                 "growing like single choice, the open question resolves "
                 "toward (H1) boundedness\n"
                 "at simulation scale.\n";
    return 0;
}
