// Keeps docs/scenario-grammar.md honest. The key table in that page is
// machine-extracted here and checked against the parser itself:
//
//   * the documented key set must equal the parser's key set exactly
//     (extracted from the "unknown scenario key" error, so a key added
//     to the grammar without a docs row fails, and vice versa);
//   * every `example` cell must be a complete scenario string that
//     parses, validates, and round-trips through to_string.
//
// KDC_DOCS_DIR is injected by tests/CMakeLists.txt and points at the
// source-tree docs/ directory.

#include "core/fault_injection.hpp"
#include "core/scenario.hpp"
#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

using kdc::cli_error;
using kdc::core::parse_scenario;
using kdc::core::scenario;
using kdc::core::to_string;
using kdc::core::validate_scenario;

std::string read_grammar_page() {
    const std::string path = std::string(KDC_DOCS_DIR) + "/scenario-grammar.md";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// The parser is the authority on which keys exist: an unknown key's
// cli_error enumerates the valid set.
std::set<std::string> parser_key_set() {
    std::set<std::string> keys;
    try {
        (void)parse_scenario("kd:n=512,zzz=1");
        ADD_FAILURE() << "parser accepted an unknown key";
    } catch (const cli_error& err) {
        const std::string message = err.what();
        const std::string marker = "valid keys: ";
        const auto at = message.find(marker);
        EXPECT_NE(at, std::string::npos) << message;
        std::istringstream list(message.substr(at + marker.size()));
        std::string key;
        while (std::getline(list, key, ',')) {
            const auto begin = key.find_first_not_of(' ');
            const auto end = key.find_last_not_of(' ');
            if (begin != std::string::npos) {
                keys.insert(key.substr(begin, end - begin + 1));
            }
        }
    }
    return keys;
}

struct doc_row {
    std::string key;
    std::string example;
};

std::string strip_backticks(std::string cell) {
    cell.erase(std::remove(cell.begin(), cell.end(), '`'), cell.end());
    const auto begin = cell.find_first_not_of(' ');
    if (begin == std::string::npos) {
        return "";
    }
    const auto end = cell.find_last_not_of(' ');
    return cell.substr(begin, end - begin + 1);
}

// Table rows look like: | `key` | values | default | meaning | `example` |
// The key is the first cell, the example the last non-empty cell.
std::vector<doc_row> documented_rows(const std::string& page) {
    std::vector<doc_row> rows;
    std::istringstream lines(page);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("| `", 0) != 0) {
            continue;
        }
        std::vector<std::string> cells;
        std::istringstream parts(line);
        std::string cell;
        while (std::getline(parts, cell, '|')) {
            cells.push_back(cell);
        }
        while (!cells.empty() && strip_backticks(cells.back()).empty()) {
            cells.pop_back();
        }
        if (cells.size() < 3) {
            continue;
        }
        rows.push_back({strip_backticks(cells[1]), strip_backticks(cells.back())});
    }
    return rows;
}

TEST(DocsGrammar, KeyTableMatchesParserExactly) {
    const std::set<std::string> parser_keys = parser_key_set();
    ASSERT_FALSE(parser_keys.empty());

    std::set<std::string> doc_keys;
    for (const doc_row& row : documented_rows(read_grammar_page())) {
        EXPECT_TRUE(doc_keys.insert(row.key).second)
            << "key '" << row.key << "' documented twice";
    }

    for (const std::string& key : parser_keys) {
        EXPECT_TRUE(doc_keys.count(key))
            << "parser key '" << key
            << "' has no row in docs/scenario-grammar.md";
    }
    for (const std::string& key : doc_keys) {
        EXPECT_TRUE(parser_keys.count(key))
            << "documented key '" << key << "' does not exist in the parser";
    }
}

TEST(DocsGrammar, EveryExampleParsesValidatesAndRoundTrips) {
    const std::vector<doc_row> rows = documented_rows(read_grammar_page());
    ASSERT_FALSE(rows.empty());

    for (const doc_row& row : rows) {
        SCOPED_TRACE("key '" + row.key + "' example '" + row.example + "'");
        ASSERT_FALSE(row.example.empty());

        scenario parsed;
        ASSERT_NO_THROW(parsed = parse_scenario(row.example));
        ASSERT_NO_THROW(validate_scenario(parsed));

        // The example must actually exercise its own key (defaults do
        // not count): re-parsing the canonical spelling must mention it
        // or the row documents the family prefix itself.
        const std::string canonical = to_string(parsed);
        scenario round_tripped;
        ASSERT_NO_THROW(round_tripped = parse_scenario(canonical));
        EXPECT_EQ(round_tripped, parsed) << "canonical form: " << canonical;
    }
}

TEST(DocsGrammar, ErrorCatalogCoversUnknownKeyMessage) {
    // The error catalog section transcribes parser messages; spot-check
    // that the load-bearing one (the key list) is present verbatim.
    const std::string page = read_grammar_page();
    std::string expected = "unknown scenario key '...'; valid keys: ";
    bool first = true;
    for (const std::string& key : parser_key_set()) {
        if (!first) {
            expected += ", ";
        }
        expected += key;
        first = false;
    }
    EXPECT_NE(page.find(expected), std::string::npos)
        << "docs error catalog is missing or stale: " << expected;
}

// ---------------------------------------------------------------------------
// docs/robustness.md: the fault-site catalog and example plans are checked
// against core/fault_injection.hpp the same way the grammar page is checked
// against the scenario parser.
// ---------------------------------------------------------------------------

std::string read_robustness_page() {
    const std::string path = std::string(KDC_DOCS_DIR) + "/robustness.md";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

// First backticked cell of each `| \`...\` |` table row inside the named
// "## ..." section (up to the next "## " heading).
std::vector<std::string> section_row_cells(const std::string& page,
                                           const std::string& heading) {
    std::vector<std::string> cells;
    std::istringstream lines(page);
    std::string line;
    bool inside = false;
    while (std::getline(lines, line)) {
        if (line.rfind("## ", 0) == 0) {
            inside = line == heading;
            continue;
        }
        if (inside && line.rfind("| `", 0) == 0) {
            const auto close = line.find('`', 3);
            if (close != std::string::npos) {
                cells.push_back(line.substr(3, close - 3));
            }
        }
    }
    return cells;
}

TEST(DocsRobustness, FaultSiteTableMatchesTheImplementationExactly) {
    const auto documented =
        section_row_cells(read_robustness_page(), "## Fault sites");
    const auto actual = kdc::core::fault_site_names();
    ASSERT_FALSE(documented.empty());
    // Same names, same order: the table IS the catalog.
    ASSERT_EQ(documented.size(), actual.size())
        << "docs/robustness.md site table has drifted from "
           "fault_site_names()";
    for (std::size_t i = 0; i < actual.size(); ++i) {
        EXPECT_EQ(documented[i], actual[i]) << "row " << i;
    }
}

TEST(DocsRobustness, EveryExamplePlanParses) {
    const auto plans =
        section_row_cells(read_robustness_page(), "## Example plans");
    ASSERT_FALSE(plans.empty());
    for (const std::string& plan : plans) {
        SCOPED_TRACE("plan '" + plan + "'");
        EXPECT_NO_THROW((void)kdc::core::fault_plan::parse(plan));
    }
}

TEST(DocsRobustness, GrammarActionsAreTranscribedVerbatim) {
    const std::string page = read_robustness_page();
    for (const char* needle :
         {"'crash' | 'io_error' | 'alloc_fail'", "KDC_FAULTS",
          "--inject-faults", "crc32 <8 lowercase hex digits>"}) {
        EXPECT_NE(page.find(needle), std::string::npos)
            << "docs/robustness.md lost the load-bearing text: " << needle;
    }
}

}  // namespace
