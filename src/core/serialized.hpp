// Serialization of (k,d)-choice (Definition 1 of the paper).
//
// A_sigma places the k balls of every round one at a time: ball s of round r
// lands in the sigma_r(s)-th least loaded candidate slot of the round's probe
// multiset. For any permutation schedule sigma the *final* allocation of the
// round is the same k least-loaded slots — that is Property (i),
// A_sigma(k,d) == A(k,d) — but the per-ball height sequence B^{A_sigma}_x(t)
// depends on sigma. The lower-bound analysis of the paper (Lemmas 7-10)
// reasons about those serialized trajectories, and the test suite checks
// Property (i) both exactly (coupled samples) and distributionally.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/round_kernel.hpp"
#include "core/types.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

/// Produces the permutation sigma_r of {0, ..., k-1} for round r. The
/// returned vector must be a permutation of size k (checked).
using sigma_schedule =
    std::function<std::vector<std::uint32_t>(std::uint64_t round,
                                             std::size_t k)>;

/// sigma_r = identity: balls revealed lowest-destination first.
[[nodiscard]] sigma_schedule identity_schedule();

/// sigma_r = reversal: balls revealed highest-destination first.
[[nodiscard]] sigma_schedule reverse_schedule();

/// sigma_r drawn uniformly at random each round (seeded independently of the
/// process's probe randomness so coupling experiments can share probes).
[[nodiscard]] sigma_schedule random_schedule(std::uint64_t seed);

/// The same fixed permutation every round.
[[nodiscard]] sigma_schedule fixed_schedule(std::vector<std::uint32_t> sigma);

class serialized_process {
public:
    serialized_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                       std::uint64_t seed, sigma_schedule schedule);

    void run_round();
    void run_round_with_samples(std::span<const std::uint32_t> samples);
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

    /// Placement log in serialization order: entry t is the t-th ball placed
    /// (1-based time in the paper; 0-based index here).
    [[nodiscard]] const std::vector<placed_ball>& placements() const noexcept {
        return placements_;
    }

private:
    load_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    sigma_schedule schedule_;
    std::vector<placed_ball> placements_;
    std::vector<placed_ball> round_slots_;
    std::vector<std::uint32_t> sample_buffer_;
    round_scratch scratch_;
    rng::xoshiro256ss gen_;
    // Same buffered probe stream as kd_choice_process so the Section 3
    // coupling (identical seed => identical probe multisets) stays exact.
    rng::batched_uniform probe_draws_;
};

} // namespace kdc::core
