# SIMD feature gate for the kernels' vectorized helpers.
#
# KDC_SIMD=ON (the default) defines KDC_ENABLE_SIMD on targets opted in via
# kdc_enable_simd(); the code additionally guards every intrinsic block with
# the compiler's own ISA macro (e.g. __SSE2__), so no -m flags are added here
# and binaries never execute instructions the build target does not already
# guarantee. KDC_SIMD=OFF forces the scalar fallbacks everywhere — useful to
# benchmark the gain or to rule the intrinsics out when debugging.
option(KDC_SIMD "Enable SIMD fast paths in the kernels" ON)

function(kdc_enable_simd target)
    if(KDC_SIMD)
        target_compile_definitions(${target} PUBLIC KDC_ENABLE_SIMD)
    endif()
endfunction()
