// Smoke test for the installed kdchoice package: exercises the umbrella
// header (<kdchoice.hpp>) and one type from each exported layer — the
// declarative scenario API, the execution engine, and stats — through the
// same include paths a downstream project uses, and exits non-zero on any
// surprise so CI can gate on it.
#include <cstdio>

#include "kdchoice.hpp"

int main() {
    // The scenario API through the installed tree: parse, construct via
    // the policy registry, run on the auto-resolved kernel.
    const auto sc =
        kdc::core::parse_scenario("kd:n=256,k=2,d=4,kernel=auto");
    auto process = kdc::core::make_process(sc, /*seed=*/7);
    process.run_balls(kdc::core::resolved_balls(sc));
    if (process.observe().max_load < 1.0) {
        std::puts("FAIL: scenario run placed no balls");
        return 1;
    }

    // One small adaptive sweep end-to-end on the installed library, with
    // cells built from scenarios.
    std::vector<kdc::core::sweep_cell> cells;
    cells.push_back(kdc::core::make_scenario_cell(
        "kd(2,4)", sc, {.balls = 256, .reps = 8, .seed = 42}));
    kdc::core::sweep_options options;
    options.threads = 2;
    options.stopping = kdc::core::confidence_width_rule(
        /*ci_half_width=*/5.0, /*min_reps=*/2);
    const auto outcomes = kdc::core::run_sweep(cells, options);
    if (outcomes.size() != 1 || outcomes[0].result.reps.empty()) {
        std::puts("FAIL: sweep produced no outcome");
        return 1;
    }
    const double width =
        kdc::stats::t_ci_half_width(outcomes[0].result.max_load_stats, 0.95);
    std::printf("installed kdchoice OK: scenario '%s', %zu reps, max-load "
                "CI half-width %.3f\n",
                kdc::core::to_string(sc).c_str(),
                outcomes[0].result.reps.size(), width);
    return 0;
}
