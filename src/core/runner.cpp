#include "core/runner.hpp"

#include "core/level_process.hpp"
#include "support/cli.hpp"

namespace kdc::core {

kernel_kind kernel_from_cli(const arg_parser& args) {
    const auto value = args.get_string("kernel");
    if (value == "perbin") {
        return kernel_kind::per_bin;
    }
    if (value == "level") {
        return kernel_kind::level;
    }
    throw cli_error("option --kernel must be 'perbin' or 'level', got '" +
                    value + "'");
}

const char* kernel_name(kernel_kind kernel) noexcept {
    return kernel == kernel_kind::level ? "level" : "perbin";
}

const char* par_mode_name(par_mode mode) noexcept {
    return mode == par_mode::round ? "round" : "rep";
}

par_mode par_mode_from_name(const std::string& name) {
    if (name == "rep") {
        return par_mode::rep;
    }
    if (name == "round") {
        return par_mode::round;
    }
    throw cli_error("par must be 'rep' or 'round', got '" + name + "'");
}

const char* metric_name(metric_kind metric) noexcept {
    switch (metric) {
    case metric_kind::gap:
        return "gap";
    case metric_kind::messages:
        return "messages";
    case metric_kind::max_load:
        break;
    }
    return "max_load";
}

metric_kind metric_from_name(const std::string& name) {
    if (name == "max_load") {
        return metric_kind::max_load;
    }
    if (name == "gap") {
        return metric_kind::gap;
    }
    if (name == "messages") {
        return metric_kind::messages;
    }
    throw cli_error("metric must be one of 'max_load', 'gap' or 'messages', "
                    "got '" +
                    name + "'");
}

std::uint64_t whole_rounds_balls(std::uint64_t n, std::uint64_t k) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(n >= k,
                   "need n >= k bins: not even one round of k balls fits");
    return n - (n % k);
}

experiment_result run_kd_experiment(std::uint64_t n, std::uint64_t k,
                                    std::uint64_t d,
                                    const experiment_config& config) {
    return run_kd_experiment(n, k, d, config, kernel_kind::per_bin);
}

experiment_result run_kd_experiment(std::uint64_t n, std::uint64_t k,
                                    std::uint64_t d,
                                    const experiment_config& config,
                                    kernel_kind kernel) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = whole_rounds_balls(n, k);
    }
    if (kernel == kernel_kind::level) {
        return run_experiment(actual, [n, k, d](std::uint64_t seed) {
            return kd_choice_level_process(n, k, d, seed);
        });
    }
    return run_experiment(actual, [n, k, d](std::uint64_t seed) {
        return kd_choice_process(n, k, d, seed);
    });
}

experiment_result
run_single_choice_experiment(std::uint64_t n, const experiment_config& config) {
    return run_single_choice_experiment(n, config, kernel_kind::per_bin);
}

experiment_result
run_single_choice_experiment(std::uint64_t n, const experiment_config& config,
                             kernel_kind kernel) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    if (kernel == kernel_kind::level) {
        return run_experiment(actual, [n](std::uint64_t seed) {
            return single_choice_level_process(n, seed);
        });
    }
    return run_experiment(actual, [n](std::uint64_t seed) {
        return single_choice_process(n, seed);
    });
}

experiment_result run_d_choice_experiment(std::uint64_t n, std::uint64_t d,
                                          const experiment_config& config) {
    return run_d_choice_experiment(n, d, config, kernel_kind::per_bin);
}

experiment_result run_d_choice_experiment(std::uint64_t n, std::uint64_t d,
                                          const experiment_config& config,
                                          kernel_kind kernel) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    if (kernel == kernel_kind::level) {
        return run_experiment(actual, [n, d](std::uint64_t seed) {
            return d_choice_level_process(n, d, seed);
        });
    }
    return run_experiment(actual, [n, d](std::uint64_t seed) {
        return d_choice_process(n, d, seed);
    });
}

} // namespace kdc::core
