// Sampling utilities built on the unbiased bounded-uniform primitive:
// with-replacement bin sampling (the (k,d)-choice probe step), Floyd's
// without-replacement sampling, Fisher-Yates shuffling and random
// permutations (used by the serialized process of Definition 1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/uniform.hpp"
#include "support/contracts.hpp"

namespace kdc::rng {

/// Fills `out` with indices drawn i.u.r. *with replacement* from [0, n).
/// This is exactly the probe step of the (k,d)-choice process.
template <typename G>
    requires std::uniform_random_bit_generator<G>
void sample_with_replacement(G& gen, std::uint64_t n,
                             std::span<std::uint32_t> out) {
    KD_EXPECTS(n >= 1);
    for (auto& slot : out) {
        slot = static_cast<std::uint32_t>(uniform_below(gen, n));
    }
}

/// In-place Fisher-Yates shuffle.
template <typename G, typename T>
    requires std::uniform_random_bit_generator<G>
void shuffle(G& gen, std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(uniform_below(gen, i));
        std::swap(items[i - 1], items[j]);
    }
}

/// Reusable epoch-stamp scratch for sample_without_replacement: one stamp per
/// domain element, so the membership test "was this index already chosen?" is
/// O(1) instead of a linear scan over the chosen prefix. Hold one of these
/// per sampler (e.g. per allocation process) to amortize the O(n) stamp
/// array across calls.
struct sample_scratch {
    std::vector<std::uint32_t> stamps;
    std::uint32_t epoch = 0;
};

/// Fills `out` with out.size() distinct indices from [0, n) via Robert
/// Floyd's algorithm: O(out.size()) expected work per call once `scratch` is
/// warm. Output order is randomized.
template <typename G>
    requires std::uniform_random_bit_generator<G>
void sample_without_replacement(G& gen, std::uint64_t n,
                                sample_scratch& scratch,
                                std::span<std::uint32_t> out) {
    const std::uint64_t count = out.size();
    KD_EXPECTS(count <= n);
    if (scratch.stamps.size() < n) {
        scratch.stamps.assign(n, 0);
        scratch.epoch = 0;
    }
    if (++scratch.epoch == 0) { // stamp wrap-around: clear and restart
        std::fill(scratch.stamps.begin(), scratch.stamps.end(), 0u);
        scratch.epoch = 1;
    }
    std::size_t written = 0;
    for (std::uint64_t j = n - count; j < n; ++j) {
        const auto candidate =
            static_cast<std::uint32_t>(uniform_below(gen, j + 1));
        const auto pick = scratch.stamps[candidate] != scratch.epoch
                              ? candidate
                              : static_cast<std::uint32_t>(j);
        scratch.stamps[pick] = scratch.epoch;
        out[written++] = pick;
    }
    // Floyd's algorithm biases the *order* (later slots tend to hold larger
    // values); shuffle so callers may treat the output as a random sequence.
    shuffle(gen, out);
    KD_ENSURES(written == count);
}

/// Returns `count` distinct indices from [0, n) via Robert Floyd's algorithm.
/// Convenience overload that builds its own scratch (O(n) stamp allocation);
/// hot paths should hold a sample_scratch and use the overload above. The
/// output sequence is identical for a same-seeded generator.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t>
sample_without_replacement(G& gen, std::uint64_t n, std::uint64_t count) {
    std::vector<std::uint32_t> chosen(count);
    sample_scratch scratch;
    sample_without_replacement(gen, n, scratch,
                               std::span<std::uint32_t>(chosen));
    return chosen;
}

/// Returns a uniformly random permutation of {0, 1, ..., n-1}.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t> random_permutation(G& gen,
                                                            std::uint32_t n) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    shuffle(gen, std::span<std::uint32_t>(perm));
    return perm;
}

} // namespace kdc::rng
