#include "core/exact.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::exact_max_load;
using kdc::core::exact_process;
using kdc::core::exact_round;

double total_probability(const kdc::core::state_distribution& dist) {
    double sum = 0.0;
    for (const auto& [state, p] : dist) {
        sum += p;
    }
    return sum;
}

TEST(ExactRound, ProbabilitiesSumToOne) {
    const auto dist = exact_round({2, 1, 0}, 2, 3);
    EXPECT_NEAR(total_probability(dist), 1.0, 1e-12);
}

TEST(ExactRound, StatesAreSortedAndConserveBalls) {
    const auto dist = exact_round({3, 1, 0, 0}, 2, 3);
    for (const auto& [state, p] : dist) {
        EXPECT_TRUE(std::is_sorted(state.begin(), state.end(),
                                   std::greater<>{}));
        std::uint64_t total = 0;
        for (const auto load : state) {
            total += load;
        }
        EXPECT_EQ(total, 6u); // 4 initial + 2 placed
        EXPECT_GT(p, 0.0);
    }
}

TEST(ExactRound, HandComputedTwoBins) {
    // n = 2 bins at {1, 0}, one ball, two probes: the ball lands in the
    // loaded bin only if both probes hit it (prob 1/4, slots at heights 2,3)
    // -> state {2,0}; otherwise the empty bin is among the probes and wins
    // (its slot height 1 < 2) -> state {1,1}.
    const auto dist = exact_round({1, 0}, 1, 2);
    ASSERT_EQ(dist.size(), 2u);
    EXPECT_NEAR(dist.at({2, 0}), 0.25, 1e-12);
    EXPECT_NEAR(dist.at({1, 1}), 0.75, 1e-12);
}

TEST(ExactRound, TieBreakSplitsUniformly) {
    // n = 3 empty bins, probes = all distinct is not forced here: with
    // k = 1, d = 2 from {0,0,0}, the ball is uniform over the two sampled
    // bins' slots; by symmetry the resulting sorted state is always
    // {1,0,0} with probability 1.
    const auto dist = exact_round({0, 0, 0}, 1, 2);
    ASSERT_EQ(dist.size(), 1u);
    EXPECT_NEAR(dist.at({1, 0, 0}), 1.0, 1e-12);
}

TEST(ExactRound, ContractChecks) {
    EXPECT_THROW((void)exact_round({0, 1}, 1, 2), kdc::contract_violation);
    EXPECT_THROW((void)exact_round({1, 0}, 3, 2), kdc::contract_violation);
    EXPECT_THROW((void)exact_round({}, 1, 2), kdc::contract_violation);
}

TEST(ExactProcess, TwoBinsOneRoundMatchesHand) {
    // (1,2) on n = 2, after both balls: P(max=2) = 1/4 (see the analysis in
    // exact.cpp's tests: ball 2 joins ball 1's bin iff both probes hit it).
    const auto dist = exact_max_load(2, 1, 2);
    ASSERT_EQ(dist.size(), 2u);
    EXPECT_NEAR(dist.at(1), 0.75, 1e-12);
    EXPECT_NEAR(dist.at(2), 0.25, 1e-12);
}

TEST(ExactProcess, DistributionsSumToOne) {
    for (const auto& [n, k, d] :
         std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t>>{
             {2, 1, 2}, {3, 1, 2}, {4, 2, 3}, {4, 1, 3}, {6, 2, 3}}) {
        const auto dist = exact_max_load(n, k, d);
        double sum = 0.0;
        for (const auto& [v, p] : dist) {
            sum += p;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << "n=" << n << " k=" << k << " d=" << d;
    }
}

TEST(ExactProcess, MoreProbesStochasticallyBetter) {
    // Exact form of Property (ii) on a tiny instance: P(max >= t) for
    // (1,3) is dominated by (1,2) for every t.
    const auto d2 = exact_max_load(4, 1, 2);
    const auto d3 = exact_max_load(4, 1, 3);
    auto tail = [](const std::map<kdc::core::bin_load, double>& dist,
                   kdc::core::bin_load t) {
        double sum = 0.0;
        for (const auto& [v, p] : dist) {
            if (v >= t) {
                sum += p;
            }
        }
        return sum;
    };
    for (kdc::core::bin_load t = 1; t <= 4; ++t) {
        EXPECT_LE(tail(d3, t), tail(d2, t) + 1e-12) << "t=" << t;
    }
}

TEST(ExactVsSimulation, FrequenciesMatchChiSquare) {
    // The fast sampling kernel must agree with the exact enumeration: run
    // the simulator many times and chi-square the max-load frequencies
    // against the exact distribution.
    for (const auto& [n, k, d] :
         std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t>>{
             {2, 1, 2}, {4, 1, 2}, {4, 2, 3}, {6, 2, 3}}) {
        const auto exact = exact_max_load(n, k, d);
        const auto max_value = exact.rbegin()->first;

        std::vector<std::uint64_t> observed(max_value + 1, 0);
        constexpr int trials = 20000;
        for (int t = 0; t < trials; ++t) {
            kdc::core::kd_choice_process process(
                n, k, d, 10000 + static_cast<std::uint64_t>(t) * 13 +
                             n * 1000 + d);
            process.run_balls(n);
            const auto max = kdc::core::compute_load_metrics(
                process.loads()).max_load;
            ASSERT_LE(max, max_value);
            ++observed[max];
        }

        std::vector<double> expected(max_value + 1, 0.0);
        for (const auto& [v, p] : exact) {
            expected[v] = p;
        }
        const auto result = kdc::stats::chi_square_gof(observed, expected);
        EXPECT_GT(result.p_value, 1e-4)
            << "n=" << n << " k=" << k << " d=" << d
            << " chi2=" << result.statistic;
    }
}

TEST(ExactProcess, RequiresWholeRounds) {
    EXPECT_THROW((void)exact_max_load(5, 2, 3), kdc::contract_violation);
}

TEST(ExactRound, EnumerationSizeGuard) {
    // n^d too large must be rejected, not attempted.
    const std::vector<kdc::core::bin_load> big(50, 0);
    EXPECT_THROW((void)exact_round(big, 2, 8), kdc::contract_violation);
}

} // namespace
