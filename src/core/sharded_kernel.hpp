// Sharded round-parallel (k,d)-choice kernels: one REPETITION executed as a
// sequence of chunked, shard-partitioned phases, with output byte-identical
// to the serial kernels at every thread count, shard count and
// selection-segment count.
//
// The serial per-bin kernel (core/process.hpp) spends its time on random
// DRAM accesses: every probe reads loads[bin] at an i.u.r. index of an
// array far larger than any cache. The sharded kernel replays the EXACT
// same random tape (probe indices and tie keys, drawn in the serial
// kernel's order) but restructures the memory traffic. Every phase of a
// chunk is parallel:
//
//   pregen   (parallel)  workers pregenerate disjoint contiguous slices of
//                        the chunk's tape. Each worker reconstructs the
//                        serial generator/sampler state at its slice start
//                        with an O(log steps) F2-linear skip-ahead
//                        (rng/xoshiro_skip.hpp) plus block-position
//                        arithmetic on the batched Lemire sampler, then
//                        draws its slice exactly as the serial loop would.
//                        The arithmetic assumes the (astronomically rare)
//                        Lemire rejection never fires; every worker counts
//                        rejections, and one anywhere discards the slices
//                        and replays the chunk's tape serially. Per-shard
//                        slot counts are accumulated per slice as a side
//                        product (the bucket phase's counting pass, fused);
//   bucket   (parallel)  counting-sort the chunk's slots into S contiguous
//                        bin shards, stable so time order survives: prefix
//                        offsets per (slice, shard) are computed serially
//                        from the fused counts, then slices scatter their
//                        slots concurrently into disjoint cursor ranges —
//                        identical bucket bytes to the serial scatter;
//   gather   (parallel)  per shard: gather each slot's chunk-start load
//                        from the shard's bin window — a cache-resident
//                        window instead of random DRAM — and detect
//                        CONFLICTED bins (probed by >= 2 slots) with a
//                        first-slot-seen window array, recording each
//                        conflicted bin's first and last slot index;
//   select   (parallel)  the rounds are dealt into P contiguous SEGMENTS
//                        (selection segments, thread_pool::phase_range).
//                        A conflicted bin whose first and last probes fall
//                        in one segment is LOCAL to it (no other segment
//                        can probe it: segments are contiguous in time);
//                        the rest are CROSS bins. Each segment sweeps its
//                        rounds in order against a private overlay of its
//                        local bins: a round probing only unconflicted or
//                        clean local bins selects and commits exactly like
//                        the serial sweep; a round probing a cross bin or
//                        a tainted local bin is DIRTY — it taints its
//                        local conflicted bins (capturing their value at
//                        taint time) and is deferred. After the parallel
//                        sweep, a serial HAND-OFF replays only the dirty
//                        rounds in global round order against a table
//                        seeded with the cross bins' chunk-start loads and
//                        the tainted bins' captured values — exactly the
//                        live loads the serial sweep would have seen.
//                        P = 1 degenerates to the serial sweep with zero
//                        dirty rounds. Candidate selection itself packs
//                        (height, tie key, probe) into one 128-bit word
//                        (see select_rounds) instead of calling
//                        nth_element on a struct array per round;
//   commit   (parallel)  per shard: commit the kept flags back into the
//                        load vector, again over the shard's window.
//
// Exactness: a non-conflicted bin is probed by exactly one round of the
// chunk, so its load is the chunk-start load for that round's whole
// selection (same-round multiplicity is the occurrence index, as in
// place_round). A conflicted bin's table entry starts at the chunk-start
// load and gains every kept ball in round order — segment-locally for
// clean rounds, via the hand-off for dirty rounds; a dirty round's bins
// are frozen (tainted) from the first dirty touch, so the hand-off replay
// resumes each bin exactly where the clean sweep left it. Commits are +1
// sums, so the commit phase's order is irrelevant. The tape equals the
// serial kernel's tape bit for bit (parallel pregeneration reconstructs
// the serial draw positions exactly, or falls back to drawing serially).
// Hence loads() after every chunk — and therefore after the run — equals
// kd_choice_process::loads() bit for bit, regardless of the shard count,
// segment count or how many pool workers execute the phases.
//
// The one caveat: the packed selection breaks exact (height, tie-key)
// ties by probe index, where the serial kernel's nth_element breaks them
// by its internal pivot walk. The two pick different slot SETS only when
// two probes of one round draw the same 64-bit tie key AND the tie
// straddles the k-boundary — probability < d^2 * 2^-64 per round, zero in
// any feasible run length.
//
// The level-kernel counterpart (sharded_kd_level_process) partitions the
// level profile itself into S shard profiles kept in deterministic
// lockstep with an authoritative serial replay; see the class comment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/level_profile.hpp"
#include "core/types.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

class thread_pool;

/// 128-bit scratch type for the multiply-high in shard_layout::shard_of
/// and the packed selection candidates (__extension__ keeps -Wpedantic
/// quiet about the GCC/Clang builtin).
__extension__ using kd_uint128 = unsigned __int128;

/// The cache-topology-derived sizing behind shards=auto: the auto shard
/// count targets `window_bins` bins per shard so that a shard's gather
/// window (4 B load + 4 B first-slot detector per bin) stays resident in
/// the detected L2 data cache. Detection reads sysconf, then
/// /sys/devices/system/cpu; when both fail, `detected` is false and
/// `window_bins` falls back to the historical 32768-bin constant.
struct shard_auto_layout {
    std::uint64_t window_bins = 32768;
    std::uint64_t l2_bytes = 0;
    bool detected = false;
};

/// The process-wide auto-shard sizing, detected once on first use.
[[nodiscard]] const shard_auto_layout& shard_auto_config();

/// Resolves a user-facing shard-count request against n bins: 0 means
/// "auto" (one shard per shard_auto_config().window_bins bins, so a
/// shard's load window stays cache-resident; at least 1, at most 4096),
/// anything else is clamped into [1, min(n, 4096)].
[[nodiscard]] std::uint64_t resolve_shard_count(std::uint64_t n,
                                                std::uint64_t requested);

/// Resolves a selection-segment request (the scenario grammar's selpar=
/// key) for a chunk of `rounds` rounds swept by `workers` cooperating
/// threads: 0 means "auto" — one segment per worker, but never fewer than
/// 64 rounds per segment (the dirty-round hand-off amortizes poorly below
/// that) and serial when there is no second worker to help. An explicit
/// request is clamped into [1, rounds]. The OUTPUT of the sharded kernel
/// is identical for every value (see the file comment); this only picks
/// the parallelism/hand-off trade-off.
[[nodiscard]] std::uint64_t resolve_selection_segments(std::uint64_t rounds,
                                                       std::uint64_t requested,
                                                       std::uint64_t workers);

/// Wall-clock seconds spent in each phase of the sharded per-bin pipeline,
/// accumulated across all chunks of a process's lifetime (steady_clock).
/// `select` covers the parallel segment sweep including its prep;
/// `handoff` is the serial dirty-round replay inside the select phase.
struct sharded_phase_times {
    double pregen = 0;
    double bucket = 0;
    double gather = 0;
    double select = 0;
    double handoff = 0;
    double commit = 0;
};

/// Deterministic partition of [0, n) bins into `shards` contiguous ranges:
/// shard s holds floor(n/S) bins, +1 for the first n mod S shards — the
/// same dealing rule as split_profile (core/level_profile.hpp) and
/// thread_pool::phase_range, so bin shards, round segments and tape
/// slices all slice identically. O(1) shard_of. Requires 1 <= shards <= n.
class shard_layout {
public:
    shard_layout(std::uint64_t n, std::uint64_t shards)
        : n_(n), shards_(shards), base_(n / shards), extra_(n % shards),
          // ceil(2^64 * S / n) makes floor(bin * mul_ / 2^64) land within
          // one shard of the true owner; shard_of fixes the off-by-one.
          // One division here buys a division-free per-probe hot path.
          // (S == n would need 2^64 itself; saturating keeps the guess
          // within one step, which the fixup loops absorb.)
          mul_(shards >= n
                   ? ~std::uint64_t{0}
                   : static_cast<std::uint64_t>(
                         ((static_cast<kd_uint128>(shards) << 64) +
                          n - 1) /
                         n)) {
        KD_EXPECTS_MSG(shards >= 1 && shards <= n,
                       "shard_layout needs 1 <= shards <= n");
    }

    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
    [[nodiscard]] std::uint64_t shards() const noexcept { return shards_; }

    /// First bin of shard s.
    [[nodiscard]] std::uint64_t begin(std::uint64_t s) const noexcept {
        return s * base_ + std::min(s, extra_);
    }
    /// One past the last bin of shard s.
    [[nodiscard]] std::uint64_t end(std::uint64_t s) const noexcept {
        return begin(s + 1);
    }
    [[nodiscard]] std::uint64_t size(std::uint64_t s) const noexcept {
        return base_ + (s < extra_ ? 1 : 0);
    }

    /// The shard owning `bin` (inverse of begin/end). Division-free: a
    /// multiply-high guess corrected by at most one begin/end comparison —
    /// this sits on the kernel's per-probe bucketing path.
    [[nodiscard]] std::uint64_t shard_of(std::uint64_t bin) const noexcept {
        std::uint64_t s = static_cast<std::uint64_t>(
            (static_cast<kd_uint128>(bin) * mul_) >> 64);
        while (bin < begin(s)) {
            --s;
        }
        while (bin >= end(s)) {
            ++s;
        }
        return s;
    }

private:
    std::uint64_t n_;
    std::uint64_t shards_;
    std::uint64_t base_;
    std::uint64_t extra_;
    std::uint64_t mul_;
};

/// Read-only shard-partitioned view of a load vector: shard_span(s) is the
/// contiguous slice of loads owned by shard s under a shard_layout. The
/// view borrows both the vector and the layout — keep them alive.
class sharded_loads {
public:
    sharded_loads(const load_vector& loads, const shard_layout& layout)
        : loads_(&loads), layout_(&layout) {
        KD_EXPECTS_MSG(loads.size() == layout.n(),
                       "layout and load vector disagree on n");
    }

    [[nodiscard]] const shard_layout& layout() const noexcept {
        return *layout_;
    }
    [[nodiscard]] std::span<const bin_load>
    shard_span(std::uint64_t s) const {
        return std::span<const bin_load>(*loads_).subspan(
            layout_->begin(s), layout_->size(s));
    }

private:
    const load_vector* loads_;
    const shard_layout* layout_;
};

/// The (k,d)-choice process on per-bin state, executed by the sharded
/// round-parallel pipeline described at the top of this header. Output is
/// byte-identical to kd_choice_process with the same (n, k, d, seed) in
/// with-replacement probe mode, for every shard count, thread count and
/// selection-segment count.
///
/// use_pool(&pool) runs every phase across the pool's workers; with no
/// pool (the default) every phase runs inline on the calling thread — the
/// chunked, shard-local memory schedule alone beats the serial kernel's
/// random-access walk on large n. Requires 1 <= k < d <= n and
/// d <= 2^31 (slot indices and packed candidates are 32-bit).
class sharded_kd_process {
public:
    /// `shards` as in resolve_shard_count, `selpar` as in
    /// resolve_selection_segments (0 = auto for both).
    sharded_kd_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                       std::uint64_t seed, std::uint64_t shards = 0,
                       std::uint64_t selpar = 0);

    /// Starts from an existing load vector (snapshot resume, heavily
    /// loaded starts). balls_placed()/messages() count only
    /// post-construction activity.
    sharded_kd_process(load_vector initial_loads, std::uint64_t k,
                       std::uint64_t d, std::uint64_t seed,
                       std::uint64_t shards = 0, std::uint64_t selpar = 0);

    /// Runs the phases on `pool` (nullptr reverts to inline execution).
    /// The pool is borrowed, not owned; output does not depend on it.
    void use_pool(thread_pool* pool) noexcept { pool_ = pool; }

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    /// Per-bin loads; refreshed from the packed bin state every time
    /// run_balls returns (the kernel keeps the live load in bin_state_).
    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    /// Probe messages issued so far: d per round (footnote 1 of the paper).
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }
    [[nodiscard]] std::uint64_t shard_count() const noexcept {
        return layout_.shards();
    }
    /// The selection-segment REQUEST (0 = auto); the effective count is
    /// resolved per chunk via resolve_selection_segments.
    [[nodiscard]] std::uint64_t selection_segments() const noexcept {
        return selpar_;
    }
    [[nodiscard]] const shard_layout& layout() const noexcept {
        return layout_;
    }
    /// Cumulative per-phase wall time (benchmark introspection).
    [[nodiscard]] const sharded_phase_times& phase_times() const noexcept {
        return phase_times_;
    }

private:
    /// Minimal open-addressing map bin -> live load for conflicted bins
    /// (expected |C|^2 / 2n entries for C probes — small). Never rehashes
    /// after rebuild, so value pointers stay stable for a whole chunk.
    struct conflict_table {
        std::vector<std::uint32_t> keys;   // empty_key = no entry
        std::vector<std::uint32_t> vals;
        std::uint64_t mask = 0;
        static constexpr std::uint32_t empty_key = 0xFFFFFFFFu;

        void rebuild(std::size_t entries);
        void insert(std::uint32_t bin, std::uint32_t load);
        /// For bins known to be present (probe chain ends at the key).
        [[nodiscard]] std::uint32_t* find(std::uint32_t bin);
        /// For membership tests: nullptr when `bin` was never inserted.
        [[nodiscard]] std::uint32_t* find_or_null(std::uint32_t bin);
    };

    /// One conflicted bin of the current chunk: its chunk-start load and
    /// the slot indices of its first and last probes — when both fall in
    /// one selection segment the bin is local to it (contiguity: no other
    /// segment's rounds can probe it).
    struct conflict_entry {
        std::uint32_t bin = 0;
        std::uint32_t base = 0;
        std::uint32_t min_slot = 0;
        std::uint32_t max_slot = 0;
    };

    /// Reusable scratch for one tape-pregenerating thread. `samples` is
    /// padded to a SIMD block multiple with an impossible bin index so the
    /// vectorized duplicate scan can read whole blocks.
    struct pregen_scratch {
        std::vector<std::uint32_t> samples;
        std::vector<std::uint32_t> sorted;
        void prepare(std::uint64_t d);
    };

    /// One parallel-pregeneration slice: its reconstructed end state (the
    /// last slice's becomes the authoritative generator/sampler on
    /// success), rejection count, and the tape side products it gathered
    /// (duplicate-round list, fused per-shard slot counts).
    struct pregen_slice {
        rng::xoshiro256ss end_gen{0};
        rng::batched_uniform end_draws{1};
        std::uint64_t rejections = 0;
        std::vector<std::uint32_t> dup_rounds;
        std::vector<std::uint32_t> dup_occ;
        std::vector<std::uint64_t> shard_counts;
        pregen_scratch scratch;
    };

    /// One selection segment's private state: the overlay of its local
    /// conflicted bins (bit 31 of a value marks the bin TAINTED — frozen
    /// for the hand-off), values captured at taint time, deferred dirty
    /// rounds (ascending), and candidate scratch.
    struct segment_state {
        conflict_table table;
        std::vector<std::pair<std::uint32_t, std::uint32_t>> captures;
        std::vector<std::uint32_t> dirty;
        std::vector<kd_uint128> cand;
        std::vector<std::uint32_t*> vals;
    };

    void run_chunk(std::uint64_t rounds);
    void pregenerate(std::uint64_t rounds);
    [[nodiscard]] bool pregenerate_parallel(std::uint64_t rounds);
    void pregen_rounds(std::uint64_t round_begin, std::uint64_t round_end,
                       rng::xoshiro256ss& gen, rng::batched_uniform& draws,
                       std::vector<std::uint32_t>& dup_rounds,
                       std::vector<std::uint32_t>& dup_occ,
                       std::vector<std::uint64_t>& shard_counts,
                       pregen_scratch& scratch);
    void bucket_by_shard(std::uint64_t rounds);
    void gather_shard(std::uint64_t shard);
    void select_rounds(std::uint64_t rounds);
    void sweep_segment(std::uint64_t segment, std::uint64_t round_begin,
                       std::uint64_t round_end);
    void replay_dirty_rounds();
    /// Selects the k lowest packed candidates of `round`, sets kept_ and
    /// (when with_vals) bumps the resolved table entries of kept
    /// conflicted slots.
    void commit_candidates(std::uint64_t round, kd_uint128* cand,
                           std::uint32_t* const* vals, bool with_vals);
    void commit_shard(std::uint64_t shard);
    void for_each_shard_parallel(void (sharded_kd_process::*phase)(
        std::uint64_t));

    load_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    shard_layout layout_;
    std::uint64_t selpar_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    thread_pool* pool_ = nullptr;

    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched — the serial tape

    std::uint64_t max_chunk_rounds_ = 1;
    sharded_phase_times phase_times_;

    // Chunk tape, indexed by slot = round * d + j in construction order.
    // Occurrence indices live in a sparse side table (dup_rounds_ /
    // dup_occ_): a duplicated bin within a round is necessarily
    // conflicted, so the dense per-slot occurrence array the pipeline
    // used to carry was d * 4 bytes of tape traffic for information that
    // is 1 for every slot of every duplicate-free round.
    std::vector<std::uint32_t> slot_bin_;
    std::vector<std::uint64_t> slot_key_;
    /// Chunk-start load per slot; bit 31 flags a conflicted bin.
    std::vector<std::uint32_t> probe_load_;
    std::vector<std::uint8_t> kept_;

    /// Chunk-local round indices (ascending) of rounds with a duplicated
    /// probe, and their d occurrence indices each (slot order).
    std::vector<std::uint32_t> dup_rounds_;
    std::vector<std::uint32_t> dup_occ_;

    // Shard bucketing: (bin << 32 | slot) pairs grouped by shard, in tape
    // (time) order within each shard.
    std::vector<std::uint64_t> bucket_;
    std::vector<std::uint64_t> bucket_start_; // S + 1 prefix offsets
    std::vector<std::uint64_t> shard_counts_;

    // Parallel pregeneration: slice states, the slice count of the current
    // chunk (0 = tape was drawn serially), and the per-(slice, shard)
    // scatter cursors of the parallel bucket phase.
    std::vector<pregen_slice> pregen_slices_;
    std::uint64_t pregen_parts_ = 0;
    std::vector<std::uint64_t> scatter_cursors_;
    pregen_scratch serial_scratch_;

    /// Packed per-bin hot state: the low word is the bin's live load, the
    /// high word the gather pass's conflict detector (slot index of the
    /// bin's first probe this chunk, `slot_unseen`, or — bit 31 set — the
    /// index of the bin's conflict_entry in its shard's list). Packing the
    /// two words one u64 apart makes the gather and commit passes cost ONE
    /// random cache-line touch per probe instead of two; loads_ itself is
    /// only materialized from the low words when run_balls returns. The
    /// detector word is reset to `unseen` by commit_shard (which touches
    /// the same bins), so no chunk-epoch bookkeeping is needed.
    std::vector<std::uint64_t> bin_state_;
    static constexpr std::uint32_t slot_unseen = 0xFFFFFFFFu;
    static constexpr std::uint32_t conflict_marker = 0x80000000u;

    /// Per-shard conflicted-bin lists, partitioned into the selection
    /// segments' private tables (local bins) and cross_list_ (cross bins)
    /// before the segment sweep.
    std::vector<std::vector<conflict_entry>> conflicts_;
    std::vector<segment_state> segments_;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> cross_list_;
    /// The hand-off table: cross bins + captured tainted bins, replayed
    /// against by the serial dirty-round pass. (With one segment every
    /// conflicted bin is local, so this stays empty.)
    conflict_table handoff_;
    // Hand-off replay scratch.
    std::vector<kd_uint128> replay_cand_;
    std::vector<std::uint32_t*> replay_vals_;
};

/// The (k,d)-choice process on level-compressed state with the profile
/// partitioned into S shard profiles (split_profile) maintained in
/// deterministic lockstep with an authoritative replay of
/// kd_choice_level_process: profile() is byte-identical to the serial
/// level kernel at every shard and thread count, and
/// merge_profiles(shard_profiles()) == profile() holds as an invariant.
///
/// Each fresh probe extracts a bin from the LOWEST-indexed shard with a
/// bin at the probed level and reinserts it into the same shard at its
/// post-round level — a pure function of the tape, so the shard partition
/// is schedule-independent. The per-round dependency through the Fenwick
/// ranks is inherently serial (every draw conditions on the exact current
/// profile), so this kernel runs its rounds on the calling thread;
/// use_pool and selpar are accepted for interface parity (the scenario
/// grammar carries both keys for either sharded kernel) and future
/// cross-shard phases, and the sharded state is what snapshot
/// partitioning and the scenario grammar's shards= key operate on.
/// Requires 1 <= k < d <= n.
class sharded_kd_level_process {
public:
    sharded_kd_level_process(std::uint64_t n, std::uint64_t k,
                             std::uint64_t d, std::uint64_t seed,
                             std::uint64_t shards = 0,
                             std::uint64_t selpar = 0);

    /// Starts from an existing profile (snapshot resume); the shard
    /// profiles are re-derived via split_profile.
    sharded_kd_level_process(level_profile initial, std::uint64_t k,
                             std::uint64_t d, std::uint64_t seed,
                             std::uint64_t shards = 0,
                             std::uint64_t selpar = 0);

    /// Accepted for interface parity with sharded_kd_process; rounds run
    /// on the calling thread (see the class comment).
    void use_pool(thread_pool* pool) noexcept { pool_ = pool; }

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    /// The S shard profiles; merge_profiles over them equals profile().
    [[nodiscard]] const std::vector<level_profile>&
    shard_profiles() const noexcept {
        return shard_profiles_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }
    [[nodiscard]] std::uint64_t shard_count() const noexcept {
        return shard_profiles_.size();
    }
    /// The carried selection-segment request (identity: serial rounds).
    [[nodiscard]] std::uint64_t selection_segments() const noexcept {
        return selpar_;
    }

private:
    void run_round();

    struct distinct_probe {
        std::uint64_t level = 0;
        std::uint32_t multiplicity = 0;
        std::uint32_t shard = 0;
    };
    struct slot {
        std::uint64_t height = 0;
        std::uint64_t tie_key = 0;
        std::uint32_t probe = 0;
    };

    level_profile profile_;
    std::vector<level_profile> shard_profiles_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t selpar_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    thread_pool* pool_ = nullptr;
    std::vector<distinct_probe> distinct_;
    std::vector<slot> slots_;
    std::vector<std::uint32_t> kept_per_probe_;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched
};

} // namespace kdc::core
