// One-shot descriptive summary of a sample: moments plus order statistics.
// Benchmark harnesses print these rows for every (k,d) configuration.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace kdc::stats {

struct sample_summary {
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0; ///< 0 when count < 2
    double min = 0.0;
    double median = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/// Computes the summary (copies + sorts the sample). Requires non-empty.
[[nodiscard]] sample_summary summarize(std::vector<double> sample);

/// Nearest-rank quantile of a *sorted* sample, p in [0,1].
[[nodiscard]] double sorted_quantile(const std::vector<double>& sorted,
                                     double p);

} // namespace kdc::stats
