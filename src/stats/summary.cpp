#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "stats/running_stats.hpp"
#include "support/contracts.hpp"

namespace kdc::stats {

double sorted_quantile(const std::vector<double>& sorted, double p) {
    KD_EXPECTS(!sorted.empty());
    KD_EXPECTS(p >= 0.0 && p <= 1.0);
    KD_EXPECTS(std::is_sorted(sorted.begin(), sorted.end()));
    if (p <= 0.0) {
        return sorted.front();
    }
    const auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size())));
    return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

sample_summary summarize(std::vector<double> sample) {
    KD_EXPECTS(!sample.empty());
    std::sort(sample.begin(), sample.end());

    running_stats acc;
    for (const double x : sample) {
        acc.push(x);
    }

    sample_summary out;
    out.count = sample.size();
    out.mean = acc.mean();
    out.stddev = sample.size() >= 2 ? acc.stddev() : 0.0;
    out.min = sample.front();
    out.median = sorted_quantile(sample, 0.5);
    out.p95 = sorted_quantile(sample, 0.95);
    out.p99 = sorted_quantile(sample, 0.99);
    out.max = sample.back();
    return out;
}

} // namespace kdc::stats
