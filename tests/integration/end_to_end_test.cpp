// Integration tests: scaled-down versions of the paper's evaluation
// artifacts, run end-to-end through the public API. The full-scale versions
// live in bench/; these guard the same pipelines at test-friendly sizes.
#include <gtest/gtest.h>

#include <cmath>

#include "core/kdchoice.hpp"
#include "rng/pcg32.hpp"
#include "sched/scheduler.hpp"
#include "stats/hypothesis.hpp"
#include "storage/cluster.hpp"
#include "theory/bounds.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::experiment_config;
using kdc::core::kd_choice_process;
using kdc::core::run_kd_experiment;
using kdc::core::run_single_choice_experiment;

constexpr std::uint64_t mini_n = 3ULL << 10; // Table 1 at 1/64 scale

TEST(Table1Mini, SingleChoiceColumnMagnitude) {
    const auto result = run_single_choice_experiment(
        mini_n, {.balls = mini_n, .reps = 10, .seed = 1});
    // ln n / ln ln n ~ 3.9 at this n; measured single-choice max load at
    // this scale lands in 5..9.
    EXPECT_GE(result.max_load_values.min_value(), 4u);
    EXPECT_LE(result.max_load_values.max_value(), 10u);
}

TEST(Table1Mini, MaxLoadDecreasesAlongTheDAxis) {
    // Within the k=1 row of Table 1, mean max load is non-increasing in d.
    double prev = 1e9;
    for (const std::uint64_t d : {2ULL, 3ULL, 5ULL, 9ULL, 17ULL}) {
        const auto result = run_kd_experiment(
            mini_n, 1, d, {.balls = mini_n, .reps = 10, .seed = 2});
        const double mean = result.max_load_stats.mean();
        EXPECT_LE(mean, prev + 0.11) << "d=" << d;
        prev = mean;
    }
}

TEST(Table1Mini, NearDiagonalCellsDegradeGracefully) {
    // Along the diagonal k = d-1, max load grows as k grows (toward the
    // single-choice limit) — the staircase visible in Table 1.
    const auto small = run_kd_experiment(
        mini_n, 2, 3, {.balls = mini_n, .reps = 10, .seed = 3});
    const auto large = run_kd_experiment(
        mini_n, 96, 97, {.balls = mini_n, .reps = 10, .seed = 4});
    EXPECT_LE(small.max_load_stats.mean(), large.max_load_stats.mean());
}

TEST(Table1Mini, WideDCellsReachTwo) {
    // Cells with large d and small-to-moderate k all read "2" in Table 1.
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {1, 49}, {2, 49}, {8, 49}, {16, 193}, {64, 193}}) {
        const auto result = run_kd_experiment(
            mini_n, k, d, {.balls = mini_n - (mini_n % k), .reps = 10,
                           .seed = 5});
        EXPECT_LE(result.max_load_values.max_value(), 3u)
            << "k=" << k << " d=" << d;
        EXPECT_GE(result.max_load_values.min_value(), 2u);
    }
}

TEST(Theorem1Envelope, MeasuredWithinBoundsAcrossRegimes) {
    // dk = O(1) regime and dk -> infinity regime, both sandwiched by the
    // Theorem 1 expressions with an additive constant of 3 (the paper's
    // O(1) slack at this scale).
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {1, 2}, {2, 4}, {8, 16},      // dk small
             {31, 32}, {95, 96}}) {        // dk large
        const auto result = run_kd_experiment(
            mini_n, k, d,
            {.balls = mini_n - (mini_n % k), .reps = 10, .seed = 6});
        const auto bound = kdc::theory::theorem1_bound(mini_n, k, d);
        EXPECT_LE(result.max_load_stats.mean(), bound.total + 3.0)
            << "k=" << k << " d=" << d;
        EXPECT_GE(result.max_load_stats.mean(), bound.first - 3.0)
            << "k=" << k << " d=" << d;
    }
}

TEST(Figure1Pipeline, SortedLoadVectorWithBeta0Landmark) {
    kd_choice_process process(mini_n, 4, 8, 7);
    process.run_balls(mini_n);
    const auto sorted = kdc::core::sorted_loads_desc(process.loads());
    ASSERT_EQ(sorted.size(), mini_n);
    // Sorted non-increasing.
    for (std::size_t i = 1; i < sorted.size(); ++i) {
        ASSERT_LE(sorted[i], sorted[i - 1]);
    }
    // The landmark beta0 = n/(6 dk) falls inside the vector and the load at
    // beta0 is between 0 and the max.
    const auto beta0 = static_cast<std::size_t>(
        kdc::theory::beta0_landmark(mini_n, 4, 8));
    ASSERT_LT(beta0, sorted.size());
    EXPECT_LE(sorted[beta0], sorted.front());
}

TEST(Figure2Pipeline, LowerBoundLandmarksOrdered) {
    kd_choice_process process(mini_n, 64, 65, 8);
    process.run_balls(mini_n);
    const auto sorted = kdc::core::sorted_loads_desc(process.loads());
    const auto gamma_star = static_cast<std::size_t>(
        kdc::theory::gamma_star_landmark(mini_n, 64, 65));
    const auto gamma0 = static_cast<std::size_t>(
        kdc::theory::gamma0_landmark(mini_n, 65));
    ASSERT_LT(gamma_star, sorted.size());
    ASSERT_LT(gamma0, sorted.size());
    // gamma0 < gamma_star (for dk > ... here 4n/dk vs n/d) and loads at the
    // two ranks are ordered accordingly (B is non-increasing in rank).
    ASSERT_LT(gamma0, gamma_star);
    EXPECT_GE(sorted[gamma0], sorted[gamma_star]);
}

TEST(TradeoffClaim, ConstantLoadWithTwoNMessages) {
    // Section 1.1: k = Theta(polylog n), d = 2k gives O(1) max load at
    // message cost exactly 2n.
    const std::uint64_t k = 96; // ~ ln^2 n at mini_n
    const auto result = run_kd_experiment(
        mini_n, k, 2 * k, {.balls = mini_n, .reps = 10, .seed = 9});
    EXPECT_LE(result.max_load_values.max_value(), 3u);
    for (const auto& rep : result.reps) {
        EXPECT_EQ(rep.messages, 2 * mini_n);
    }
}

TEST(TradeoffClaim, NearMinimalMessagesStillBeatSingleChoice) {
    // k large, d = k + ln n: message cost (1 + o(1)) n, max load well below
    // single choice.
    const std::uint64_t k = 384;
    const std::uint64_t d = k + 8; // ~ k + ln n
    const auto kd = run_kd_experiment(
        mini_n, k, d, {.balls = mini_n, .reps = 10, .seed = 10});
    const auto single = run_single_choice_experiment(
        mini_n, {.balls = mini_n, .reps = 10, .seed = 11});
    EXPECT_LT(kd.max_load_stats.mean(), single.max_load_stats.mean());
    const double cost_ratio =
        static_cast<double>(kd.reps.front().messages) /
        static_cast<double>(mini_n);
    EXPECT_LT(cost_ratio, 1.1);
}

TEST(CrossRng, Pcg32DrivenSamplingAgreesWithXoshiro) {
    // Guard against generator artifacts: the same experiment driven by an
    // independent generator family must produce the same max-load
    // distribution (KS test over repetitions).
    std::vector<double> xoshiro_max;
    std::vector<double> pcg_max;
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        kd_choice_process xp(512, 2, 4, 100 + seed);
        xp.run_balls(512);
        xoshiro_max.push_back(static_cast<double>(
            compute_load_metrics(xp.loads()).max_load));

        // Drive the round kernel directly with pcg32.
        kdc::rng::pcg32 gen(200 + seed);
        kdc::core::load_vector loads(512, 0);
        kdc::core::round_scratch scratch;
        std::vector<std::uint32_t> samples(4);
        for (int round = 0; round < 256; ++round) {
            kdc::rng::sample_with_replacement(
                gen, 512, std::span<std::uint32_t>(samples));
            kdc::core::place_round(loads, samples, 2, gen, scratch);
        }
        pcg_max.push_back(static_cast<double>(
            compute_load_metrics(loads).max_load));
    }
    const auto ks = kdc::stats::ks_two_sample(xoshiro_max, pcg_max);
    EXPECT_GT(ks.p_value, 1e-3);
}

TEST(HeavyLoad, GapStabilizesForDChoiceFlavors) {
    // Berenbrink et al.: the two-choice gap is independent of m. Check the
    // gap at m = 4n vs m = 16n stays within a small band for (2,4).
    const auto light = run_kd_experiment(
        1024, 2, 4, {.balls = 4 * 1024, .reps = 10, .seed = 12});
    const auto heavy = run_kd_experiment(
        1024, 2, 4, {.balls = 16 * 1024, .reps = 10, .seed = 13});
    EXPECT_NEAR(light.gap_stats.mean(), heavy.gap_stats.mean(), 1.5);
}

TEST(EndToEnd, SchedulerAndStorageShareTheCoreKernel) {
    // Smoke: the two application models run on the same (k,d) kernel and
    // produce sane outputs in one process.
    kdc::sched::scheduler_config sched_config;
    sched_config.workers = 16;
    sched_config.jobs = 64;
    sched_config.tasks_per_job = 2;
    sched_config.probes = 4;
    sched_config.arrival_rate = 2.0;
    sched_config.seed = 14;
    const auto sched_result = kdc::sched::simulate(sched_config);
    EXPECT_EQ(sched_result.tasks_completed, 128u);

    kdc::storage::storage_config storage_config;
    storage_config.servers = 64;
    storage_config.replicas_per_file = 2;
    storage_config.probes = 4;
    storage_config.seed = 15;
    kdc::storage::storage_cluster cluster(storage_config);
    cluster.place_files(256);
    EXPECT_EQ(compute_load_metrics(cluster.server_loads()).total_balls, 512u);
}

} // namespace
