// PCG32 (PCG-XSH-RR 64/32, O'Neill 2014; reference: pcg_basic.c, Apache-2.0).
//
// Included as a second independent generator family: the statistical test
// suite cross-checks xoshiro-driven experiments against PCG-driven ones, so a
// generator artifact can never masquerade as an allocation-process effect.
#pragma once

#include <cstdint>
#include <limits>

namespace kdc::rng {

class pcg32 {
public:
    using result_type = std::uint32_t;

    /// Seeds with an initial state and a stream selector, matching
    /// pcg32_srandom_r from the reference implementation.
    constexpr pcg32(std::uint64_t initstate, std::uint64_t initseq) noexcept {
        state_ = 0;
        inc_ = (initseq << 1) | 1u;
        (void)(*this)();
        state_ += initstate;
        (void)(*this)();
    }

    constexpr explicit pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
        : pcg32(seed, 0xda3e39cb94b95bdbULL) {}

    [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
    [[nodiscard]] static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept {
        const std::uint64_t oldstate = state_;
        state_ = oldstate * 6364136223846793005ULL + inc_;
        const auto xorshifted =
            static_cast<std::uint32_t>(((oldstate >> 18) ^ oldstate) >> 27);
        const auto rot = static_cast<std::uint32_t>(oldstate >> 59);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    friend constexpr bool operator==(const pcg32&, const pcg32&) noexcept =
        default;

private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

} // namespace kdc::rng
