#include "core/level_process.hpp"

#include <algorithm>

#include "core/process.hpp"

namespace kdc::core {

static_assert(allocation_process<kd_choice_level_process>);
static_assert(allocation_process<single_choice_level_process>);
static_assert(allocation_process<d_choice_level_process>);

kd_choice_level_process::kd_choice_level_process(std::uint64_t n,
                                                 std::uint64_t k,
                                                 std::uint64_t d,
                                                 std::uint64_t seed)
    : kd_choice_level_process(level_profile(n), k, d, seed) {}

kd_choice_level_process::kd_choice_level_process(level_profile initial,
                                                 std::uint64_t k,
                                                 std::uint64_t d,
                                                 std::uint64_t seed)
    : profile_(std::move(initial)), k_(k), d_(d), gen_(seed),
      probe_draws_(profile_.n()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= profile_.n(), "cannot probe more bins than exist");
    distinct_.reserve(d);
    slots_.reserve(d);
    kept_per_probe_.reserve(d);
}

void kd_choice_level_process::run_round() {
    // A bin sampled m times can gain up to m <= d balls this round.
    profile_.ensure_levels(profile_.max_level() + d_ + 1);

    // Probe step: one uniform-below-n draw decides collision vs fresh bin
    // (see the header comment for the exactness argument). Fresh bins are
    // extracted so later draws sample the remaining profile without
    // replacement.
    distinct_.clear();
    for (std::uint64_t probe = 0; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto j = static_cast<std::uint64_t>(distinct_.size());
        if (v < j) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const std::uint64_t level = profile_.level_at_rank(v - j);
            profile_.extract_bin(level);
            distinct_.push_back({level, 1});
        }
    }

    // Multiplicity rule as slot selection, exactly as place_round: the m
    // occurrences of a bin at level l own slots of heights l+1..l+m; keep
    // the k smallest (height, tie_key) — ties broken uniformly at random.
    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const auto& probe = distinct_[t];
        for (std::uint32_t occurrence = 1; occurrence <= probe.multiplicity;
             ++occurrence) {
            slots_.push_back(slot{probe.level + occurrence,
                                  static_cast<std::uint64_t>(gen_()), t});
        }
    }
    if (k_ < slots_.size()) {
        std::nth_element(
            slots_.begin(),
            slots_.begin() + static_cast<std::ptrdiff_t>(k_ - 1), slots_.end(),
            [](const slot& a, const slot& b) {
                if (a.height != b.height) {
                    return a.height < b.height;
                }
                return a.tie_key < b.tie_key;
            });
    }

    // A kept slot implies all lower slots of the same bin are kept, so the
    // per-bin kept count IS the bin's ball gain; reinsert each distinct bin
    // at its post-round level.
    kept_per_probe_.assign(distinct_.size(), 0);
    for (std::size_t i = 0; i < k_; ++i) {
        ++kept_per_probe_[slots_[i].probe];
    }
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        profile_.insert_bin(distinct_[t].level + kept_per_probe_[t]);
    }

    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void kd_choice_level_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    for (std::uint64_t placed = 0; placed < balls; placed += k_) {
        run_round();
    }
}

single_choice_level_process::single_choice_level_process(std::uint64_t n,
                                                         std::uint64_t seed)
    : profile_(n), gen_(seed), probe_draws_(n) {}

void single_choice_level_process::run_balls(std::uint64_t balls) {
    for (std::uint64_t ball = 0; ball < balls; ++ball) {
        profile_.ensure_levels(profile_.max_level() + 2);
        const std::uint64_t level =
            profile_.level_at_rank(probe_draws_.next(gen_));
        profile_.move_bin(level, level + 1);
    }
    balls_placed_ += balls;
}

d_choice_level_process::d_choice_level_process(std::uint64_t n,
                                               std::uint64_t d,
                                               std::uint64_t seed)
    : profile_(n), d_(d), gen_(seed), probe_draws_(n) {
    KD_EXPECTS(d >= 1);
    KD_EXPECTS(d <= n);
}

void d_choice_level_process::run_balls(std::uint64_t balls) {
    for (std::uint64_t ball = 0; ball < balls; ++ball) {
        profile_.ensure_levels(profile_.max_level() + 2);
        // Least loaded of d probes: only the minimum level matters, and any
        // duplicate probes cannot change it, so d independent level draws
        // are exact. Ties are between exchangeable bins — no keys needed.
        std::uint64_t best = profile_.level_at_rank(probe_draws_.next(gen_));
        for (std::uint64_t probe = 1; probe < d_ && best > 0; ++probe) {
            best = std::min(best,
                            profile_.level_at_rank(probe_draws_.next(gen_)));
        }
        profile_.move_bin(best, best + 1);
    }
    balls_placed_ += balls;
}

} // namespace kdc::core
