# Opt-in sanitizer instrumentation for the whole build (library, tests,
# benches, and any FetchContent dependencies configured after this point, so
# e.g. a fetched GoogleTest is instrumented consistently with the code under
# test).
#
# Usage:   cmake -DKDC_SANITIZE=address,undefined ...   (ASan + UBSan)
#          cmake -DKDC_SANITIZE=thread ...              (TSan)
# or via the `asan` / `tsan` entries in CMakePresets.json. ThreadSanitizer is
# the job that proves the work-stealing pool and the sweep engine race-free;
# it cannot be combined with AddressSanitizer.

set(KDC_SANITIZE "" CACHE STRING
    "Comma/semicolon-separated sanitizers to enable (address, undefined, thread, leak)")

if(KDC_SANITIZE)
    string(REPLACE "," ";" _kdc_sanitizers "${KDC_SANITIZE}")
    list(REMOVE_DUPLICATES _kdc_sanitizers)

    set(_kdc_known address undefined thread leak)
    foreach(_san IN LISTS _kdc_sanitizers)
        if(NOT _san IN_LIST _kdc_known)
            message(FATAL_ERROR
                "KDC_SANITIZE: unknown sanitizer '${_san}' "
                "(expected a subset of: ${_kdc_known})")
        endif()
    endforeach()

    if("thread" IN_LIST _kdc_sanitizers AND
       ("address" IN_LIST _kdc_sanitizers OR "leak" IN_LIST _kdc_sanitizers))
        message(FATAL_ERROR
            "KDC_SANITIZE: 'thread' cannot be combined with 'address'/'leak'")
    endif()

    list(JOIN _kdc_sanitizers "," _kdc_sanitize_arg)
    message(STATUS "Sanitizers enabled: -fsanitize=${_kdc_sanitize_arg}")

    add_compile_options(-fsanitize=${_kdc_sanitize_arg}
                        -fno-omit-frame-pointer -g)
    add_link_options(-fsanitize=${_kdc_sanitize_arg})
endif()
