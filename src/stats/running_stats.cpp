#include "stats/running_stats.hpp"

#include <cmath>

namespace kdc::stats {

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::mean_ci_halfwidth(double z) const {
    KD_EXPECTS(z > 0.0);
    return z * stddev() / std::sqrt(static_cast<double>(count_));
}

} // namespace kdc::stats
