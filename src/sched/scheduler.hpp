// Parallel job scheduling on a cluster (Section 1.3 of the paper).
//
// A job consists of k tasks scheduled in parallel. Under the standard
// multiple-choice discipline each task independently probes d workers and
// joins the shortest queue ("per-task d-choice", the Sparrow [12] style).
// The paper's point: a job finishes when its *last* task finishes, so one
// task landing on a busy worker ruins the job; (k,d)-choice lets the k tasks
// share one pool of d probes and take the k least loaded workers, which both
// lowers the straggler probability and cuts the message cost from k*d to d.
//
// This module is a discrete-event model of exactly that: Poisson job
// arrivals, FIFO workers, per-task service times, and pluggable probing
// strategies. Response time = last-task completion - arrival.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/types.hpp"
#include "rng/xoshiro256ss.hpp"
#include "sim/event_queue.hpp"
#include "stats/summary.hpp"

namespace kdc::sched {

enum class probe_strategy {
    random_worker,      ///< no probing: every task to a uniform worker
    per_task_d_choice,  ///< each task probes `probes` workers independently
    batch_kd_choice,    ///< the job probes `probes` workers once; k tasks to
                        ///< the k least loaded (multiplicity rule)
    batch_greedy        ///< Section 7 variant: k tasks greedily to the
                        ///< currently least loaded distinct probed worker
};

[[nodiscard]] const char* to_string(probe_strategy strategy) noexcept;

enum class service_model {
    exponential,   ///< service ~ Exp(mean)
    deterministic, ///< service == mean
    pareto         ///< heavy-tailed Pareto(shape), scaled to the given mean;
                   ///< requires shape > 1. Stragglers dominate here, which
                   ///< is exactly where shared probing helps most.
};

struct scheduler_config {
    std::uint64_t workers = 64;
    std::uint64_t jobs = 4096;
    std::uint64_t tasks_per_job = 4; ///< the paper's k
    /// Probe budget: per *task* for per_task_d_choice, per *job* for the
    /// batch strategies (that asymmetry is the paper's message-cost story).
    std::uint64_t probes = 8;
    double arrival_rate = 1.0;  ///< jobs per unit time (Poisson)
    double mean_service = 1.0;  ///< per task
    service_model service = service_model::exponential;
    double pareto_shape = 2.0;  ///< only used by service_model::pareto
    probe_strategy strategy = probe_strategy::batch_kd_choice;
    std::uint64_t seed = 1;

    /// Offered load per worker: arrival_rate * k * mean_service / workers.
    [[nodiscard]] double utilization() const noexcept;
    void validate() const;
};

struct scheduler_result {
    stats::sample_summary response_time; ///< per job
    stats::sample_summary task_wait;     ///< queueing delay per task
    std::uint64_t probe_messages = 0;    ///< total probes issued
    std::uint64_t tasks_completed = 0;
    double makespan = 0.0;               ///< completion time of the last job
    std::uint64_t max_queue_seen = 0;    ///< max queue length at any assign
};

/// Runs one full simulation (all jobs arrive, all tasks complete).
[[nodiscard]] scheduler_result simulate(const scheduler_config& config);

/// Implementation class, exposed so tests can drive arrivals explicitly.
class cluster_scheduler {
public:
    explicit cluster_scheduler(const scheduler_config& config);

    /// Submits one job at the current simulation time with the given task
    /// service times (size must be tasks_per_job). Returns the job id.
    std::uint64_t submit_job(const std::vector<double>& service_times);

    /// Runs the event loop until all submitted work completes.
    void drain();

    /// Schedules all `config.jobs` Poisson arrivals and drains the system.
    [[nodiscard]] scheduler_result run_to_completion();

    [[nodiscard]] const std::vector<double>& response_times() const noexcept {
        return response_times_;
    }
    [[nodiscard]] std::uint64_t probe_messages() const noexcept {
        return probe_messages_;
    }
    /// Queue lengths right now (in-service task included).
    [[nodiscard]] const core::load_vector& queue_lengths() const noexcept {
        return queue_lengths_;
    }
    [[nodiscard]] kdc::sim::simulator& clock() noexcept { return sim_; }

private:
    struct worker_state {
        std::deque<std::uint64_t> pending; ///< task ids waiting (not serving)
        bool busy = false;
    };
    struct task_state {
        std::uint64_t job = 0;
        double service = 0.0;
        double assigned_at = 0.0;
    };
    struct job_state {
        double arrival = 0.0;
        std::uint64_t remaining = 0;
    };

    void assign_task(std::uint64_t task, std::uint32_t worker);
    void start_service(std::uint64_t task, std::uint32_t worker);
    void complete_task(std::uint64_t task, std::uint32_t worker);
    [[nodiscard]] std::vector<std::uint32_t>
    choose_workers(std::size_t k);
    [[nodiscard]] double draw_service();

    scheduler_config config_;
    kdc::sim::simulator sim_;
    std::vector<worker_state> workers_;
    core::load_vector queue_lengths_;
    std::vector<task_state> tasks_;
    std::vector<job_state> jobs_;
    std::vector<double> response_times_;
    std::vector<double> task_waits_;
    std::uint64_t probe_messages_ = 0;
    std::uint64_t tasks_completed_ = 0;
    std::uint64_t max_queue_seen_ = 0;
    std::vector<std::uint32_t> probe_buffer_;
    rng::xoshiro256ss gen_;

    friend scheduler_result simulate(const scheduler_config& config);
};

} // namespace kdc::sched
