#include "core/threshold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::load_of_rank;
using kdc::core::sa_threshold_process;
using kdc::core::single_choice_process;

TEST(SaThreshold, ValidatesX0) {
    EXPECT_NO_THROW(sa_threshold_process(10, 10, 1));
    EXPECT_THROW(sa_threshold_process(10, 11, 1), kdc::contract_violation);
}

TEST(SaThreshold, X0ZeroNeverDiscards) {
    sa_threshold_process process(64, 0, 5);
    process.run_balls(640);
    EXPECT_EQ(process.balls_placed(), 640u);
    EXPECT_EQ(process.balls_offered(), 640u);
}

TEST(SaThreshold, X0ZeroMatchesSingleChoiceDistribution) {
    std::vector<double> sa;
    std::vector<double> single;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        sa_threshold_process a(256, 0, 100 + seed);
        a.run_balls(256);
        sa.push_back(static_cast<double>(
            compute_load_metrics(a.loads()).max_load));
        single_choice_process b(256, 800 + seed);
        b.run_balls(256);
        single.push_back(static_cast<double>(
            compute_load_metrics(b.loads()).max_load));
    }
    EXPECT_GT(kdc::stats::ks_two_sample(sa, single).p_value, 1e-3);
}

TEST(SaThreshold, DiscardsHappenWithPositiveX0) {
    sa_threshold_process process(64, 16, 7);
    process.run_balls(6400);
    EXPECT_LT(process.balls_placed(), process.balls_offered());
    // Roughly x0/n of offers hit the top-x0 ranks once loads spread out.
    const double discard_rate =
        1.0 - static_cast<double>(process.balls_placed()) /
                  static_cast<double>(process.balls_offered());
    EXPECT_NEAR(discard_rate, 16.0 / 64.0, 0.05);
}

TEST(SaThreshold, Lemma8PartII_TopLoadsFlat) {
    // Lemma 8(ii): B_1 equals B_{x0} or B_{x0}+1 — discarding every ball
    // aimed at the top x0 ranks pins those ranks together.
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        sa_threshold_process process(128, 32, 100 + seed);
        process.run_balls(128 * 40);
        const auto b1 = load_of_rank(process.loads(), 1);
        const auto bx0 = load_of_rank(process.loads(), 32);
        EXPECT_TRUE(b1 == bx0 || b1 == bx0 + 1)
            << "B1=" << b1 << " Bx0=" << bx0;
    }
}

TEST(SaThreshold, PlacedBallsMatchLoadSum) {
    sa_threshold_process process(100, 25, 3);
    process.run_balls(5000);
    const auto& loads = process.loads();
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
              process.balls_placed());
}

TEST(SaThreshold, MessagesCountOfferedBalls) {
    sa_threshold_process process(100, 25, 3);
    process.run_balls(500);
    EXPECT_EQ(process.messages(), 500u);
}

TEST(SaThreshold, Lemma8PartIII_DominatedBySingleChoice) {
    // SA_{x0} <=dm SA: discarding can only lower every sorted-rank load.
    // Statistical check on the mean max load.
    double sa_sum = 0.0;
    double single_sum = 0.0;
    constexpr int reps = 60;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
        sa_threshold_process a(256, 64, 300 + seed);
        a.run_balls(2560);
        sa_sum += static_cast<double>(
            compute_load_metrics(a.loads()).max_load);
        single_choice_process b(256, 700 + seed);
        b.run_balls(2560);
        single_sum += static_cast<double>(
            compute_load_metrics(b.loads()).max_load);
    }
    EXPECT_LE(sa_sum, single_sum);
}

TEST(SaThreshold, DeterministicUnderSeed) {
    sa_threshold_process a(64, 8, 12);
    sa_threshold_process b(64, 8, 12);
    a.run_balls(1000);
    b.run_balls(1000);
    EXPECT_EQ(a.loads(), b.loads());
    EXPECT_EQ(a.balls_placed(), b.balls_placed());
}

} // namespace
