#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::adaptive_threshold_process;
using kdc::core::batched_greedy_process;
using kdc::core::compute_load_metrics;
using kdc::core::d_choice_process;
using kdc::core::load_vector;
using kdc::core::one_plus_beta_process;
using kdc::core::single_choice_process;

std::uint64_t total(const load_vector& loads) {
    return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

TEST(OnePlusBeta, ValidatesBeta) {
    EXPECT_THROW(one_plus_beta_process(10, -0.1, 1), kdc::contract_violation);
    EXPECT_THROW(one_plus_beta_process(10, 1.1, 1), kdc::contract_violation);
    EXPECT_NO_THROW(one_plus_beta_process(10, 0.5, 1));
}

TEST(OnePlusBeta, PlacesAllBalls) {
    one_plus_beta_process process(128, 0.5, 3);
    process.run_balls(128);
    EXPECT_EQ(total(process.loads()), 128u);
}

TEST(OnePlusBeta, BetaZeroMatchesSingleChoiceDistribution) {
    std::vector<double> opb;
    std::vector<double> single;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        one_plus_beta_process a(256, 0.0, 100 + seed);
        a.run_balls(256);
        opb.push_back(static_cast<double>(
            compute_load_metrics(a.loads()).max_load));
        single_choice_process b(256, 900 + seed);
        b.run_balls(256);
        single.push_back(static_cast<double>(
            compute_load_metrics(b.loads()).max_load));
    }
    EXPECT_GT(kdc::stats::ks_two_sample(opb, single).p_value, 1e-3);
}

TEST(OnePlusBeta, BetaOneMatchesTwoChoiceDistribution) {
    std::vector<double> opb;
    std::vector<double> two;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        one_plus_beta_process a(256, 1.0, 100 + seed);
        a.run_balls(256);
        opb.push_back(static_cast<double>(
            compute_load_metrics(a.loads()).max_load));
        d_choice_process b(256, 2, 900 + seed);
        b.run_balls(256);
        two.push_back(static_cast<double>(
            compute_load_metrics(b.loads()).max_load));
    }
    EXPECT_GT(kdc::stats::ks_two_sample(opb, two).p_value, 1e-3);
}

TEST(OnePlusBeta, MessageCostInterpolates) {
    one_plus_beta_process process(1024, 0.5, 7);
    process.run_balls(10000);
    // Expected 1.5 probes per ball.
    EXPECT_NEAR(static_cast<double>(process.messages()) / 10000.0, 1.5, 0.05);
}

TEST(OnePlusBeta, InterpolatesMaxLoadBetweenExtremes) {
    auto mean_max = [](double beta) {
        double sum = 0.0;
        for (std::uint64_t seed = 0; seed < 30; ++seed) {
            one_plus_beta_process p(4096, beta, 50 + seed);
            p.run_balls(4096);
            sum += static_cast<double>(
                compute_load_metrics(p.loads()).max_load);
        }
        return sum / 30.0;
    };
    const double at0 = mean_max(0.0);
    const double at_half = mean_max(0.5);
    const double at1 = mean_max(1.0);
    EXPECT_LT(at1, at_half);
    EXPECT_LT(at_half, at0);
}

TEST(BatchedGreedy, ValidatesParameters) {
    EXPECT_THROW(batched_greedy_process(10, 3, 3, 1),
                 kdc::contract_violation);
    EXPECT_NO_THROW(batched_greedy_process(10, 2, 3, 1));
}

TEST(BatchedGreedy, PlacesAllBalls) {
    batched_greedy_process process(100, 2, 5, 9);
    process.run_balls(100);
    EXPECT_EQ(total(process.loads()), 100u);
    EXPECT_EQ(process.messages(), (100 / 2) * 5);
}

TEST(BatchedGreedy, Section7WorkedExample) {
    // Section 7: in (2,3)-choice, when the sampled bins hold 0, 2 and 3
    // balls, the modified policy places BOTH balls into the empty bin
    // (instead of one into the empty bin and one into the 2-ball bin).
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        batched_greedy_process process(load_vector{0, 2, 3}, 2, 3, seed);
        const std::vector<std::uint32_t> samples{0, 1, 2};
        process.run_round_with_samples(samples);
        EXPECT_EQ(process.loads(), (load_vector{2, 2, 3}));
    }
}

TEST(BatchedGreedy, StandardPolicySplitsWhereGreedyStacks) {
    // The contrast the paper draws in Section 7: the standard (2,3)-choice
    // policy on the same state puts one ball in the empty bin and one in
    // the 2-ball bin.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        kdc::core::kd_choice_process process(load_vector{0, 2, 3}, 2, 3,
                                             seed);
        const std::vector<std::uint32_t> samples{0, 1, 2};
        process.run_round_with_samples(samples);
        EXPECT_EQ(process.loads(), (load_vector{1, 3, 3}));
    }
}

TEST(BatchedGreedy, NeverWorseThanKdChoiceOnAverage) {
    // Section 7 conjectures the modified policy improves load balance for
    // k ~ d. Check the mean max load over repetitions.
    double kd_sum = 0.0;
    double greedy_sum = 0.0;
    constexpr int reps = 40;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
        kdc::core::kd_choice_process kd(1024, 30, 32, 10 + seed);
        kd.run_balls(1020);
        kd_sum += static_cast<double>(
            compute_load_metrics(kd.loads()).max_load);
        batched_greedy_process greedy(1024, 30, 32, 10 + seed);
        greedy.run_balls(1020);
        greedy_sum += static_cast<double>(
            compute_load_metrics(greedy.loads()).max_load);
    }
    EXPECT_LE(greedy_sum, kd_sum);
}

TEST(AdaptiveThreshold, ValidatesParameters) {
    EXPECT_THROW(adaptive_threshold_process(10, 1, 0, 1),
                 kdc::contract_violation);
    EXPECT_NO_THROW(adaptive_threshold_process(10, 1, 3, 1));
}

TEST(AdaptiveThreshold, PlacesAllBalls) {
    adaptive_threshold_process process(256, 2, 8, 5);
    process.run_balls(256);
    EXPECT_EQ(total(process.loads()), 256u);
}

TEST(AdaptiveThreshold, MessageCostNearOneProbeWhenLightlyLoaded) {
    // With threshold 2 and n balls into n bins, most probes hit bins below
    // the threshold immediately: mean probes ~ 1 + o(1) (Czumaj-Stemann's
    // (1+o(1))n total message bound).
    adaptive_threshold_process process(1 << 14, 2, 16, 7);
    process.run_balls(1 << 14);
    EXPECT_LT(process.mean_probes(), 1.6);
}

TEST(AdaptiveThreshold, ThresholdCapsMaxLoadWhenBudgetLarge) {
    adaptive_threshold_process process(4096, 2, 64, 9);
    process.run_balls(4096);
    // With a generous probe budget, loads beyond threshold+1 are rare;
    // allow threshold + 2 for the tail.
    EXPECT_LE(compute_load_metrics(process.loads()).max_load, 4u);
}

TEST(AdaptiveThreshold, SingleProbeBudgetIsSingleChoice) {
    std::vector<double> adaptive;
    std::vector<double> single;
    for (std::uint64_t seed = 0; seed < 150; ++seed) {
        adaptive_threshold_process a(256, 1, 1, 100 + seed);
        a.run_balls(256);
        adaptive.push_back(static_cast<double>(
            compute_load_metrics(a.loads()).max_load));
        single_choice_process b(256, 700 + seed);
        b.run_balls(256);
        single.push_back(static_cast<double>(
            compute_load_metrics(b.loads()).max_load));
    }
    EXPECT_GT(kdc::stats::ks_two_sample(adaptive, single).p_value, 1e-3);
}

} // namespace
