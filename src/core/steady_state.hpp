// Steady-state fast-forward for the heavily loaded regime: jump a
// level-kernel run straight to (an approximation of) its fixed-point load
// profile instead of simulating every warmup ball.
//
// The paper's heavy regime (m >> n) spends almost all of its wall clock in
// a warmup whose outcome is statistically predictable: after q*n balls the
// load profile concentrates tightly around a policy-dependent fixed-point
// shape (mean level q, spread = the paper's GAP). `warmup=ff` in the
// scenario grammar exploits that:
//
//   1. fast_forward_split divides the requested T balls into a
//      fast-forwarded prefix (whole multiples of n balls, skipped) and a
//      SETTLE suffix of at least ~n/8 balls that is simulated exactly;
//   2. steady_state_profile synthesizes the prefix's profile — a Poisson
//      closed form for single-choice, a cheap small-n pilot simulation at
//      the same integer ball density (extrapolated with a theory-shaped
//      tail) for every other supported policy;
//   3. the settle suffix runs the ordinary level kernel from that profile,
//      regenerating the genuine top-tail randomness the deterministic
//      profile lacks.
//
// The construction is an APPROXIMATION, validated empirically:
// validate_fast_forward runs warmup=ff against warmup=full at a reachable
// n and KS-compares the resulting distributions (the suite gates on it at
// n = 10^5; `micro_throughput --scenario=... --validate-warmup=N` exposes
// the same check from the command line). It is exact in expectation for
// single-choice and within pilot noise elsewhere; it is NOT a bit-level
// replay of the skipped balls, which is why the settle suffix exists.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/level_profile.hpp"
#include "core/scenario.hpp"
#include "stats/hypothesis.hpp"

namespace kdc::core {

/// How a run's T balls divide under warmup=ff.
struct ff_split {
    std::uint64_t ff_balls = 0;     ///< skipped via the synthesized profile
    std::uint64_t settle_balls = 0; ///< simulated exactly on top of it
};

/// Splits `total_balls` into a fast-forwarded prefix and a settle suffix.
/// The prefix is a whole multiple of n balls, floored to a multiple of k
/// (whole rounds); the suffix keeps at least max(k, n/8) balls. Runs with
/// total_balls <= n are never fast-forwarded (ff_balls = 0): there is no
/// warmup to skip, so `warmup=ff` degenerates to `warmup=full` exactly.
[[nodiscard]] ff_split fast_forward_split(const scenario& sc,
                                          std::uint64_t total_balls);

/// The precomputed dispatch of a fast-forwarded scenario: which closed
/// form / pilot process the profile synthesis uses and which level kernel
/// settles. Built once by plan_fast_forward (which consults the policy
/// registry) so repetition jobs on worker threads never touch the registry.
struct ff_plan {
    enum class policy_kind { kd, single, dchoice, one_plus_beta };
    policy_kind policy = policy_kind::kd;
    bool sharded = false; ///< par=round: settle on the sharded level kernel
};

/// Resolves the scenario's fast-forward plan, throwing cli_error with a
/// precise message when warmup=ff is unsupported: the scenario must resolve
/// to kernel=level with with-replacement probes, and the resolved policy
/// must be one of 'kd', 'single', 'dchoice' or 'one_plus_beta' (the
/// policies whose steady-state shape the synthesis knows).
[[nodiscard]] ff_plan plan_fast_forward(const scenario& sc);

/// Tuning knobs of the profile synthesis; the defaults are what warmup=ff
/// uses. Tests shrink pilot_bins to stress the extrapolation.
struct steady_state_options {
    std::uint64_t pilot_bins = 65536; ///< pilot runs at min(sc.n, pilot_bins)
    std::uint32_t pilot_reps = 3;     ///< averaged pilot repetitions
};

/// Synthesizes the load profile of `sc`'s process after ff_balls balls on
/// sc.n bins: the Poisson occupancy closed form for single-choice, else
/// pilot_reps small-n pilot runs at the same ball density, averaged,
/// rescaled to n bins and extended past the pilot's resolution with a
/// theory-shaped tail (geometric for (1+beta), doubly-exponential-flavored
/// for the multi-choice policies), floor-rounded so the upper tail is never
/// overfilled. The result holds exactly sc.n bins and exactly ff_balls
/// balls (a final rebalance moves the handful of rounding-residual bins).
[[nodiscard]] level_profile
steady_state_profile(const scenario& sc, const ff_plan& plan,
                     std::uint64_t ff_balls, std::uint64_t seed,
                     const steady_state_options& options = {});

/// Convenience overload resolving the plan itself (main-thread callers).
[[nodiscard]] level_profile
steady_state_profile(const scenario& sc, std::uint64_t ff_balls,
                     std::uint64_t seed,
                     const steady_state_options& options = {});

/// The warmup=ff execution wrapper make_process returns: defers the
/// fast-forward until the first run_balls call (only then is the total T
/// known), splits T, synthesizes the prefix profile, and settles the suffix
/// on the scenario's level kernel. Later run_balls calls forward directly.
///
/// Accounting: balls_placed (and observe().balls_placed) includes the
/// skipped prefix — the profile really holds those balls — but messages()
/// counts the settled suffix only (the skipped probes were never drawn;
/// see docs/scenario-grammar.md).
class fast_forwarded_process {
public:
    fast_forwarded_process(scenario sc, ff_plan plan, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    /// Stored and handed to the settle kernel at materialization (only the
    /// par=round sharded kernel uses it; a no-op otherwise).
    void use_pool(thread_pool* pool);

    [[nodiscard]] process_observation observe() const;
    [[nodiscard]] std::vector<double> sorted_loads() const;

    [[nodiscard]] std::uint64_t n() const noexcept { return sc_.n; }
    /// Balls skipped by the fast-forward (0 before the first run_balls and
    /// for runs too light to split).
    [[nodiscard]] std::uint64_t skipped_balls() const noexcept {
        return ff_balls_;
    }

private:
    scenario sc_;
    ff_plan plan_;
    std::uint64_t seed_;
    std::uint64_t ff_balls_ = 0;
    thread_pool* pool_ = nullptr;
    std::optional<any_process> inner_;
};

/// The settle kernel behind fast_forwarded_process: the scenario's level
/// process started from `initial`. Exposed so snapshot staging and tests
/// can settle a synthesized (or reloaded) profile directly.
[[nodiscard]] any_process make_settled_process(const scenario& sc,
                                               const ff_plan& plan,
                                               level_profile initial,
                                               std::uint64_t seed);

/// One KS comparison of warmup=ff against warmup=full at the scenario's
/// own (reachable) n: `reps` independent repetitions of each, compared on
/// the per-rep max-load and gap distributions plus the pooled per-bin
/// loads of the first repetition pair.
struct ff_validation_result {
    stats::ks_result max_load_ks; ///< per-rep max loads, ff vs full
    stats::ks_result gap_ks;      ///< per-rep gaps, ff vs full
    stats::ks_result loads_ks;    ///< pooled loads of one rep each
    std::uint32_t reps = 0;
};

/// Runs the validation (sc must carry warmup=ff; its warmup=full twin is
/// derived internally). Deterministic in (sc, reps, seed).
[[nodiscard]] ff_validation_result
validate_fast_forward(const scenario& sc, std::uint32_t reps,
                      std::uint64_t seed);

} // namespace kdc::core
