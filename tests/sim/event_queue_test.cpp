#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/contracts.hpp"

namespace {

using kdc::sim::event_queue;
using kdc::sim::simulator;

TEST(EventQueue, PopsInTimeOrder) {
    event_queue queue;
    std::vector<int> order;
    queue.schedule_at(3.0, [&order] { order.push_back(3); });
    queue.schedule_at(1.0, [&order] { order.push_back(1); });
    queue.schedule_at(2.0, [&order] { order.push_back(2); });
    while (!queue.empty()) {
        double when = 0.0;
        queue.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
    event_queue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
    }
    while (!queue.empty()) {
        double when = 0.0;
        queue.pop(when)();
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, PopExposesEventTime) {
    event_queue queue;
    queue.schedule_at(2.5, [] {});
    double when = 0.0;
    (void)queue.pop(when);
    EXPECT_DOUBLE_EQ(when, 2.5);
}

TEST(EventQueue, RejectsNegativeTimeAndEmptyHandler) {
    event_queue queue;
    EXPECT_THROW(queue.schedule_at(-1.0, [] {}), kdc::contract_violation);
    EXPECT_THROW(queue.schedule_at(1.0, {}), kdc::contract_violation);
}

TEST(EventQueue, PopOnEmptyViolatesContract) {
    event_queue queue;
    double when = 0.0;
    EXPECT_THROW((void)queue.pop(when), kdc::contract_violation);
}

TEST(Simulator, ClockAdvancesWithEvents) {
    simulator sim;
    std::vector<double> times;
    sim.schedule_after(1.0, [&] { times.push_back(sim.now()); });
    sim.schedule_after(2.0, [&] { times.push_back(sim.now()); });
    EXPECT_EQ(sim.run(), 2u);
    EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
    EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, HandlersCanScheduleMoreEvents) {
    simulator sim;
    int chain = 0;
    std::function<void()> step = [&] {
        if (++chain < 5) {
            sim.schedule_after(1.0, step);
        }
    };
    sim.schedule_after(1.0, step);
    (void)sim.run();
    EXPECT_EQ(chain, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(1.0, [&] { ++fired; });
    sim.schedule_at(5.0, [&] { ++fired; });
    EXPECT_EQ(sim.run_until(3.0), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 3.0);
    EXPECT_EQ(sim.pending(), 1u);
    (void)sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesBoundaryEvents) {
    simulator sim;
    int fired = 0;
    sim.schedule_at(3.0, [&] { ++fired; });
    (void)sim.run_until(3.0);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, CannotScheduleIntoThePast) {
    simulator sim;
    sim.schedule_at(2.0, [] {});
    (void)sim.run();
    EXPECT_THROW(sim.schedule_at(1.0, [] {}), kdc::contract_violation);
    EXPECT_THROW(sim.schedule_after(-0.5, [] {}), kdc::contract_violation);
}

TEST(Simulator, ZeroDelayEventsRunAtCurrentTime) {
    simulator sim;
    std::vector<int> order;
    sim.schedule_after(1.0, [&] {
        order.push_back(1);
        sim.schedule_after(0.0, [&] { order.push_back(2); });
    });
    sim.schedule_after(2.0, [&] { order.push_back(3); });
    (void)sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// -- Re-entrant scheduling: a handler that schedules AT THE CURRENT TIME
// must see its event fire within the same drain, FIFO after every event
// already queued for that time. The allocation service leans on exactly
// this (serve/service.cpp schedules a dispatch from inside a delivery
// handler), so the ordering is pinned here.

TEST(Simulator, ReentrantSameTimeEventFiresThisDrain) {
    simulator sim;
    std::vector<int> order;
    sim.schedule_at(1.0, [&] {
        order.push_back(1);
        // Scheduled mid-drain for t == now: must still fire before the
        // drain moves past t = 1.
        sim.schedule_at(sim.now(), [&] { order.push_back(2); });
    });
    sim.schedule_at(2.0, [&] { order.push_back(3); });
    EXPECT_EQ(sim.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ReentrantEventsQueueFifoAfterExistingSameTimeEvents) {
    simulator sim;
    std::vector<int> order;
    sim.schedule_at(1.0, [&] {
        order.push_back(0);
        // Two re-entrant same-time events: they go BEHIND the two events
        // below (already queued for t = 1) and fire in scheduling order.
        sim.schedule_at(1.0, [&] { order.push_back(3); });
        sim.schedule_at(1.0, [&] { order.push_back(4); });
    });
    sim.schedule_at(1.0, [&] { order.push_back(1); });
    sim.schedule_at(1.0, [&] { order.push_back(2); });
    (void)sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ReentrantChainsAtOneTimeDrainCompletely) {
    simulator sim;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 50) {
            sim.schedule_at(sim.now(), recurse); // same time, 50 deep
        }
    };
    sim.schedule_at(3.0, recurse);
    sim.schedule_at(4.0, [&] { EXPECT_EQ(depth, 50); });
    EXPECT_EQ(sim.run(), 51u);
    EXPECT_EQ(depth, 50);
    EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, RunUntilDrainsReentrantBoundaryEvents) {
    simulator sim;
    std::vector<int> order;
    sim.schedule_at(3.0, [&] {
        order.push_back(1);
        // Scheduled from a boundary event AT the boundary: run_until(3.0)
        // must include it, not strand it in the queue.
        sim.schedule_at(3.0, [&] { order.push_back(2); });
    });
    EXPECT_EQ(sim.run_until(3.0), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, ReentrantFutureEventsDoNotJumpTheQueue) {
    simulator sim;
    std::vector<int> order;
    sim.schedule_at(1.0, [&] {
        order.push_back(1);
        sim.schedule_after(1.0, [&] { order.push_back(3); }); // t = 2
    });
    sim.schedule_at(1.5, [&] { order.push_back(2); });
    (void)sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, IdleReflectsQueueState) {
    simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule_after(1.0, [] {});
    EXPECT_FALSE(sim.idle());
    (void)sim.run();
    EXPECT_TRUE(sim.idle());
}

} // namespace
