// Baseline and variant allocation processes the paper positions against:
//
//  * one_plus_beta_process  — the (1+beta)-choice of Peres, Talwar, Wieder
//    (SODA 2010): each ball takes the lesser loaded of two random bins with
//    probability beta and a single random bin otherwise. The paper cites it
//    as the other "mix of single- and multi-choice" scheme (Section 1).
//  * batched_greedy_process — the modified policy sketched in Section 7
//    ("less-loaded candidate bins can receive more balls regardless of how
//    many times those bins are sampled"): k balls go greedily, one at a
//    time, to the currently least loaded *distinct* sampled bin. The paper
//    conjectures this reduces the max load to O(1) even for k ~ d.
//  * adaptive_threshold_process — a Czumaj-Stemann-flavored adaptive scheme:
//    a ball keeps probing until it finds a bin below a load threshold (or
//    exhausts its probe budget and takes the best seen). Message cost is
//    variable; the paper's Table of comparisons contrasts adaptive
//    O(ln ln n / ln d)-load / (1+o(1))n-message schemes with (k,d)-choice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/level_profile.hpp"
#include "core/round_kernel.hpp"
#include "core/types.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

class one_plus_beta_process {
public:
    /// beta in [0, 1]: 0 degenerates to single-choice, 1 to two-choice.
    one_plus_beta_process(std::uint64_t n, double beta, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] double beta() const noexcept { return beta_; }

private:
    load_vector loads_;
    double beta_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    rng::xoshiro256ss gen_;
};

/// The (1+beta)-choice process on level-compressed state
/// (core/level_profile.hpp). The process is exchangeable over bins — every
/// probe is uniform and the rule depends only on loads — so the load
/// profile captures its distribution exactly. Distributionally identical to
/// one_plus_beta_process (different RNG stream); O(max-load) memory, which
/// makes the (1+beta) mixture usable at the same billion-bin scales as the
/// level (k,d) kernel.
///
/// The with-replacement subtlety: when the beta coin asks for a second
/// probe, it hits the SAME bin as the first with probability exactly 1/n
/// (one uniform draw v in [0, n) decides: v == 0 duplicates the first
/// probe, else v - 1 indexes the remaining n - 1 bins). Equal-level ties
/// need no coin here — moving either of two same-level bins up one level is
/// the same profile transition.
class one_plus_beta_level_process {
public:
    /// beta in [0, 1]: 0 degenerates to single-choice, 1 to two-choice.
    one_plus_beta_level_process(std::uint64_t n, double beta,
                                std::uint64_t seed);

    /// Starts from an existing profile (snapshot resume, warmup=ff).
    one_plus_beta_level_process(level_profile initial, double beta,
                                std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] double beta() const noexcept { return beta_; }

private:
    level_profile profile_;
    double beta_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_;
};

class batched_greedy_process {
public:
    /// Requires 1 <= k, k < d <= n (same parameter space as (k,d)-choice).
    batched_greedy_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           std::uint64_t seed);

    /// Starts from an existing load vector (see Section 7's worked example).
    batched_greedy_process(load_vector initial_loads, std::uint64_t k,
                           std::uint64_t d, std::uint64_t seed);

    void run_round();
    void run_round_with_samples(std::span<const std::uint32_t> samples);
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

private:
    load_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    std::vector<std::uint32_t> sample_buffer_;
    std::vector<std::uint32_t> distinct_buffer_;
    rng::xoshiro256ss gen_;
};

class adaptive_threshold_process {
public:
    /// Each ball probes until it sees load < `threshold`, up to `max_probes`
    /// probes; on exhaustion it takes the least loaded bin probed.
    adaptive_threshold_process(std::uint64_t n, bin_load threshold,
                               std::uint32_t max_probes, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    /// Average probes per ball so far (message efficiency of adaptivity).
    [[nodiscard]] double mean_probes() const {
        KD_EXPECTS(balls_placed_ > 0);
        return static_cast<double>(messages_) /
               static_cast<double>(balls_placed_);
    }

private:
    load_vector loads_;
    bin_load threshold_;
    std::uint32_t max_probes_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    rng::xoshiro256ss gen_;
};

} // namespace kdc::core
