// Smoke test for the installed kdchoice package: exercises one type from
// each exported layer (process, execution engine, stats) through the same
// include paths in-tree code uses, and exits non-zero on any surprise so CI
// can gate on it.
#include <cstdio>

#include "core/kdchoice.hpp"
#include "stats/hypothesis.hpp"

int main() {
    // One small adaptive sweep end-to-end on the installed library.
    std::vector<kdc::core::sweep_cell> cells;
    cells.push_back(kdc::core::make_sweep_cell(
        "kd(2,4)", {.balls = 256, .reps = 8, .seed = 42},
        [](std::uint64_t seed) {
            return kdc::core::kd_choice_process(256, 2, 4, seed);
        }));
    kdc::core::sweep_options options;
    options.threads = 2;
    options.stopping = kdc::core::confidence_width_rule(
        /*ci_half_width=*/5.0, /*min_reps=*/2);
    const auto outcomes = kdc::core::run_sweep(cells, options);
    if (outcomes.size() != 1 || outcomes[0].result.reps.empty()) {
        std::puts("FAIL: sweep produced no outcome");
        return 1;
    }
    const double width =
        kdc::stats::t_ci_half_width(outcomes[0].result.max_load_stats, 0.95);
    std::printf("installed kdchoice OK: %zu reps, max-load CI half-width "
                "%.3f\n",
                outcomes[0].result.reps.size(), width);
    return 0;
}
