// Consistency between the per-ball height log (Section 2's ball heights)
// and the load-vector-derived quantities mu_y / nu_y.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "core/serialized.hpp"

namespace {

using kdc::core::kd_choice_process;
using kdc::core::mu_y;

TEST(Heights, LogAgreesWithMuYFromLoads) {
    // mu_y = #balls with height >= y can be computed two ways: from the
    // final load vector (heights in a bin of load L are exactly 1..L) and
    // by counting the recorded heights. They must agree for every y.
    kd_choice_process process(256, 4, 8, 31);
    process.record_heights(true);
    process.run_balls(256);

    const auto& log = process.height_log();
    ASSERT_EQ(log.size(), 256u);
    std::map<std::uint64_t, std::uint64_t> from_log;
    std::uint64_t max_height = 0;
    for (const auto& ball : log) {
        ++from_log[ball.height];
        max_height = std::max<std::uint64_t>(max_height, ball.height);
    }
    for (std::uint64_t y = 1; y <= max_height + 1; ++y) {
        std::uint64_t count = 0;
        for (const auto& [h, c] : from_log) {
            if (h >= y) {
                count += c;
            }
        }
        EXPECT_EQ(count, mu_y(process.loads(), y)) << "y=" << y;
    }
}

TEST(Heights, EachBinsHeightsAreContiguousFromOne) {
    // A bin that ends with load L must have received balls at heights
    // exactly {1, ..., L}.
    kd_choice_process process(128, 2, 5, 37);
    process.record_heights(true);
    process.run_balls(128);

    std::map<std::uint32_t, std::vector<std::uint64_t>> heights_by_bin;
    for (const auto& ball : process.height_log()) {
        heights_by_bin[ball.bin].push_back(ball.height);
    }
    for (auto& [bin, heights] : heights_by_bin) {
        std::sort(heights.begin(), heights.end());
        ASSERT_EQ(heights.size(), process.loads()[bin]);
        for (std::size_t i = 0; i < heights.size(); ++i) {
            EXPECT_EQ(heights[i], i + 1) << "bin=" << bin;
        }
    }
}

TEST(Heights, MaxHeightEqualsMaxLoad) {
    kd_choice_process process(512, 8, 16, 41);
    process.record_heights(true);
    process.run_balls(512);
    std::uint64_t max_height = 0;
    for (const auto& ball : process.height_log()) {
        max_height = std::max<std::uint64_t>(max_height, ball.height);
    }
    EXPECT_EQ(max_height,
              kdc::core::compute_load_metrics(process.loads()).max_load);
}

TEST(Heights, SerializedPlacementsSatisfySameConsistency) {
    kdc::core::serialized_process process(
        128, 4, 8, 43, kdc::core::random_schedule(7));
    process.run_balls(128);
    std::map<std::uint32_t, std::vector<std::uint64_t>> heights_by_bin;
    for (const auto& ball : process.placements()) {
        heights_by_bin[ball.bin].push_back(ball.height);
    }
    for (auto& [bin, heights] : heights_by_bin) {
        std::sort(heights.begin(), heights.end());
        ASSERT_EQ(heights.size(), process.loads()[bin]);
        for (std::size_t i = 0; i < heights.size(); ++i) {
            EXPECT_EQ(heights[i], i + 1);
        }
    }
}

} // namespace
