#include "core/snapshot_stage.hpp"

#include <fstream>
#include <ostream>
#include <string>
#include <utility>

#include "core/level_process.hpp"
#include "core/sharded_kernel.hpp"
#include "core/steady_state.hpp"
#include "rng/splitmix64.hpp"
#include "support/cli.hpp"

namespace kdc::core {

namespace {

level_profile load_snapshot(const std::string& path, std::uint64_t n) {
    std::ifstream in(path);
    if (!in) {
        throw cli_error("--resume: cannot open snapshot file '" + path + "'");
    }
    level_profile profile = level_profile::load(in);
    if (profile.n() != n) {
        throw cli_error("--resume: snapshot '" + path + "' holds " +
                        std::to_string(profile.n()) +
                        " bins but the scenario asks for n=" +
                        std::to_string(n));
    }
    return profile;
}

void save_snapshot(const std::string& path, const level_profile& profile) {
    std::ofstream out(path);
    if (!out) {
        throw cli_error("--snapshot-out: cannot open '" + path +
                        "' for writing");
    }
    profile.save(out);
}

void print_profile_line(std::ostream& out, const char* label,
                        const level_profile& profile) {
    const auto metrics = profile.metrics();
    out << label << " n=" << profile.n()
        << " total_balls=" << profile.total_balls()
        << " max_load=" << metrics.max_load << " gap=" << metrics.gap
        << '\n';
}

} // namespace

bool run_snapshot_stage(const arg_parser& args, const scenario& sc,
                        std::uint64_t seed, std::ostream& out) {
    const std::string snapshot_out = args.get_string("snapshot-out");
    const std::string resume = args.get_string("resume");
    if (snapshot_out.empty() && resume.empty()) {
        return false;
    }

    validate_scenario(sc);
    if (resolve_kernel(sc) != kernel_kind::level) {
        throw cli_error("snapshot staging persists level profiles; the "
                        "scenario must resolve to kernel=level (use "
                        "kernel=level or kernel=auto with a level-capable "
                        "policy)");
    }
    if (resolved_policy(sc) != "kd" || sc.d < 2) {
        throw cli_error("snapshot staging supports the 'kd' family with "
                        "d >= 2, got policy '" + resolved_policy(sc) + "'");
    }

    level_profile initial = resume.empty() ? level_profile(sc.n)
                                           : load_snapshot(resume, sc.n);
    std::uint64_t balls = resolved_balls(sc);
    const std::uint64_t derived = rng::derive_seed(seed, 0);

    out << "snapshot-stage scenario=" << to_string(sc) << " seed=" << seed
        << " balls=" << balls << '\n';
    if (!resume.empty()) {
        print_profile_line(out, "resumed", initial);
    } else if (sc.warmup == warmup_mode::fast_forward) {
        // A fresh warmup=ff stage starts from the synthesized steady-state
        // profile and simulates only the settle suffix; a --resume snapshot
        // always wins over the synthesis (its profile is the real thing).
        const ff_plan plan = plan_fast_forward(sc);
        const ff_split split = fast_forward_split(sc, balls);
        if (split.ff_balls > 0) {
            initial = steady_state_profile(sc, plan, split.ff_balls,
                                           rng::derive_seed(seed, 1));
            balls = split.settle_balls;
            print_profile_line(out, "fast-forwarded", initial);
        }
    }

    // Each stage is its own independently seeded process over the evolving
    // profile; par=round swaps in the sharded level kernel (identical
    // profile output — its contract).
    level_profile final_profile = [&] {
        if (sc.par == par_mode::round) {
            sharded_kd_level_process process(std::move(initial), sc.k, sc.d,
                                             derived, sc.shards);
            process.run_balls(balls);
            return process.profile();
        }
        kd_choice_level_process process(std::move(initial), sc.k, sc.d,
                                        derived);
        process.run_balls(balls);
        return process.profile();
    }();

    print_profile_line(out, "final", final_profile);
    if (!snapshot_out.empty()) {
        save_snapshot(snapshot_out, final_profile);
        out << "snapshot written to " << snapshot_out << '\n';
    }
    return true;
}

} // namespace kdc::core
