// The declarative scenario API: every allocation experiment this library
// can run, as ONE value.
//
// The paper's (k,d)-choice process is one point in a family — uniform or
// weighted probes, the (1+beta) mixture, classic d-choice, adaptive
// thresholds — and those variants compose from a few orthogonal knobs
// rather than from distinct code paths. A `scenario` names the knobs:
//
//     scenario sc = parse_scenario("kd:n=1e6,k=2,d=4,kernel=auto");
//     any_process p = make_process(sc, seed);
//     p.run_balls(resolved_balls(sc));
//     auto obs = p.observe();
//
// One string grammar (`family:key=value,key=value,...`), one string-keyed
// POLICY REGISTRY behind construction, and one `make_process` factory that
// dispatches to the right simulation kernel — including the
// level-compressed weighted and (1+beta) kernels — with `kernel=auto`
// picking the level kernel whenever the resolved policy supports it.
//
// Grammar
// -------
//   scenario  := [ family ":" ] [ pair ( "," pair )* ]
//   pair      := key "=" value
//   family    := a registered policy name (see below); default "kd"
//   keys      := n, k, d, balls, probe, skew, beta, threshold, cap,
//                replacement, kernel, metric, warmup
//
//   probe       = uniform | weighted | one_plus_beta | threshold
//                 (probe modifies the "kd" family; the probe policies are
//                 also registered as families of their own, so
//                 "weighted:n=1e5,k=2,d=4,skew=0.5" and
//                 "kd:n=1e5,k=2,d=4,probe=weighted,skew=0.5" are the same
//                 scenario)
//   skew        = weighted probe: 0 = unit weights, s > 0 = Pareto ball
//                 weights with shape 1 + 1/s and minimum 1 (larger s =
//                 heavier tail)
//   beta        = one_plus_beta probe: the two-choice mixing probability,
//                 in [0, 1]
//   threshold/cap = threshold probe: load threshold and probe budget
//   replacement = with | without  (the paper's model is `with`; `without`
//                 is the per-bin-only ablation)
//   kernel      = perbin | level | auto
//   par         = rep | round  (rep = repetition-level parallelism, the
//                 default; round = the sharded round-parallel kernel of
//                 core/sharded_kernel.hpp inside each repetition —
//                 byte-identical output, "kd" family with d >= 2 and
//                 replacement=with only)
//   shards      = auto | N  (par=round: shard-count request, resolved via
//                 resolve_shard_count; auto sizes the shard windows to the
//                 detected L2 cache — shard_auto_config)
//   selpar      = auto | N  (par=round: selection-segment request for the
//                 per-bin sharded kernel's partitioned selection phase,
//                 resolved per chunk via resolve_selection_segments; output
//                 is byte-identical for every value)
//   metric      = max_load | gap | messages  (what adaptive stopping rules
//                 monitor for cells built from this scenario)
//   warmup      = full | ff  (full = simulate every ball, the default;
//                 ff = steady-state fast-forward, core/steady_state.hpp:
//                 synthesize the heavy warmup's load profile and simulate
//                 only a settle suffix — level kernel with
//                 replacement=with, policies kd/single/dchoice/
//                 one_plus_beta only)
//
// Counts (n, k, d, balls, threshold, cap) accept scientific notation
// ("n=1e9"). Unknown keys, duplicate keys, malformed values and invalid
// combinations (e.g. kernel=level for a policy without a level kernel) all
// throw kdc::cli_error with a message naming the valid set.
//
// Registered policies: "kd" (the paper's process; d=1 degenerates to
// single-choice), "single", "dchoice", "greedy" (the Section 7 modified
// policy), "weighted", "one_plus_beta", "threshold". New policies can be
// added at startup via policy_registry::instance().register_policy —
// registration is NOT thread-safe and must finish before sweeps start
// (cells copy their factory out of the registry at construction, so
// workers never touch it).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "core/runner.hpp"
#include "core/sweep.hpp"
#include "support/contracts.hpp"

namespace kdc {
class arg_parser;
} // namespace kdc

namespace kdc::core {

class thread_pool;

/// A process that can run its own phases on a shared worker pool (the
/// sharded round-parallel kernels of core/sharded_kernel.hpp). The pool is
/// borrowed and must outlive the process's runs; output never depends on
/// it.
template <typename P>
concept pool_aware = requires(P p, thread_pool* pool) { p.use_pool(pool); };

/// How a round's probes are used: the paper's uniform policy or one of the
/// variant policies layered on the kd frame.
enum class probe_policy { uniform, weighted, one_plus_beta, threshold };

[[nodiscard]] const char* probe_policy_name(probe_policy probe) noexcept;

/// Which kernel the scenario asks for; unlike kernel_kind this includes
/// `auto` ("level whenever the policy supports it", resolve_kernel).
enum class kernel_choice { per_bin, level, auto_pick };

[[nodiscard]] const char* kernel_choice_name(kernel_choice kernel) noexcept;

/// Whether a run simulates its warmup ball by ball (`full`) or jumps to a
/// synthesized steady-state profile and settles (`ff`,
/// core/steady_state.hpp).
enum class warmup_mode { full, fast_forward };

[[nodiscard]] const char* warmup_mode_name(warmup_mode warmup) noexcept;

/// Parses "full" / "ff" — the scenario grammar's warmup= values, also used
/// by the heavy benches' --warmup flag. Throws cli_error otherwise.
[[nodiscard]] warmup_mode warmup_from_name(const std::string& text);

/// Lifts a resolved kernel into the request enum — how benches map their
/// legacy `--kernel` flag onto a base scenario before `--scenario` merges
/// over it.
[[nodiscard]] constexpr kernel_choice
to_kernel_choice(kernel_kind kernel) noexcept {
    return kernel == kernel_kind::level ? kernel_choice::level
                                        : kernel_choice::per_bin;
}

/// The declarative scenario value. Fields not meaningful for the resolved
/// policy (e.g. beta under probe=uniform) are carried but ignored.
struct scenario {
    std::string family = "kd";
    std::uint64_t n = 1u << 16;
    std::uint64_t k = 1;
    std::uint64_t d = 2;
    std::uint64_t balls = 0; ///< 0 = the policy default (resolved_balls)
    probe_policy probe = probe_policy::uniform;
    double skew = 0.0;            ///< weighted: 0 = unit, s>0 = Pareto tail
    double beta = 0.5;            ///< one_plus_beta mixing probability
    std::uint64_t threshold = 2;  ///< threshold policy: load threshold
    std::uint64_t cap = 16;       ///< threshold policy: probe budget
    probe_mode replacement = probe_mode::with_replacement;
    kernel_choice kernel = kernel_choice::auto_pick;
    par_mode par = par_mode::rep;  ///< round = sharded intra-rep kernel
    std::uint64_t shards = 0;      ///< par=round shard request; 0 = auto
    std::uint64_t selpar = 0;      ///< par=round selection segments; 0 = auto
    metric_kind metric = metric_kind::max_load;
    warmup_mode warmup = warmup_mode::full; ///< ff = steady-state jump

    [[nodiscard]] bool operator==(const scenario&) const = default;
};

/// Parses the grammar above over default field values. Throws cli_error
/// with a precise message on any malformed input.
[[nodiscard]] scenario parse_scenario(std::string_view text);

/// Parses the grammar over `base`: keys present in `text` override the
/// base field, everything else is inherited — the merge benches use to let
/// `--scenario` override their legacy flags key by key.
[[nodiscard]] scenario parse_scenario(std::string_view text, scenario base);

/// Canonical string spelling of a scenario; parse_scenario round-trips it.
[[nodiscard]] std::string to_string(const scenario& sc);

/// Validates the scenario against its resolved policy (parameter ranges,
/// probe/family compatibility). Throws cli_error on violations.
void validate_scenario(const scenario& sc);

/// The registry key the scenario resolves to: the probe policy's name when
/// a non-uniform probe modifies the "kd" family, else the family itself.
[[nodiscard]] std::string resolved_policy(const scenario& sc);

/// Resolves kernel=auto (level whenever the policy supports it and the
/// probes are with-replacement) and rejects kernel=level for policies
/// without a level kernel — the error names the level-capable set.
[[nodiscard]] kernel_kind resolve_kernel(const scenario& sc);

/// The scenario's ball count: `balls` when set, else the policy default
/// (whole rounds of k for the batch policies, n for the per-ball ones).
[[nodiscard]] std::uint64_t resolved_balls(const scenario& sc);

/// Final-state observations of a type-erased process. Doubles, so weighted
/// policies lose nothing; for integer-load policies the values are exact.
struct process_observation {
    double max_load = 0.0;
    double gap = 0.0;
    std::uint64_t empty_bins = 0;
    std::uint64_t messages = 0;
    std::uint64_t balls_placed = 0;
};

/// Converts an observation to the integer-typed repetition_result the
/// sweep/engine stack folds. Exact for every integer-load policy; weighted
/// max loads truncate toward zero in the max_load field (the gap field
/// keeps full precision).
[[nodiscard]] repetition_result
to_repetition_result(const process_observation& obs);

/// A weighted process observed per bin: double loads plus the weighted
/// max/gap accessors (core/weighted.hpp's weighted_kd_process).
template <typename P>
concept weight_per_bin_observable = requires(const P cp) {
    { cp.loads() } -> std::convertible_to<const std::vector<double>&>;
    { cp.max_load() } -> std::convertible_to<double>;
    { cp.gap() } -> std::convertible_to<double>;
};

/// A weighted process on the level-compressed weight_profile state
/// (core/weighted.hpp's weighted_kd_level_process).
template <typename P>
concept weight_level_observable = requires(const P cp) {
    cp.profile().to_sorted_weights();
    { cp.max_load() } -> std::convertible_to<double>;
    { cp.gap() } -> std::convertible_to<double>;
};

/// A process that assembles its own process_observation — wrappers over
/// other processes (the warmup=ff fast_forwarded_process, which must fold
/// the skipped warmup into the inner kernel's counters). Checked before
/// the state-shaped concepts so a wrapper's accounting wins.
template <typename P>
concept self_observable = requires(const P cp) {
    { cp.observe() } -> std::convertible_to<process_observation>;
    { cp.sorted_loads() } -> std::convertible_to<std::vector<double>>;
};

/// Type-erased allocation process: the uniform handle make_process returns
/// for every policy and kernel. Move-only, like the processes it wraps.
class any_process {
public:
    template <typename P>
    explicit any_process(P process)
        : impl_(std::make_unique<model<P>>(std::move(process))) {}

    any_process(any_process&&) noexcept = default;
    any_process& operator=(any_process&&) noexcept = default;

    void run_balls(std::uint64_t balls) { impl_->run_balls(balls); }

    /// Hands a worker pool to pool_aware processes (nullptr detaches); a
    /// silent no-op for every other process, so callers can offer their
    /// pool unconditionally.
    void use_pool(thread_pool* pool) { impl_->use_pool(pool); }

    [[nodiscard]] process_observation observe() const {
        return impl_->observe();
    }

    /// The final sorted (descending) load vector, as doubles — O(n), for
    /// profile-shaped benches and small-n verification.
    [[nodiscard]] std::vector<double> sorted_loads() const {
        return impl_->sorted_loads();
    }

private:
    struct iface {
        virtual ~iface() = default;
        virtual void run_balls(std::uint64_t balls) = 0;
        virtual void use_pool(thread_pool* pool) = 0;
        [[nodiscard]] virtual process_observation observe() const = 0;
        [[nodiscard]] virtual std::vector<double> sorted_loads() const = 0;
    };

    template <typename P>
    struct model final : iface {
        explicit model(P process) : self(std::move(process)) {}
        void run_balls(std::uint64_t balls) override {
            self.run_balls(balls);
        }
        void use_pool(thread_pool* pool) override {
            if constexpr (pool_aware<P>) {
                self.use_pool(pool);
            } else {
                (void)pool;
            }
        }
        [[nodiscard]] process_observation observe() const override;
        [[nodiscard]] std::vector<double> sorted_loads() const override;
        P self;
    };

    std::unique_ptr<iface> impl_;
};

template <typename P>
process_observation any_process::model<P>::observe() const {
    if constexpr (self_observable<P>) {
        return self.observe();
    } else {
        process_observation obs;
        obs.messages = self.messages();
        obs.balls_placed = self.balls_placed();
        if constexpr (per_bin_observable<P> || level_observable<P>) {
            const auto m = observed_load_metrics(self);
            obs.max_load = static_cast<double>(m.max_load);
            obs.gap = m.gap;
            obs.empty_bins = m.empty_bins;
        } else if constexpr (weight_level_observable<P>) {
            obs.max_load = self.max_load();
            obs.gap = self.gap();
            obs.empty_bins = self.profile().bins_at(0.0);
        } else {
            static_assert(weight_per_bin_observable<P>,
                          "any_process needs loads()/profile() "
                          "observability");
            obs.max_load = self.max_load();
            obs.gap = self.gap();
            std::uint64_t empty = 0;
            for (const double load : self.loads()) {
                empty += load == 0.0 ? 1 : 0;
            }
            obs.empty_bins = empty;
        }
        return obs;
    }
}

template <typename P>
std::vector<double> any_process::model<P>::sorted_loads() const {
    if constexpr (self_observable<P>) {
        return self.sorted_loads();
    } else if constexpr (per_bin_observable<P>) {
        const auto sorted = sorted_loads_desc(self.loads());
        return std::vector<double>(sorted.begin(), sorted.end());
    } else if constexpr (level_observable<P>) {
        const auto sorted = self.profile().to_sorted_loads();
        return std::vector<double>(sorted.begin(), sorted.end());
    } else if constexpr (weight_level_observable<P>) {
        return self.profile().to_sorted_weights();
    } else {
        static_assert(weight_per_bin_observable<P>,
                      "any_process needs loads()/profile() observability");
        std::vector<double> loads(self.loads().begin(), self.loads().end());
        std::sort(loads.begin(), loads.end(), std::greater<>{});
        return loads;
    }
}

/// One registry entry: what the policy is called, what it supports, and
/// how to build a repetition's process for it.
struct policy_info {
    std::string name;
    std::string summary;
    bool supports_level = false;       ///< has a level-compressed kernel
    bool supports_replacement = false; ///< honors replacement=without
    /// Builds a fresh process. `kernel` is already resolved (never auto)
    /// and valid for this policy; must be const-callable concurrently.
    std::function<any_process(const scenario& sc, kernel_kind kernel,
                              std::uint64_t seed)>
        make;
};

/// The string-keyed policy registry behind make_process. The singleton is
/// pre-populated with the built-in policies listed in the header comment.
class policy_registry {
public:
    [[nodiscard]] static policy_registry& instance();

    /// Adds (or replaces) a policy. Not thread-safe; call during startup,
    /// before any sweep runs.
    void register_policy(policy_info info);

    /// nullptr when the name is unknown.
    [[nodiscard]] const policy_info* find(std::string_view name) const;

    /// Like find, but throws cli_error naming the registered set.
    [[nodiscard]] const policy_info& at(std::string_view name) const;

    /// All registered policy names, sorted.
    [[nodiscard]] std::vector<std::string> names() const;

    /// The names of policies with a level kernel, sorted (error messages
    /// for kernel=level name this set).
    [[nodiscard]] std::vector<std::string> level_capable_names() const;

private:
    policy_registry();
    std::map<std::string, policy_info, std::less<>> entries_;
};

/// THE factory: validates the scenario, resolves the kernel, looks the
/// policy up in the registry and builds the process for one repetition.
[[nodiscard]] any_process make_process(const scenario& sc, std::uint64_t seed);

/// One repetition of a scenario: build, run `balls` balls, observe. The
/// pool overload hands `pool` to pool_aware processes (sc.par = round)
/// before running; results are byte-identical with or without a pool.
[[nodiscard]] repetition_result
run_scenario_repetition(const scenario& sc, std::uint64_t derived_seed,
                        std::uint64_t balls);
[[nodiscard]] repetition_result
run_scenario_repetition(const scenario& sc, std::uint64_t derived_seed,
                        std::uint64_t balls, thread_pool* pool);

/// Serial multi-repetition experiment over a scenario — the scenario-typed
/// counterpart of run_experiment, bit-identical to it for every policy the
/// legacy convenience runners cover. config.balls = 0 means
/// resolved_balls(sc).
[[nodiscard]] experiment_result
run_scenario_experiment(const scenario& sc, const experiment_config& config);

/// The intra-repetition execution mode: repetitions still run (and fold) in
/// repetition order on the calling thread, but each repetition's process is
/// offered `pool` — under par=round its sharded phases spread across the
/// workers. Byte-identical to the pool-less overload for every scenario.
[[nodiscard]] experiment_result
run_scenario_experiment(const scenario& sc, const experiment_config& config,
                        thread_pool& pool);

/// A sweep cell whose repetitions run `sc` (core/sweep.hpp). The cell's
/// monitored metric is sc.metric; config.balls = 0 means resolved_balls.
/// The policy factory is copied out of the registry here, so the returned
/// cell never touches the registry from worker threads.
[[nodiscard]] sweep_cell make_scenario_cell(std::string name,
                                            const scenario& sc,
                                            experiment_config config);

/// Builds the effective scenario of a binary: parses the standard
/// `--scenario` option (arg_parser::add_scenario_option) over `base` — the
/// scenario the binary assembled from its legacy flags — so scenario keys
/// override legacy flags and everything else is inherited. An absent or
/// empty --scenario returns `base` unchanged.
[[nodiscard]] scenario scenario_from_cli(const arg_parser& args,
                                         scenario base = {});

} // namespace kdc::core
