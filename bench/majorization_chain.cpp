// Empirical verification of the Section 3 majorization properties
// (ii)-(v), plus the Theorem 2 sandwich chain
//     A(1, d-k+1)  <=mj  A(k, d)  <=mj  A(1, floor(d/k)).
//
// For each ordered pair we report the mean max load of both processes and
// the Mann-Whitney dominance probability P(maxload(worse) > maxload(better))
// (+0.5 ties); majorization implies this is >= 0.5.
//
// All twenty process runs execute as ONE sweep on the process-wide
// persistent pool (core/sweep.hpp), folded in repetition order, so the
// table is bit-identical at any --threads value; the table and --csv output
// share one column declaration (support/row_emitter.hpp).
//
//   ./majorization_chain [--n=65536] [--reps=30] [--seed=7] [--threads=0]
//                        [--csv] [--scenario "kd:n=...,kernel=auto"]
//
// Every process in the chain is a declarative scenario
// (core/scenario.hpp); --scenario overrides the legacy flags key by key
// (byte-identical for equivalent settings).
#include <iostream>
#include <vector>

#include "core/coupling.hpp"
#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "stats/hypothesis.hpp"
#include "support/cli.hpp"
#include "support/row_emitter.hpp"
#include "support/text_table.hpp"

namespace {

std::vector<double> max_load_sample(const kdc::core::sweep_outcome& outcome) {
    std::vector<double> sample;
    sample.reserve(outcome.result.reps.size());
    for (const auto& rep : outcome.result.reps) {
        sample.push_back(static_cast<double>(rep.max_load));
    }
    return sample;
}

double mean_of(const std::vector<double>& xs) {
    double sum = 0.0;
    for (const double x : xs) {
        sum += x;
    }
    return sum / static_cast<double>(xs.size());
}

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins and balls");
    args.add_option("reps", "30", "repetitions per process");
    args.add_option("seed", "7", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_flag("csv",
                  "also emit CSV rows (property, configs, means, dominance)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;

    struct pair {
        const char* property;
        std::uint64_t kb, db; // better (majorized)
        std::uint64_t kw, dw; // worse (majorizing)
    };
    const std::vector<pair> pairs{
        {"(ii)  A(k,d+a) <= A(k,d)", 1, 4, 1, 2},
        {"(ii)  A(k,d+a) <= A(k,d)", 4, 12, 4, 6},
        {"(iii) A(k-a,d) <= A(k,d)", 1, 8, 4, 8},
        {"(iii) A(k-a,d) <= A(k,d)", 2, 16, 8, 16},
        {"(iv)  A(ak,ad) <= A(k,d)", 4, 8, 1, 2},
        {"(iv)  A(ak,ad) <= A(k,d)", 8, 12, 2, 3},
        {"(v)   A(k,d) <= A(k+a,d+a)", 1, 2, 16, 17},
        {"(v)   A(k,d) <= A(k+a,d+a)", 2, 4, 32, 34},
        {"thm2  A(1,d-k+1) <= A(k,d)", 1, 5, 4, 8},
        {"thm2  A(k,d) <= A(1,d/k)", 4, 8, 1, 2},
    };

    // Two cells per pair (better then worse), seeded exactly as the original
    // serial loop was: the pair counter advances once per side.
    std::vector<kdc::core::sweep_cell> cells;
    std::uint64_t pair_seed = seed;
    auto add_process = [&](std::uint64_t k, std::uint64_t d,
                           std::uint64_t multiplier) {
        ++pair_seed;
        auto sc = merged;
        sc.k = k;
        sc.d = d;
        cells.push_back(kdc::core::make_scenario_cell(
            "(" + std::to_string(k) + "," + std::to_string(d) + ")", sc,
            {.balls = n - (n % k), .reps = reps,
             .seed = pair_seed * multiplier}));
    };
    for (const auto& p : pairs) {
        add_process(p.kb, p.db, 131);
        add_process(p.kw, p.dw, 137);
    }

    kdc::core::sweep_options options;
    options.threads = args.get_threads();
    const auto outcomes = kdc::core::run_sweep(cells, options);

    std::cout << "Majorization chain, n = " << n << ", " << reps
              << " reps per process\n"
              << "dominance = P(max(worse) > max(better)) + 0.5 P(tie); "
                 "majorization implies >= 0.5\n\n";

    struct pair_row {
        const pair* p;
        double better_mean = 0.0;
        double worse_mean = 0.0;
        double dominance = 0.0;
    };
    std::vector<pair_row> rows;
    rows.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const auto better = max_load_sample(outcomes[2 * i]);
        const auto worse = max_load_sample(outcomes[2 * i + 1]);
        rows.push_back({&pairs[i], mean_of(better), mean_of(worse),
                        kdc::stats::dominance_probability(worse, better)});
    }
    kdc::row_emitter<pair_row> emitter;
    emitter
        .add_column("property",
                    [](const pair_row& row, std::size_t) {
                        return std::string(row.p->property);
                    },
                    kdc::table_align::left)
        .add_column("better",
                    [](const pair_row& row, std::size_t) {
                        return "(" + std::to_string(row.p->kb) + "," +
                               std::to_string(row.p->db) + ")";
                    })
        .add_stat_column("better mean",
                         [](const pair_row& row) { return row.better_mean; })
        .add_column("worse",
                    [](const pair_row& row, std::size_t) {
                        return "(" + std::to_string(row.p->kw) + "," +
                               std::to_string(row.p->dw) + ")";
                    })
        .add_stat_column("worse mean",
                         [](const pair_row& row) { return row.worse_mean; })
        .add_stat_column("dominance",
                         [](const pair_row& row) { return row.dominance; },
                         3);
    emitter.write_table(std::cout, rows);
    std::cout << "Every dominance entry should be >= ~0.5 (sampling noise "
                 "aside): the majorized\n"
                 "process never has the stochastically larger max load.\n\n";

    // The paper's actual coupling constructions (Section 3 proofs), run as
    // experiments: shared probes for (ii), partitioned probes for (iv).
    std::cout << "Coupled runs (paper's proof couplings, n = " << n << "):\n";
    kdc::text_table coupled;
    coupled.set_header({"coupling", "config", "rounds",
                        "prefix-sum violations", "rate"});
    coupled.set_align(0, kdc::table_align::left);
    const auto ii = kdc::core::couple_property_ii(n, 2, 4, 4, n / 2, seed);
    coupled.add_row({"Property (ii), shared probes",
                     "A(2,8) vs A(2,4)", std::to_string(ii.rounds),
                     std::to_string(ii.violations),
                     kdc::format_fixed(ii.violation_rate(), 4)});
    const auto iv = kdc::core::couple_property_iv(n, 2, 4, 2, n / 8, seed);
    coupled.add_row({"Property (iv), partitioned probes",
                     "A(4,8) vs A(2,4)", std::to_string(iv.rounds),
                     std::to_string(iv.violations),
                     kdc::format_fixed(iv.violation_rate(), 4)});
    std::cout << coupled
              << "(ii) holds exactly under the coupling; (iv) shows only "
                 "residual tie-breaking noise.\n";

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, rows);
    }
    return 0;
}
