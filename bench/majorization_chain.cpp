// Empirical verification of the Section 3 majorization properties
// (ii)-(v), plus the Theorem 2 sandwich chain
//     A(1, d-k+1)  <=mj  A(k, d)  <=mj  A(1, floor(d/k)).
//
// For each ordered pair we report the mean max load of both processes and
// the Mann-Whitney dominance probability P(maxload(worse) > maxload(better))
// (+0.5 ties); majorization implies this is >= 0.5.
//
//   ./majorization_chain [--n=65536] [--reps=30] [--seed=7]
#include <iostream>
#include <vector>

#include "core/coupling.hpp"
#include "core/runner.hpp"
#include "stats/hypothesis.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

namespace {

std::vector<double> max_load_sample(std::uint64_t n, std::uint64_t k,
                                    std::uint64_t d, std::uint32_t reps,
                                    std::uint64_t seed) {
    const auto balls = n - (n % k);
    const auto result = kdc::core::run_kd_experiment(
        n, k, d, {.balls = balls, .reps = reps, .seed = seed});
    std::vector<double> sample;
    sample.reserve(result.reps.size());
    for (const auto& rep : result.reps) {
        sample.push_back(static_cast<double>(rep.max_load));
    }
    return sample;
}

double mean_of(const std::vector<double>& xs) {
    double sum = 0.0;
    for (const double x : xs) {
        sum += x;
    }
    return sum / static_cast<double>(xs.size());
}

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins and balls");
    args.add_option("reps", "30", "repetitions per process");
    args.add_option("seed", "7", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    struct pair {
        const char* property;
        std::uint64_t kb, db; // better (majorized)
        std::uint64_t kw, dw; // worse (majorizing)
    };
    const std::vector<pair> pairs{
        {"(ii)  A(k,d+a) <= A(k,d)", 1, 4, 1, 2},
        {"(ii)  A(k,d+a) <= A(k,d)", 4, 12, 4, 6},
        {"(iii) A(k-a,d) <= A(k,d)", 1, 8, 4, 8},
        {"(iii) A(k-a,d) <= A(k,d)", 2, 16, 8, 16},
        {"(iv)  A(ak,ad) <= A(k,d)", 4, 8, 1, 2},
        {"(iv)  A(ak,ad) <= A(k,d)", 8, 12, 2, 3},
        {"(v)   A(k,d) <= A(k+a,d+a)", 1, 2, 16, 17},
        {"(v)   A(k,d) <= A(k+a,d+a)", 2, 4, 32, 34},
        {"thm2  A(1,d-k+1) <= A(k,d)", 1, 5, 4, 8},
        {"thm2  A(k,d) <= A(1,d/k)", 4, 8, 1, 2},
    };

    std::cout << "Majorization chain, n = " << n << ", " << reps
              << " reps per process\n"
              << "dominance = P(max(worse) > max(better)) + 0.5 P(tie); "
                 "majorization implies >= 0.5\n\n";

    kdc::text_table table;
    table.set_header({"property", "better", "mean", "worse", "mean",
                      "dominance"});
    table.set_align(0, kdc::table_align::left);

    std::uint64_t pair_seed = seed;
    for (const auto& p : pairs) {
        const auto better =
            max_load_sample(n, p.kb, p.db, reps, ++pair_seed * 131);
        const auto worse =
            max_load_sample(n, p.kw, p.dw, reps, ++pair_seed * 137);
        const double dom = kdc::stats::dominance_probability(worse, better);
        table.add_row({p.property,
                       "(" + std::to_string(p.kb) + "," +
                           std::to_string(p.db) + ")",
                       kdc::format_fixed(mean_of(better), 2),
                       "(" + std::to_string(p.kw) + "," +
                           std::to_string(p.dw) + ")",
                       kdc::format_fixed(mean_of(worse), 2),
                       kdc::format_fixed(dom, 3)});
    }
    std::cout << table << '\n'
              << "Every dominance entry should be >= ~0.5 (sampling noise "
                 "aside): the majorized\n"
                 "process never has the stochastically larger max load.\n\n";

    // The paper's actual coupling constructions (Section 3 proofs), run as
    // experiments: shared probes for (ii), partitioned probes for (iv).
    std::cout << "Coupled runs (paper's proof couplings, n = " << n << "):\n";
    kdc::text_table coupled;
    coupled.set_header({"coupling", "config", "rounds",
                        "prefix-sum violations", "rate"});
    coupled.set_align(0, kdc::table_align::left);
    const auto ii = kdc::core::couple_property_ii(n, 2, 4, 4, n / 2, seed);
    coupled.add_row({"Property (ii), shared probes",
                     "A(2,8) vs A(2,4)", std::to_string(ii.rounds),
                     std::to_string(ii.violations),
                     kdc::format_fixed(ii.violation_rate(), 4)});
    const auto iv = kdc::core::couple_property_iv(n, 2, 4, 2, n / 8, seed);
    coupled.add_row({"Property (iv), partitioned probes",
                     "A(4,8) vs A(2,4)", std::to_string(iv.rounds),
                     std::to_string(iv.violations),
                     kdc::format_fixed(iv.violation_rate(), 4)});
    std::cout << coupled
              << "(ii) holds exactly under the coupling; (iv) shows only "
                 "residual tie-breaking noise.\n";
    return 0;
}
