#include "core/level_profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/level_process.hpp"
#include "core/metrics.hpp"
#include "support/cli.hpp"
#include "support/contracts.hpp"
#include "support/crc32.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::level_profile;
using kdc::core::load_vector;

/// Appends the format-v2 CRC trailer to a hand-written snapshot body, so a
/// test can exercise the PARSER's rejections (bad magic, bad sums, ...)
/// without the CRC gate masking them.
std::string with_crc(const std::string& body) {
    char hex[16];
    std::snprintf(hex, sizeof hex, "%08x", kdc::crc32(body));
    return body + "crc32 " + hex + "\n";
}

TEST(LevelProfile, FreshProfileIsAllEmptyBins) {
    level_profile profile(5);
    EXPECT_EQ(profile.n(), 5u);
    EXPECT_EQ(profile.remaining_bins(), 5u);
    EXPECT_EQ(profile.total_balls(), 0u);
    EXPECT_EQ(profile.max_level(), 0u);
    EXPECT_EQ(profile.bins_at(0), 5u);
    EXPECT_EQ(profile.bins_at(1), 0u);
    EXPECT_EQ(profile.bins_at(1u << 20), 0u); // beyond capacity: zero
}

TEST(LevelProfile, RequiresAtLeastOneBin) {
    EXPECT_THROW(level_profile(0), kdc::contract_violation);
}

TEST(LevelProfile, MoveBinTracksCountsBallsAndMax) {
    level_profile profile(3);
    profile.move_bin(0, 1);
    profile.move_bin(0, 1);
    profile.move_bin(1, 2);
    EXPECT_EQ(profile.bins_at(0), 1u);
    EXPECT_EQ(profile.bins_at(1), 1u);
    EXPECT_EQ(profile.bins_at(2), 1u);
    EXPECT_EQ(profile.total_balls(), 3u);
    EXPECT_EQ(profile.max_level(), 2u);
}

TEST(LevelProfile, MaxLevelShrinksWhenTopBinLeaves) {
    const auto profile_loads = load_vector{4, 1};
    auto profile = level_profile::from_loads(profile_loads);
    EXPECT_EQ(profile.max_level(), 4u);
    profile.extract_bin(4);
    EXPECT_EQ(profile.max_level(), 1u);
    profile.insert_bin(4);
    EXPECT_EQ(profile.max_level(), 4u);
}

TEST(LevelProfile, ExtractInsertRoundTrip) {
    auto profile = level_profile::from_loads({2, 2, 0});
    profile.extract_bin(2);
    EXPECT_EQ(profile.remaining_bins(), 2u);
    EXPECT_EQ(profile.total_balls(), 2u);
    profile.insert_bin(2);
    EXPECT_EQ(profile.remaining_bins(), 3u);
    EXPECT_EQ(profile.total_balls(), 4u);
    EXPECT_EQ(profile.bins_at(2), 2u);
}

TEST(LevelProfile, ExtractFromEmptyLevelViolatesContract) {
    level_profile profile(2);
    EXPECT_THROW(profile.extract_bin(1), kdc::contract_violation);
    EXPECT_THROW(profile.extract_bin(1u << 30), kdc::contract_violation);
}

TEST(LevelProfile, InsertBeyondCapacityViolatesContract) {
    level_profile profile(2);
    EXPECT_THROW(profile.insert_bin(profile.level_capacity()),
                 kdc::contract_violation);
    profile.ensure_levels(100);
    EXPECT_GE(profile.level_capacity(), 100u);
    profile.move_bin(0, 99); // now legal
    EXPECT_EQ(profile.max_level(), 99u);
}

TEST(LevelProfile, EnsureLevelsPreservesState) {
    auto profile = level_profile::from_loads({3, 1, 0, 0});
    profile.ensure_levels(500);
    EXPECT_EQ(profile.bins_at(0), 2u);
    EXPECT_EQ(profile.bins_at(1), 1u);
    EXPECT_EQ(profile.bins_at(3), 1u);
    EXPECT_EQ(profile.total_balls(), 4u);
    EXPECT_EQ(profile.remaining_bins(), 4u);
}

TEST(LevelProfile, LevelAtRankWalksLevelsInOrder) {
    // Loads {3,1,1,0}: one bin at level 0, two at level 1, one at level 3.
    // Ranks are laid out level by level: 0 -> l0, 1..2 -> l1, 3 -> l3.
    const auto profile = level_profile::from_loads({3, 1, 1, 0});
    EXPECT_EQ(profile.level_at_rank(0), 0u);
    EXPECT_EQ(profile.level_at_rank(1), 1u);
    EXPECT_EQ(profile.level_at_rank(2), 1u);
    EXPECT_EQ(profile.level_at_rank(3), 3u);
}

TEST(LevelProfile, LevelAtRankSeesExtractions) {
    auto profile = level_profile::from_loads({2, 1, 0});
    profile.extract_bin(0);
    // Remaining: one bin at level 1, one at level 2.
    ASSERT_EQ(profile.remaining_bins(), 2u);
    EXPECT_EQ(profile.level_at_rank(0), 1u);
    EXPECT_EQ(profile.level_at_rank(1), 2u);
}

TEST(LevelProfile, FromLoadsToSortedLoadsRoundTrips) {
    const load_vector loads{0, 7, 3, 3, 1, 0, 2};
    const auto profile = level_profile::from_loads(loads);
    const load_vector expected{7, 3, 3, 2, 1, 0, 0};
    EXPECT_EQ(profile.to_sorted_loads(), expected);
}

TEST(LevelProfile, MetricsMatchPerBinComputation) {
    const load_vector loads{0, 7, 3, 3, 1, 0, 2};
    const auto profile = level_profile::from_loads(loads);
    const auto expected = compute_load_metrics(loads);
    const auto got = profile.metrics();
    EXPECT_EQ(got.max_load, expected.max_load);
    EXPECT_EQ(got.min_load, expected.min_load);
    EXPECT_EQ(got.total_balls, expected.total_balls);
    EXPECT_EQ(got.empty_bins, expected.empty_bins);
    EXPECT_DOUBLE_EQ(got.mean_load, expected.mean_load);
    EXPECT_DOUBLE_EQ(got.gap, expected.gap);
}

TEST(LevelProfile, MetricsWithNoEmptyBins) {
    const load_vector loads{2, 1, 1};
    const auto profile = level_profile::from_loads(loads);
    const auto got = profile.metrics();
    EXPECT_EQ(got.empty_bins, 0u);
    EXPECT_EQ(got.min_load, 1u);
}

TEST(LevelProfile, BillionBinProfileIsTiny) {
    // The whole point: state scales with max load, not n.
    level_profile profile(1'000'000'000ULL);
    EXPECT_EQ(profile.n(), 1'000'000'000ULL);
    profile.move_bin(0, 1);
    EXPECT_EQ(profile.bins_at(0), 999'999'999ULL);
    EXPECT_EQ(profile.level_at_rank(999'999'999ULL), 1u);
    EXPECT_LT(profile.level_capacity(), 64u);
}

TEST(LevelProfileSnapshot, SaveLoadRoundTripsExactly) {
    const load_vector loads{7, 0, 3, 3, 1, 0, 0, 2};
    const auto profile = level_profile::from_loads(loads);
    std::stringstream snapshot;
    profile.save(snapshot);
    const auto restored = level_profile::load(snapshot);
    EXPECT_TRUE(restored == profile);
    EXPECT_EQ(restored.to_sorted_loads(), profile.to_sorted_loads());
    const auto metrics = restored.metrics();
    EXPECT_EQ(metrics.max_load, 7u);
    EXPECT_EQ(metrics.empty_bins, 3u);
    EXPECT_EQ(metrics.total_balls, 16u);
}

TEST(LevelProfileSnapshot, BillionBinSnapshotIsTinyAndRoundTrips) {
    level_profile profile(1'000'000'000ULL);
    profile.move_bin(0, 1);
    profile.move_bin(0, 1);
    profile.move_bin(1, 2);
    std::stringstream snapshot;
    profile.save(snapshot);
    EXPECT_LT(snapshot.str().size(), 128u); // O(max level) bytes, not O(n)
    EXPECT_TRUE(level_profile::load(snapshot) == profile);
}

TEST(LevelProfileSnapshot, RefusesExtractedBinsAndMalformedInput) {
    level_profile profile(4);
    profile.extract_bin(0);
    std::stringstream out;
    EXPECT_THROW(profile.save(out), kdc::contract_violation);
    profile.insert_bin(0);

    auto load_of = [](const std::string& text) {
        std::stringstream in(text);
        return level_profile::load(in);
    };
    // No trailer at all (empty file, or a pre-v2 snapshot).
    EXPECT_THROW((void)load_of(""), kdc::cli_error);
    EXPECT_THROW((void)load_of("kdc-level-profile 1\n4 2\n3 1\n"),
                 kdc::cli_error);
    // Structural errors behind a CORRECT trailer, so the parser (not the
    // CRC gate) is what rejects them.
    EXPECT_THROW((void)load_of(with_crc("not-a-profile 2\n4 1\n4\n")),
                 kdc::cli_error);
    EXPECT_THROW((void)load_of(with_crc("kdc-level-profile 9\n4 1\n4\n")),
                 kdc::cli_error);
    EXPECT_THROW((void)load_of(with_crc("kdc-level-profile 2\n0 1\n")),
                 kdc::cli_error);
    // Truncated count list.
    EXPECT_THROW((void)load_of(with_crc("kdc-level-profile 2\n4 2\n3\n")),
                 kdc::cli_error);
    // Counts that do not sum to n.
    EXPECT_THROW((void)load_of(with_crc("kdc-level-profile 2\n4 2\n1 1\n")),
                 kdc::cli_error);
    // Surplus fields after the declared counts.
    EXPECT_THROW(
        (void)load_of(with_crc("kdc-level-profile 2\n4 2\n3 1 9\n")),
        kdc::cli_error);
    // A declared level count no honest file could hold (caught before it
    // becomes a giant allocation).
    EXPECT_THROW(
        (void)load_of(with_crc("kdc-level-profile 2\n4 999999999999\n3 1\n")),
        kdc::cli_error);
    // A well-formed v2 snapshot loads.
    const auto ok = load_of(with_crc("kdc-level-profile 2\n4 2\n3 1\n"));
    EXPECT_EQ(ok.n(), 4u);
    EXPECT_EQ(ok.bins_at(1), 1u);
    EXPECT_EQ(ok.max_level(), 1u);
}

TEST(LevelProfileSnapshot, ResumesALevelProcessRun) {
    // The resumable-billion-bin-run shape at test scale: run, snapshot,
    // reload, continue — counters on the resumed process start fresh.
    kdc::core::kd_choice_level_process first(512, 2, 4, 99);
    first.run_balls(256);
    std::stringstream snapshot;
    first.profile().save(snapshot);

    kdc::core::kd_choice_level_process resumed(
        level_profile::load(snapshot), 2, 4, 100);
    EXPECT_EQ(resumed.balls_placed(), 0u);
    resumed.run_balls(256);
    EXPECT_EQ(resumed.profile().total_balls(), 512u);
    EXPECT_EQ(resumed.profile().remaining_bins(), 512u);
}

} // namespace
