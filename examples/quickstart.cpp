// Quickstart: the 60-second tour of the kdchoice public API.
//
//   $ ./quickstart
//
// Covers: the declarative scenario API (one string, one factory, any
// policy and kernel), reading metrics, multi-repetition experiments,
// comparing with the classic baselines, and the theory oracle's
// predictions.
#include <iostream>

#include "core/kdchoice.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main() {
    constexpr std::uint64_t seed = 2024;

    // 1. A scenario is ONE declarative value: the paper's (k,d)-choice
    //    process at n = 2^16, with the simulation kernel left to the
    //    library (kernel=auto picks the level-compressed kernel whenever
    //    the policy supports it).
    const auto sc = kdc::core::parse_scenario(
        "kd:n=65536,k=8,d=16,kernel=auto");
    const auto n = sc.n;

    // 2. make_process dispatches through the policy registry to the right
    //    process and kernel; run and observe through one uniform handle.
    auto process = kdc::core::make_process(sc, seed);
    process.run_balls(kdc::core::resolved_balls(sc));
    const auto obs = process.observe();
    std::cout << "scenario " << kdc::core::to_string(sc) << "\n"
              << "  kernel     : "
              << kdc::core::kernel_name(kdc::core::resolve_kernel(sc)) << "\n"
              << "  max load   : " << obs.max_load << "\n"
              << "  empty bins : " << obs.empty_bins << "\n"
              << "  messages   : " << obs.messages << " ("
              << kdc::format_fixed(static_cast<double>(obs.messages) /
                                       static_cast<double>(n), 2)
              << " per ball)\n";

    // 3. The paper's quantities from the sorted load vector B_x (lossless
    //    on every kernel: bins are exchangeable).
    const auto sorted = process.sorted_loads();
    std::cout << "  B_1=" << sorted.front() << " B_n=" << sorted.back()
              << "\n";

    // 4. What does the theory predict? Theorem 1's two terms.
    const auto bound = kdc::theory::theorem1_bound(n, sc.k, sc.d);
    std::cout << "  Theorem 1 prediction: " << kdc::format_fixed(bound.first, 2)
              << " + " << kdc::format_fixed(bound.second, 2) << " + O(1)\n\n";

    // 5. Multi-repetition experiment (Table 1 cell style): 10 runs,
    //    independent seeds, aggregated.
    const auto experiment = kdc::core::run_scenario_experiment(
        sc, {.balls = n, .reps = 10, .seed = seed});
    std::cout << "10-rep experiment: max loads seen = {"
              << experiment.max_load_set() << "}, mean "
              << kdc::format_fixed(experiment.max_load_stats.mean(), 2)
              << "\n\n";

    // 6. Against the classics — every baseline is a scenario too.
    const auto single = kdc::core::run_scenario_experiment(
        kdc::core::parse_scenario("single:n=65536"),
        {.balls = n, .reps = 10, .seed = seed + 1});
    const auto two_choice = kdc::core::run_scenario_experiment(
        kdc::core::parse_scenario("dchoice:n=65536,k=1,d=2"),
        {.balls = n, .reps = 10, .seed = seed + 2});
    std::cout << "baselines: single-choice max loads {"
              << single.max_load_set() << "}, two-choice {"
              << two_choice.max_load_set() << "}\n"
              << "(k,d)-choice spends " << sc.d << "/" << sc.k << " = "
              << kdc::format_fixed(static_cast<double>(sc.d) /
                                       static_cast<double>(sc.k), 2)
              << " messages per ball vs 2.0 for two-choice.\n";
    return 0;
}
