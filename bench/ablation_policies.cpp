// Ablation over the allocation-policy design choices the paper discusses:
//
//  1. The multiplicity rule (Section 1) vs the Section 7 "modified policy"
//     (batched greedy: less-loaded bins may receive multiple balls). The
//     paper conjectures the modified policy achieves O(1) max load even for
//     k ~ d, where the standard policy degrades toward single choice —
//     the (192,193) cell of Table 1 reads "5, 6"; greedy should read ~2.
//  2. Serialization order sigma (Definition 1): by Property (i) the final
//     load distribution is invariant — identity, reversal and random
//     schedules must agree (an ablation that *should* show nothing).
//
// Both ablation phases run as cross-cell sweeps sharing ONE work-stealing
// pool (core/sweep.hpp), so all configurations of a phase execute in
// parallel; reported numbers are bit-identical at any --threads value.
//
//   ./ablation_policies [--n=196608] [--reps=10] [--seed=8] [--threads=0]
//                       [--csv] [--scenario "kd:n=...,kernel=auto"]
//                       [--adaptive --ci-width=0.4 --min-reps=3 --max-reps=40]
//
// Phase-1 cells are declarative scenarios (core/scenario.hpp): the
// standard process is the "kd" policy, the Section 7 variant the "greedy"
// policy. --scenario overrides the legacy flags key by key. The sigma
// phase exercises serialized_process, which is deliberately outside the
// scenario vocabulary (it ablates the schedule, not the policy).
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("reps", "10", "repetitions per configuration");
    args.add_option("seed", "8", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (cell, mean max, set)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;

    struct config {
        std::uint64_t k, d;
    };
    const std::vector<config> configs{{2, 3},   {8, 9},    {32, 33},
                                      {96, 97}, {192, 193}, {128, 193}};

    // Phase 1 cells: a standard / greedy pair per configuration, seeded
    // exactly as the original serial loops were.
    std::vector<kdc::core::sweep_cell> policy_cells;
    std::uint64_t cfg_seed = seed;
    for (const auto& cfg : configs) {
        ++cfg_seed;
        const auto balls = n - (n % cfg.k);
        const std::string kd =
            "(" + std::to_string(cfg.k) + "," + std::to_string(cfg.d) + ")";
        auto standard = merged;
        standard.k = cfg.k;
        standard.d = cfg.d;
        policy_cells.push_back(kdc::core::make_scenario_cell(
            kd + " standard", standard,
            {.balls = balls, .reps = reps, .seed = cfg_seed}));
        auto greedy = standard;
        greedy.family = "greedy";
        greedy.probe = kdc::core::probe_policy::uniform;
        // greedy has no level kernel; auto degrades to perbin so a
        // kernel=level scenario still runs the whole ablation.
        greedy.kernel = kdc::core::kernel_choice::auto_pick;
        policy_cells.push_back(kdc::core::make_scenario_cell(
            kd + " greedy", greedy,
            {.balls = balls, .reps = reps, .seed = cfg_seed + 5000}));
    }

    // Phase 2 cells: one per sigma schedule, all on the same master seed
    // (identical seeds -> identical samples is the point of the ablation).
    // Each repetition constructs its OWN schedule: random_schedule's copies
    // share one generator, so a schedule built once and captured would be
    // mutated concurrently by parallel reps. Per-rep construction is
    // race-free and still deterministic — the reported loads are
    // sigma-invariant by Property (i) regardless of the permutation stream.
    const std::uint64_t sk = 8;
    const std::uint64_t sd = 16;
    struct schedule_case {
        const char* name;
        std::function<kdc::core::sigma_schedule()> make;
    };
    const std::uint64_t sigma_seed = seed + 999;
    std::vector<schedule_case> schedules;
    schedules.push_back(
        {"identity", [] { return kdc::core::identity_schedule(); }});
    schedules.push_back(
        {"reverse", [] { return kdc::core::reverse_schedule(); }});
    schedules.push_back({"random", [sigma_seed] {
                             return kdc::core::random_schedule(sigma_seed);
                         }});
    std::vector<kdc::core::sweep_cell> sigma_cells;
    for (const auto& sched : schedules) {
        sigma_cells.push_back(kdc::core::make_sweep_cell(
            sched.name, {.balls = n, .reps = reps, .seed = seed + 31},
            [n, sk, sd, make = sched.make](std::uint64_t s) {
                return kdc::core::serialized_process(n, sk, sd, s, make());
            }));
    }

    // The process-wide persistent pool serves both phases — nested sweeps
    // share workers instead of re-spawning them.
    kdc::core::sweep_options options;
    options.stopping = kdc::core::stopping_rule_from_cli(args);
    auto& pool = kdc::core::persistent_pool(args.get_threads());
    // Not const: the --csv path at the end moves both into one vector.
    auto policy_outcomes = kdc::core::run_sweep(pool, policy_cells, options);
    auto sigma_outcomes = kdc::core::run_sweep(pool, sigma_cells, options);

    std::cout << "Ablation 1 — multiplicity rule vs Section 7 greedy "
                 "policy, n = " << n << "\n\n";
    kdc::text_table policy_table;
    policy_table.set_header({"(k,d)", "standard mean max", "standard set",
                             "greedy mean max", "greedy set"});
    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto& standard = policy_outcomes[2 * i].result;
        const auto& greedy = policy_outcomes[2 * i + 1].result;
        policy_table.add_row(
            {"(" + std::to_string(configs[i].k) + "," +
                 std::to_string(configs[i].d) + ")",
             kdc::format_fixed(standard.max_load_stats.mean(), 2),
             standard.max_load_set(),
             kdc::format_fixed(greedy.max_load_stats.mean(), 2),
             greedy.max_load_set()});
    }
    std::cout << policy_table << '\n'
              << "Conjecture (Section 7): greedy stays O(1) even at k ~ d "
                 "(watch the (192,193) row).\n\n";

    std::cout << "Ablation 2 — serialization schedule sigma (Property (i): "
                 "no effect expected)\n\n";
    kdc::core::sweep_emitter sigma_emitter;
    sigma_emitter.add_name_column("sigma")
        .add_stat_column("mean max",
                         [](const kdc::core::sweep_outcome& outcome) {
                             return outcome.result.max_load_stats.mean();
                         })
        .add_max_load_set_column("set");
    sigma_emitter.write_table(std::cout, sigma_outcomes);
    std::cout << "All three rows must agree (identical seeds -> identical "
                 "samples -> identical loads).\n";

    if (args.get_flag("csv")) {
        kdc::core::sweep_emitter csv_emitter;
        csv_emitter.add_name_column("cell")
            .add_reps_column()
            .add_stat_column("max_load_mean",
                             [](const kdc::core::sweep_outcome& outcome) {
                                 return outcome.result.max_load_stats.mean();
                             })
            .add_max_load_set_column("max_load_set");
        std::cout << "\nCSV:\n";
        auto all = std::move(policy_outcomes);
        all.insert(all.end(), std::make_move_iterator(sigma_outcomes.begin()),
                   std::make_move_iterator(sigma_outcomes.end()));
        csv_emitter.write_csv(std::cout, all);
    }
    return 0;
}
