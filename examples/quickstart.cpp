// Quickstart: the 60-second tour of the kdchoice public API.
//
//   $ ./quickstart
//
// Covers: running a (k,d)-choice process, reading metrics, comparing with
// the classic baselines, multi-repetition experiments, and the theory
// oracle's predictions.
#include <iostream>

#include "core/kdchoice.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main() {
    constexpr std::uint64_t n = 1 << 16; // bins == balls
    constexpr std::uint64_t k = 8;       // balls placed per round
    constexpr std::uint64_t d = 16;      // bins probed per round
    constexpr std::uint64_t seed = 2024;

    // 1. Run one (k,d)-choice process: n/k rounds, k balls each.
    kdc::core::kd_choice_process process(n, k, d, seed);
    process.run_balls(n);

    // 2. Inspect the final allocation.
    const auto metrics = kdc::core::compute_load_metrics(process.loads());
    std::cout << "(k,d)-choice with n=" << n << ", k=" << k << ", d=" << d
              << "\n"
              << "  max load   : " << metrics.max_load << "\n"
              << "  mean load  : " << metrics.mean_load << "\n"
              << "  empty bins : " << metrics.empty_bins << "\n"
              << "  messages   : " << process.messages() << " ("
              << kdc::format_fixed(static_cast<double>(process.messages()) /
                                       static_cast<double>(n), 2)
              << " per ball)\n";

    // 3. The paper's quantities: nu_y (bins with >= y balls) and the sorted
    //    load vector B_x.
    std::cout << "  nu_1=" << kdc::core::nu_y(process.loads(), 1)
              << " nu_2=" << kdc::core::nu_y(process.loads(), 2)
              << " nu_3=" << kdc::core::nu_y(process.loads(), 3) << "\n";

    // 4. What does the theory predict? Theorem 1's two terms.
    const auto bound = kdc::theory::theorem1_bound(n, k, d);
    std::cout << "  Theorem 1 prediction: " << kdc::format_fixed(bound.first, 2)
              << " + " << kdc::format_fixed(bound.second, 2) << " + O(1)\n\n";

    // 5. Multi-repetition experiment (Table 1 cell style): 10 runs,
    //    independent seeds, aggregated.
    const auto experiment = kdc::core::run_kd_experiment(
        n, k, d, {.balls = n, .reps = 10, .seed = seed});
    std::cout << "10-rep experiment: max loads seen = {"
              << experiment.max_load_set() << "}, mean "
              << kdc::format_fixed(experiment.max_load_stats.mean(), 2)
              << "\n\n";

    // 6. Against the classics.
    const auto single = kdc::core::run_single_choice_experiment(
        n, {.balls = n, .reps = 10, .seed = seed + 1});
    const auto two_choice = kdc::core::run_d_choice_experiment(
        n, 2, {.balls = n, .reps = 10, .seed = seed + 2});
    std::cout << "baselines: single-choice max loads {"
              << single.max_load_set() << "}, two-choice {"
              << two_choice.max_load_set() << "}\n"
              << "(k,d)-choice spends " << d << "/" << k << " = "
              << kdc::format_fixed(static_cast<double>(d) / k, 2)
              << " messages per ball vs 2.0 for two-choice.\n";
    return 0;
}
