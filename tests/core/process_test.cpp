#include "core/process.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "stats/hypothesis.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::d_choice_process;
using kdc::core::kd_choice_process;
using kdc::core::load_vector;
using kdc::core::single_choice_process;

std::uint64_t total(const load_vector& loads) {
    return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

TEST(KdChoiceProcess, ConstructorValidatesParameters) {
    EXPECT_NO_THROW(kd_choice_process(10, 2, 3, 1));
    EXPECT_THROW(kd_choice_process(10, 3, 3, 1), kdc::contract_violation);
    EXPECT_THROW(kd_choice_process(10, 0, 3, 1), kdc::contract_violation);
    EXPECT_THROW(kd_choice_process(4, 1, 5, 1), kdc::contract_violation);
}

TEST(KdChoiceProcess, OneRoundPlacesKBalls) {
    kd_choice_process process(100, 3, 7, 42);
    process.run_round();
    EXPECT_EQ(process.balls_placed(), 3u);
    EXPECT_EQ(process.rounds_run(), 1u);
    EXPECT_EQ(total(process.loads()), 3u);
}

TEST(KdChoiceProcess, RunBallsRequiresWholeRounds) {
    kd_choice_process process(100, 3, 7, 42);
    EXPECT_THROW(process.run_balls(7), kdc::contract_violation);
    EXPECT_NO_THROW(process.run_balls(9));
    EXPECT_EQ(process.balls_placed(), 9u);
}

TEST(KdChoiceProcess, MessagesAreDPerRound) {
    kd_choice_process process(300, 2, 5, 7);
    process.run_balls(300);
    EXPECT_EQ(process.messages(), (300 / 2) * 5);
    // Matches footnote 1 / theory oracle.
    EXPECT_EQ(process.messages(), 750u);
}

TEST(KdChoiceProcess, DeterministicUnderSeed) {
    kd_choice_process a(500, 5, 8, 99);
    kd_choice_process b(500, 5, 8, 99);
    a.run_balls(500);
    b.run_balls(500);
    EXPECT_EQ(a.loads(), b.loads());
}

TEST(KdChoiceProcess, DifferentSeedsDiffer) {
    kd_choice_process a(500, 5, 8, 1);
    kd_choice_process b(500, 5, 8, 2);
    a.run_balls(500);
    b.run_balls(500);
    EXPECT_NE(a.loads(), b.loads());
}

TEST(KdChoiceProcess, AllBallsAccountedFor) {
    kd_choice_process process(1200, 4, 6, 5);
    process.run_balls(1200);
    EXPECT_EQ(total(process.loads()), 1200u);
    EXPECT_EQ(process.balls_placed(), 1200u);
}

TEST(KdChoiceProcess, HeavilyLoadedRuns) {
    // m = 8n balls into n bins; every ball must land.
    kd_choice_process process(256, 2, 4, 11);
    process.run_balls(8 * 256);
    EXPECT_EQ(total(process.loads()), 8u * 256u);
    const auto metrics = compute_load_metrics(process.loads());
    EXPECT_GE(metrics.max_load, 8u); // max >= average
}

TEST(KdChoiceProcess, InjectedSamplesRespectD) {
    kd_choice_process process(10, 2, 4, 3);
    const std::vector<std::uint32_t> wrong_size{1, 2, 3};
    EXPECT_THROW(process.run_round_with_samples(wrong_size),
                 kdc::contract_violation);
    const std::vector<std::uint32_t> ok{1, 2, 3, 4};
    EXPECT_NO_THROW(process.run_round_with_samples(ok));
}

TEST(KdChoiceProcess, HeightLogRecordsWhenEnabled) {
    kd_choice_process process(50, 2, 5, 17);
    process.record_heights(true);
    process.run_balls(50);
    EXPECT_EQ(process.height_log().size(), 50u);
    // Heights are consistent: no recorded height exceeds the final load of
    // its bin, and each is at least 1.
    for (const auto& ball : process.height_log()) {
        EXPECT_GE(ball.height, 1u);
        EXPECT_LE(ball.height, process.loads()[ball.bin]);
    }
}

TEST(KdChoiceProcess, HeightLogOffByDefault) {
    kd_choice_process process(50, 2, 5, 17);
    process.run_balls(50);
    EXPECT_TRUE(process.height_log().empty());
}

TEST(KdChoiceProcess, AccessorsExposeParameters) {
    kd_choice_process process(64, 4, 9, 1);
    EXPECT_EQ(process.n(), 64u);
    EXPECT_EQ(process.k(), 4u);
    EXPECT_EQ(process.d(), 9u);
}

TEST(SingleChoiceProcess, PlacesEveryBall) {
    single_choice_process process(100, 5);
    process.run_balls(1000);
    EXPECT_EQ(total(process.loads()), 1000u);
    EXPECT_EQ(process.messages(), 1000u);
}

TEST(SingleChoiceProcess, Deterministic) {
    single_choice_process a(100, 5);
    single_choice_process b(100, 5);
    a.run_balls(500);
    b.run_balls(500);
    EXPECT_EQ(a.loads(), b.loads());
}

TEST(DChoiceProcess, PlacesEveryBallAndCountsMessages) {
    d_choice_process process(100, 4, 5);
    process.run_balls(300);
    EXPECT_EQ(total(process.loads()), 300u);
    EXPECT_EQ(process.messages(), 300u * 4u);
}

TEST(DChoiceProcess, BeatsSingleChoiceOnMaxLoad) {
    single_choice_process single(4096, 21);
    d_choice_process two(4096, 2, 21);
    single.run_balls(4096);
    two.run_balls(4096);
    EXPECT_LT(compute_load_metrics(two.loads()).max_load,
              compute_load_metrics(single.loads()).max_load);
}

TEST(DChoiceProcess, MatchesKdChoiceWithKOne) {
    // (1, d)-choice and the dedicated d-choice fast path are the same
    // distribution; compare max-load samples with a KS test.
    std::vector<double> kd_max;
    std::vector<double> dc_max;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        kd_choice_process kd(512, 1, 3, 1000 + seed);
        kd.run_balls(512);
        kd_max.push_back(static_cast<double>(
            compute_load_metrics(kd.loads()).max_load));
        d_choice_process dc(512, 3, 2000 + seed);
        dc.run_balls(512);
        dc_max.push_back(static_cast<double>(
            compute_load_metrics(dc.loads()).max_load));
    }
    const auto ks = kdc::stats::ks_two_sample(kd_max, dc_max);
    EXPECT_GT(ks.p_value, 1e-3) << "D=" << ks.statistic;
}

TEST(SingleChoiceProcess, MatchesSAEquivalence) {
    // SA(k,k): k balls into k bins per round == single choice ball-by-ball.
    // With the same seed the streams differ, so compare distributions.
    std::vector<double> singles;
    std::vector<double> kd_like;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        single_choice_process s(256, 3000 + seed);
        s.run_balls(256);
        singles.push_back(static_cast<double>(
            compute_load_metrics(s.loads()).max_load));
        // "(k,k)-choice" is not a valid parameterization (k < d required);
        // emulate SA by a (k, d)-process would be wrong. Instead place k
        // balls per round via k independent single choices.
        single_choice_process r(256, 4000 + seed);
        for (int round = 0; round < 256 / 8; ++round) {
            r.run_balls(8);
        }
        kd_like.push_back(static_cast<double>(
            compute_load_metrics(r.loads()).max_load));
    }
    const auto ks = kdc::stats::ks_two_sample(singles, kd_like);
    EXPECT_GT(ks.p_value, 1e-3);
}

} // namespace
