// Dispatcher invariants that hold batch by batch: shard-count invariance,
// the level_profile mirror, release bookkeeping, message accounting, and
// the id-order precondition.
#include "serve/dispatcher.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/level_profile.hpp"
#include "core/thread_pool.hpp"
#include "serve/channel.hpp"
#include "support/contracts.hpp"

namespace kdc::serve {
namespace {

std::vector<request> allocates(std::uint64_t count, std::uint64_t first_id) {
    std::vector<request> batch;
    for (std::uint64_t i = 0; i < count; ++i) {
        request req;
        req.client = i % 3;
        req.id = first_id + i;
        batch.push_back(req);
    }
    return batch;
}

TEST(Dispatcher, AllocateReturnsKBinsInRange) {
    dispatcher_config config;
    config.bins = 64;
    config.k = 3;
    config.d = 7;
    config.seed = 11;
    config.shards = 4;
    dispatcher dispatch(config, nullptr);
    const auto responses = dispatch.process(allocates(10, 0));
    ASSERT_EQ(responses.size(), 10u);
    for (const response& resp : responses) {
        ASSERT_EQ(resp.bins.size(), 3u);
        for (const std::uint32_t bin : resp.bins) {
            EXPECT_LT(bin, 64u);
        }
        EXPECT_EQ(resp.probe_messages, 7u);
    }
    EXPECT_EQ(dispatch.balls_held(), 30u);
    EXPECT_EQ(dispatch.probe_messages(), 70u);
    EXPECT_EQ(dispatch.live_allocations(), 10u);
}

TEST(Dispatcher, ShardCountNeverChangesTheOutcome) {
    std::vector<std::vector<response>> per_shards;
    std::vector<core::load_vector> loads;
    for (const std::uint64_t shards : {1u, 3u, 8u}) {
        dispatcher_config config;
        config.bins = 40;
        config.k = 2;
        config.d = 5;
        config.seed = 7;
        config.shards = shards;
        dispatcher dispatch(config, nullptr);
        std::vector<response> all;
        for (std::uint64_t b = 0; b < 6; ++b) {
            auto responses = dispatch.process(allocates(9, b * 9));
            all.insert(all.end(), responses.begin(), responses.end());
        }
        per_shards.push_back(std::move(all));
        loads.push_back(dispatch.loads());
    }
    for (std::size_t i = 1; i < per_shards.size(); ++i) {
        ASSERT_EQ(per_shards[i].size(), per_shards[0].size());
        for (std::size_t r = 0; r < per_shards[0].size(); ++r) {
            EXPECT_EQ(per_shards[i][r].bins, per_shards[0][r].bins);
        }
        EXPECT_EQ(loads[i], loads[0]);
    }
}

TEST(Dispatcher, BatchingNeverChangesTheOutcome) {
    // One request per batch vs everything in one batch: the overlay must
    // make the big batch see exactly the serial loads.
    dispatcher_config config;
    config.bins = 32;
    config.k = 2;
    config.d = 6;
    config.seed = 19;
    config.shards = 2;
    dispatcher one_by_one(config, nullptr);
    dispatcher all_at_once(config, nullptr);
    std::vector<response> singles;
    for (std::uint64_t i = 0; i < 24; ++i) {
        auto responses = one_by_one.process(allocates(1, i));
        singles.push_back(responses.at(0));
    }
    const auto batched = all_at_once.process(allocates(24, 0));
    ASSERT_EQ(batched.size(), singles.size());
    for (std::size_t i = 0; i < singles.size(); ++i) {
        EXPECT_EQ(batched[i].bins, singles[i].bins);
    }
    EXPECT_EQ(one_by_one.loads(), all_at_once.loads());
}

TEST(Dispatcher, OccupancyMirrorsTheLoadVector) {
    dispatcher_config config;
    config.bins = 50;
    config.k = 4;
    config.d = 8;
    config.seed = 3;
    config.shards = 7;
    dispatcher dispatch(config, nullptr);
    (void)dispatch.process(allocates(20, 0));
    EXPECT_EQ(dispatch.occupancy(),
              core::level_profile::from_loads(dispatch.loads()));
}

TEST(Dispatcher, ReleaseUndoesItsAllocate) {
    dispatcher_config config;
    config.bins = 16;
    config.k = 3;
    config.d = 6;
    config.seed = 5;
    config.shards = 2;
    dispatcher dispatch(config, nullptr);
    const auto first = dispatch.process(allocates(4, 0));
    const core::load_vector before = dispatch.loads();

    std::vector<request> batch;
    request extra;
    extra.id = 4;
    batch.push_back(extra); // one more allocate...
    request release;
    release.kind = request_kind::release;
    release.id = 5;
    release.target = 4; // ...released in the SAME batch
    batch.push_back(release);
    const auto responses = dispatch.process(batch);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[1].bins, responses[0].bins); // echoes the freed bins
    EXPECT_EQ(responses[1].probe_messages, 0u);
    EXPECT_EQ(dispatch.loads(), before);
    EXPECT_EQ(dispatch.live_allocations(), 4u);
    EXPECT_EQ(dispatch.balls_held(), 12u);
    (void)first;
}

TEST(Dispatcher, PerTaskModeSpendsKTimesDMessages) {
    dispatcher_config config;
    config.bins = 64;
    config.k = 3;
    config.d = 4;
    config.mode = probing::per_task;
    config.seed = 23;
    config.shards = 4;
    dispatcher dispatch(config, nullptr);
    const auto responses = dispatch.process(allocates(5, 0));
    for (const response& resp : responses) {
        EXPECT_EQ(resp.probe_messages, 12u);
        EXPECT_EQ(resp.bins.size(), 3u);
    }
    EXPECT_EQ(dispatch.probe_messages(), 60u);
}

TEST(Dispatcher, AcceptDrainsTheChannelFifoUpToTheLimit) {
    dispatcher_config config;
    config.bins = 8;
    dispatcher dispatch(config, nullptr);
    memory_channel<request> inbox;
    for (std::uint64_t i = 0; i < 5; ++i) {
        request req;
        req.id = i;
        inbox.send(req);
    }
    const auto first = dispatch.accept(inbox, 3);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].id, 0u);
    EXPECT_EQ(first[2].id, 2u);
    const auto rest = dispatch.accept(inbox, 100);
    ASSERT_EQ(rest.size(), 2u);
    EXPECT_EQ(rest[0].id, 3u);
    EXPECT_TRUE(dispatch.accept(inbox, 100).empty());
}

TEST(Dispatcher, RejectsOutOfOrderBatches) {
    dispatcher_config config;
    config.bins = 8;
    dispatcher dispatch(config, nullptr);
    std::vector<request> batch = allocates(2, 0);
    std::swap(batch[0].id, batch[1].id);
    EXPECT_THROW((void)dispatch.process(batch), contract_violation);
}

TEST(Dispatcher, RejectsBatchModeWithKAboveD) {
    dispatcher_config config;
    config.bins = 8;
    config.k = 5;
    config.d = 3;
    EXPECT_THROW(dispatcher(config, nullptr), contract_violation);
}

TEST(Dispatcher, PoolBackedPhasesMatchSerial) {
    dispatcher_config config;
    config.bins = 96;
    config.k = 4;
    config.d = 9;
    config.seed = 29;
    config.shards = 6;
    dispatcher serial(config, nullptr);
    core::thread_pool pool(4);
    dispatcher parallel(config, &pool);
    for (std::uint64_t b = 0; b < 5; ++b) {
        const auto a = serial.process(allocates(11, b * 11));
        const auto c = parallel.process(allocates(11, b * 11));
        ASSERT_EQ(a.size(), c.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].bins, c[i].bins);
        }
    }
    EXPECT_EQ(serial.loads(), parallel.loads());
    EXPECT_EQ(serial.occupancy(), parallel.occupancy());
}

} // namespace
} // namespace kdc::serve
