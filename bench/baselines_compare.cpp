// Head-to-head against the related allocation schemes the paper discusses
// (Section 1): single choice, classic d-choice [Azar et al.], the
// (1+beta)-choice of Peres-Talwar-Wieder, and the adaptive threshold
// scheme — all at *matched message budgets*, which is the paper's axis of
// comparison. A (k,d) process spends d/k messages per ball, so:
//
//     budget 1.25 msg/ball:  (1+beta) beta=.25  vs  (4,5)-choice
//     budget 1.5  msg/ball:  (1+beta) beta=.5   vs  (2,3)-choice
//     budget 2    msg/ball:  2-choice           vs  (2,4), (k, 2k)
//     budget 3    msg/ball:  3-choice           vs  (2,6), (k, 3k)
//
//   ./baselines_compare [--n=196608] [--reps=10] [--seed=6]
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("reps", "10", "repetitions per scheme");
    args.add_option("seed", "6", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::text_table table;
    table.set_header({"budget", "scheme", "msgs/ball", "mean max", "gap",
                      "max loads seen"});
    table.set_align(1, kdc::table_align::left);

    std::uint64_t scheme_id = 0;
    auto run = [&](const char* budget, const std::string& name,
                   auto&& factory, std::uint64_t balls) {
        const auto result = kdc::core::run_experiment(
            {.balls = balls, .reps = reps, .seed = seed + (++scheme_id)},
            factory);
        table.add_row(
            {budget, name,
             kdc::format_fixed(result.message_stats.mean() /
                                   static_cast<double>(balls), 3),
             kdc::format_fixed(result.max_load_stats.mean(), 2),
             kdc::format_fixed(result.gap_stats.mean(), 2),
             result.max_load_set()});
    };

    run("1.0", "single choice",
        [n](std::uint64_t s) { return kdc::core::single_choice_process(n, s); },
        n);

    run("1.25", "(1+beta) beta=0.25",
        [n](std::uint64_t s) {
            return kdc::core::one_plus_beta_process(n, 0.25, s);
        }, n);
    run("1.25", "(4,5)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 4, 5, s);
        }, n);

    run("1.5", "(1+beta) beta=0.5",
        [n](std::uint64_t s) {
            return kdc::core::one_plus_beta_process(n, 0.5, s);
        }, n);
    run("1.5", "(2,3)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 2, 3, s);
        }, n);

    run("2.0", "2-choice",
        [n](std::uint64_t s) { return kdc::core::d_choice_process(n, 2, s); },
        n);
    run("2.0", "(2,4)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 2, 4, s);
        }, n);
    run("2.0", "(64,128)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 64, 128, s);
        }, n);

    run("3.0", "3-choice",
        [n](std::uint64_t s) { return kdc::core::d_choice_process(n, 3, s); },
        n);
    run("3.0", "(2,6)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 2, 6, s);
        }, n);
    run("3.0", "(64,192)-choice",
        [n](std::uint64_t s) {
            return kdc::core::kd_choice_process(n, 64, 192, s);
        }, n);

    run("~1.1", "adaptive T=2 cap=16",
        [n](std::uint64_t s) {
            return kdc::core::adaptive_threshold_process(n, 2, 16, s);
        }, n);

    std::cout << "Baseline comparison at matched message budgets, n = " << n
              << " (" << reps << " reps)\n\n"
              << table << '\n'
              << "Shape to verify: within each budget the (k,d) variant with "
                 "larger k matches or beats\n"
                 "the per-ball baselines; (k,2k)/(k,3k) with k >> 1 reach "
                 "constant max load.\n";
    return 0;
}
