# Warning policy helpers.
#
# kdc_enable_warnings(target)        - the strict set used across all targets.
# kdc_enable_warnings_as_errors(tgt) - additionally promotes warnings to errors
#                                      (applied to the library; gated on
#                                      KDC_WERROR so downstream users with
#                                      newer, noisier compilers can opt out).

function(kdc_enable_warnings target)
    if(MSVC)
        target_compile_options(${target} PRIVATE /W4 /permissive-)
    else()
        target_compile_options(${target} PRIVATE -Wall -Wextra -Wpedantic)
    endif()
endfunction()

function(kdc_enable_warnings_as_errors target)
    kdc_enable_warnings(${target})
    if(KDC_WERROR)
        if(MSVC)
            target_compile_options(${target} PRIVATE /WX)
        else()
            target_compile_options(${target} PRIVATE -Werror)
        endif()
    endif()
endfunction()
