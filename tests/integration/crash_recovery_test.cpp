// Kill/resume harness for the snapshot pipeline: for one snapshot-path
// fault site, run a heavy-bench staging campaign three ways —
//
//   A. uninterrupted, in a clean directory;
//   B. with KDC_FAULTS=<site>:crash@1 (the stage is SIGKILLed mid-flight),
//      then resumed by simply rerunning the same command;
//   C. (replay check) rerunning B's committed stage once more, which must
//      replay the journal instead of simulating.
//
// The recovered campaign must match the uninterrupted one BYTE FOR BYTE:
// every stage's stdout and every snapshot file. Not a gtest binary — it is
// a subprocess driver, registered once per (site, threads) cell by CMake:
//
//   crash_recovery_test <bench> <site> <threads>
//   crash_recovery_test --check-sites "<semicolon-joined site list>"
//
// The --check-sites form pins CMake's test matrix to
// kdc::core::snapshot_path_sites(): adding a snapshot-path site without
// adding its matrix entry fails the suite.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

#include "core/fault_injection.hpp"

namespace {

namespace fs = std::filesystem;

int failures = 0;

void check(bool ok, const std::string& what) {
    if (ok) {
        std::cout << "ok: " << what << "\n";
    } else {
        std::cout << "FAIL: " << what << "\n";
        ++failures;
    }
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/// One staged invocation of the bench: the command runs with `dir` as its
/// working directory so snapshot paths inside outputs are relative and the
/// byte comparison between directories is meaningful.
struct stage {
    std::string scenario;
    std::string resume;       // empty: fresh stage
    std::string snapshot_out; // always set
    std::string stdout_file;
};

int run_stage(const fs::path& dir, const std::string& bench,
              const stage& st, const std::string& env_faults,
              unsigned threads) {
    std::ostringstream cmd;
    cmd << "cd " << dir << " && ";
    if (!env_faults.empty()) {
        cmd << "KDC_FAULTS='" << env_faults << "' ";
    }
    cmd << "'" << bench << "'"
        << " --scenario='" << st.scenario << "'"
        << " --seed=7 --threads=" << threads
        << " --snapshot-out=" << st.snapshot_out;
    if (!st.resume.empty()) {
        cmd << " --resume=" << st.resume;
    }
    cmd << " > " << st.stdout_file << " 2> " << st.stdout_file << ".err";
    const int status = std::system(cmd.str().c_str());
    if (status == -1) {
        return -1;
    }
    return WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
}

/// Builds the staged campaign that exercises `site`. Resume-path sites need
/// a two-stage campaign (the fault fires while stage 2 loads stage 1's
/// snapshot); steady.pilot needs a warmup=ff stage so the pilot loop runs.
std::vector<stage> campaign_for(const std::string& site) {
    const std::string plain = "kd:n=4096,k=2,d=4,kernel=level";
    const std::string ff =
        "kd:n=4096,k=2,d=4,kernel=level,warmup=ff,balls=65536";
    std::vector<stage> stages;
    if (site == "resume.load" || site == "resume.validate") {
        stages.push_back({plain, "", "s1.profile", "s1.out"});
        stages.push_back({plain, "s1.profile", "s2.profile", "s2.out"});
    } else if (site == "steady.pilot") {
        stages.push_back({ff, "", "s1.profile", "s1.out"});
    } else {
        stages.push_back({plain, "", "s1.profile", "s1.out"});
    }
    return stages;
}

int check_sites(const std::string& joined) {
    std::set<std::string> listed;
    std::string item;
    std::istringstream in(joined);
    while (std::getline(in, item, ';')) {
        if (!item.empty()) {
            listed.insert(item);
        }
    }
    std::set<std::string> actual;
    for (const auto site : kdc::core::snapshot_path_sites()) {
        actual.insert(kdc::core::fault_site_name(site));
    }
    for (const auto& name : actual) {
        check(listed.count(name) == 1,
              "snapshot-path site '" + name +
                  "' has a crash-recovery matrix entry");
    }
    for (const auto& name : listed) {
        check(actual.count(name) == 1,
              "matrix entry '" + name + "' names a real snapshot-path site");
    }
    return failures == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    if (argc == 3 && std::string(argv[1]) == "--check-sites") {
        return check_sites(argv[2]);
    }
    if (argc != 4) {
        std::cerr << "usage: " << argv[0]
                  << " <bench> <site> <threads> | --check-sites <list>\n";
        return 2;
    }
    const std::string bench = fs::absolute(argv[1]).string();
    const std::string site = argv[2];
    const unsigned threads =
        static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10));

    bool known = false;
    for (const auto s : kdc::core::snapshot_path_sites()) {
        known = known || site == kdc::core::fault_site_name(s);
    }
    if (!known) {
        std::cerr << "unknown snapshot-path site '" << site << "'\n";
        return 2;
    }

    const fs::path root =
        fs::current_path() / ("crash_recovery." + site + ".t" +
                              std::to_string(threads));
    fs::remove_all(root);
    const fs::path clean_dir = root / "clean";
    const fs::path crash_dir = root / "crashed";
    fs::create_directories(clean_dir);
    fs::create_directories(crash_dir);

    const auto stages = campaign_for(site);
    const std::size_t victim = stages.size() - 1; // fault hits the last stage

    // A: the uninterrupted campaign.
    for (const auto& st : stages) {
        const int code = run_stage(clean_dir, bench, st, "", threads);
        check(code == 0, "clean stage (" + st.stdout_file +
                             ") exits 0, got " + std::to_string(code));
    }

    // B: same campaign, but the victim stage is SIGKILLed by the injected
    // crash on its first pass through `site`...
    for (std::size_t i = 0; i < victim; ++i) {
        const int code = run_stage(crash_dir, bench, stages[i], "", threads);
        check(code == 0, "pre-fault stage exits 0, got " +
                             std::to_string(code));
    }
    const int killed = run_stage(crash_dir, bench, stages[victim],
                                 site + ":crash@1", threads);
    check(killed == 137, "injected crash at " + site +
                             " kills the stage (expect 137, got " +
                             std::to_string(killed) + ")");

    // ...and recovered by plainly rerunning the command, fault disarmed.
    const int resumed = run_stage(crash_dir, bench, stages[victim], "",
                                  threads);
    check(resumed == 0, "recovery rerun exits 0, got " +
                            std::to_string(resumed));

    // The recovered campaign matches the uninterrupted one byte for byte.
    for (const auto& st : stages) {
        const auto a_out = read_file(clean_dir / st.stdout_file);
        const auto b_out = read_file(crash_dir / st.stdout_file);
        check(!a_out.empty() && a_out == b_out,
              "stage stdout " + st.stdout_file + " is byte-identical");
        const auto a_snap = read_file(clean_dir / st.snapshot_out);
        const auto b_snap = read_file(crash_dir / st.snapshot_out);
        check(!a_snap.empty() && a_snap == b_snap,
              "snapshot " + st.snapshot_out + " is byte-identical");
    }

    // C: the committed stage replays from its journal — stdout identical
    // again, and the stage says so on stderr.
    const int replay = run_stage(crash_dir, bench, stages[victim], "",
                                 threads);
    check(replay == 0, "replay rerun exits 0, got " + std::to_string(replay));
    check(read_file(crash_dir / stages[victim].stdout_file) ==
              read_file(clean_dir / stages[victim].stdout_file),
          "replayed stdout is byte-identical");
    const auto err =
        read_file(crash_dir / (stages[victim].stdout_file + ".err"));
    check(err.find("stage already committed") != std::string::npos,
          "replay came from the journal, not a re-simulation");

    if (failures == 0) {
        fs::remove_all(root); // keep the tree only on failure, for triage
        std::cout << "crash recovery at " << site << " (threads=" << threads
                  << "): all checks passed\n";
        return 0;
    }
    std::cout << failures << " check(s) failed; artifacts kept in " << root
              << "\n";
    return 1;
}
