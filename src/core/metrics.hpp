// Metrics over final (or intermediate) load vectors, matching the paper's
// notation (Section 2.1):
//   * nu_y  — number of bins with at least y balls
//   * mu_y  — number of balls with height at least y; since ball heights in a
//             bin of load L are exactly 1..L, mu_y = sum_b max(L_b - y + 1, 0)
//   * B_x   — load of the x-th most loaded bin (sorted load vector)
//   * gap   — max load minus average load (Berenbrink et al.'s metric for
//             the heavily loaded case)
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace kdc::core {

struct load_metrics {
    std::uint64_t max_load = 0;
    std::uint64_t min_load = 0;
    std::uint64_t total_balls = 0;
    double mean_load = 0.0;
    double gap = 0.0;        ///< max_load - mean_load
    std::uint64_t empty_bins = 0;
};

/// Single pass over the load vector. Requires a non-empty vector.
[[nodiscard]] load_metrics compute_load_metrics(const load_vector& loads);

/// nu_y: number of bins with load >= y.
[[nodiscard]] std::uint64_t nu_y(const load_vector& loads, std::uint64_t y);

/// mu_y: number of balls with height >= y.
[[nodiscard]] std::uint64_t mu_y(const load_vector& loads, std::uint64_t y);

/// Counts of bins per load value; index = load, entry = #bins.
[[nodiscard]] std::vector<std::uint64_t>
load_histogram(const load_vector& loads);

/// nu_y for every y in [0, max_load + 1]; nu_profile(loads)[y] == nu_y(y).
/// The final entry is always 0, which closes the profile for plotting.
[[nodiscard]] std::vector<std::uint64_t>
nu_profile(const load_vector& loads);

/// The sorted load vector of Figures 1 and 2: entry x-1 is B_x, the load of
/// the x-th most loaded bin.
[[nodiscard]] std::vector<bin_load> sorted_loads_desc(const load_vector& loads);

/// B_x for 1-based rank x (convenience over sorted_loads_desc for one rank).
[[nodiscard]] bin_load load_of_rank(const load_vector& loads, std::uint64_t x);

} // namespace kdc::core
