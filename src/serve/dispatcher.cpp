#include "serve/dispatcher.hpp"

#include <algorithm>
#include <span>
#include <tuple>

#include "core/fault_injection.hpp"
#include "core/thread_pool.hpp"
#include "rng/sampling.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::serve {

namespace {

/// One request's pregenerated tape: probes and their tie keys, drawn in
/// the FIXED order probes-then-keys per pool (one pool of d for batch
/// mode, k pools of d for per-task mode). The serial oracle
/// (serve/service.cpp) draws in the same order from the same
/// derive_seed(seed, id) stream — the contract that makes its choices
/// comparable bit for bit.
struct request_tape {
    std::vector<std::uint32_t> probes;
    std::vector<std::uint64_t> keys;
};

request_tape draw_tape(const dispatcher_config& config, std::uint64_t id) {
    rng::xoshiro256ss gen(rng::derive_seed(config.seed, id));
    const std::uint64_t pools = config.mode == probing::batch ? 1 : config.k;
    request_tape tape;
    tape.probes.resize(pools * config.d);
    tape.keys.resize(pools * config.d);
    for (std::uint64_t p = 0; p < pools; ++p) {
        const auto offset = static_cast<std::size_t>(p * config.d);
        rng::sample_with_replacement(
            gen, config.bins,
            std::span<std::uint32_t>(tape.probes.data() + offset,
                                     config.d));
        for (std::uint64_t j = 0; j < config.d; ++j) {
            tape.keys[offset + j] = gen();
        }
    }
    return tape;
}

} // namespace

dispatcher::dispatcher(const dispatcher_config& config,
                       core::thread_pool* pool)
    : config_(config), pool_(pool),
      layout_(config.bins, config.shards) {
    KD_EXPECTS_MSG(config.bins >= 1 && config.k >= 1 && config.d >= 1,
                   "dispatcher needs bins, k, d >= 1");
    KD_EXPECTS_MSG(config.mode != probing::batch || config.k <= config.d,
                   "batch (k,d)-choice needs k <= d");
    shards_.reserve(config.shards);
    for (std::uint64_t s = 0; s < config.shards; ++s) {
        shards_.emplace_back(layout_, s);
    }
}

void dispatcher::run_phase(std::size_t count,
                           const std::function<void(std::size_t)>& body) {
    if (pool_ != nullptr && count > 1) {
        pool_->run_phase(count, body);
        return;
    }
    for (std::size_t i = 0; i < count; ++i) {
        body(i);
    }
}

std::vector<request> dispatcher::accept(channel<request>& in,
                                        std::size_t max) {
    std::vector<request> batch;
    request next;
    while (batch.size() < max && in.try_receive(next)) {
        batch.push_back(next);
    }
    if (!batch.empty()) {
        core::fault_point(core::fault_site::serve_accept);
    }
    return batch;
}

std::vector<response>
dispatcher::process(const std::vector<request>& batch) {
    std::vector<response> responses;
    if (batch.empty()) {
        return responses;
    }
    for (std::size_t i = 1; i < batch.size(); ++i) {
        KD_EXPECTS_MSG(batch[i - 1].id < batch[i].id,
                       "dispatcher batches must be in id order");
    }
    core::fault_point(core::fault_site::serve_batch);

    // -- pregen (parallel over requests): releases carry no tape.
    std::vector<request_tape> tapes(batch.size());
    run_phase(batch.size(), [&](std::size_t i) {
        if (batch[i].kind == request_kind::allocate) {
            tapes[i] = draw_tape(config_, batch[i].id);
        }
    });

    // -- gather (parallel over shards): batch-start load of every probed
    // bin, read only from the owner's stripe. The slot table is indexed by
    // (request, probe) flattened in batch order.
    std::vector<std::size_t> slot_offset(batch.size() + 1, 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
        slot_offset[i + 1] = slot_offset[i] + tapes[i].probes.size();
    }
    std::vector<std::uint32_t> slot_bin(slot_offset.back());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        std::copy(tapes[i].probes.begin(), tapes[i].probes.end(),
                  slot_bin.begin() +
                      static_cast<std::ptrdiff_t>(slot_offset[i]));
    }
    std::vector<core::bin_load> slot_load(slot_bin.size(), 0);
    run_phase(shards_.size(), [&](std::size_t s) {
        const bin_shard& shard = shards_[s];
        for (std::size_t slot = 0; slot < slot_bin.size(); ++slot) {
            const std::uint32_t bin = slot_bin[slot];
            if (bin >= shard.begin() && bin < shard.end()) {
                slot_load[slot] = shard.load(bin);
            }
        }
    });

    // -- select (serial, id order). `overlay` is the net delta committed
    // by earlier requests of THIS batch; effective load = gathered +
    // overlay is the live load a serial server would see. `ops` records
    // every (bin, delta) in id order for the commit phase.
    std::unordered_map<std::uint32_t, std::int64_t> overlay;
    std::vector<std::pair<std::uint32_t, std::int8_t>> ops;
    responses.reserve(batch.size());
    const auto effective = [&](std::size_t slot) -> std::int64_t {
        auto load = static_cast<std::int64_t>(slot_load[slot]);
        if (const auto it = overlay.find(slot_bin[slot]);
            it != overlay.end()) {
            load += it->second;
        }
        return load;
    };
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const request& req = batch[i];
        response resp;
        resp.client = req.client;
        resp.id = req.id;
        if (req.kind == request_kind::release) {
            const auto it = live_.find(req.target);
            KD_EXPECTS_MSG(it != live_.end(),
                           "release targets a non-live allocation");
            resp.bins = std::move(it->second);
            live_.erase(it);
            for (const std::uint32_t bin : resp.bins) {
                overlay[bin] -= 1;
                ops.emplace_back(bin, std::int8_t{-1});
            }
            responses.push_back(std::move(resp));
            continue;
        }
        const std::size_t base = slot_offset[i];
        const request_tape& tape = tapes[i];
        if (config_.mode == probing::batch) {
            // The paper's rule: d candidates with height = effective load
            // + occurrence index (a bin sampled m times may take up to m
            // balls), keep the k smallest by (height, key, slot).
            std::vector<std::tuple<std::int64_t, std::uint64_t,
                                   std::uint32_t>>
                cands(config_.d);
            for (std::uint64_t j = 0; j < config_.d; ++j) {
                std::int64_t occ = 0;
                for (std::uint64_t e = 0; e < j; ++e) {
                    occ += tape.probes[e] == tape.probes[j] ? 1 : 0;
                }
                cands[j] = {effective(base + j) + occ, tape.keys[j],
                            static_cast<std::uint32_t>(j)};
            }
            std::sort(cands.begin(), cands.end());
            for (std::uint64_t j = 0; j < config_.k; ++j) {
                resp.bins.push_back(tape.probes[std::get<2>(cands[j])]);
            }
            resp.probe_messages = config_.d;
        } else {
            // Per-task baseline: each of the k tasks spends its own d
            // probes and takes its least-loaded, seeing earlier tasks'
            // placements through the overlay (Sparrow-style late binding).
            for (std::uint64_t t = 0; t < config_.k; ++t) {
                const std::size_t pool_base =
                    base + static_cast<std::size_t>(t * config_.d);
                std::size_t best = 0;
                auto best_key = std::tuple<std::int64_t, std::uint64_t,
                                           std::uint64_t>{};
                for (std::uint64_t j = 0; j < config_.d; ++j) {
                    const auto key = std::tuple{
                        effective(pool_base + j),
                        tape.keys[static_cast<std::size_t>(t * config_.d) +
                                  j],
                        j};
                    if (j == 0 || key < best_key) {
                        best_key = key;
                        best = j;
                    }
                }
                const std::uint32_t bin = tape.probes
                    [static_cast<std::size_t>(t * config_.d) + best];
                resp.bins.push_back(bin);
                overlay[bin] += 1;
                ops.emplace_back(bin, std::int8_t{1});
            }
            resp.probe_messages = config_.k * config_.d;
        }
        if (config_.mode == probing::batch) {
            for (const std::uint32_t bin : resp.bins) {
                overlay[bin] += 1;
                ops.emplace_back(bin, std::int8_t{1});
            }
        }
        probe_messages_ += resp.probe_messages;
        live_.emplace(req.id, resp.bins);
        responses.push_back(std::move(resp));
    }

    // -- commit (parallel over shards): each shard applies its own bins'
    // deltas in id order, to its loads and its level_profile mirror.
    core::fault_point(core::fault_site::serve_commit);
    run_phase(shards_.size(), [&](std::size_t s) {
        bin_shard& shard = shards_[s];
        for (const auto& [bin, delta] : ops) {
            if (bin < shard.begin() || bin >= shard.end()) {
                continue;
            }
            if (delta > 0) {
                shard.commit_alloc(bin);
            } else {
                shard.commit_release(bin);
            }
        }
    });
    return responses;
}

core::load_vector dispatcher::loads() const {
    core::load_vector all;
    all.reserve(config_.bins);
    for (const bin_shard& shard : shards_) {
        all.insert(all.end(), shard.loads().begin(), shard.loads().end());
    }
    return all;
}

core::level_profile dispatcher::occupancy() const {
    std::vector<core::level_profile> mirrors;
    mirrors.reserve(shards_.size());
    for (const bin_shard& shard : shards_) {
        mirrors.push_back(shard.occupancy());
    }
    return core::merge_profiles(mirrors);
}

std::uint64_t dispatcher::balls_held() const noexcept {
    std::uint64_t total = 0;
    for (const bin_shard& shard : shards_) {
        total += shard.balls_held();
    }
    return total;
}

} // namespace kdc::serve
