#include "core/fenwick.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::fenwick_tree;

TEST(FenwickTree, EmptyTreeSumsToZero) {
    fenwick_tree tree(8);
    EXPECT_EQ(tree.total(), 0u);
    EXPECT_EQ(tree.prefix_sum(8), 0u);
}

TEST(FenwickTree, SinglePointAdd) {
    fenwick_tree tree(10);
    tree.add(3, 5);
    EXPECT_EQ(tree.prefix_sum(3), 0u);
    EXPECT_EQ(tree.prefix_sum(4), 5u);
    EXPECT_EQ(tree.suffix_sum(3), 5u);
    EXPECT_EQ(tree.suffix_sum(4), 0u);
    EXPECT_EQ(tree.value_at(3), 5u);
}

TEST(FenwickTree, NegativeDeltaRemoves) {
    fenwick_tree tree(4);
    tree.add(1, 3);
    tree.add(1, -2);
    EXPECT_EQ(tree.value_at(1), 1u);
    EXPECT_EQ(tree.total(), 1u);
}

TEST(FenwickTree, MatchesNaivePrefixSums) {
    fenwick_tree tree(32);
    std::vector<std::uint64_t> naive(32, 0);
    kdc::rng::xoshiro256ss gen(1);
    for (int op = 0; op < 1000; ++op) {
        const auto idx =
            static_cast<std::size_t>(kdc::rng::uniform_below(gen, 32));
        tree.add(idx, 1);
        ++naive[idx];
    }
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < naive.size(); ++i) {
        EXPECT_EQ(tree.prefix_sum(i), acc);
        acc += naive[i];
        EXPECT_EQ(tree.value_at(i), naive[i]);
    }
    EXPECT_EQ(tree.total(), acc);
}

TEST(FenwickTree, GrowPreservesCounts) {
    fenwick_tree tree(4);
    tree.add(0, 7);
    tree.add(3, 2);
    tree.grow_to(64);
    EXPECT_GE(tree.size(), 64u);
    EXPECT_EQ(tree.value_at(0), 7u);
    EXPECT_EQ(tree.value_at(3), 2u);
    EXPECT_EQ(tree.total(), 9u);
    tree.add(50, 1);
    EXPECT_EQ(tree.suffix_sum(10), 1u);
}

TEST(FenwickTree, GrowToSmallerIsNoOp) {
    fenwick_tree tree(16);
    tree.add(5, 5);
    tree.grow_to(4);
    EXPECT_EQ(tree.size(), 16u);
    EXPECT_EQ(tree.value_at(5), 5u);
}

TEST(FenwickTree, FindKthWalksRunsOfCounts) {
    // Counts {2, 0, 3, 1} laid out as runs: targets 0,1 -> pos 0;
    // 2,3,4 -> pos 2; 5 -> pos 3.
    fenwick_tree tree(4);
    tree.add(0, 2);
    tree.add(2, 3);
    tree.add(3, 1);
    EXPECT_EQ(tree.find_kth(0), 0u);
    EXPECT_EQ(tree.find_kth(1), 0u);
    EXPECT_EQ(tree.find_kth(2), 2u);
    EXPECT_EQ(tree.find_kth(4), 2u);
    EXPECT_EQ(tree.find_kth(5), 3u);
}

TEST(FenwickTree, FindKthMatchesNaiveScan) {
    fenwick_tree tree(37); // deliberately not a power of two
    std::vector<std::uint64_t> counts(37, 0);
    kdc::rng::xoshiro256ss gen(5);
    for (int op = 0; op < 400; ++op) {
        const auto idx =
            static_cast<std::size_t>(kdc::rng::uniform_below(gen, 37));
        tree.add(idx, 1 + static_cast<std::int64_t>(
                              kdc::rng::uniform_below(gen, 3)));
        counts[idx] = tree.value_at(idx);
    }
    std::uint64_t target = 0;
    for (std::size_t pos = 0; pos < counts.size(); ++pos) {
        for (std::uint64_t unit = 0; unit < counts[pos]; ++unit) {
            ASSERT_EQ(tree.find_kth(target), pos) << "target " << target;
            ++target;
        }
    }
    EXPECT_EQ(target, tree.total());
}

TEST(FenwickTree, FindKthSurvivesGrow) {
    fenwick_tree tree(4);
    tree.add(1, 4);
    tree.grow_to(100);
    tree.add(90, 2);
    EXPECT_EQ(tree.find_kth(0), 1u);
    EXPECT_EQ(tree.find_kth(3), 1u);
    EXPECT_EQ(tree.find_kth(4), 90u);
    EXPECT_EQ(tree.find_kth(5), 90u);
}

TEST(FenwickTree, FindKthBeyondTotalViolatesContract) {
    fenwick_tree tree(4);
    EXPECT_THROW((void)tree.find_kth(0), kdc::contract_violation);
    tree.add(2, 2);
    EXPECT_THROW((void)tree.find_kth(2), kdc::contract_violation);
}

TEST(FenwickTree, OutOfRangeViolatesContract) {
    fenwick_tree tree(4);
    EXPECT_THROW(tree.add(4, 1), kdc::contract_violation);
    EXPECT_THROW((void)tree.prefix_sum(5), kdc::contract_violation);
}

} // namespace
