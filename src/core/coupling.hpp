// The coupling constructions from the proofs of Properties (ii) and (iv)
// (Section 3 of the paper), realized as runnable experiments.
//
// Property (ii) coupling — A(k, d+alpha) <=mj A(k, d):
//   each round draws one set of d+alpha probes; the (k, d+alpha) process
//   uses all of them, the (k, d) process uses a uniformly random subset of
//   size d. The paper argues the sorted prefix sums stay ordered,
//   B^{A(k,d+alpha)}_{<=x}(r) <= B^{A(k,d)}_{<=x}(r), throughout the run.
//
// Property (iv) coupling — A(alpha*k, alpha*d) <=mj A(k, d):
//   each "super-round" draws alpha*d probes; the scaled process consumes
//   them in one round, the base process partitions them into alpha random
//   groups of d and runs alpha rounds. Prefix sums are compared after each
//   super-round (alpha*k balls placed on both sides).
//
// Both functions report how often the majorization inequality held, per
// (round, x) pair; the test suite asserts it holds essentially always (the
// coupled argument is exact for the allocation rule; residual violations
// can only come from the independent tie-breaking randomness).
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace kdc::core {

struct coupling_report {
    std::uint64_t rounds = 0;      ///< coupled (super-)rounds executed
    std::uint64_t comparisons = 0; ///< (round, x) prefix-sum comparisons
    std::uint64_t violations = 0;  ///< comparisons where ordering failed
    load_vector final_better;      ///< final loads of the majorized process
    load_vector final_worse;       ///< final loads of the majorizing process

    [[nodiscard]] double violation_rate() const {
        return comparisons == 0
                   ? 0.0
                   : static_cast<double>(violations) /
                         static_cast<double>(comparisons);
    }
};

/// Runs the Property (ii) coupling for `rounds` rounds.
/// Requires 1 <= k < d and d + alpha <= n.
[[nodiscard]] coupling_report
couple_property_ii(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                   std::uint64_t alpha, std::uint64_t rounds,
                   std::uint64_t seed);

/// Runs the Property (iv) coupling for `super_rounds` super-rounds.
/// Requires 1 <= k < d, alpha >= 1 and alpha*d <= n.
[[nodiscard]] coupling_report
couple_property_iv(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                   std::uint64_t alpha, std::uint64_t super_rounds,
                   std::uint64_t seed);

} // namespace kdc::core
