// The sharded round-parallel kernels' one non-negotiable contract: output
// byte-identical to the serial kernels at EVERY shard count and EVERY
// thread count. The equivalence suite here is the machine-checked version
// of the exactness argument in core/sharded_kernel.hpp.
#include "core/sharded_kernel.hpp"

#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/level_process.hpp"
#include "core/process.hpp"
#include "core/thread_pool.hpp"

namespace kdc::core {
namespace {

TEST(ShardLayout, PartitionsBinsContiguouslyAndExactly) {
    for (const std::uint64_t n : {1ull, 7ull, 64ull, 1000ull}) {
        for (std::uint64_t s = 1; s <= n && s <= 9; ++s) {
            const shard_layout layout(n, s);
            EXPECT_EQ(layout.begin(0), 0u);
            EXPECT_EQ(layout.end(s - 1), n);
            std::uint64_t total = 0;
            for (std::uint64_t i = 0; i < s; ++i) {
                EXPECT_EQ(layout.end(i), layout.begin(i) + layout.size(i));
                if (i + 1 < s) {
                    EXPECT_EQ(layout.end(i), layout.begin(i + 1));
                    // Dealing rule: the first n mod S shards get the +1.
                    EXPECT_GE(layout.size(i), layout.size(i + 1));
                }
                total += layout.size(i);
            }
            EXPECT_EQ(total, n);
        }
    }
}

TEST(ShardLayout, ShardOfInvertsBeginEnd) {
    const shard_layout layout(1000, 7);
    for (std::uint64_t bin = 0; bin < 1000; ++bin) {
        const auto s = layout.shard_of(bin);
        EXPECT_GE(bin, layout.begin(s));
        EXPECT_LT(bin, layout.end(s));
    }
}

TEST(ShardedLoadsView, SpansTileTheLoadVector) {
    load_vector loads(100);
    std::iota(loads.begin(), loads.end(), 0u);
    const shard_layout layout(loads.size(), 6);
    const sharded_loads view(loads, layout);
    std::uint64_t cursor = 0;
    for (std::uint64_t s = 0; s < layout.shards(); ++s) {
        const auto span = view.shard_span(s);
        ASSERT_EQ(span.size(), layout.size(s));
        for (const auto value : span) {
            EXPECT_EQ(value, loads[cursor++]);
        }
    }
    EXPECT_EQ(cursor, loads.size());
}

TEST(ResolveShardCount, AutoScalesWithBinsAndClampsRequests) {
    // Auto is window-relative: one shard per shard_auto_config().window_bins
    // bins, whatever the detected cache topology chose for the window.
    const std::uint64_t window = shard_auto_config().window_bins;
    EXPECT_GE(window, 32768u); // never below the historical constant
    EXPECT_LE(window, std::uint64_t{1} << 20);
    EXPECT_EQ(resolve_shard_count(window - 1, 0), 1u); // below one window
    EXPECT_EQ(resolve_shard_count(32 * window, 0), 32u);
    EXPECT_EQ(resolve_shard_count(std::uint64_t{8192} * window, 0),
              4096u);                                  // capped
    EXPECT_EQ(resolve_shard_count(1000, 64), 64u);     // explicit honoured
    EXPECT_EQ(resolve_shard_count(1000, 5000), 1000u); // clamped to n
    EXPECT_EQ(resolve_shard_count(100000, 100000), 4096u); // global cap
}

// The tentpole equivalence: sharded == serial, byte for byte, across the
// full (threads x shards) grid the ISSUE names, for the per-bin kernel.
TEST(ShardedKernel, PerBinByteIdenticalToSerialAcrossThreadsAndShards) {
    constexpr std::uint64_t n = 10'000;
    constexpr std::uint64_t k = 3;
    constexpr std::uint64_t d = 8;
    constexpr std::uint64_t seed = 2024;
    constexpr std::uint64_t balls = 3 * n; // heavily loaded: conflicts galore

    kd_choice_process reference(n, k, d, seed);
    reference.run_balls(balls);

    for (const unsigned threads : {1u, 2u, 8u}) {
        thread_pool pool(threads);
        for (const std::uint64_t shards : {1ull, 4ull, 64ull}) {
            sharded_kd_process process(n, k, d, seed, shards);
            process.use_pool(&pool);
            process.run_balls(balls);
            ASSERT_EQ(process.loads(), reference.loads())
                << "threads=" << threads << " shards=" << shards;
            EXPECT_EQ(process.balls_placed(), reference.balls_placed());
            EXPECT_EQ(process.rounds_run(), reference.rounds_run());
            EXPECT_EQ(process.messages(), reference.messages());
        }
    }
}

// Same grid for the second (k,d) point the benches care about.
TEST(ShardedKernel, PerBinByteIdenticalAtK8D16) {
    constexpr std::uint64_t n = 10'000;
    kd_choice_process reference(n, 8, 16, 7);
    reference.run_balls(n - (n % 8));
    thread_pool pool(2);
    for (const std::uint64_t shards : {1ull, 4ull, 64ull}) {
        sharded_kd_process process(n, 8, 16, 7, shards);
        process.use_pool(&pool);
        process.run_balls(n - (n % 8));
        ASSERT_EQ(process.loads(), reference.loads()) << "shards=" << shards;
    }
}

TEST(ShardedKernel, NoPoolRunsInlineWithIdenticalOutput) {
    constexpr std::uint64_t n = 4096;
    kd_choice_process reference(n, 2, 5, 99);
    reference.run_balls(2 * n);
    sharded_kd_process process(n, 2, 5, 99, 16); // pool never attached
    process.run_balls(2 * n);
    EXPECT_EQ(process.loads(), reference.loads());
}

// Chunk boundaries are an internal schedule, not a semantic: splitting the
// run across many run_balls calls must not move a single ball.
TEST(ShardedKernel, SplitRunsMatchOneBigRun) {
    constexpr std::uint64_t n = 2048;
    kd_choice_process reference(n, 4, 9, 5);
    reference.run_balls(4 * n);
    sharded_kd_process process(n, 4, 9, 5, 8);
    for (int i = 0; i < 4; ++i) {
        process.run_balls(n);
    }
    EXPECT_EQ(process.loads(), reference.loads());
}

TEST(ShardedKernel, SnapshotConstructorResumesExactly) {
    constexpr std::uint64_t n = 1024;
    load_vector start(n, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        start[i] = static_cast<bin_load>(i % 5);
    }
    kd_choice_process reference(start, 2, 6, 31);
    reference.run_balls(2 * n);
    sharded_kd_process process(start, 2, 6, 31, 4);
    process.run_balls(2 * n);
    EXPECT_EQ(process.loads(), reference.loads());
    EXPECT_EQ(process.balls_placed(), 2 * n);
}

TEST(ShardedKernel, ContractViolationsThrow) {
    EXPECT_THROW(sharded_kd_process(10, 0, 4, 1), kdc::contract_violation);
    EXPECT_THROW(sharded_kd_process(10, 4, 4, 1), kdc::contract_violation);
    EXPECT_THROW(sharded_kd_process(3, 1, 4, 1), kdc::contract_violation);
    sharded_kd_process process(10, 3, 4, 1);
    EXPECT_THROW(process.run_balls(2), // not a whole round
                 kdc::contract_violation);
}

// Level kernel: profile() replays kd_choice_level_process exactly.
TEST(ShardedLevelKernel, ProfileByteIdenticalToSerialAcrossShards) {
    constexpr std::uint64_t n = 10'000;
    constexpr std::uint64_t k = 3;
    constexpr std::uint64_t d = 8;
    kd_choice_level_process reference(n, k, d, 77);
    reference.run_balls(3 * n);
    for (const std::uint64_t shards : {1ull, 4ull, 64ull}) {
        sharded_kd_level_process process(n, k, d, 77, shards);
        process.run_balls(3 * n);
        ASSERT_EQ(process.profile(), reference.profile())
            << "shards=" << shards;
        EXPECT_EQ(process.balls_placed(), reference.balls_placed());
        EXPECT_EQ(process.messages(), reference.messages());
    }
}

TEST(ShardedLevelKernel, ShardProfilesMergeBackToTheProfile) {
    sharded_kd_level_process process(5000, 2, 6, 13, 7);
    process.run_balls(10'000);
    EXPECT_EQ(process.shard_count(), 7u);
    EXPECT_EQ(merge_profiles(process.shard_profiles()), process.profile());
    std::uint64_t bins = 0;
    for (const auto& shard : process.shard_profiles()) {
        bins += shard.n();
    }
    EXPECT_EQ(bins, 5000u);
}

TEST(ShardedLevelKernel, SnapshotConstructorResumesExactly) {
    kd_choice_level_process warm(2000, 2, 5, 3);
    warm.run_balls(4000);
    const level_profile snapshot = warm.profile();

    kd_choice_level_process reference(snapshot, 2, 5, 21);
    reference.run_balls(2000);
    sharded_kd_level_process process(snapshot, 2, 5, 21, 5);
    process.run_balls(2000);
    EXPECT_EQ(process.profile(), reference.profile());
}

TEST(SplitProfile, RoundTripsThroughMerge) {
    kd_choice_level_process warm(999, 2, 4, 8);
    warm.run_balls(4 * 998);
    const level_profile profile = warm.profile();
    for (const std::uint64_t shards : {1ull, 2ull, 7ull, 999ull}) {
        const auto parts = split_profile(profile, shards);
        ASSERT_EQ(parts.size(), shards);
        const shard_layout layout(profile.n(), shards);
        for (std::uint64_t s = 0; s < shards; ++s) {
            EXPECT_EQ(parts[s].n(), layout.size(s));
        }
        EXPECT_EQ(merge_profiles(parts), profile);
    }
}

TEST(SplitProfile, DealsBinsBottomUpInIndexOrder) {
    // 4 bins at levels {0, 0, 1, 2} split into 2 shards of 2: the dealing
    // rule walks levels bottom-up, so shard 0 takes the two level-0 bins.
    level_profile profile = level_profile::from_counts({2, 1, 1});
    const auto parts = split_profile(profile, 2);
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0].bins_at(0), 2u);
    EXPECT_EQ(parts[0].total_balls(), 0u);
    EXPECT_EQ(parts[1].bins_at(1), 1u);
    EXPECT_EQ(parts[1].bins_at(2), 1u);
    EXPECT_EQ(parts[1].total_balls(), 3u);
}

} // namespace
} // namespace kdc::core
