// Client sessions of the allocation service: open-loop arrival generation
// and per-client response aggregation.
//
// Arrivals are OPEN-LOOP Poisson: each client draws its whole arrival
// schedule (times, allocate/release decisions, release targets) from its
// own seeded stream BEFORE the simulation starts, so the request sequence
// is a pure function of (seed, clients, rate, churn) — never of service
// timing, batching or thread count. That is the client half of the
// determinism contract (docs/service.md): the server half is the
// dispatcher's id-order processing.
//
// Churn is client-local: a release frees one of the CLIENT'S OWN still
// outstanding allocations, chosen uniformly from the schedule built so
// far. The client tracks outstanding allocations by its own arrival
// sequence numbers — it never needs a response to issue a release (the
// dispatcher resolves the target id to bins server-side), which is what
// keeps an open-loop schedule well-defined.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rng/splitmix64.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "serve/message.hpp"
#include "sim/event_queue.hpp"
#include "support/contracts.hpp"

namespace kdc::serve {

/// One client's schedule parameters.
struct session_config {
    std::uint64_t client = 0;
    std::uint64_t seed = 1;      ///< service master seed (not yet derived)
    double rate = 1.0;           ///< this client's Poisson arrival rate
    std::uint64_t arrivals = 0;  ///< arrivals this client generates
    double churn = 0.0;          ///< P(arrival is a release | target live)
};

/// One pre-drawn arrival. `seq` numbers the client's own arrivals;
/// `target_seq` (releases only) names the client-local seq of the allocate
/// being freed. Global request ids are assigned later, in merged arrival
/// order across all clients (serve/service.cpp).
struct client_arrival {
    sim::sim_time at = 0.0;
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    request_kind kind = request_kind::allocate;
    std::uint64_t target_seq = 0;
};

/// Draws a client's full arrival schedule. Stream: the arrival master seed
/// is derive_seed(seed, 0x5e551025) — a different branch than the
/// dispatcher's per-request tapes, so client schedules and probe tapes
/// never share a stream — then derive_seed(master, client) per client.
/// Per arrival the draw order is fixed: inter-arrival gap, churn coin,
/// then (for a release with a live target) the target index.
[[nodiscard]] inline std::vector<client_arrival>
draw_arrivals(const session_config& config) {
    KD_EXPECTS(config.rate > 0.0);
    rng::xoshiro256ss gen(rng::derive_seed(
        rng::derive_seed(config.seed, 0x5e551025ULL), config.client));
    std::vector<client_arrival> schedule;
    schedule.reserve(config.arrivals);
    std::vector<std::uint64_t> outstanding; // seqs of unreleased allocates
    sim::sim_time at = 0.0;
    for (std::uint64_t seq = 0; seq < config.arrivals; ++seq) {
        at += rng::exponential(gen, 1.0 / config.rate);
        client_arrival arrival;
        arrival.at = at;
        arrival.client = config.client;
        arrival.seq = seq;
        const bool release =
            rng::bernoulli(gen, config.churn) && !outstanding.empty();
        if (release) {
            const auto pick = static_cast<std::size_t>(
                rng::uniform_below(gen, outstanding.size()));
            arrival.kind = request_kind::release;
            arrival.target_seq = outstanding[pick];
            outstanding.erase(outstanding.begin() +
                              static_cast<std::ptrdiff_t>(pick));
        } else {
            outstanding.push_back(seq);
        }
        schedule.push_back(arrival);
    }
    return schedule;
}

/// The aggregation half: records when each request left the client and
/// turns the matching response into a latency sample. One session per
/// client; the service owns the map from response.client to session.
class session {
public:
    /// Records that request `id` left the client at `at`.
    void on_send(std::uint64_t id, sim::sim_time at) {
        const bool inserted = sent_.emplace(id, at).second;
        KD_EXPECTS_MSG(inserted, "duplicate request id sent");
    }

    /// Consumes the response to a previously sent request, recording
    /// `at - send time` as the request's latency.
    void on_response(const response& resp, sim::sim_time at) {
        const auto it = sent_.find(resp.id);
        KD_EXPECTS_MSG(it != sent_.end(),
                       "response to a request this session never sent");
        latencies_.push_back(at - it->second);
        sent_.erase(it);
    }

    /// Latency samples in response-arrival order.
    [[nodiscard]] const std::vector<double>& latencies() const noexcept {
        return latencies_;
    }

    /// Requests sent but not yet answered.
    [[nodiscard]] std::size_t in_flight() const noexcept {
        return sent_.size();
    }

private:
    std::unordered_map<std::uint64_t, sim::sim_time> sent_;
    std::vector<double> latencies_;
};

} // namespace kdc::serve
