// Deterministic fault injection: plan grammar, hit counting, action
// dispatch, the env-beats-flag arming rule, and the graceful-degradation
// paths the sites exist to exercise (perbin -> level fallback, sharded
// kernel propagation).
#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/sharded_kernel.hpp"
#include "support/cli.hpp"

namespace {

using kdc::arg_parser;
using kdc::cli_error;
using kdc::core::arm_faults;
using kdc::core::arm_faults_from_cli;
using kdc::core::disarm_faults;
using kdc::core::fault_action;
using kdc::core::fault_plan;
using kdc::core::fault_point;
using kdc::core::fault_site;
using kdc::core::fault_site_count;
using kdc::core::fault_site_name;
using kdc::core::fault_site_names;
using kdc::core::faults_armed;
using kdc::core::injected_io_error;
using kdc::core::snapshot_path_sites;

/// Every test leaves the process disarmed, whatever happens inside.
class FaultInjection : public ::testing::Test {
protected:
    void TearDown() override {
        disarm_faults();
        unsetenv("KDC_FAULTS");
    }
};

TEST_F(FaultInjection, ParsesRulesHitsAndMultiRulePlans) {
    const auto plan = fault_plan::parse(
        "snapshot.write:io_error@1;snapshot.rename:crash@2;"
        "perbin.alloc:alloc_fail");
    ASSERT_EQ(plan.rules.size(), 3u);
    EXPECT_EQ(plan.rules[0].site, fault_site::snapshot_write);
    EXPECT_EQ(plan.rules[0].action, fault_action::io_error);
    EXPECT_EQ(plan.rules[0].hit, 1u);
    EXPECT_EQ(plan.rules[1].site, fault_site::snapshot_rename);
    EXPECT_EQ(plan.rules[1].action, fault_action::crash);
    EXPECT_EQ(plan.rules[1].hit, 2u);
    EXPECT_EQ(plan.rules[2].site, fault_site::perbin_alloc);
    EXPECT_EQ(plan.rules[2].action, fault_action::alloc_fail);
    EXPECT_EQ(plan.rules[2].hit, 1u); // default hit
}

TEST_F(FaultInjection, RejectsMalformedSpecsWithPreciseErrors) {
    EXPECT_THROW((void)fault_plan::parse("nosuch.site:crash"), cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write:explode"),
                 cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write"), cli_error);
    EXPECT_THROW((void)fault_plan::parse(":crash"), cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write:crash@0"),
                 cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write:crash@"),
                 cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write:crash@two"),
                 cli_error);
    EXPECT_THROW((void)fault_plan::parse("snapshot.write:crash;;"),
                 cli_error);
}

TEST_F(FaultInjection, SiteNamesRoundTripThroughTheParser) {
    const auto names = fault_site_names();
    ASSERT_EQ(names.size(), fault_site_count);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto plan = fault_plan::parse(names[i] + ":crash");
        ASSERT_EQ(plan.rules.size(), 1u);
        EXPECT_EQ(plan.rules[0].site, static_cast<fault_site>(i));
        EXPECT_EQ(fault_site_name(plan.rules[0].site), names[i]);
    }
}

TEST_F(FaultInjection, FiresOnExactlyTheStatedHit) {
    arm_faults(fault_plan::parse("steady.pilot:io_error@3"));
    EXPECT_TRUE(faults_armed());
    EXPECT_NO_THROW(fault_point(fault_site::steady_pilot)); // hit 1
    EXPECT_NO_THROW(fault_point(fault_site::steady_pilot)); // hit 2
    try {
        fault_point(fault_site::steady_pilot); // hit 3: fires
        FAIL() << "hit 3 should have thrown";
    } catch (const injected_io_error& err) {
        EXPECT_EQ(err.site(), fault_site::steady_pilot);
    }
    // Hits PAST the stated one pass through again — this is what lets the
    // snapshot writer's retry succeed after an io_error@1.
    EXPECT_NO_THROW(fault_point(fault_site::steady_pilot)); // hit 4
    // Other sites are untouched.
    EXPECT_NO_THROW(fault_point(fault_site::snapshot_write));
}

TEST_F(FaultInjection, AllocFailThrowsBadAllocAndDisarmStops) {
    arm_faults(fault_plan::parse("perbin.alloc:alloc_fail@1"));
    EXPECT_THROW(fault_point(fault_site::perbin_alloc), std::bad_alloc);
    disarm_faults();
    EXPECT_FALSE(faults_armed());
    EXPECT_NO_THROW(fault_point(fault_site::perbin_alloc));
    // Re-arming resets the hit counters.
    arm_faults(fault_plan::parse("perbin.alloc:alloc_fail@1"));
    EXPECT_THROW(fault_point(fault_site::perbin_alloc), std::bad_alloc);
}

TEST_F(FaultInjection, EnvOverridesTheFlagAndEmptyEnvDoesNot) {
    arg_parser args;
    args.add_fault_options();
    const std::array argv{"prog",
                          "--inject-faults=snapshot.write:io_error@7"};
    ASSERT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));

    setenv("KDC_FAULTS", "resume.load:io_error@2", 1);
    EXPECT_TRUE(arm_faults_from_cli(args));
    EXPECT_NO_THROW(fault_point(fault_site::resume_load)); // hit 1
    EXPECT_THROW(fault_point(fault_site::resume_load), injected_io_error);
    // The flag's rule must NOT be armed: the env replaced it wholesale.
    for (int i = 0; i < 10; ++i) {
        EXPECT_NO_THROW(fault_point(fault_site::snapshot_write));
    }

    // An EMPTY env falls back to the flag.
    setenv("KDC_FAULTS", "", 1);
    EXPECT_TRUE(arm_faults_from_cli(args));
    for (int i = 0; i < 6; ++i) {
        EXPECT_NO_THROW(fault_point(fault_site::snapshot_write));
    }
    EXPECT_THROW(fault_point(fault_site::snapshot_write), injected_io_error);
}

TEST_F(FaultInjection, NoSpecAnywhereLeavesFaultsDisarmed) {
    arg_parser args;
    args.add_fault_options();
    const std::array argv{"prog"};
    ASSERT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data()));
    unsetenv("KDC_FAULTS");
    EXPECT_FALSE(arm_faults_from_cli(args));
    EXPECT_FALSE(faults_armed());
}

TEST_F(FaultInjection, SnapshotPathSitesAreAllRealSites) {
    const auto sites = snapshot_path_sites();
    EXPECT_GE(sites.size(), 7u);
    for (const fault_site site : sites) {
        EXPECT_LT(static_cast<std::size_t>(site), fault_site_count);
        EXPECT_STRNE(fault_site_name(site), "invalid");
    }
}

TEST_F(FaultInjection, MakeProcessDegradesPerbinToLevelOnAllocFail) {
    // The graceful-degradation satellite: a bad_alloc during per-bin state
    // construction falls back to the level kernel when the policy has one
    // (kd does) — the returned process still runs and reports.
    kdc::core::scenario sc;
    sc.n = 1024;
    sc.k = 2;
    sc.d = 4;
    sc.kernel = kdc::core::kernel_choice::per_bin;
    arm_faults(fault_plan::parse("perbin.alloc:alloc_fail@1"));
    auto process = kdc::core::make_process(sc, 11);
    disarm_faults();
    process.run_balls(1024);
    const auto observed = process.observe();
    EXPECT_EQ(observed.balls_placed, 1024u);

    // The fallback must match the level kernel bit for bit (same factory,
    // same seed).
    sc.kernel = kdc::core::kernel_choice::level;
    auto level = kdc::core::make_process(sc, 11);
    level.run_balls(1024);
    EXPECT_EQ(level.observe().max_load, observed.max_load);
}

TEST_F(FaultInjection, MakeProcessRethrowsWhenNoLevelFallbackExists) {
    // greedy has no level kernel: the bad_alloc must surface, not vanish.
    kdc::core::scenario sc;
    sc.n = 256;
    sc.k = 2;
    sc.d = 4;
    sc.family = "greedy";
    arm_faults(fault_plan::parse("perbin.alloc:alloc_fail@1"));
    EXPECT_THROW((void)kdc::core::make_process(sc, 5), std::bad_alloc);
}

TEST_F(FaultInjection, ShardedKernelPropagatesInjectedIoErrors) {
    // The shard.* sites sit at the phase boundaries of the per-bin sharded
    // kernel; an io_error there must unwind out of run_balls.
    const auto names = std::vector<std::string>{
        "shard.pregen", "shard.bucket", "shard.gather", "shard.select",
        "shard.commit"};
    for (const auto& name : names) {
        arm_faults(fault_plan::parse(name + ":io_error@1"));
        kdc::core::sharded_kd_process process(2048, 2, 4, 17);
        EXPECT_THROW(process.run_balls(2048), injected_io_error) << name;
        disarm_faults();
    }
}

} // namespace
