// The SA_{x0} process of Definition 3: every ball picks a bin i.u.r.; if the
// chosen bin is currently the x-th most loaded with x <= x0, the ball is
// *discarded*, otherwise it is placed. The paper uses SA_{x0} (with
// x0 = gamma*) to lower-bound the load of bin gamma* under (k,d)-choice
// (Lemmas 8-10, Corollary 3).
//
// Ranks follow Section 2.1: bins sorted by decreasing load, ties broken
// randomly. For a bin with load L that means rank = (#bins with load > L) +
// uniform{1..#bins with load == L}. Both counts come from a Fenwick tree
// indexed by load value, so each ball costs O(log maxload).
#pragma once

#include <cstdint>

#include "core/fenwick.hpp"
#include "core/types.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

class sa_threshold_process {
public:
    /// x0 in [0, n]: x0 = 0 never discards (plain single-choice).
    sa_threshold_process(std::uint64_t n, std::uint64_t x0, std::uint64_t seed);

    /// Offers `balls` balls to the process; each is placed or discarded.
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    /// Balls actually placed (Definition 3 discards the rest).
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    /// Balls offered so far (placed + discarded).
    [[nodiscard]] std::uint64_t balls_offered() const noexcept {
        return balls_offered_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept {
        return balls_offered_; // one probe per offered ball
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t x0() const noexcept { return x0_; }

private:
    load_vector loads_;
    std::uint64_t x0_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t balls_offered_ = 0;
    fenwick_tree bins_at_load_; // index = load value, count = #bins
    rng::xoshiro256ss gen_;
};

} // namespace kdc::core
