// The channel contract: strict FIFO delivery, accurate pending counts,
// lifetime counters — the properties the dispatcher's id-order processing
// (and therefore the whole determinism contract) leans on.
#include "serve/channel.hpp"

#include <gtest/gtest.h>

#include <string>

#include "serve/message.hpp"

namespace kdc::serve {
namespace {

TEST(MemoryChannel, DeliversInSendOrder) {
    memory_channel<int> chan;
    for (int i = 0; i < 100; ++i) {
        chan.send(i);
    }
    int out = -1;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(chan.try_receive(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(chan.try_receive(out));
}

TEST(MemoryChannel, InterleavedSendsStayFifo) {
    memory_channel<std::string> chan;
    chan.send("a");
    chan.send("b");
    std::string out;
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(out, "a");
    chan.send("c");
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(out, "b");
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(out, "c");
    EXPECT_FALSE(chan.try_receive(out));
}

TEST(MemoryChannel, PendingTracksQueueDepth) {
    memory_channel<int> chan;
    EXPECT_EQ(chan.pending(), 0u);
    chan.send(1);
    chan.send(2);
    EXPECT_EQ(chan.pending(), 2u);
    int out = 0;
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(chan.pending(), 1u);
}

TEST(MemoryChannel, LifetimeCountersAreMonotone) {
    memory_channel<int> chan;
    int out = 0;
    EXPECT_FALSE(chan.try_receive(out)); // failed receive does not count
    chan.send(7);
    chan.send(8);
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(chan.total_sent(), 2u);
    EXPECT_EQ(chan.total_received(), 1u);
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(chan.total_received(), 2u);
    EXPECT_EQ(chan.pending(), 0u);
}

TEST(MemoryChannel, CarriesRequestMessages) {
    memory_channel<request> chan;
    request req;
    req.kind = request_kind::release;
    req.client = 3;
    req.id = 41;
    req.target = 17;
    chan.send(req);
    request out;
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(out.kind, request_kind::release);
    EXPECT_EQ(out.client, 3u);
    EXPECT_EQ(out.id, 41u);
    EXPECT_EQ(out.target, 17u);
}

TEST(MemoryChannel, UsableThroughTheAbstractInterface) {
    memory_channel<int> impl;
    channel<int>& chan = impl;
    chan.send(5);
    EXPECT_EQ(chan.pending(), 1u);
    int out = 0;
    ASSERT_TRUE(chan.try_receive(out));
    EXPECT_EQ(out, 5);
}

} // namespace
} // namespace kdc::serve
