// Reproduces Table 1 of the paper: the maximum bin load of (k,d)-choice
// after n = 3 * 2^16 balls are placed into n bins, over the exact k x d grid
// the paper uses, with ten runs per cell. Each cell lists the distinct
// maximum loads observed across the runs (the paper's "7, 8, 9" format).
//
// The d = 1 column is the classical single-choice process; the k = 1 row is
// the classical d-choice of Azar et al.
//
// Repetitions within a cell run on a thread pool (--threads, default: all
// hardware threads); results are bit-identical to a serial run regardless of
// thread count because per-rep seeds and the aggregation order are fixed.
//
//   ./table1_maxload [--n=196608] [--reps=10] [--seed=1] [--threads=0] [--csv]
#include <iostream>
#include <vector>

#include "core/parallel_runner.hpp"
#include "support/cli.hpp"
#include "support/csv_writer.hpp"
#include "support/text_table.hpp"

namespace {

const std::vector<std::uint64_t> k_values{1, 2,  3,  4,  6,  8,  12, 16,
                                          24, 32, 48, 64, 96, 128, 192};
const std::vector<std::uint64_t> d_values{1, 2, 3, 5, 9, 17, 25, 49, 65, 193};

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls (3 * 2^16)");
    args.add_option("reps", "10", "simulation runs per cell (paper: 10)");
    args.add_option("seed", "1", "master seed");
    args.add_threads_option();
    args.add_flag("csv", "also emit CSV rows (k, d, max-load set, mean)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto threads = args.get_threads();

    std::cout << "Table 1: maximum bin load for (k,d)-choice, n = " << n
              << ", " << reps << " runs per cell\n"
              << "(cells list the distinct max loads seen across runs; '-' "
                 "marks invalid cells with k >= d)\n\n";

    kdc::text_table table;
    std::vector<std::string> header{"k \\ d"};
    for (const auto d : d_values) {
        header.push_back("d=" + std::to_string(d));
    }
    table.set_header(header);

    kdc::csv_writer csv(std::cout);
    std::vector<std::vector<std::string>> csv_rows;

    std::uint64_t cell_seed = seed;
    for (const auto k : k_values) {
        std::vector<std::string> row{"k=" + std::to_string(k)};
        for (const auto d : d_values) {
            ++cell_seed;
            if (k >= d) {
                // d = 1, k = 1 is the single-choice column; everything else
                // with k >= d is undefined for (k,d)-choice.
                if (d == 1 && k == 1) {
                    const auto result =
                        kdc::core::run_single_choice_experiment_parallel(
                            n, {.balls = n, .reps = reps, .seed = cell_seed},
                            threads);
                    row.push_back(result.max_load_set());
                    csv_rows.push_back({std::to_string(k), std::to_string(d),
                                        result.max_load_set(),
                                        kdc::format_fixed(
                                            result.max_load_stats.mean(), 2)});
                } else {
                    row.push_back("-");
                }
                continue;
            }
            const auto result = kdc::core::run_kd_experiment_parallel(
                n, k, d,
                {.balls = kdc::core::whole_rounds_balls(n, k), .reps = reps,
                 .seed = cell_seed},
                threads);
            row.push_back(result.max_load_set());
            csv_rows.push_back({std::to_string(k), std::to_string(d),
                                result.max_load_set(),
                                kdc::format_fixed(
                                    result.max_load_stats.mean(), 2)});
        }
        table.add_row(std::move(row));
    }

    std::cout << table << '\n';

    std::cout << "Paper reference points (Table 1):\n"
                 "  single choice (k=1,d=1): 7, 8, 9      two-choice "
                 "(k=1,d=2): 3, 4\n"
                 "  (2,3): 4    (8,9): 4    (128,193): 2    (192,193): 5, 6\n";

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        csv.write_row({"k", "d", "max_load_set", "max_load_mean"});
        for (const auto& row : csv_rows) {
            csv.write_row(row);
        }
    }
    return 0;
}
