// Sharded round-parallel (k,d)-choice kernels: one REPETITION executed as a
// sequence of chunked, shard-partitioned phases, with output byte-identical
// to the serial kernels at every thread count and shard count.
//
// The serial per-bin kernel (core/process.hpp) spends its time on random
// DRAM accesses: every probe reads loads[bin] at an i.u.r. index of an
// array far larger than any cache. The sharded kernel replays the EXACT
// same random tape (probe indices and tie keys, drawn in the serial
// kernel's order) but restructures the memory traffic:
//
//   phase A  (serial)    pregenerate the tape for a chunk of rounds:
//                        per slot its bin, occurrence index and tie key,
//                        in kd_choice_process's exact RNG call order;
//   bucket   (serial)    counting-sort the chunk's slots into S contiguous
//                        bin shards (stable, so time order survives);
//   phase B  (parallel)  per shard: gather each slot's chunk-start load
//                        from the shard's bin window — a cache-resident
//                        window instead of random DRAM — and detect
//                        CONFLICTED bins (probed by >= 2 slots) with a
//                        first-slot-seen window array (no sorting);
//   phase C  (serial)    one sweep over the rounds in order: slot heights
//                        come from the gathered loads, except conflicted
//                        bins, which read a small hash overlay that is
//                        updated with each round's commits — exactly the
//                        live loads the serial kernel would have seen;
//                        nth_element selection identical to place_round;
//   phase E  (parallel)  per shard: commit the kept flags back into the
//                        load vector, again over the shard's window.
//
// Exactness: a non-conflicted bin is probed by exactly one round of the
// chunk, so its load is the chunk-start load for that round's whole
// selection (same-round multiplicity is the occurrence index, as in
// place_round). A conflicted bin's overlay entry starts at the chunk-start
// load and gains every kept ball in round order during the phase-C sweep,
// so round r reads chunk-start + (commits of rounds < r) — the serial
// value. Commits are +1 sums, so the phase-E order is irrelevant. The tape
// itself is drawn serially from the same generator state as the serial
// kernel. Hence loads() after every chunk — and therefore after the run —
// equals kd_choice_process::loads() bit for bit, regardless of the shard
// count or how many pool workers execute phases B and E.
//
// The level-kernel counterpart (sharded_kd_level_process) partitions the
// level profile itself into S shard profiles kept in deterministic
// lockstep with an authoritative serial replay; see the class comment.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/level_profile.hpp"
#include "core/types.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

class thread_pool;

/// 128-bit scratch type for the multiply-high in shard_layout::shard_of
/// (__extension__ keeps -Wpedantic quiet about the GCC/Clang builtin).
__extension__ using kd_uint128 = unsigned __int128;

/// Resolves a user-facing shard-count request against n bins: 0 means
/// "auto" (one shard per ~32k bins, so a shard's load window stays
/// cache-resident; at least 1, at most 4096), anything else is clamped into
/// [1, min(n, 4096)].
[[nodiscard]] std::uint64_t resolve_shard_count(std::uint64_t n,
                                                std::uint64_t requested);

/// Deterministic partition of [0, n) bins into `shards` contiguous ranges:
/// shard s holds floor(n/S) bins, +1 for the first n mod S shards — the
/// same dealing rule as split_profile (core/level_profile.hpp), so the two
/// kernels shard identically. O(1) shard_of. Requires 1 <= shards <= n.
class shard_layout {
public:
    shard_layout(std::uint64_t n, std::uint64_t shards)
        : n_(n), shards_(shards), base_(n / shards), extra_(n % shards),
          // ceil(2^64 * S / n) makes floor(bin * mul_ / 2^64) land within
          // one shard of the true owner; shard_of fixes the off-by-one.
          // One division here buys a division-free per-probe hot path.
          // (S == n would need 2^64 itself; saturating keeps the guess
          // within one step, which the fixup loops absorb.)
          mul_(shards >= n
                   ? ~std::uint64_t{0}
                   : static_cast<std::uint64_t>(
                         ((static_cast<kd_uint128>(shards) << 64) +
                          n - 1) /
                         n)) {
        KD_EXPECTS_MSG(shards >= 1 && shards <= n,
                       "shard_layout needs 1 <= shards <= n");
    }

    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
    [[nodiscard]] std::uint64_t shards() const noexcept { return shards_; }

    /// First bin of shard s.
    [[nodiscard]] std::uint64_t begin(std::uint64_t s) const noexcept {
        return s * base_ + std::min(s, extra_);
    }
    /// One past the last bin of shard s.
    [[nodiscard]] std::uint64_t end(std::uint64_t s) const noexcept {
        return begin(s + 1);
    }
    [[nodiscard]] std::uint64_t size(std::uint64_t s) const noexcept {
        return base_ + (s < extra_ ? 1 : 0);
    }

    /// The shard owning `bin` (inverse of begin/end). Division-free: a
    /// multiply-high guess corrected by at most one begin/end comparison —
    /// this sits on the kernel's per-probe bucketing path.
    [[nodiscard]] std::uint64_t shard_of(std::uint64_t bin) const noexcept {
        std::uint64_t s = static_cast<std::uint64_t>(
            (static_cast<kd_uint128>(bin) * mul_) >> 64);
        while (bin < begin(s)) {
            --s;
        }
        while (bin >= end(s)) {
            ++s;
        }
        return s;
    }

private:
    std::uint64_t n_;
    std::uint64_t shards_;
    std::uint64_t base_;
    std::uint64_t extra_;
    std::uint64_t mul_;
};

/// Read-only shard-partitioned view of a load vector: shard_span(s) is the
/// contiguous slice of loads owned by shard s under a shard_layout. The
/// view borrows both the vector and the layout — keep them alive.
class sharded_loads {
public:
    sharded_loads(const load_vector& loads, const shard_layout& layout)
        : loads_(&loads), layout_(&layout) {
        KD_EXPECTS_MSG(loads.size() == layout.n(),
                       "layout and load vector disagree on n");
    }

    [[nodiscard]] const shard_layout& layout() const noexcept {
        return *layout_;
    }
    [[nodiscard]] std::span<const bin_load>
    shard_span(std::uint64_t s) const {
        return std::span<const bin_load>(*loads_).subspan(
            layout_->begin(s), layout_->size(s));
    }

private:
    const load_vector* loads_;
    const shard_layout* layout_;
};

/// The (k,d)-choice process on per-bin state, executed by the sharded
/// round-parallel pipeline described at the top of this header. Output is
/// byte-identical to kd_choice_process with the same (n, k, d, seed) in
/// with-replacement probe mode, for every shard count and thread count.
///
/// use_pool(&pool) runs phases B and E across the pool's workers via
/// thread_pool::run_phase; with no pool (the default) every phase runs
/// inline on the calling thread — the chunked, shard-local memory schedule
/// alone beats the serial kernel's random-access walk on large n.
/// Requires 1 <= k < d <= n.
class sharded_kd_process {
public:
    /// `shards` as in resolve_shard_count (0 = auto).
    sharded_kd_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                       std::uint64_t seed, std::uint64_t shards = 0);

    /// Starts from an existing load vector (snapshot resume, heavily
    /// loaded starts). balls_placed()/messages() count only
    /// post-construction activity.
    sharded_kd_process(load_vector initial_loads, std::uint64_t k,
                       std::uint64_t d, std::uint64_t seed,
                       std::uint64_t shards = 0);

    /// Runs phases B and E on `pool` (nullptr reverts to inline execution).
    /// The pool is borrowed, not owned; output does not depend on it.
    void use_pool(thread_pool* pool) noexcept { pool_ = pool; }

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    /// Probe messages issued so far: d per round (footnote 1 of the paper).
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }
    [[nodiscard]] std::uint64_t shard_count() const noexcept {
        return layout_.shards();
    }
    [[nodiscard]] const shard_layout& layout() const noexcept {
        return layout_;
    }

private:
    /// Minimal open-addressing map bin -> live load for the chunk's
    /// conflicted bins (expected |C|^2 / 2n entries for C probes — small).
    struct conflict_table {
        std::vector<std::uint32_t> keys;   // empty_key = no entry
        std::vector<std::uint32_t> vals;
        std::uint64_t mask = 0;
        static constexpr std::uint32_t empty_key = 0xFFFFFFFFu;

        void rebuild(std::size_t entries);
        void insert(std::uint32_t bin, std::uint32_t load);
        [[nodiscard]] std::uint32_t* find(std::uint32_t bin);
    };

    void run_chunk(std::uint64_t rounds);
    void pregenerate_tape(std::uint64_t rounds);
    void bucket_by_shard(std::uint64_t slots);
    void gather_shard(std::uint64_t shard);
    void select_rounds(std::uint64_t rounds);
    void commit_shard(std::uint64_t shard);
    void for_each_shard_parallel(void (sharded_kd_process::*phase)(
        std::uint64_t));

    load_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    shard_layout layout_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    thread_pool* pool_ = nullptr;

    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched — the serial tape

    std::uint64_t max_chunk_rounds_ = 1;

    // Chunk tape, indexed by slot = round * d + j in construction order.
    std::vector<std::uint32_t> slot_bin_;
    std::vector<std::uint32_t> slot_occ_;
    std::vector<std::uint64_t> slot_key_;
    /// Chunk-start load per slot; bit 31 flags a conflicted bin.
    std::vector<std::uint32_t> probe_load_;
    std::vector<std::uint8_t> kept_;

    // Shard bucketing: (bin << 32 | slot) pairs grouped by shard, in tape
    // (time) order within each shard.
    std::vector<std::uint64_t> bucket_;
    std::vector<std::uint64_t> bucket_start_; // S + 1 prefix offsets
    std::vector<std::uint64_t> shard_counts_;

    /// Per-bin conflict detector for the gather pass: slot index of the
    /// bin's first probe this chunk, or one of the two sentinels. Reset to
    /// `unseen` by commit_shard (which touches the same bins), so no
    /// chunk-epoch bookkeeping is needed. Accessed only within a shard's
    /// bin window — the same cache-resident stripe as loads_.
    std::vector<std::uint32_t> first_slot_;
    static constexpr std::uint32_t slot_unseen = 0xFFFFFFFFu;
    static constexpr std::uint32_t slot_conflicted = 0xFFFFFFFEu;

    /// Per-shard (bin, chunk-start load) lists of conflicted bins, merged
    /// into the overlay table before the selection sweep.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        conflicts_;
    conflict_table overlay_;

    // Phase A/C scratch.
    std::vector<std::uint32_t> sample_buffer_;
    std::vector<std::uint32_t> sorted_samples_;
    struct slot_candidate {
        std::uint32_t height = 0;
        std::uint64_t tie_key = 0;
        std::uint32_t slot = 0;
    };
    std::vector<slot_candidate> round_slots_;
    /// Overlay value pointer per probe of the current round (null when the
    /// bin is unconflicted), filled by the candidate sweep so the kept
    /// loop commits without a second hash lookup. Stable for the duration
    /// of a chunk: the overlay never rehashes after its build phase.
    std::vector<std::uint32_t*> round_vals_;
};

/// The (k,d)-choice process on level-compressed state with the profile
/// partitioned into S shard profiles (split_profile) maintained in
/// deterministic lockstep with an authoritative replay of
/// kd_choice_level_process: profile() is byte-identical to the serial
/// level kernel at every shard and thread count, and
/// merge_profiles(shard_profiles()) == profile() holds as an invariant.
///
/// Each fresh probe extracts a bin from the LOWEST-indexed shard with a
/// bin at the probed level and reinserts it into the same shard at its
/// post-round level — a pure function of the tape, so the shard partition
/// is schedule-independent. The per-round dependency through the Fenwick
/// ranks is inherently serial (every draw conditions on the exact current
/// profile), so this kernel runs its rounds on the calling thread;
/// use_pool is accepted for interface parity and future cross-shard
/// phases, and the sharded state is what snapshot partitioning and the
/// scenario grammar's shards= key operate on. Requires 1 <= k < d <= n.
class sharded_kd_level_process {
public:
    sharded_kd_level_process(std::uint64_t n, std::uint64_t k,
                             std::uint64_t d, std::uint64_t seed,
                             std::uint64_t shards = 0);

    /// Starts from an existing profile (snapshot resume); the shard
    /// profiles are re-derived via split_profile.
    sharded_kd_level_process(level_profile initial, std::uint64_t k,
                             std::uint64_t d, std::uint64_t seed,
                             std::uint64_t shards = 0);

    /// Accepted for interface parity with sharded_kd_process; rounds run
    /// on the calling thread (see the class comment).
    void use_pool(thread_pool* pool) noexcept { pool_ = pool; }

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const level_profile& profile() const noexcept {
        return profile_;
    }
    /// The S shard profiles; merge_profiles over them equals profile().
    [[nodiscard]] const std::vector<level_profile>&
    shard_profiles() const noexcept {
        return shard_profiles_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }
    [[nodiscard]] std::uint64_t shard_count() const noexcept {
        return shard_profiles_.size();
    }

private:
    void run_round();

    struct distinct_probe {
        std::uint64_t level = 0;
        std::uint32_t multiplicity = 0;
        std::uint32_t shard = 0;
    };
    struct slot {
        std::uint64_t height = 0;
        std::uint64_t tie_key = 0;
        std::uint32_t probe = 0;
    };

    level_profile profile_;
    std::vector<level_profile> shard_profiles_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    thread_pool* pool_ = nullptr;
    std::vector<distinct_probe> distinct_;
    std::vector<slot> slots_;
    std::vector<std::uint32_t> kept_per_probe_;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched
};

} // namespace kdc::core
