// xoshiro_skip's single contract: skipping N steps equals calling the
// generator N times, for every N — including the awkward ones (0, 1,
// non-powers of two, multi-bit exponents) and from any starting state.
#include "rng/xoshiro_skip.hpp"

#include <cstdint>

#include <gtest/gtest.h>

#include "rng/xoshiro256ss.hpp"

namespace kdc::rng {
namespace {

xoshiro256ss advance_naively(xoshiro256ss gen, std::uint64_t steps) {
    for (std::uint64_t i = 0; i < steps; ++i) {
        (void)gen();
    }
    return gen;
}

TEST(XoshiroSkip, MatchesNaiveSteppingForSmallCounts) {
    const xoshiro256ss start(42);
    for (std::uint64_t steps = 0; steps <= 300; ++steps) {
        ASSERT_EQ(xoshiro_skip(start, steps).state(),
                  advance_naively(start, steps).state())
            << "steps=" << steps;
    }
}

TEST(XoshiroSkip, MatchesNaiveSteppingForCompositeCounts) {
    // Multi-bit exponents exercise the chained matrix applications; the
    // continuation draws after the skip must also agree (the skipped
    // generator is a full, usable generator).
    const xoshiro256ss start(20240807);
    for (const std::uint64_t steps :
         {511ull, 1000ull, 4097ull, 65535ull, 100003ull}) {
        xoshiro256ss skipped = xoshiro_skip(start, steps);
        xoshiro256ss stepped = advance_naively(start, steps);
        ASSERT_EQ(skipped.state(), stepped.state()) << "steps=" << steps;
        for (int i = 0; i < 8; ++i) {
            ASSERT_EQ(skipped(), stepped());
        }
    }
}

TEST(XoshiroSkip, ComposesAdditively) {
    // skip(a) then skip(b) == skip(a + b): the group property the sharded
    // kernel's per-slice reconstruction leans on.
    const xoshiro256ss start(7);
    const auto ab = xoshiro_skip(xoshiro_skip(start, 12345), 678);
    EXPECT_EQ(ab.state(), xoshiro_skip(start, 13023).state());
}

TEST(XoshiroSkip, LargeStepStaysConsistentWithItself) {
    // 2^26 steps — the largest offset a chunk's tape reconstruction can
    // ask for — checked against a two-part split instead of naive
    // stepping.
    const xoshiro256ss start(99);
    const std::uint64_t half = 1ull << 25;
    const auto split = xoshiro_skip(xoshiro_skip(start, half), half);
    EXPECT_EQ(split.state(), xoshiro_skip(start, 1ull << 26).state());
}

} // namespace
} // namespace kdc::rng
