// Reproduces Figure 2 of the paper: the sorted bin-load vector with the
// *lower-bound* landmarks of Section 5,
//     gamma* = 4 n / dk     (Theorem 6: B_{gamma*} >= (1-o(1)) ln dk / ln ln dk)
//     gamma0 = n / d        (Theorem 7: B_1 - B_{gamma0} >= ln ln n /
//                            ln(d-k+1) - O(1))
// for a configuration with dk -> infinity (the regime Figure 2 illustrates;
// default (64,65), dk = 65).
//
// Each repetition produces a whole sorted-load profile, so the bench sits
// directly on the execution engine's run_engine_grid (core/engine.hpp):
// repetitions run on the process-wide persistent pool and are folded in
// repetition order, keeping the printed profile bit-identical at any
// --threads value. Under --adaptive the confidence_width rule monitors the
// per-repetition max load B_1.
//
//   ./fig2_lowerbound_landmarks [--n=196608] [--k=64] [--d=65] [--reps=5]
//                               [--threads=0] [--csv]
//                               [--scenario "kd:n=...,kernel=level"]
//                               [--adaptive --ci-width=0.4 --max-reps=40]
//
// The repetition body runs a declarative scenario (core/scenario.hpp)
// through make_process, so any kernel/policy combination works;
// --scenario overrides the legacy flags key by key, byte-identically for
// equivalent settings.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>

#include "core/kdchoice.hpp"
#include "rank_profile.hpp"
#include "stats/running_stats.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

namespace {

struct rep_profile {
    std::vector<double> at_ranks;
    double b1 = 0.0;
    double b_gamma_star = 0.0;
    double b_gamma0 = 0.0;
    double gap = 0.0;
    double messages = 0.0;
};

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("k", "64", "balls per round");
    args.add_option("d", "65", "bins probed per round");
    args.add_option("reps", "5", "independent repetitions to average");
    args.add_option("seed", "2", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (rank, mean B_x, landmark)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = static_cast<std::uint64_t>(args.get_int("d"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto k = merged.k;
    const auto d = merged.d;

    const double dk = kdc::theory::dk_ratio(k, d);
    // Clamp both landmarks into [1, n]: gamma* = 4n/dk exceeds n whenever
    // dk < 4 (e.g. small k with d >> k), and a rank beyond n would index
    // past the sorted load vector. The landmark is only meaningful as a rank
    // of the profile, so the top rank n is the honest saturation point.
    const auto gamma_star = std::min<std::uint64_t>(
        n, static_cast<std::uint64_t>(
               std::max(1.0, kdc::theory::gamma_star_landmark(n, k, d))));
    const auto gamma0 = std::min<std::uint64_t>(
        n, static_cast<std::uint64_t>(
               std::max(1.0, kdc::theory::gamma0_landmark(n, d))));

    std::cout << "Figure 2: sorted bin load vector of (" << k << "," << d
              << ")-choice with lower-bound landmarks, n = " << n << "\n"
              << "dk = " << kdc::format_fixed(dk, 2)
              << ", gamma* = min(n, 4n/dk) = " << gamma_star
              << ", gamma0 = min(n, n/d) = " << gamma0 << "\n\n";

    std::vector<std::uint64_t> ranks{1, gamma0, gamma_star, n};
    for (std::uint64_t x = 2; x < n; x = x * 2 + 1) {
        ranks.push_back(x);
    }
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

    const auto balls = kdc::core::resolved_balls(merged);
    const std::array<std::uint32_t, 1> reps_per_cell{reps};
    auto& pool = kdc::core::persistent_pool(args.get_threads());
    const auto grid = kdc::core::run_engine_grid<rep_profile>(
        pool, reps_per_cell,
        [&ranks, &merged, seed, balls, gamma_star,
         gamma0](std::size_t, std::uint32_t rep) {
            auto process = kdc::core::make_process(
                merged, kdc::rng::derive_seed(seed, rep));
            process.run_balls(balls);
            const auto sorted = process.sorted_loads();
            rep_profile profile;
            profile.at_ranks.reserve(ranks.size());
            for (const auto rank : ranks) {
                profile.at_ranks.push_back(sorted[rank - 1]);
            }
            profile.b1 = sorted.front();
            profile.b_gamma_star = sorted[gamma_star - 1];
            profile.b_gamma0 = sorted[gamma0 - 1];
            const auto obs = process.observe();
            profile.gap = obs.gap;
            profile.messages = static_cast<double>(obs.messages);
            return profile;
        },
        // Adaptive mode monitors the scenario's metric per repetition
        // (default: the max load B_1).
        [metric = merged.metric](std::size_t, const rep_profile& profile) {
            switch (metric) {
            case kdc::core::metric_kind::gap:
                return profile.gap;
            case kdc::core::metric_kind::messages:
                return profile.messages;
            case kdc::core::metric_kind::max_load:
                break;
            }
            return profile.b1;
        },
        kdc::core::stopping_rule_from_cli(args));

    // Fold in repetition order (grid[0] is rep-ordered by construction).
    std::vector<kdc::stats::running_stats> profile(ranks.size());
    kdc::stats::running_stats b1;
    kdc::stats::running_stats b_gamma_star;
    kdc::stats::running_stats b_gamma0;
    for (const auto& rep : grid[0]) {
        for (std::size_t i = 0; i < ranks.size(); ++i) {
            profile[i].push(rep.at_ranks[i]);
        }
        b1.push(rep.b1);
        b_gamma_star.push(rep.b_gamma_star);
        b_gamma0.push(rep.b_gamma0);
    }

    std::cout << "(profile averaged over " << grid[0].size()
              << " executed repetitions)\n\n";

    // Shared emission path: the same columns render the text table and the
    // --csv output (bench/rank_profile.hpp).
    std::vector<kdc_bench::rank_row> rows;
    rows.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::string note;
        if (ranks[i] == gamma_star) {
            note = "<- gamma* = 4n/dk";
        } else if (ranks[i] == gamma0) {
            note = "<- gamma0 = n/d";
        } else if (ranks[i] == 1) {
            note = "<- max load B_1";
        }
        rows.push_back({ranks[i], profile[i].mean(), std::move(note)});
    }
    const auto emitter = kdc_bench::make_rank_profile_emitter();
    emitter.write_table(std::cout, rows);

    const double theorem6 = kdc::theory::second_term(k, d);
    const double theorem7 = kdc::theory::first_term(n, k, d);
    std::cout
        << "Lower-bound decomposition (Section 5, Figure 2):\n"
        << "  measured B_{gamma*}       = "
        << kdc::format_fixed(b_gamma_star.mean(), 2)
        << "   (Theorem 6 lower bound ~ (1-o(1)) ln dk / ln ln dk = "
        << kdc::format_fixed(theorem6, 2) << ")\n"
        << "  measured B_1 - B_{gamma0} = "
        << kdc::format_fixed(b1.mean() - b_gamma0.mean(), 2)
        << "   (Theorem 7 lower bound ~ ln ln n / ln(d-k+1) - O(1) = "
        << kdc::format_fixed(theorem7, 2) << " - O(1))\n"
        << "  measured B_1              = " << kdc::format_fixed(b1.mean(), 2)
        << "   (their sum lower-bounds the max load)\n";

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, rows);
    }
    return 0;
}
