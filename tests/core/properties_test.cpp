// Statistical property tests for Section 3 of the paper: the majorization
// chain of (k,d)-choice processes. Majorization at x = 1 means the max load
// of the dominated process is stochastically smaller, so its expectation is
// ordered too; we verify the expectation ordering over independent
// repetitions, with a slack margin for sampling noise.
//
//   (ii)  A(k, d+a)  <=mj A(k, d)      (more probes can only help)
//   (iii) A(k-a, d)  <=mj A(k, d)      (fewer balls per round can only help)
//   (iv)  A(ak, ad)  <=mj A(k, d)      (scaling both preserves or helps)
//   (v)   A(k, d)    <=mj A(k+a, d+a)  (the sandwich used for Theorems 1-2)
#include <gtest/gtest.h>

#include <tuple>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "core/runner.hpp"
#include "stats/hypothesis.hpp"
#include "theory/bounds.hpp"

namespace {

using kdc::core::experiment_config;
using kdc::core::run_kd_experiment;

constexpr std::uint64_t property_n = 4096;
constexpr std::uint32_t property_reps = 25;

double mean_max_load(std::uint64_t k, std::uint64_t d, std::uint64_t seed,
                     std::uint64_t balls = property_n) {
    const auto result = run_kd_experiment(
        property_n, k, d,
        {.balls = balls - (balls % k), .reps = property_reps, .seed = seed});
    return result.max_load_stats.mean();
}

// Mean-ordering assertions allow this much adverse noise (max loads at this
// scale are integers in a 2..7 band with rep-to-rep variance well under 1).
constexpr double slack = 0.25;

struct pair_params {
    std::uint64_t k_better, d_better; // the majorized (better) process
    std::uint64_t k_worse, d_worse;   // the majorizing (worse) process
};

std::ostream& operator<<(std::ostream& os, const pair_params& p) {
    return os << "A(" << p.k_better << "," << p.d_better << ") <=mj A("
              << p.k_worse << "," << p.d_worse << ")";
}

class MajorizationPair : public testing::TestWithParam<pair_params> {};

TEST_P(MajorizationPair, MeanMaxLoadOrdered) {
    const auto p = GetParam();
    const double better = mean_max_load(p.k_better, p.d_better, 11);
    const double worse = mean_max_load(p.k_worse, p.d_worse, 23);
    EXPECT_LE(better, worse + slack) << GetParam();
}

// Property (ii): increase d with k fixed.
INSTANTIATE_TEST_SUITE_P(
    PropertyII_MoreProbesHelp, MajorizationPair,
    testing::Values(pair_params{1, 3, 1, 2}, pair_params{1, 8, 1, 4},
                    pair_params{2, 6, 2, 3}, pair_params{4, 16, 4, 8},
                    pair_params{8, 32, 8, 16}));

// Property (iii): decrease k with d fixed.
INSTANTIATE_TEST_SUITE_P(
    PropertyIII_FewerBallsHelp, MajorizationPair,
    testing::Values(pair_params{1, 4, 2, 4}, pair_params{1, 4, 3, 4},
                    pair_params{2, 8, 4, 8}, pair_params{2, 16, 8, 16},
                    pair_params{4, 32, 16, 32}));

// Property (iv): scale both by alpha.
INSTANTIATE_TEST_SUITE_P(
    PropertyIV_ScalingHelps, MajorizationPair,
    testing::Values(pair_params{2, 4, 1, 2}, pair_params{4, 8, 1, 2},
                    pair_params{4, 6, 2, 3}, pair_params{8, 16, 2, 4},
                    pair_params{16, 32, 4, 8}));

// Property (v): shift both by alpha (the chain A(1,d-k+1) <= A(k,d)).
INSTANTIATE_TEST_SUITE_P(
    PropertyV_ShiftOrdering, MajorizationPair,
    testing::Values(pair_params{1, 2, 2, 3}, pair_params{1, 2, 4, 5},
                    pair_params{2, 3, 3, 4}, pair_params{1, 5, 4, 8},
                    pair_params{2, 5, 8, 11}));

// The Theorem 2 sandwich A(1, d-k+1) <=mj A(k,d) <=mj A(1, floor(d/k)),
// exercised in the heavily loaded regime (m = 8n) where it is proved.
struct sandwich_params {
    std::uint64_t k, d;
};

std::ostream& operator<<(std::ostream& os, const sandwich_params& p) {
    return os << "(k=" << p.k << ",d=" << p.d << ")";
}

class HeavySandwich : public testing::TestWithParam<sandwich_params> {};

TEST_P(HeavySandwich, MaxLoadBetweenTheTwoDChoiceBrackets) {
    const auto [k, d] = GetParam();
    ASSERT_GE(d, 2 * k) << "Theorem 2 requires d >= 2k";
    const std::uint64_t balls = 8 * property_n;
    const double mid = mean_max_load(k, d, 31, balls);
    const double lower_bracket = mean_max_load(1, d - k + 1, 41, balls);
    const double upper_bracket = mean_max_load(1, d / k, 53, balls);
    EXPECT_GE(mid, lower_bracket - slack) << GetParam();
    EXPECT_LE(mid, upper_bracket + slack) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Theorem2, HeavySandwich,
                         testing::Values(sandwich_params{2, 4},
                                         sandwich_params{2, 6},
                                         sandwich_params{4, 8},
                                         sandwich_params{4, 12},
                                         sandwich_params{8, 16}));

// Round-level invariants across a broad (k,d) grid.
struct grid_params {
    std::uint64_t k, d;
};

std::ostream& operator<<(std::ostream& os, const grid_params& p) {
    return os << "(k=" << p.k << ",d=" << p.d << ")";
}

class KdGrid : public testing::TestWithParam<grid_params> {};

TEST_P(KdGrid, AllBallsPlacedAndEnvelopeRespected) {
    const auto [k, d] = GetParam();
    kdc::core::kd_choice_process process(property_n, k, d, 99);
    const std::uint64_t balls = property_n - (property_n % k);
    process.run_balls(balls);

    const auto metrics = kdc::core::compute_load_metrics(process.loads());
    EXPECT_EQ(metrics.total_balls, balls);

    // Generous w.h.p. envelope: the Theorem 1 prediction plus a wide
    // additive constant. This is a smoke bound, not the tight check (the
    // benchmarks do the tight comparison); it catches gross regressions
    // like ignoring the d probes or the multiplicity rule.
    const auto bound = kdc::theory::theorem1_bound(property_n, k, d);
    EXPECT_LE(static_cast<double>(metrics.max_load), bound.total + 6.0)
        << GetParam();
    // And the trivial lower bound: max load >= ceil(balls / n) = 1.
    EXPECT_GE(metrics.max_load, 1u);
}

TEST_P(KdGrid, MessageCostExact) {
    const auto [k, d] = GetParam();
    kdc::core::kd_choice_process process(property_n, k, d, 7);
    const std::uint64_t balls = property_n - (property_n % k);
    process.run_balls(balls);
    EXPECT_EQ(process.messages(), (balls / k) * d);
}

INSTANTIATE_TEST_SUITE_P(
    BroadGrid, KdGrid,
    testing::Values(grid_params{1, 2}, grid_params{1, 3}, grid_params{1, 9},
                    grid_params{2, 3}, grid_params{2, 5}, grid_params{3, 5},
                    grid_params{4, 5}, grid_params{4, 9}, grid_params{8, 9},
                    grid_params{8, 17}, grid_params{16, 17},
                    grid_params{16, 65}, grid_params{64, 65},
                    grid_params{64, 129}, grid_params{128, 193},
                    grid_params{512, 1024}, grid_params{1024, 2048},
                    grid_params{2048, 4096}));

// The headline special cases the paper calls out in Section 1.1.
TEST(SpecialCases, KdChoiceWithKOneMatchesDChoiceLaw) {
    // (1,d) = classic d-choice: ln ln n / ln d + O(1).
    const double measured = mean_max_load(1, 4, 61);
    const double law = kdc::theory::d_choice_max_load(property_n, 4);
    EXPECT_NEAR(measured, law, 2.5);
}

TEST(SpecialCases, NearDiagonalApproachesSingleChoice) {
    // k = d-1, d large: performance degrades toward single choice, but
    // (64,65)-choice still noticeably beats single choice (the paper's
    // Section 1.2 remark).
    const double near_diag = mean_max_load(64, 65, 71);
    const auto single = kdc::core::run_single_choice_experiment(
        property_n, {.balls = property_n, .reps = property_reps, .seed = 81});
    EXPECT_LT(near_diag, single.max_load_stats.mean() - slack);
}

TEST(SpecialCases, ConstantLoadRegimeAtDTwiceK) {
    // k = polylog n, d = 2k: Theorem 1(i) promises O(1) max load with 2n
    // messages. At n = 4096, ln^2 n ~ 69; use k = 64, d = 128.
    const auto result = run_kd_experiment(
        property_n, 64, 128,
        {.balls = property_n, .reps = property_reps, .seed = 91});
    EXPECT_LE(result.max_load_values.max_value(), 3u);
    for (const auto& rep : result.reps) {
        EXPECT_EQ(rep.messages, 2u * property_n);
    }
}

} // namespace
