// Theorem 1 reproduction: measured maximum load of (k,d)-choice against the
// two-regime bound
//   M(k,d,n) = ln ln n / ln(d-k+1)                      + Theta(1)   (dk = O(1))
//   M(k,d,n) = ln ln n / ln(d-k+1) + ln dk / ln ln dk   * (1 +- o(1)) (dk -> inf)
// swept over n, for representative configurations in both regimes.
//
// The shape to verify: measured max load tracks the bound total within a
// small additive constant, and the *growth* in n follows the first term
// (dk fixed) — i.e. the measured-minus-bound residual stays flat as n grows.
//
//   ./theorem1_bounds [--reps=5] [--seed=3] [--scenario "kd:kernel=level"]
//
// Each (k,d,n) point runs as a declarative scenario
// (core/scenario.hpp); --scenario sets the shared knobs (e.g. the
// simulation kernel) while the sweep stamps k, d and n per point.
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("reps", "5", "repetitions per point");
    args.add_option("seed", "3", "master seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);

    struct config {
        std::uint64_t k, d;
        const char* regime;
    };
    const std::vector<config> configs{
        {1, 2, "dk=O(1)"},    {2, 4, "dk=O(1)"},   {8, 16, "dk=O(1)"},
        {1, 9, "dk=O(1)"},    {15, 16, "dk->inf"}, {63, 64, "dk->inf"},
        {255, 256, "dk->inf"}};
    const std::vector<std::uint64_t> sizes{1u << 12, 1u << 14, 1u << 16,
                                           1u << 18, 1u << 20};

    std::cout << "Theorem 1: measured max load vs the two-regime bound\n\n";
    kdc::text_table table;
    table.set_header({"(k,d)", "regime", "n", "measured", "1st term",
                      "2nd term", "bound", "residual"});

    std::uint64_t point_seed = seed;
    for (const auto& cfg : configs) {
        for (const auto n : sizes) {
            ++point_seed;
            const auto balls = n - (n % cfg.k);
            auto sc = merged;
            sc.n = n;
            sc.k = cfg.k;
            sc.d = cfg.d;
            const auto result = kdc::core::run_scenario_experiment(
                sc, {.balls = balls, .reps = reps, .seed = point_seed});
            const auto bound =
                kdc::theory::theorem1_bound(n, cfg.k, cfg.d);
            const double measured = result.max_load_stats.mean();
            table.add_row({"(" + std::to_string(cfg.k) + "," +
                               std::to_string(cfg.d) + ")",
                           cfg.regime, std::to_string(n),
                           kdc::format_fixed(measured, 2),
                           kdc::format_fixed(bound.first, 2),
                           kdc::format_fixed(bound.second, 2),
                           kdc::format_fixed(bound.total, 2),
                           kdc::format_fixed(measured - bound.total, 2)});
        }
    }
    std::cout << table << '\n'
              << "Expected shape: residual roughly constant in n for each "
                 "(k,d) — the additive O(1)\n"
                 "of Theorem 1(i) and the (1+-o(1)) factor of Theorem 1(ii).\n";
    return 0;
}
