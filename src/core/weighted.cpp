#include "core/weighted.hpp"

#include <algorithm>
#include <cmath>

#include "rng/sampling.hpp"
#include "rng/uniform.hpp"

namespace kdc::core {

weight_distribution unit_weights() {
    return [](rng::xoshiro256ss&) { return 1.0; };
}

weight_distribution uniform_weights(double lo, double hi) {
    KD_EXPECTS(lo > 0.0 && lo <= hi);
    return [lo, hi](rng::xoshiro256ss& gen) {
        return lo + (hi - lo) * rng::uniform_double(gen);
    };
}

weight_distribution exponential_weights(double mean) {
    KD_EXPECTS(mean > 0.0);
    return [mean](rng::xoshiro256ss& gen) {
        return rng::exponential(gen, mean);
    };
}

weight_distribution pareto_weights(double shape, double x_min) {
    KD_EXPECTS(shape > 0.0);
    KD_EXPECTS(x_min > 0.0);
    return [shape, x_min](rng::xoshiro256ss& gen) {
        // Inverse CDF: x_min * (1 - U)^(-1/shape); 1 - U in (0, 1].
        return x_min *
               std::pow(1.0 - rng::uniform_double(gen), -1.0 / shape);
    };
}

weighted_kd_process::weighted_kd_process(std::uint64_t n, std::uint64_t k,
                                         std::uint64_t d, std::uint64_t seed,
                                         weight_distribution weights)
    : loads_(n, 0.0), k_(k), d_(d), weights_(std::move(weights)), gen_(seed) {
    KD_EXPECTS_MSG(k >= 1 && k < d && d <= n, "requires 1 <= k < d <= n");
    KD_EXPECTS_MSG(static_cast<bool>(weights_),
                   "weight distribution must be callable");
    sample_buffer_.resize(d);
    weight_buffer_.resize(k);
}

void weighted_kd_process::run_round() {
    rng::sample_with_replacement(gen_, loads_.size(),
                                 std::span<std::uint32_t>(sample_buffer_));
    for (auto& w : weight_buffer_) {
        w = weights_(gen_);
        KD_ENSURES_MSG(w > 0.0 && std::isfinite(w),
                       "ball weights must be positive and finite");
    }
    run_round_with(sample_buffer_, weight_buffer_);
}

void weighted_kd_process::run_round_with(
    std::span<const std::uint32_t> samples,
    std::span<const double> ball_weights) {
    KD_EXPECTS_MSG(samples.size() == d_, "a round probes exactly d bins");
    KD_EXPECTS_MSG(ball_weights.size() == k_, "a round places exactly k balls");

    // Build one slot per sample occurrence (multiplicity rule).
    slots_.clear();
    slots_.reserve(samples.size());
    // Count occurrences: sort a copy of the samples so occurrence indices
    // are well defined (duplicates are adjacent after sorting).
    std::vector<std::uint32_t> sorted(samples.begin(), samples.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size();) {
        const std::uint32_t bin = sorted[i];
        KD_EXPECTS(bin < loads_.size());
        std::uint32_t occurrence = 0;
        for (; i < sorted.size() && sorted[i] == bin; ++i) {
            slots_.push_back(slot{loads_[bin],
                                  static_cast<std::uint64_t>(gen_()), bin,
                                  occurrence++});
        }
    }

    // Order slots by current load (ties random); order the round's balls by
    // descending weight; match heaviest ball to lightest slot. A slot's
    // effective load for the s-th extra ball in the same bin includes the
    // balls already matched to lower occurrences, which the greedy matching
    // below accounts for by updating loads as it assigns.
    std::sort(slots_.begin(), slots_.end(), [](const slot& a, const slot& b) {
        if (a.load != b.load) {
            return a.load < b.load;
        }
        if (a.bin != b.bin) {
            return a.key < b.key;
        }
        return a.occurrence < b.occurrence;
    });

    std::vector<double> weights_desc(ball_weights.begin(), ball_weights.end());
    std::sort(weights_desc.begin(), weights_desc.end(), std::greater<>{});

    // Greedy: for each ball (heaviest first) pick the currently lightest
    // remaining slot. Slots of the same bin become heavier as earlier balls
    // land, so re-scan; k and d are small (k < d <= a few hundred in all
    // experiments), so the quadratic scan is cheap and allocation-free.
    std::vector<bool> used(slots_.size(), false);
    for (const double w : weights_desc) {
        std::size_t best = slots_.size();
        double best_load = 0.0;
        for (std::size_t s = 0; s < slots_.size(); ++s) {
            if (used[s]) {
                continue;
            }
            const double current = loads_[slots_[s].bin];
            if (best == slots_.size() || current < best_load ||
                (current == best_load &&
                 slots_[s].key < slots_[best].key)) {
                best = s;
                best_load = current;
            }
        }
        KD_ASSERT(best < slots_.size());
        used[best] = true;
        loads_[slots_[best].bin] += w;
        total_weight_ += w;
    }

    balls_placed_ += k_;
    messages_ += d_;
}

void weighted_kd_process::run_rounds(std::uint64_t rounds) {
    for (std::uint64_t r = 0; r < rounds; ++r) {
        run_round();
    }
}

double weighted_kd_process::max_load() const {
    KD_EXPECTS(!loads_.empty());
    return *std::max_element(loads_.begin(), loads_.end());
}

double weighted_kd_process::gap() const {
    return max_load() - total_weight_ / static_cast<double>(loads_.size());
}

} // namespace kdc::core
