#include "core/exact.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "support/contracts.hpp"

namespace kdc::core {

namespace {

/// Enumerates all size-r subsets of {0,...,t-1}, invoking `visit` on each.
void for_each_combination(std::uint64_t t, std::uint64_t r,
                          const std::function<void(
                              const std::vector<std::uint64_t>&)>& visit) {
    std::vector<std::uint64_t> chosen(r);
    std::function<void(std::uint64_t, std::uint64_t)> recurse =
        [&](std::uint64_t start, std::uint64_t depth) {
            if (depth == r) {
                visit(chosen);
                return;
            }
            for (std::uint64_t i = start; i + (r - depth) <= t; ++i) {
                chosen[depth] = i;
                recurse(i + 1, depth + 1);
            }
        };
    recurse(0, 0);
}

/// Applies one probe tuple to a state: returns the distribution over
/// resulting sorted load vectors (several outcomes when boundary ties must
/// be broken randomly).
void apply_tuple(const std::vector<bin_load>& loads,
                 const std::vector<std::uint32_t>& tuple, std::uint64_t k,
                 double tuple_prob, state_distribution& out) {
    // Build slots: occurrence index per duplicate sample.
    struct slot {
        bin_load height;
        std::uint32_t bin;
    };
    std::vector<slot> slots;
    slots.reserve(tuple.size());
    std::vector<std::uint32_t> sorted_tuple(tuple);
    std::sort(sorted_tuple.begin(), sorted_tuple.end());
    for (std::size_t i = 0; i < sorted_tuple.size();) {
        const std::uint32_t bin = sorted_tuple[i];
        bin_load occ = 0;
        for (; i < sorted_tuple.size() && sorted_tuple[i] == bin; ++i) {
            slots.push_back(slot{loads[bin] + (++occ), bin});
        }
    }
    std::sort(slots.begin(), slots.end(),
              [](const slot& a, const slot& b) { return a.height < b.height; });

    // Cut-off height: the k-th smallest slot height. Slots strictly below
    // the cut are always kept; among slots at the cut (distinct bins), a
    // uniform subset fills the remainder.
    const bin_load cut = slots[k - 1].height;
    std::vector<std::uint32_t> below_bins;
    std::vector<std::uint32_t> at_bins;
    for (const auto& s : slots) {
        if (s.height < cut) {
            below_bins.push_back(s.bin);
        } else if (s.height == cut) {
            at_bins.push_back(s.bin);
        }
    }
    const std::uint64_t need = k - below_bins.size();
    KD_ASSERT(need >= 1 && need <= at_bins.size());

    double n_choices = 1.0;
    // C(t, r) in doubles (t <= d <= ~6 here).
    for (std::uint64_t i = 0; i < need; ++i) {
        n_choices *= static_cast<double>(at_bins.size() - i) /
                     static_cast<double>(i + 1);
    }
    const double choice_prob = tuple_prob / n_choices;

    for_each_combination(
        at_bins.size(), need,
        [&](const std::vector<std::uint64_t>& chosen) {
            std::vector<bin_load> next(loads);
            for (const auto bin : below_bins) {
                next[bin] += 1;
            }
            for (const auto idx : chosen) {
                next[at_bins[idx]] += 1;
            }
            std::sort(next.begin(), next.end(), std::greater<>{});
            out[next] += choice_prob;
        });
}

} // namespace

state_distribution exact_round(const std::vector<bin_load>& sorted_loads,
                               std::uint64_t k, std::uint64_t d) {
    KD_EXPECTS(!sorted_loads.empty());
    KD_EXPECTS(k >= 1 && k <= d);
    KD_EXPECTS(std::is_sorted(sorted_loads.begin(), sorted_loads.end(),
                              std::greater<>{}));
    const auto n = sorted_loads.size();
    const double tuples = std::pow(static_cast<double>(n),
                                   static_cast<double>(d));
    KD_EXPECTS_MSG(tuples <= 1e8, "state space too large for enumeration");

    state_distribution out;
    const double tuple_prob = 1.0 / tuples;
    std::vector<std::uint32_t> tuple(d, 0);
    // Odometer enumeration of all n^d ordered tuples.
    while (true) {
        apply_tuple(sorted_loads, tuple, k, tuple_prob, out);
        std::size_t pos = 0;
        while (pos < tuple.size()) {
            if (++tuple[pos] < n) {
                break;
            }
            tuple[pos] = 0;
            ++pos;
        }
        if (pos == tuple.size()) {
            break;
        }
    }
    return out;
}

state_distribution exact_process(std::uint64_t n, std::uint64_t k,
                                 std::uint64_t d, std::uint64_t rounds) {
    KD_EXPECTS(n >= 1 && k >= 1 && k <= d && d <= n);
    state_distribution current;
    current[std::vector<bin_load>(n, 0)] = 1.0;
    for (std::uint64_t r = 0; r < rounds; ++r) {
        state_distribution next;
        for (const auto& [state, prob] : current) {
            for (const auto& [next_state, step_prob] :
                 exact_round(state, k, d)) {
                next[next_state] += prob * step_prob;
            }
        }
        current = std::move(next);
    }
    return current;
}

std::map<bin_load, double> exact_max_load(std::uint64_t n, std::uint64_t k,
                                          std::uint64_t d) {
    KD_EXPECTS_MSG(n % k == 0, "requires whole rounds (k | n)");
    const auto final_states = exact_process(n, k, d, n / k);
    std::map<bin_load, double> out;
    for (const auto& [state, prob] : final_states) {
        out[state.front()] += prob; // sorted descending: front is the max
    }
    return out;
}

} // namespace kdc::core
