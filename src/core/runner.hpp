// Generic multi-repetition experiment runner. The paper's Table 1 reports,
// per (k,d) cell, the set of maximum loads observed over ten simulation runs;
// this runner generalizes that: it runs `reps` independent repetitions of any
// allocation process (independent seeds derived from one master seed via
// SplitMix64), collects per-repetition metrics, and aggregates them.
//
// This serial runner is the semantic reference for the whole execution
// stack: core/engine.hpp (chunked scheduling + stopping rules on the
// persistent pool of core/thread_pool.hpp), core/parallel_runner.hpp (the
// one-cell parallel entry points) and core/sweep.hpp (named multi-cell
// sweeps) all promise results bit-identical to folding run_one_repetition
// outputs in repetition order exactly as run_experiment below does.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "rng/splitmix64.hpp"
#include "stats/histogram.hpp"
#include "stats/running_stats.hpp"
#include "support/contracts.hpp"

namespace kdc {
class arg_parser;
} // namespace kdc

namespace kdc::core {

/// Which simulation kernel backs an experiment's processes:
///   * per_bin — one load entry per bin (core/process.hpp). O(n) state;
///     supports per-bin observables (height logs, explicit probe multisets).
///   * level — counts of bins per load level (core/level_process.hpp).
///     O(max-load) state; distributionally identical, not bit-identical —
///     billion-bin and heavily loaded runs belong here.
enum class kernel_kind { per_bin, level };

/// Parses the standard `--kernel={perbin,level}` option declared by
/// arg_parser::add_kernel_option(). Throws cli_error on any other value.
[[nodiscard]] kernel_kind kernel_from_cli(const arg_parser& args);

/// Short name for labels and CSV cells: "perbin" or "level".
[[nodiscard]] const char* kernel_name(kernel_kind kernel) noexcept;

/// How an experiment exploits worker threads:
///   * rep — repetition-level parallelism (the default, and the only mode
///     before the sharded kernel existed): every repetition is a serial
///     process; different repetitions run on different workers.
///   * round — intra-repetition round parallelism: each repetition runs on
///     the sharded round-parallel kernel (core/sharded_kernel.hpp), whose
///     phases execute across the pool. Output is byte-identical to the
///     serial kernel — and therefore to par=rep — at every thread count
///     and shard count.
enum class par_mode { rep, round };

/// Short name for labels and scenario strings: "rep" or "round".
[[nodiscard]] const char* par_mode_name(par_mode mode) noexcept;

/// Inverse of par_mode_name. Throws cli_error naming the valid set on any
/// other spelling.
[[nodiscard]] par_mode par_mode_from_name(const std::string& name);

/// Configuration for a repetition sweep.
struct experiment_config {
    std::uint64_t balls = 0;  ///< balls to place per repetition
    std::uint32_t reps = 10;  ///< Table 1 uses ten runs per cell
    std::uint64_t seed = 1;   ///< master seed; rep r uses derive_seed(seed, r)
};

/// Per-repetition observations.
struct repetition_result {
    std::uint64_t max_load = 0;
    double gap = 0.0;
    std::uint64_t messages = 0;
    std::uint64_t empty_bins = 0;
};

/// Which per-repetition statistic a cell reports as its headline number and
/// the adaptive stopping rule monitors (core/engine.hpp). Max load is the
/// paper's Table-1 quantity; gap (max - mean) suits the heavily loaded and
/// weighted regimes; messages suits the adaptive-probing baselines whose
/// message cost is itself random.
enum class metric_kind { max_load, gap, messages };

/// Short name for labels, CSV cells and scenario strings: "max_load",
/// "gap" or "messages".
[[nodiscard]] const char* metric_name(metric_kind metric) noexcept;

/// Inverse of metric_name. Throws cli_error naming the valid set on any
/// other spelling.
[[nodiscard]] metric_kind metric_from_name(const std::string& name);

/// The monitored statistic of one repetition under a metric choice.
[[nodiscard]] inline double monitored_value(metric_kind metric,
                                            const repetition_result& rep) {
    switch (metric) {
    case metric_kind::gap:
        return rep.gap;
    case metric_kind::messages:
        return static_cast<double>(rep.messages);
    case metric_kind::max_load:
        break;
    }
    return static_cast<double>(rep.max_load);
}

/// Aggregate over all repetitions.
struct experiment_result {
    std::vector<repetition_result> reps;
    stats::integer_histogram max_load_values;
    stats::running_stats max_load_stats;
    stats::running_stats gap_stats;
    stats::running_stats message_stats;

    /// The paper's Table-1 cell format: distinct max loads, e.g. "7, 8, 9".
    [[nodiscard]] std::string max_load_set() const {
        return max_load_values.support_string();
    }
};

/// Final-state load metrics of a process under either state representation:
/// an O(L) read of the level profile when the process exposes one, else the
/// O(n) pass over per-bin loads.
template <typename P>
    requires per_bin_observable<P> || level_observable<P>
[[nodiscard]] load_metrics observed_load_metrics(const P& process) {
    if constexpr (level_observable<P>) {
        return process.profile().metrics();
    } else {
        return compute_load_metrics(process.loads());
    }
}

/// Runs one repetition with the given (already derived) seed and returns its
/// observations. Shared by the serial and parallel runners so both measure
/// exactly the same thing.
template <typename Factory>
[[nodiscard]] repetition_result
run_one_repetition(std::uint64_t derived_seed, std::uint64_t balls,
                   Factory& factory) {
    auto process = factory(derived_seed);
    static_assert(allocation_process<decltype(process)>);
    process.run_balls(balls);

    const auto metrics = observed_load_metrics(process);
    repetition_result r;
    r.max_load = metrics.max_load;
    r.gap = metrics.gap;
    r.messages = process.messages();
    r.empty_bins = metrics.empty_bins;
    return r;
}

/// Folds one repetition into the aggregate statistics (the rep must already
/// be appended to / owned by out.reps by the caller). Fold order is part of
/// the determinism contract: both runners fold in repetition order.
inline void accumulate_repetition(experiment_result& out,
                                  const repetition_result& r) {
    out.max_load_values.add(r.max_load);
    out.max_load_stats.push(static_cast<double>(r.max_load));
    out.gap_stats.push(r.gap);
    out.message_stats.push(static_cast<double>(r.messages));
}

/// Runs `config.reps` repetitions. `factory(seed)` must return a fresh
/// process satisfying the allocation_process concept.
template <typename Factory>
[[nodiscard]] experiment_result run_experiment(const experiment_config& config,
                                               Factory&& factory) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);

    experiment_result out;
    out.reps.reserve(config.reps);
    for (std::uint32_t rep = 0; rep < config.reps; ++rep) {
        out.reps.push_back(run_one_repetition(rng::derive_seed(config.seed, rep),
                                              config.balls, factory));
        accumulate_repetition(out, out.reps.back());
    }
    return out;
}

/// The default ball count for a convenience runner: as many balls as bins,
/// rounded *down* to whole rounds of k (the process only places whole
/// rounds). Rejects n < k, where not even one round fits.
[[nodiscard]] std::uint64_t whole_rounds_balls(std::uint64_t n,
                                               std::uint64_t k);

/// Convenience: the (k,d)-choice experiment with n bins and `balls` balls
/// (balls defaults to whole_rounds_balls(n, k) when 0 is passed). The
/// kernel overloads run the same experiment on the chosen state
/// representation; per_bin reproduces the two-argument overload exactly.
[[nodiscard]] experiment_result
run_kd_experiment(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                  const experiment_config& config);
[[nodiscard]] experiment_result
run_kd_experiment(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                  const experiment_config& config, kernel_kind kernel);

/// Convenience: single-choice with the same aggregation (Table 1's d = 1
/// column).
[[nodiscard]] experiment_result
run_single_choice_experiment(std::uint64_t n, const experiment_config& config);
[[nodiscard]] experiment_result
run_single_choice_experiment(std::uint64_t n, const experiment_config& config,
                             kernel_kind kernel);

/// Convenience: classic d-choice (Table 1's k = 1 row).
[[nodiscard]] experiment_result
run_d_choice_experiment(std::uint64_t n, std::uint64_t d,
                        const experiment_config& config);
[[nodiscard]] experiment_result
run_d_choice_experiment(std::uint64_t n, std::uint64_t d,
                        const experiment_config& config, kernel_kind kernel);

} // namespace kdc::core
