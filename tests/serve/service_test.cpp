// The service determinism contract, held end to end: the served allocation
// log is byte-identical to the serial oracle's at every thread count and
// shard count, with and without churn, in both probing modes — and the
// measured message cost lands exactly on the closed form the scheduler
// model predicts (d per request batched, k*d per-task).
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace kdc::serve {
namespace {

service_config base_config() {
    service_config config;
    config.bins = 128;
    config.k = 2;
    config.d = 4;
    config.seed = 42;
    config.clients = 4;
    config.requests = 96;
    config.arrival_rate = 6.0;
    config.churn = 0.0;
    config.channel_delay = 0.5;
    config.batch_window = 1.0;
    config.service_time = 0.05;
    config.max_batch = 16;
    config.shards = 4;
    config.threads = 1;
    return config;
}

void expect_matches_oracle(const service_config& config) {
    const service_result oracle = run_serial_oracle(config);
    const service_result served = run_service(config);
    ASSERT_FALSE(oracle.allocation_log.empty());
    EXPECT_EQ(served.allocation_log, oracle.allocation_log)
        << "served sequence diverged from the serial oracle";
    EXPECT_EQ(served.final_loads, oracle.final_loads);
    EXPECT_EQ(served.balls_held, oracle.balls_held);
    EXPECT_EQ(served.max_load, oracle.max_load);
    EXPECT_EQ(served.probe_messages, oracle.probe_messages);
    EXPECT_EQ(served.allocations, oracle.allocations);
    EXPECT_EQ(served.releases, oracle.releases);
}

TEST(Service, MatchesOracleAtEveryThreadCount) {
    // The acceptance matrix: two (k,d) configs, threads in {1, 2, 8}.
    for (const unsigned threads : {1u, 2u, 8u}) {
        service_config kd24 = base_config();
        kd24.threads = threads;
        expect_matches_oracle(kd24);

        service_config kd410 = base_config();
        kd410.k = 4;
        kd410.d = 10;
        kd410.seed = 7;
        kd410.threads = threads;
        expect_matches_oracle(kd410);
    }
}

TEST(Service, MatchesOracleUnderChurn) {
    for (const unsigned threads : {1u, 8u}) {
        service_config config = base_config();
        config.churn = 0.35;
        config.requests = 120;
        config.threads = threads;
        const service_result oracle = run_serial_oracle(config);
        ASSERT_GT(oracle.releases, 0u) << "churn config produced no releases";
        expect_matches_oracle(config);
    }
}

TEST(Service, MatchesOracleInPerTaskMode) {
    service_config config = base_config();
    config.mode = probing::per_task;
    config.threads = 2;
    expect_matches_oracle(config);
}

TEST(Service, MatchesOracleAcrossShardCounts) {
    const service_result one = run_service(base_config());
    for (const std::uint64_t shards : {2u, 16u}) {
        service_config config = base_config();
        config.shards = shards;
        const service_result result = run_service(config);
        EXPECT_EQ(result.allocation_log, one.allocation_log);
        EXPECT_EQ(result.final_loads, one.final_loads);
    }
}

TEST(Service, BatchModeSpendsExactlyDMessagesPerRequest) {
    const service_result result = run_service(base_config());
    ASSERT_GT(result.allocations, 0u);
    EXPECT_EQ(result.probe_messages, result.allocations * 4);
    EXPECT_DOUBLE_EQ(result.messages_per_request, 4.0);
    EXPECT_DOUBLE_EQ(result.messages_per_ball, 2.0); // d / k
}

TEST(Service, PerTaskModeSpendsKTimesDMessagesPerRequest) {
    service_config config = base_config();
    config.mode = probing::per_task;
    const service_result result = run_service(config);
    EXPECT_EQ(result.probe_messages, result.allocations * 2 * 4);
    EXPECT_DOUBLE_EQ(result.messages_per_request, 8.0);
    EXPECT_DOUBLE_EQ(result.messages_per_ball, 4.0); // d
}

TEST(Service, LatencyQuantilesAreOrderedAndPhysical) {
    const service_config config = base_config();
    const service_result result = run_service(config);
    // Floor: two channel hops plus one request's service time.
    const double floor =
        2 * config.channel_delay + config.service_time;
    EXPECT_GE(result.latency_p50, floor);
    EXPECT_LE(result.latency_p50, result.latency_p99);
    EXPECT_LE(result.latency_p99, result.latency_p999);
    EXPECT_LE(result.latency_p999, result.latency_max);
    EXPECT_GT(result.latency_mean, 0.0);
    EXPECT_GT(result.completed_at, 0.0);
}

TEST(Service, ServesEveryRequestInBatches) {
    const service_result result = run_service(base_config());
    EXPECT_EQ(result.allocations + result.releases, 96u);
    EXPECT_GE(result.batches, 1u);
    EXPECT_LT(result.batches, 96u) // the window actually coalesces
        << "batching window formed no multi-request batch";
}

TEST(Service, RepeatedRunsAreByteIdentical) {
    const service_result a = run_service(base_config());
    const service_result b = run_service(base_config());
    EXPECT_EQ(a.allocation_log, b.allocation_log);
    EXPECT_EQ(a.final_loads, b.final_loads);
    EXPECT_DOUBLE_EQ(a.latency_p99, b.latency_p99);
}

TEST(Service, DifferentSeedsServeDifferentSequences) {
    service_config other = base_config();
    other.seed = 43;
    EXPECT_NE(run_service(base_config()).allocation_log,
              run_service(other).allocation_log);
}

TEST(Service, LogHasOneLinePerRequestInIdOrder) {
    const service_result result = run_service(base_config());
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < result.allocation_log.size()) {
        const std::size_t end = result.allocation_log.find('\n', start);
        lines.push_back(result.allocation_log.substr(start, end - start));
        start = end + 1;
    }
    ASSERT_EQ(lines.size(), 96u);
    for (std::size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].substr(0, lines[i].find(' ')),
                  std::to_string(i));
    }
}

} // namespace
} // namespace kdc::serve
