#include "stats/running_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/contracts.hpp"

namespace {

using kdc::stats::running_stats;

TEST(RunningStats, MeanOfKnownSample) {
    running_stats s;
    for (const double x : {1.0, 2.0, 3.0, 4.0}) {
        s.push(x);
    }
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
}

TEST(RunningStats, VarianceMatchesTwoPassFormula) {
    const std::vector<double> sample{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    running_stats s;
    double mean = 0.0;
    for (const double x : sample) {
        s.push(x);
        mean += x;
    }
    mean /= static_cast<double>(sample.size());
    double ss = 0.0;
    for (const double x : sample) {
        ss += (x - mean) * (x - mean);
    }
    EXPECT_NEAR(s.variance(), ss / (sample.size() - 1), 1e-12);
    EXPECT_NEAR(s.population_variance(), ss / sample.size(), 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(ss / (sample.size() - 1)), 1e-12);
}

TEST(RunningStats, MinMaxTracked) {
    running_stats s;
    for (const double x : {3.0, -1.0, 7.0, 2.0}) {
        s.push(x);
    }
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, EmptyAccessorsViolateContract) {
    const running_stats s;
    EXPECT_THROW((void)s.mean(), kdc::contract_violation);
    EXPECT_THROW((void)s.min(), kdc::contract_violation);
    EXPECT_THROW((void)s.max(), kdc::contract_violation);
}

TEST(RunningStats, VarianceNeedsTwoSamples) {
    running_stats s;
    s.push(1.0);
    EXPECT_THROW((void)s.variance(), kdc::contract_violation);
    EXPECT_NO_THROW((void)s.population_variance());
}

TEST(RunningStats, NumericallyStableForLargeOffset) {
    // Naive sum-of-squares catastrophically cancels here; Welford must not.
    running_stats s;
    const double offset = 1e9;
    for (const double x : {offset + 4.0, offset + 7.0, offset + 13.0,
                           offset + 16.0}) {
        s.push(x);
    }
    EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(RunningStats, MergeEqualsSequentialPush) {
    running_stats all;
    running_stats left;
    running_stats right;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.push(x);
        (i < 37 ? left : right).push(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
    running_stats s;
    s.push(5.0);
    s.push(6.0);
    running_stats empty;
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    empty.merge(s);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 5.5);
}

TEST(RunningStats, CiHalfwidthShrinksWithSamples) {
    running_stats small;
    running_stats large;
    for (int i = 0; i < 10; ++i) {
        small.push(i % 2 == 0 ? 1.0 : 2.0);
    }
    for (int i = 0; i < 1000; ++i) {
        large.push(i % 2 == 0 ? 1.0 : 2.0);
    }
    EXPECT_GT(small.mean_ci_halfwidth(), large.mean_ci_halfwidth());
}

} // namespace
