// The distributed storage application (Section 1.3): replica/chunk placement
// with (k, k+1)-choice vs per-replica two-choice vs random.
//
// Paper claims reproduced:
//   * with d = k+1, (k,d)-choice gives (asymptotically) the same max server
//     load as two-choice at about HALF the placement message cost;
//   * retrieving all k chunks costs k+1 probes vs 2k for two-choice;
//   * availability: replication vs chunking under server failures.
//
//   ./storage_balance [--servers=4096] [--files=100000] [--k=3] [--seed=10]
//                     [--scenario "kd:n=4096,k=3"]
//
// --scenario (core/scenario.hpp) maps onto the cluster: n = servers,
// k = replicas per file — equivalent settings print byte-identical output
// to the legacy flags.
#include <iostream>
#include <vector>

#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "storage/cluster.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("servers", "4096", "number of storage servers");
    args.add_option("files", "100000", "files to place");
    args.add_option("k", "3", "replicas (or chunks) per file");
    args.add_option("fail", "0.05", "per-server failure probability");
    args.add_option("seed", "10", "master seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto files = static_cast<std::uint64_t>(args.get_int("files"));
    const double fail = args.get_double("fail");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    // Scenario mapping: n = servers, k = replicas per file.
    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("servers"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = base.k + 1;
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto servers = merged.n;
    const auto k = merged.k;

    using kdc::storage::placement_policy;

    struct scheme {
        const char* name;
        placement_policy policy;
        std::uint64_t probes;
    };
    const std::vector<scheme> schemes{
        {"(k,k+1)-choice", placement_policy::kd_choice, k + 1},
        {"(k,2k)-choice", placement_policy::kd_choice, 2 * k},
        {"per-replica 2-choice", placement_policy::per_replica_d_choice, 2},
        {"random", placement_policy::random, 1},
        {"batch greedy d=k+1", placement_policy::batch_greedy, k + 1},
    };

    std::cout << "Distributed storage placement: " << files << " files x "
              << k << " replicas onto " << servers << " servers\n\n";

    kdc::text_table table;
    table.set_header({"scheme", "max srv load", "mean load", "msgs/file",
                      "search msgs", "avail repl", "avail chunk"});
    table.set_align(0, kdc::table_align::left);

    std::uint64_t scheme_seed = seed;
    for (const auto& s : schemes) {
        kdc::storage::storage_config config;
        config.servers = servers;
        config.replicas_per_file = k;
        config.probes = s.probes;
        config.policy = s.policy;
        config.seed = ++scheme_seed;
        kdc::storage::storage_cluster cluster(config);
        cluster.place_files(files);

        const auto metrics =
            kdc::core::compute_load_metrics(cluster.server_loads());
        const double msgs_per_file =
            static_cast<double>(cluster.placement_messages()) /
            static_cast<double>(files);
        const double avail_repl =
            cluster.estimate_availability(fail, /*need_all=*/false, 20,
                                          seed + 100);
        const double avail_chunk =
            cluster.estimate_availability(fail, /*need_all=*/true, 20,
                                          seed + 100);
        table.add_row({s.name, std::to_string(metrics.max_load),
                       kdc::format_fixed(metrics.mean_load, 2),
                       kdc::format_fixed(msgs_per_file, 1),
                       std::to_string(cluster.search_cost(0)),
                       kdc::format_fixed(avail_repl, 4),
                       kdc::format_fixed(avail_chunk, 4)});
    }
    std::cout << table << '\n'
              << "Claims to verify (Section 1.3):\n"
                 "  * (k,k+1) max load ~ per-replica 2-choice max load, at "
                 "(k+1)/(2k) ~ half the msgs/file;\n"
                 "  * search cost k+1 = "
              << k + 1 << " vs 2k = " << 2 * k
              << " for per-replica 2-choice;\n"
                 "  * availability: replication >> chunking at the same "
                 "failure rate.\n";
    return 0;
}
