// Shared emission of a sorted-load rank profile: fig1_sorted_load and
// fig2_lowerbound_landmarks both print "rank x | B_x (mean) | note" rows
// (and the same rows as --csv); declaring the columns once here keeps the
// two figures' output formats from diverging.
#pragma once

#include <cstdint>
#include <string>

#include "support/row_emitter.hpp"

namespace kdc_bench {

/// One rank of the measured profile: B_rank averaged over repetitions,
/// plus an optional landmark annotation ("<- beta0 = n/(6 dk)", ...).
struct rank_row {
    std::uint64_t rank = 0;
    double mean = 0.0;
    std::string note;
};

/// The canonical three-column rank-profile emitter.
[[nodiscard]] inline kdc::row_emitter<rank_row> make_rank_profile_emitter() {
    kdc::row_emitter<rank_row> emitter;
    emitter
        .add_column("rank x",
                    [](const rank_row& row, std::size_t) {
                        return std::to_string(row.rank);
                    })
        .add_stat_column("B_x (mean)",
                         [](const rank_row& row) { return row.mean; })
        .add_column("note",
                    [](const rank_row& row, std::size_t) { return row.note; },
                    kdc::table_align::left);
    return emitter;
}

} // namespace kdc_bench
