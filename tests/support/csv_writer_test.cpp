#include "support/csv_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace {

using kdc::csv_escape;
using kdc::csv_writer;

TEST(CsvEscape, PlainFieldUnchanged) {
    EXPECT_EQ(csv_escape("hello"), "hello");
    EXPECT_EQ(csv_escape("123.45"), "123.45");
    EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaTriggersQuoting) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, EmbeddedQuotesAreDoubled) {
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
    EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(CsvWriter, WritesCommaSeparatedRows) {
    std::ostringstream out;
    csv_writer writer(out);
    writer.write_row({"k", "d", "max_load"});
    writer.write_row({"2", "3", "4"});
    EXPECT_EQ(out.str(), "k,d,max_load\n2,3,4\n");
    EXPECT_EQ(writer.rows_written(), 2u);
}

TEST(CsvWriter, EscapesFieldsInRows) {
    std::ostringstream out;
    csv_writer writer(out);
    writer.write_row({"set", "7, 8, 9"});
    EXPECT_EQ(out.str(), "set,\"7, 8, 9\"\n");
}

TEST(CsvWriter, VectorOverload) {
    std::ostringstream out;
    csv_writer writer(out);
    writer.write_row(std::vector<std::string>{"a", "b"});
    EXPECT_EQ(out.str(), "a,b\n");
}

TEST(CsvWriter, EmptyRowProducesBlankLine) {
    std::ostringstream out;
    csv_writer writer(out);
    writer.write_row(std::vector<std::string>{});
    EXPECT_EQ(out.str(), "\n");
}

} // namespace
