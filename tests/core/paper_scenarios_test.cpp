// The worked allocation scenarios of Section 1 of the paper, verified
// against the library's round kernel through the public process API.
//
// Setup (paper's example for (3,4)-choice): four bins with loads
//   bin1 = 3, bin2 = 2, bin3 = 1, bin4 = 0
// and three balls to place into the 3 least loaded of 4 sampled bins under
// the multiplicity rule "a bin sampled m times receives at most m balls".
#include <gtest/gtest.h>

#include <algorithm>

#include "core/process.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"

namespace {

using kdc::core::kd_choice_process;
using kdc::core::load_vector;

// Bin ids: 0 = bin1 (3 balls), 1 = bin2 (2), 2 = bin3 (1), 3 = bin4 (0).
const load_vector initial{3, 2, 1, 0};

TEST(PaperScenarios, ScenarioA_EachBinSampledOnce) {
    // (a) Every bin sampled once: bin2, bin3 and bin4 each receive a ball.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        kd_choice_process process(initial, 3, 4, seed);
        const std::vector<std::uint32_t> samples{0, 1, 2, 3};
        process.run_round_with_samples(samples);
        EXPECT_EQ(process.loads(), (load_vector{3, 3, 2, 1}));
    }
}

TEST(PaperScenarios, ScenarioB_Bin4SampledTwice) {
    // (b) bin2 and bin3 once, bin4 twice: "bin3 receives a ball and bin4
    // receives two balls" under the paper's policy.
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        kd_choice_process process(initial, 3, 4, seed);
        const std::vector<std::uint32_t> samples{1, 2, 3, 3};
        process.run_round_with_samples(samples);
        EXPECT_EQ(process.loads(), (load_vector{3, 2, 2, 2}));
    }
}

TEST(PaperScenarios, ScenarioC_OnlyTwoDistinctDestinations) {
    // (c) bin1 and bin4 each sampled twice: "bin1 receives one ball and
    // bin4 receives two".
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        kd_choice_process process(initial, 3, 4, seed);
        const std::vector<std::uint32_t> samples{0, 0, 3, 3};
        process.run_round_with_samples(samples);
        EXPECT_EQ(process.loads(), (load_vector{4, 2, 1, 2}));
    }
}

TEST(PaperScenarios, ScenarioB_HeightsMatchSequentialView) {
    // The serialization view: place 4 balls sequentially (heights: bin2 -> 3,
    // bin3 -> 2, bin4 -> 1, 2), then remove the one with maximal height
    // (the bin2 ball at height 3). The kept heights are {1, 2, 2}.
    kd_choice_process process(initial, 3, 4, 123);
    process.record_heights(true);
    const std::vector<std::uint32_t> samples{1, 2, 3, 3};
    process.run_round_with_samples(samples);
    const auto& log = process.height_log();
    ASSERT_EQ(log.size(), 3u);
    EXPECT_EQ(log[0].height, 1u);
    EXPECT_EQ(log[1].height, 2u);
    EXPECT_EQ(log[2].height, 2u);
}

TEST(PaperScenarios, MultiplicityRuleNeverExceeded) {
    // Randomized stress of the Section 1 rule: for any sample multiset, a
    // bin's increment is at most its multiplicity.
    kdc::rng::xoshiro256ss gen(7);
    for (int trial = 0; trial < 500; ++trial) {
        kd_choice_process process(load_vector(8, 0), 3, 5, trial);
        std::vector<std::uint32_t> samples(5);
        kdc::rng::sample_with_replacement(gen, 8,
                                          std::span<std::uint32_t>(samples));
        const load_vector before = process.loads();
        process.run_round_with_samples(samples);
        for (std::uint32_t bin = 0; bin < 8; ++bin) {
            const auto multiplicity = static_cast<std::uint64_t>(
                std::count(samples.begin(), samples.end(), bin));
            EXPECT_LE(process.loads()[bin] - before[bin], multiplicity);
        }
    }
}

} // namespace
