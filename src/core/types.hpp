// Shared vocabulary types for the allocation processes.
#pragma once

#include <cstdint>
#include <vector>

namespace kdc::core {

/// Load of a single bin. 32 bits supports the heavily loaded regime up to
/// ~4e9 balls per bin, far beyond anything this repository simulates.
using bin_load = std::uint32_t;

/// Bin loads indexed by bin id (NOT sorted; sorting is a metrics concern).
using load_vector = std::vector<bin_load>;

/// A ball placement: the bin it landed in, and its height (the number of
/// balls in that bin immediately after it landed — Section 2 of the paper).
struct placed_ball {
    std::uint32_t bin = 0;
    bin_load height = 0;

    friend bool operator==(const placed_ball&, const placed_ball&) = default;
};

} // namespace kdc::core
