#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace {

using kdc::stats::sample_summary;
using kdc::stats::sorted_quantile;
using kdc::stats::summarize;

TEST(Summarize, KnownSample) {
    const auto s = summarize({4.0, 1.0, 3.0, 2.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 2.5);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0); // nearest-rank: ceil(0.5*4) = rank 2
}

TEST(Summarize, SingleElement) {
    const auto s = summarize({7.0});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.median, 7.0);
    EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Summarize, EmptyViolatesContract) {
    EXPECT_THROW((void)summarize({}), kdc::contract_violation);
}

TEST(Summarize, PercentilesOrdered) {
    std::vector<double> sample;
    for (int i = 1; i <= 1000; ++i) {
        sample.push_back(static_cast<double>(i));
    }
    const auto s = summarize(sample);
    EXPECT_LE(s.median, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_DOUBLE_EQ(s.p95, 950.0);
    EXPECT_DOUBLE_EQ(s.p99, 990.0);
}

TEST(SortedQuantile, EdgeProbabilities) {
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 1.0), 5.0);
    EXPECT_DOUBLE_EQ(sorted_quantile(sorted, 0.5), 3.0);
}

TEST(SortedQuantile, UnsortedInputViolatesContract) {
    const std::vector<double> unsorted{3.0, 1.0};
    EXPECT_THROW((void)sorted_quantile(unsorted, 0.5),
                 kdc::contract_violation);
}

TEST(SortedQuantile, OutOfRangePViolatesContract) {
    const std::vector<double> sorted{1.0};
    EXPECT_THROW((void)sorted_quantile(sorted, 1.5), kdc::contract_violation);
}

} // namespace
