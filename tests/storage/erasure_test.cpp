#include <gtest/gtest.h>

#include <cmath>

#include "storage/cluster.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::storage::placement_policy;
using kdc::storage::storage_cluster;
using kdc::storage::storage_config;

storage_cluster make_cluster(std::uint64_t chunks, std::uint64_t probes) {
    storage_config config;
    config.servers = 512;
    config.replicas_per_file = chunks;
    config.probes = probes;
    config.policy = placement_policy::kd_choice;
    config.seed = 3;
    storage_cluster cluster(config);
    cluster.place_files(300);
    return cluster;
}

TEST(ErasureAvailability, MonotoneInThreshold) {
    // Requiring more alive chunks can only hurt availability.
    auto cluster = make_cluster(5, 8);
    double prev = 1.1;
    for (std::uint64_t need = 1; need <= 5; ++need) {
        const double avail =
            cluster.estimate_availability_erasure(0.1, need, 30, 11);
        EXPECT_LE(avail, prev + 1e-12) << "need=" << need;
        prev = avail;
    }
}

TEST(ErasureAvailability, ExtremesMatchReplicationAndChunking) {
    auto cluster = make_cluster(4, 6);
    EXPECT_DOUBLE_EQ(
        cluster.estimate_availability_erasure(0.2, 1, 25, 7),
        cluster.estimate_availability(0.2, /*need_all=*/false, 25, 7));
    EXPECT_DOUBLE_EQ(
        cluster.estimate_availability_erasure(0.2, 4, 25, 7),
        cluster.estimate_availability(0.2, /*need_all=*/true, 25, 7));
}

TEST(ErasureAvailability, MatchesBinomialForDistinctServers) {
    // With k = 3 chunks on (almost surely) distinct servers and failure
    // probability p, availability at threshold 2 is P(Bin(3, 1-p) >= 2).
    auto cluster = make_cluster(3, 6);
    const double p = 0.1;
    const double q = 1.0 - p;
    const double analytic = q * q * q + 3.0 * q * q * p;
    const double measured =
        cluster.estimate_availability_erasure(p, 2, 60, 13);
    EXPECT_NEAR(measured, analytic, 0.02);
}

TEST(ErasureAvailability, CodingBeatsPlainChunkingAtSameOverhead) {
    // 4-of-6 erasure coding vs 1-of-1... the economically honest comparison
    // in this model: 6 chunks requiring 4 survives more than 6 chunks
    // requiring all 6 (plain chunking of a 6-way split).
    auto cluster = make_cluster(6, 8);
    const double coded =
        cluster.estimate_availability_erasure(0.1, 4, 30, 17);
    const double plain =
        cluster.estimate_availability_erasure(0.1, 6, 30, 17);
    EXPECT_GT(coded, plain);
}

TEST(ErasureAvailability, ThresholdBoundsChecked) {
    auto cluster = make_cluster(3, 5);
    EXPECT_THROW(
        (void)cluster.estimate_availability_erasure(0.1, 0, 10, 1),
        kdc::contract_violation);
    EXPECT_THROW(
        (void)cluster.estimate_availability_erasure(0.1, 4, 10, 1),
        kdc::contract_violation);
}

} // namespace
