#include "support/contracts.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

TEST(Contracts, ExpectsPassesWhenConditionHolds) {
    EXPECT_NO_THROW(KD_EXPECTS(1 + 1 == 2));
}

TEST(Contracts, ExpectsThrowsContractViolation) {
    EXPECT_THROW(KD_EXPECTS(false), kdc::contract_violation);
}

TEST(Contracts, EnsuresThrowsContractViolation) {
    EXPECT_THROW(KD_ENSURES(false), kdc::contract_violation);
}

TEST(Contracts, AssertThrowsContractViolation) {
    EXPECT_THROW(KD_ASSERT(false), kdc::contract_violation);
}

TEST(Contracts, ViolationIsALogicError) {
    EXPECT_THROW(KD_EXPECTS(false), std::logic_error);
}

TEST(Contracts, MessageNamesTheKindAndCondition) {
    try {
        KD_EXPECTS(2 < 1);
        FAIL() << "should have thrown";
    } catch (const kdc::contract_violation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("precondition"), std::string::npos);
        EXPECT_NE(what.find("2 < 1"), std::string::npos);
        EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos);
    }
}

TEST(Contracts, MessageIncludesUserText) {
    try {
        KD_EXPECTS_MSG(false, "k must divide n");
        FAIL() << "should have thrown";
    } catch (const kdc::contract_violation& e) {
        EXPECT_NE(std::string(e.what()).find("k must divide n"),
                  std::string::npos);
    }
}

TEST(Contracts, EnsuresMessageNamesPostcondition) {
    try {
        KD_ENSURES_MSG(false, "output sorted");
        FAIL() << "should have thrown";
    } catch (const kdc::contract_violation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("postcondition"), std::string::npos);
        EXPECT_NE(what.find("output sorted"), std::string::npos);
    }
}

TEST(Contracts, ConditionIsEvaluatedExactlyOnce) {
    int calls = 0;
    auto count = [&calls] {
        ++calls;
        return true;
    };
    KD_EXPECTS(count());
    EXPECT_EQ(calls, 1);
}

} // namespace
