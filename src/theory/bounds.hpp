// Theory oracle: every closed-form quantity the paper derives, so benchmarks
// and tests can overlay measured behaviour on the predicted bounds.
//
// References into the paper (arXiv:1201.3310):
//  * dk              — Section 2.1 notation, dk = d / (d - k)
//  * Theorem 1       — two-regime tight bounds on M(k, d, n)
//  * Corollary 1     — pure ln dk / ln ln dk regime
//  * Theorem 2       — heavily loaded sandwich for d >= 2k
//  * beta0/gammas    — landmarks of Figures 1 and 2 (Sections 4.1, 5)
//  * beta recursion  — equation (16); i* = last i with beta_i >= 6 ln n
//  * gamma recursion — equations (27)-(28)
//  * message cost    — footnote 1: probes issued = (m / k) * d
#pragma once

#include <cstdint>
#include <vector>

namespace kdc::theory {

/// Parameters of a (k,d)-choice instance. k < d <= n; n % k == 0 is the
/// paper's standing assumption (validated by `validate()`).
struct kd_params {
    std::uint64_t n = 0; ///< number of bins
    std::uint64_t k = 1; ///< balls placed per round
    std::uint64_t d = 2; ///< bins probed per round

    /// Throws contract_violation unless 1 <= k < d <= n and k | n.
    void validate() const;
};

/// dk = d / (d - k). Grows as k approaches d; dk = O(1) iff k is a constant
/// fraction of d away from d.
[[nodiscard]] double dk_ratio(std::uint64_t k, std::uint64_t d);

/// ln ln n / ln(d-k+1) — the first term of both Theorem 1 bounds. Returns 0
/// for degenerate inputs (n <= e, or d - k + 1 < 2 which only happens for
/// d = k + ... never: d > k implies d - k + 1 >= 2).
[[nodiscard]] double first_term(std::uint64_t n, std::uint64_t k,
                                std::uint64_t d);

/// ln dk / ln ln dk — the second term of Theorem 1(ii). Defined for
/// dk > e (otherwise the term is O(1) and we return 0).
[[nodiscard]] double second_term(std::uint64_t k, std::uint64_t d);

/// Predicted asymptotic maximum load (the shared leading-order expression of
/// Theorem 1's upper and lower bound; they differ by O(1) / o(1) factors).
struct theorem1_prediction {
    double first = 0.0;   ///< ln ln n / ln(d-k+1)
    double second = 0.0;  ///< ln dk / ln ln dk (0 in the dk = O(1) regime)
    double total = 0.0;   ///< first + second
    bool dk_small = true; ///< regime flag: dk treated as O(1)?
};

/// Computes the Theorem 1 prediction. The regime flag uses the pragmatic
/// cutoff dk <= `dk_small_cutoff` (default e^2, i.e. "constant").
[[nodiscard]] theorem1_prediction
theorem1_bound(std::uint64_t n, std::uint64_t k, std::uint64_t d,
               double dk_small_cutoff = 7.389056098930650);

/// Corollary 1 applies when dk >= e^{(ln ln n)^3}.
[[nodiscard]] bool corollary1_applies(std::uint64_t n, std::uint64_t k,
                                      std::uint64_t d);

/// Theorem 2: heavily loaded sandwich (valid for d >= 2k), expressed without
/// the additive O(1) constants.
struct theorem2_prediction {
    double lower = 0.0; ///< ln ln n / ln(d-k+1), minus O(1)
    double upper = 0.0; ///< ln ln n / ln floor(d/k), plus O(1)
};
[[nodiscard]] theorem2_prediction theorem2_bound(std::uint64_t n,
                                                 std::uint64_t k,
                                                 std::uint64_t d);

/// Figure 1 landmark beta0 = n / (6 dk): the upper-bound analysis splits the
/// max load into B_{beta0} + (B_1 - B_{beta0}).
[[nodiscard]] double beta0_landmark(std::uint64_t n, std::uint64_t k,
                                    std::uint64_t d);

/// Figure 2 landmarks: gamma* = 4 n / dk and gamma0 = n / d.
[[nodiscard]] double gamma_star_landmark(std::uint64_t n, std::uint64_t k,
                                         std::uint64_t d);
[[nodiscard]] double gamma0_landmark(std::uint64_t n, std::uint64_t d);

/// The recursion (16): beta_{i+1} = (6n/k) C(d, d-k+1) (beta_i / n)^{d-k+1},
/// beta_0 = n / (6 dk), evaluated until beta_i < 6 ln n. The sequence length
/// minus one is i*, which Theorem 4 shows is <= ln ln n / ln(d-k+1).
/// Binomial coefficients are evaluated in log space; entries are clamped to
/// [0, n].
[[nodiscard]] std::vector<double> beta_sequence(std::uint64_t n,
                                                std::uint64_t k,
                                                std::uint64_t d);

/// The lower-bound recursion (27)-(28): gamma_0 = n/d,
/// gamma_{i+1} = 2^{-(i+6)} (n/k) C(d, d-k+1) (gamma_i / n)^{d-k+1},
/// evaluated until gamma_i < 9 ln n.
[[nodiscard]] std::vector<double> gamma_sequence(std::uint64_t n,
                                                 std::uint64_t k,
                                                 std::uint64_t d);

/// i* upper bound from Part B of Theorem 4: ln ln n / ln(d-k+1).
[[nodiscard]] double i_star_bound(std::uint64_t n, std::uint64_t k,
                                  std::uint64_t d);

/// Classic single-choice maximum load (1 + o(1)) ln n / ln ln n [Raab-Steger].
[[nodiscard]] double single_choice_max_load(std::uint64_t n);

/// Classic d-choice maximum load ln ln n / ln d + O(1) [Azar et al.].
[[nodiscard]] double d_choice_max_load(std::uint64_t n, std::uint64_t d);

/// Message cost of placing m balls: (m / k) rounds of d probes each
/// (footnote 1 of the paper defines cost = number of bins probed).
[[nodiscard]] std::uint64_t message_cost(std::uint64_t m, std::uint64_t k,
                                         std::uint64_t d);

/// log of the binomial coefficient C(n, r), exact in log space via lgamma.
[[nodiscard]] double log_binomial(std::uint64_t n, std::uint64_t r);

} // namespace kdc::theory
