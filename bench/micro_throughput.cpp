// Microbenchmarks: throughput of the allocation kernels and the RNG layer.
// These quantify the engineering claims of the library itself (balls/second
// at various (k,d)), not the paper's statistical results.
//
// Two modes:
//
//  * google-benchmark (default): the usual bm_* suite, now including the
//    level-compressed kernels side by side with the per-bin ones.
//
//  * --json: a self-contained kernel comparison that times perbin vs level
//    vs the sharded round-parallel kernel over an (n, k, d) grid and
//    writes machine-readable JSON (BENCH_micro.json) — the recorded perf
//    trajectory. CI uploads the file as an artifact and `--guard` turns it
//    into a regression gate: exit 1 if the level kernel OR the sharded
//    kernel is slower than the per-bin kernel on any cell with n >= 10^7
//    (a coarse 1.0x floor, far below the actual gap, so the gate is not
//    flaky).
//
//      ./micro_throughput --json [--json-out=BENCH_micro.json] [--guard]
//                         [--big-n=16777216] [--balls-factor=1] [--seed=42]
//                         [--huge-n=0] [--huge-factor=10] [--threads=0]
//                         [--warmup=full] [--level-floor=0]
//                         [--sharded-floor=0] [--repeat=3] [--verbose]
//
//    Every cell records the fastest of --repeat runs (the box shares its
//    host; single-shot timings jitter). Sharded cells additionally carry
//    a "phases" object — the kernel's cumulative per-phase wall time
//    (pregen / bucket / gather / select / handoff / commit) from the best
//    run — which is the v2 -> v3 schema change.
//    --huge-n adds a level-kernel-only cell (the per-bin kernel cannot
//    represent the state): --huge-n=1000000000 --huge-factor=10 is the
//    billion-bin, m = 10n run — minutes of wall clock, kilobytes of state.
//    --warmup=ff starts the n >= 10^7 level cells (including --huge-n)
//    from the steady-state fast-forward (core/steady_state.hpp) so only
//    the settle suffix is timed; such cells carry "warmup": "ff" in the
//    JSON and are EXCLUDED from --guard comparisons — the guard re-times
//    them with a full warmup so a fast-forwarded grid can never pass the
//    gate vacuously. --level-floor=<balls/s> adds a guard arm: the
//    largest-n full-warmup level cell at (k=8, d=16) must sustain at
//    least that rate (the recorded hot-path floor; see docs/benchmarks.md).
//    --sharded-floor=<balls/s> is the same arm for the sharded kernel: the
//    largest-n full-warmup sharded cell at (k=1, d=2) — the configuration
//    where the phase pipeline's edge over serial probing is largest — must
//    hold the recorded rate. --verbose logs the detected cache topology
//    behind shards=auto (L2 bytes, window bins, resolved shard count).
//
//  * --scenario: time ONE declarative scenario (core/scenario.hpp) through
//    the same make_process factory the benches use — any policy, any
//    kernel:
//
//      ./micro_throughput --scenario="kd:n=1e8,k=8,d=16,kernel=auto"
//                         [--balls-factor=1] [--repeat=3] [--seed=42]
//                         [--threads=0] [--validate-warmup=0]
//
//    `par=round` scenarios run the sharded kernel on a pool sized by
//    --threads; output is byte-identical at any thread count.
//    --validate-warmup=<reps> skips the timing and instead KS-compares the
//    scenario (which must carry warmup=ff) against its warmup=full twin;
//    exit 1 if any of the three KS p-values drops to 0.001 or below.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/kdchoice.hpp"
#include "core/parallel_runner.hpp"
#include "support/cli.hpp"

namespace {

// ---------------------------------------------------------------------------
// --json mode: perbin vs level kernel comparison grid.
// ---------------------------------------------------------------------------

struct json_cell {
    std::string kernel;
    std::string warmup = "full"; ///< "ff" = steady-state fast-forward timed
    std::uint64_t n = 0;
    std::uint64_t k = 0;
    std::uint64_t d = 0;
    std::uint64_t balls = 0;
    double seconds = 0.0;
    double balls_per_sec = 0.0;
    /// Sharded cells only (schema v3): the kernel's per-phase wall-time
    /// breakdown for the best repeat, so the JSON records WHERE the time
    /// goes, not just the rate.
    bool has_phases = false;
    kdc::core::sharded_phase_times phases;
};

/// Typed kernels expose observed_load_metrics; any_process (the warmup=ff
/// cells go through make_process) reports through observe() instead.
template <typename Process> double final_max_load(const Process& process) {
    if constexpr (requires { kdc::core::observed_load_metrics(process); }) {
        return kdc::core::observed_load_metrics(process).max_load;
    } else {
        return process.observe().max_load;
    }
}

template <typename MakeProcess>
json_cell time_cell(const char* kernel, const char* warmup, std::uint64_t n,
                    std::uint64_t k, std::uint64_t d, std::uint64_t balls,
                    std::uint64_t repeats, MakeProcess make_process) {
    // Fastest of `repeats` fresh runs: the recorded rate is the kernel's,
    // not the host's scheduling noise.
    json_cell cell;
    cell.kernel = kernel;
    cell.warmup = warmup;
    cell.n = n;
    cell.k = k;
    cell.d = d;
    cell.balls = balls;
    double max_load = 0.0;
    for (std::uint64_t rep = 0; rep < std::max<std::uint64_t>(repeats, 1);
         ++rep) {
        auto process = make_process();
        const auto start = std::chrono::steady_clock::now();
        process.run_balls(balls);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (rep == 0 || seconds < cell.seconds) {
            cell.seconds = seconds;
            if constexpr (requires { process.phase_times(); }) {
                cell.has_phases = true;
                cell.phases = process.phase_times();
            }
        }
        // The final max load keeps the run observable (and the optimizer
        // honest) without an O(n) metrics pass for the per-bin kernel.
        max_load = final_max_load(process);
    }
    cell.balls_per_sec =
        cell.seconds > 0.0 ? static_cast<double>(balls) / cell.seconds : 0.0;
    std::cerr << "  " << kernel << " n=" << n << " k=" << k << " d=" << d
              << (cell.warmup == "ff" ? " warmup=ff" : "") << ": "
              << static_cast<std::uint64_t>(cell.balls_per_sec)
              << " balls/s (max load " << max_load << ")\n";
    return cell;
}

void write_json(const std::string& path, std::uint64_t balls_factor,
                const std::vector<json_cell>& cells) {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("cannot open --json-out path: " + path);
    }
    out << "{\n"
        << "  \"bench\": \"micro_throughput\",\n"
        << "  \"schema\": \"kdchoice-bench-micro/v3\",\n"
        // Guarded timings must come from a fault-free run; the field makes
        // that auditable from the artifact alone (always "none" here —
        // micro_throughput never arms a plan before timing the grid).
        << "  \"faults\": \""
        << (kdc::core::faults_armed() ? "armed" : "none") << "\",\n"
        << "  \"balls_factor\": " << balls_factor << ",\n"
        << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto& cell = cells[i];
        out << "    {\"kernel\": \"" << cell.kernel << "\", \"warmup\": \""
            << cell.warmup << "\", \"n\": " << cell.n << ", \"k\": " << cell.k
            << ", \"d\": " << cell.d << ", \"balls\": " << cell.balls
            << ", \"seconds\": " << cell.seconds << ", \"balls_per_sec\": "
            << cell.balls_per_sec;
        if (cell.has_phases) {
            out << ", \"phases\": {\"pregen\": " << cell.phases.pregen
                << ", \"bucket\": " << cell.phases.bucket
                << ", \"gather\": " << cell.phases.gather
                << ", \"select\": " << cell.phases.select
                << ", \"handoff\": " << cell.phases.handoff
                << ", \"commit\": " << cell.phases.commit << "}";
        }
        out << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

int json_main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_flag("json", "kernel-comparison mode with JSON output");
    args.add_option("json-out", "BENCH_micro.json", "output path");
    args.add_option("big-n", "16777216",
                    "largest comparison n (>= 10^7 cells feed --guard; 0 "
                    "drops the large point)");
    args.add_option("balls-factor", "1", "balls = factor * n per cell");
    args.add_option("seed", "42", "seed for every timed run");
    args.add_option("huge-n", "0",
                    "when nonzero, add a level-only cell at this n (the "
                    "billion-bin run: --huge-n=1000000000)");
    args.add_option("huge-factor", "10",
                    "balls = factor * n for the --huge-n cell");
    args.add_flag("guard",
                  "exit 1 if the level or sharded kernel is slower than "
                  "perbin on any cell with n >= 10^7");
    args.add_option("warmup", "full",
                    "'ff' fast-forwards the n >= 10^7 level cells to the "
                    "steady state and times the settle suffix only");
    args.add_option("level-floor", "0",
                    "extra --guard arm: minimum balls/s for the largest-n "
                    "full-warmup level cell at k=8, d=16 (0 disables)");
    args.add_option("sharded-floor", "0",
                    "extra --guard arm: minimum balls/s for the largest-n "
                    "full-warmup sharded cell at k=1, d=2 (0 disables)");
    args.add_option("repeat", "3",
                    "timed runs per cell; each cell records the fastest");
    args.add_flag("verbose",
                  "log the detected cache topology behind shards=auto");
    args.add_threads_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto big_n = static_cast<std::uint64_t>(args.get_int("big-n"));
    const auto balls_factor =
        static_cast<std::uint64_t>(args.get_int("balls-factor"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto huge_n = static_cast<std::uint64_t>(args.get_int("huge-n"));
    const auto huge_factor =
        static_cast<std::uint64_t>(args.get_int("huge-factor"));
    const bool use_ff = kdc::core::warmup_from_name(args.get_string(
                            "warmup")) == kdc::core::warmup_mode::fast_forward;
    const double level_floor = args.get_double("level-floor");
    const double sharded_floor = args.get_double("sharded-floor");
    const auto repeats =
        std::max<std::uint64_t>(
            static_cast<std::uint64_t>(args.get_int("repeat")), 1);

    if (args.get_flag("verbose")) {
        const auto& topo = kdc::core::shard_auto_config();
        std::cerr << "shards=auto topology: "
                  << (topo.detected
                          ? "L2 " + std::to_string(topo.l2_bytes) + " B"
                          : std::string("L2 undetected (default window)"))
                  << ", window " << topo.window_bins << " bins, n=" << big_n
                  << " -> "
                  << kdc::core::resolve_shard_count(
                         std::max<std::uint64_t>(big_n, 1), 0)
                  << " shards\n";
    }

    // The warmup=ff level cells go through the same declarative factory the
    // benches use; only n >= 10^7 cells qualify (below that the warmup is
    // cheap and a fast-forwarded timing would measure nothing).
    const auto make_ff_level = [seed](std::uint64_t n, std::uint64_t k,
                                      std::uint64_t d) {
        kdc::core::scenario sc;
        sc.n = n;
        sc.k = k;
        sc.d = d;
        sc.kernel = kdc::core::kernel_choice::level;
        sc.warmup = kdc::core::warmup_mode::fast_forward;
        return kdc::core::make_process(sc, seed);
    };

    struct config {
        std::uint64_t k, d;
    };
    const std::vector<config> configs{{1, 2}, {2, 4}, {8, 16}};
    std::vector<std::uint64_t> sizes{1u << 16, 1u << 20};
    if (big_n != 0) {
        sizes.push_back(big_n);
    }

    // One pool shared by every sharded cell; the sharded kernel's output is
    // byte-identical to perbin at any --threads value, so the pool size
    // only moves the clock.
    kdc::core::thread_pool pool(
        kdc::core::resolve_thread_count(args.get_threads()));

    std::vector<json_cell> cells;
    for (const auto n : sizes) {
        for (const auto& cfg : configs) {
            const std::uint64_t balls =
                balls_factor * kdc::core::whole_rounds_balls(n, cfg.k);
            cells.push_back(time_cell(
                "perbin", "full", n, cfg.k, cfg.d, balls, repeats, [&] {
                    return kdc::core::kd_choice_process(n, cfg.k, cfg.d,
                                                        seed);
                }));
            if (use_ff && n >= 10'000'000) {
                cells.push_back(time_cell(
                    "level", "ff", n, cfg.k, cfg.d, balls, repeats,
                    [&] { return make_ff_level(n, cfg.k, cfg.d); }));
            } else {
                cells.push_back(time_cell(
                    "level", "full", n, cfg.k, cfg.d, balls, repeats, [&] {
                        return kdc::core::kd_choice_level_process(
                            n, cfg.k, cfg.d, seed);
                    }));
            }
            cells.push_back(time_cell(
                "sharded", "full", n, cfg.k, cfg.d, balls, repeats, [&] {
                    kdc::core::sharded_kd_process process(n, cfg.k, cfg.d,
                                                          seed);
                    process.use_pool(&pool);
                    return process;
                }));
        }
    }
    if (huge_n != 0) {
        // Level kernel only: a per-bin load vector at this n would not fit.
        const std::uint64_t k = 8;
        const std::uint64_t d = 16;
        const std::uint64_t balls =
            huge_factor * kdc::core::whole_rounds_balls(huge_n, k);
        if (use_ff && huge_n >= 10'000'000) {
            cells.push_back(time_cell("level", "ff", huge_n, k, d, balls,
                                      repeats, [&] {
                                          return make_ff_level(huge_n, k, d);
                                      }));
        } else {
            cells.push_back(time_cell("level", "full", huge_n, k, d, balls,
                                      repeats, [&] {
                                          return kdc::core::
                                              kd_choice_level_process(
                                                  huge_n, k, d, seed);
                                      }));
        }
    }

    write_json(args.get_string("json-out"), balls_factor, cells);
    std::cerr << "wrote " << args.get_string("json-out") << " ("
              << cells.size() << " cells)\n";

    if (args.get_flag("guard")) {
        // A fast-forwarded cell times the settle suffix only, so comparing
        // it against a full-warmup perbin cell would gate nothing. Re-time
        // every grid ff cell (those with a perbin twin; --huge-n has none)
        // with a full warmup so the kernel comparison below always runs on
        // like-for-like timings — --warmup=ff must never make the guard
        // pass vacuously.
        {
            std::vector<json_cell> retimed;
            for (const auto& cell : cells) {
                if (cell.warmup != "ff") {
                    continue;
                }
                const bool has_perbin_twin = std::any_of(
                    cells.begin(), cells.end(), [&](const json_cell& other) {
                        return other.kernel == "perbin" &&
                               other.n == cell.n && other.k == cell.k &&
                               other.d == cell.d;
                    });
                if (!has_perbin_twin) {
                    continue;
                }
                std::cerr << "guard: re-timing level n=" << cell.n
                          << " k=" << cell.k << " d=" << cell.d
                          << " with a full warmup\n";
                retimed.push_back(time_cell(
                    "level", "full", cell.n, cell.k, cell.d, cell.balls,
                    repeats, [&] {
                        return kdc::core::kd_choice_level_process(
                            cell.n, cell.k, cell.d, seed);
                    }));
            }
            cells.insert(cells.end(), retimed.begin(), retimed.end());
        }
        // Two arms. The level kernel must dominate perbin on EVERY big-n
        // cell (that regression gate predates the sharded kernel). The
        // sharded kernel replays the serial tape exactly, so its edge is
        // configuration-dependent: low d starves the serial kernel of
        // memory-level parallelism and the sharded pipeline wins, while
        // high d gives the serial kernel d overlapped probe loads and the
        // pipeline's extra passes roughly break even. The gate is
        // therefore existential — at least one n >= 10^7 cell where
        // par=round strictly beats perbin — which is the recorded claim.
        bool ok = true;
        std::size_t compared = 0;
        std::size_t sharded_wins = 0;
        std::size_t sharded_cells = 0;
        for (const auto& perbin : cells) {
            if (perbin.kernel != "perbin" || perbin.n < 10'000'000) {
                continue;
            }
            for (const auto& other : cells) {
                if ((other.kernel != "level" && other.kernel != "sharded") ||
                    other.warmup != "full" || other.n != perbin.n ||
                    other.k != perbin.k || other.d != perbin.d) {
                    continue;
                }
                ++compared;
                if (other.kernel == "sharded") {
                    ++sharded_cells;
                    if (other.balls_per_sec > perbin.balls_per_sec) {
                        ++sharded_wins;
                    }
                    continue;
                }
                if (other.balls_per_sec < perbin.balls_per_sec) {
                    std::cerr << "GUARD FAILED: " << other.kernel
                              << " kernel slower than perbin at n="
                              << perbin.n << " k=" << perbin.k
                              << " d=" << perbin.d << " ("
                              << other.balls_per_sec << " vs "
                              << perbin.balls_per_sec << " balls/s)\n";
                    ok = false;
                }
            }
        }
        if (compared == 0) {
            // A guard that checked nothing must not pass: --big-n below
            // 10^7 (or 0) leaves the grid without any eligible cell.
            std::cerr << "GUARD FAILED: no kernel pair with n >= 10^7 in "
                         "the grid (raise --big-n)\n";
            return 1;
        }
        if (sharded_cells > 0 && sharded_wins == 0) {
            std::cerr << "GUARD FAILED: no n >= 10^7 cell where the sharded "
                         "kernel beats perbin\n";
            ok = false;
        }
        if (level_floor > 0.0) {
            // Third arm: the hot-path throughput floor. The largest-n
            // full-warmup level cell at the heavy configuration (k=8, d=16)
            // must hold the recorded rate — absolute, not relative to
            // perbin, so a simultaneous regression of both kernels still
            // trips the gate.
            const json_cell* floor_cell = nullptr;
            for (const auto& cell : cells) {
                if (cell.kernel == "level" && cell.warmup == "full" &&
                    cell.n >= 10'000'000 && cell.k == 8 && cell.d == 16 &&
                    (floor_cell == nullptr || cell.n > floor_cell->n)) {
                    floor_cell = &cell;
                }
            }
            if (floor_cell == nullptr) {
                std::cerr << "GUARD FAILED: --level-floor needs a "
                             "full-warmup level cell with n >= 10^7 at k=8 "
                             "d=16 (raise --big-n)\n";
                ok = false;
            } else if (floor_cell->balls_per_sec < level_floor) {
                std::cerr << "GUARD FAILED: level kernel below the floor at "
                             "n="
                          << floor_cell->n << " k=8 d=16 ("
                          << floor_cell->balls_per_sec << " vs floor "
                          << level_floor << " balls/s)\n";
                ok = false;
            } else {
                std::cerr << "guard: level floor held ("
                          << floor_cell->balls_per_sec << " >= "
                          << level_floor << " balls/s at n=" << floor_cell->n
                          << ")\n";
            }
        }
        if (sharded_floor > 0.0) {
            // Fourth arm: the sharded pipeline's absolute floor, pinned at
            // (k=1, d=2) — the configuration where the phase pipeline's
            // edge over serial probing is largest and a regression in any
            // phase (pregen, gather, select, commit) shows up undiluted.
            const json_cell* floor_cell = nullptr;
            for (const auto& cell : cells) {
                if (cell.kernel == "sharded" && cell.warmup == "full" &&
                    cell.n >= 10'000'000 && cell.k == 1 && cell.d == 2 &&
                    (floor_cell == nullptr || cell.n > floor_cell->n)) {
                    floor_cell = &cell;
                }
            }
            if (floor_cell == nullptr) {
                std::cerr << "GUARD FAILED: --sharded-floor needs a "
                             "full-warmup sharded cell with n >= 10^7 at "
                             "k=1 d=2 (raise --big-n)\n";
                ok = false;
            } else if (floor_cell->balls_per_sec < sharded_floor) {
                std::cerr << "GUARD FAILED: sharded kernel below the floor "
                             "at n="
                          << floor_cell->n << " k=1 d=2 ("
                          << floor_cell->balls_per_sec << " vs floor "
                          << sharded_floor << " balls/s)\n";
                ok = false;
            } else {
                std::cerr << "guard: sharded floor held ("
                          << floor_cell->balls_per_sec << " >= "
                          << sharded_floor << " balls/s at n="
                          << floor_cell->n << ")\n";
                // Fault fast-path rider: re-time the same cell with a fault
                // plan ARMED but never firing (hit count far beyond reach),
                // so every fault_point takes its slow-path check. The
                // instrumentation budget is <1%: the armed run must still
                // clear 99% of the floor the disarmed run just cleared.
                const std::uint64_t floor_n = floor_cell->n;
                const std::uint64_t floor_balls = floor_cell->balls;
                kdc::core::arm_faults(kdc::core::fault_plan::parse(
                    "shard.pregen:io_error@1000000000"));
                const json_cell armed = time_cell(
                    "sharded", "full", floor_n, 1, 2, floor_balls, repeats,
                    [&] {
                        kdc::core::sharded_kd_process process(floor_n, 1, 2,
                                                              seed);
                        process.use_pool(&pool);
                        return process;
                    });
                kdc::core::disarm_faults();
                if (armed.balls_per_sec < 0.99 * sharded_floor) {
                    std::cerr << "GUARD FAILED: armed-but-idle fault "
                                 "instrumentation dragged the sharded floor "
                                 "cell below 99% of the floor ("
                              << armed.balls_per_sec << " vs "
                              << 0.99 * sharded_floor << " balls/s)\n";
                    ok = false;
                } else {
                    std::cerr << "guard: fault fast path held ("
                              << armed.balls_per_sec << " >= 99% of floor "
                              << sharded_floor << " balls/s armed)\n";
                }
            }
        }
        if (!ok) {
            return 1;
        }
        std::cerr << "guard OK: level kernel >= perbin on all " << compared
                  << " comparisons with n >= 10^7; sharded kernel beats "
                  << "perbin on " << sharded_wins << "/" << sharded_cells
                  << " of them\n";
    }
    return 0;
}

// ---------------------------------------------------------------------------
// --scenario mode: time one declarative scenario through make_process.
// ---------------------------------------------------------------------------

int scenario_main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_scenario_option();
    args.add_option("balls-factor", "1",
                    "balls = factor * the scenario's resolved ball count");
    args.add_option("repeat", "3", "timed runs; the best is reported");
    args.add_option("seed", "42", "seed for every timed run");
    args.add_option("validate-warmup", "0",
                    "KS-compare the scenario (warmup=ff) against its "
                    "warmup=full twin over this many repetitions instead of "
                    "timing; exit 1 if any p-value <= 0.001");
    args.add_threads_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto sc = kdc::core::parse_scenario(args.get_string("scenario"));
    const auto factor =
        static_cast<std::uint64_t>(args.get_int("balls-factor"));
    const auto repeat = static_cast<std::uint64_t>(args.get_int("repeat"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto validate_reps =
        static_cast<std::uint32_t>(args.get_int("validate-warmup"));

    if (validate_reps > 0) {
        if (sc.warmup != kdc::core::warmup_mode::fast_forward) {
            throw kdc::cli_error("--validate-warmup compares warmup=ff "
                                 "against warmup=full; add warmup=ff to the "
                                 "scenario");
        }
        const auto result =
            kdc::core::validate_fast_forward(sc, validate_reps, seed);
        const auto print = [](const char* what,
                              const kdc::stats::ks_result& ks) {
            std::cout << "  " << what << ": D=" << ks.statistic
                      << " p=" << ks.p_value << '\n';
        };
        std::cout << "validate-warmup scenario=" << kdc::core::to_string(sc)
                  << " reps=" << result.reps << '\n';
        print("max_load", result.max_load_ks);
        print("gap", result.gap_ks);
        print("loads", result.loads_ks);
        const double worst =
            std::min({result.max_load_ks.p_value, result.gap_ks.p_value,
                      result.loads_ks.p_value});
        if (worst <= 0.001) {
            std::cout << "validate-warmup FAILED: fast-forward "
                         "distinguishable from full warmup (worst p="
                      << worst << ")\n";
            return 1;
        }
        std::cout << "validate-warmup OK: fast-forward indistinguishable "
                     "from full warmup (worst p="
                  << worst << ")\n";
        return 0;
    }
    const std::uint64_t balls = factor * kdc::core::resolved_balls(sc);
    const auto kernel = kdc::core::resolve_kernel(sc);

    // par=round scenarios run their sharded phases on this pool; every
    // other scenario ignores it. Timing only — never the numbers.
    kdc::core::thread_pool pool(
        kdc::core::resolve_thread_count(args.get_threads()));

    double best_seconds = 0.0;
    double final_max = 0.0;
    for (std::uint64_t run = 0; run < std::max<std::uint64_t>(1, repeat);
         ++run) {
        auto process = kdc::core::make_process(sc, seed);
        process.use_pool(&pool);
        const auto start = std::chrono::steady_clock::now();
        process.run_balls(balls);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();
        if (run == 0 || seconds < best_seconds) {
            best_seconds = seconds;
        }
        final_max = process.observe().max_load;
    }
    const double rate = best_seconds > 0.0
                            ? static_cast<double>(balls) / best_seconds
                            : 0.0;
    std::cout << "scenario " << kdc::core::to_string(sc) << "\n"
              << "kernel " << kdc::core::kernel_name(kernel) << ", "
              << balls << " balls: "
              << static_cast<std::uint64_t>(rate) << " balls/s (best of "
              << std::max<std::uint64_t>(1, repeat) << ", max load "
              << final_max << ")\n";
    return 0;
}

} // namespace

// ---------------------------------------------------------------------------
// google-benchmark mode.
// ---------------------------------------------------------------------------

#include <benchmark/benchmark.h>

#include "rng/pcg32.hpp"
#include "rng/sampling.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"

namespace {

void bm_xoshiro256ss(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_xoshiro256ss);

void bm_pcg32(benchmark::State& state) {
    kdc::rng::pcg32 gen(42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_pcg32);

void bm_uniform_below(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    const auto bound = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(kdc::rng::uniform_below(gen, bound));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_uniform_below)->Arg(193)->Arg(1 << 16)->Arg(1 << 30);

void bm_batched_uniform(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    kdc::rng::batched_uniform batched(
        static_cast<std::uint64_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(batched.next(gen));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_batched_uniform)->Arg(193)->Arg(1 << 16)->Arg(1 << 30);

void bm_sample_with_replacement(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    std::vector<std::uint32_t> out(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        kdc::rng::sample_with_replacement(gen, 1 << 16,
                                          std::span<std::uint32_t>(out));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sample_with_replacement)->Arg(4)->Arg(64)->Arg(193);

/// Balls/second for a full (k,d)-choice run at n = 2^16 (per-bin kernel).
void bm_kd_choice(benchmark::State& state) {
    const auto k = static_cast<std::uint64_t>(state.range(0));
    const auto d = static_cast<std::uint64_t>(state.range(1));
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::kd_choice_process process(n, k, d, ++seed);
        process.run_balls(n - (n % k));
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * (n - (n % k)));
}
BENCHMARK(bm_kd_choice)
    ->Args({1, 2})
    ->Args({2, 4})
    ->Args({8, 16})
    ->Args({64, 128})
    ->Args({1, 193})
    ->Args({128, 193})
    ->Args({192, 193});

/// The same runs on the level-compressed kernel: O(max-load) state, one
/// Fenwick walk per probe. Compare against bm_kd_choice per (k,d) pair —
/// and see bm_kd_choice_big for the large-n regime where per-bin loses.
void bm_kd_choice_level(benchmark::State& state) {
    const auto k = static_cast<std::uint64_t>(state.range(0));
    const auto d = static_cast<std::uint64_t>(state.range(1));
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::kd_choice_level_process process(n, k, d, ++seed);
        process.run_balls(n - (n % k));
        benchmark::DoNotOptimize(process.profile().max_level());
    }
    state.SetItemsProcessed(state.iterations() * (n - (n % k)));
}
BENCHMARK(bm_kd_choice_level)
    ->Args({1, 2})
    ->Args({2, 4})
    ->Args({8, 16})
    ->Args({64, 128})
    ->Args({1, 193})
    ->Args({128, 193})
    ->Args({192, 193});

/// The crossover pair: at n = 2^22 the per-bin load vector blows the cache
/// and every probe is a memory stall; the level kernel's state still fits
/// in L1.
void bm_kd_choice_big(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 22;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::kd_choice_process process(n, 8, 16, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_kd_choice_big)->Unit(benchmark::kMillisecond);

void bm_kd_choice_level_big(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 22;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::kd_choice_level_process process(n, 8, 16, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.profile().max_level());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_kd_choice_level_big)->Unit(benchmark::kMillisecond);

void bm_single_choice(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::single_choice_process process(n, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_single_choice);

void bm_single_choice_level(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::single_choice_level_process process(n, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.profile().max_level());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_single_choice_level);

void bm_d_choice_fast_path(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    const auto d = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::d_choice_process process(n, d, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_d_choice_fast_path)->Arg(2)->Arg(4)->Arg(8);

void bm_d_choice_level_fast_path(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    const auto d = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::d_choice_level_process process(n, d, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.profile().max_level());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_d_choice_level_fast_path)->Arg(2)->Arg(4)->Arg(8);

/// Serial repetition sweep baseline for the parallel-runner comparison:
/// a Table-1-style cell, 10 reps of (8,16)-choice at n = 2^15.
void bm_experiment_serial(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 15;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto result = kdc::core::run_kd_experiment(
            n, 8, 16, {.balls = n, .reps = 10, .seed = ++seed});
        benchmark::DoNotOptimize(result.reps.data());
    }
    state.SetItemsProcessed(state.iterations() * 10 * n);
}
BENCHMARK(bm_experiment_serial)->Unit(benchmark::kMillisecond);

/// The same sweep fanned out over a thread pool. Aggregates are bit-identical
/// to the serial baseline; only wall-clock time may differ.
void bm_experiment_parallel(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 15;
    const auto threads = static_cast<unsigned>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto result = kdc::core::run_kd_experiment_parallel(
            n, 8, 16, {.balls = n, .reps = 10, .seed = ++seed}, threads);
        benchmark::DoNotOptimize(result.reps.data());
    }
    state.SetItemsProcessed(state.iterations() * 10 * n);
}
BENCHMARK(bm_experiment_parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_sorted_loads(benchmark::State& state) {
    kdc::core::kd_choice_process process(1 << 16, 2, 4, 7);
    process.run_balls(1 << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kdc::core::sorted_loads_desc(process.loads()));
    }
}
BENCHMARK(bm_sorted_loads);

} // namespace

int main(int argc, char** argv) {
    // `--json` switches to the self-contained kernel-comparison harness,
    // `--scenario` to the single-scenario timer; everything else is
    // google-benchmark's usual CLI.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            return json_main(argc, argv);
        }
    }
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--scenario", 0) == 0) {
            return scenario_main(argc, argv);
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
