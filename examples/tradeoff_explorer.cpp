// Tradeoff explorer: for a message budget of B probes per ball, which
// (k,d) with d/k = B minimizes the maximum load? This walks the k axis at a
// fixed budget and shows the sweet spot the paper identifies (k around
// polylog n — large enough to smooth randomness, small enough that
// d - k + 1 stays large).
//
//   $ ./tradeoff_explorer --n=65536 --budget=2 --reps=10
//
// Each k on the walk is a declarative scenario (core/scenario.hpp);
// --scenario sets shared knobs like the kernel
// (--scenario="kd:kernel=level" explores far larger n).
#include <iostream>
#include <vector>

#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins and balls");
    args.add_option("budget", "2", "message budget = d/k (integer >= 2)");
    args.add_option("reps", "10", "repetitions per configuration");
    args.add_option("seed", "1", "master seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto budget = static_cast<std::uint64_t>(args.get_int("budget"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    if (budget < 2) {
        std::cerr << "budget must be >= 2 (d must exceed k)\n";
        return 1;
    }

    std::cout << "Fixed message budget " << budget
              << " probes/ball at n = " << n
              << ": sweeping k with d = " << budget << "k\n\n";

    kdc::text_table table;
    table.set_header({"k", "d", "mean max load", "max loads seen",
                      "Thm 1 1st term", "Thm 1 2nd term"});

    std::uint64_t cfg_seed = seed;
    for (std::uint64_t k = 1; k * budget <= std::min<std::uint64_t>(n, 8192);
         k *= 2) {
        const std::uint64_t d = budget * k;
        if (d <= k) {
            continue;
        }
        const auto balls = n - (n % k);
        auto sc = merged;
        sc.k = k;
        sc.d = d;
        const auto result = kdc::core::run_scenario_experiment(
            sc, {.balls = balls, .reps = reps, .seed = ++cfg_seed});
        const auto bound = kdc::theory::theorem1_bound(n, k, d);
        table.add_row({std::to_string(k), std::to_string(d),
                       kdc::format_fixed(result.max_load_stats.mean(), 2),
                       result.max_load_set(),
                       kdc::format_fixed(bound.first, 2),
                       kdc::format_fixed(bound.second, 2)});
    }
    std::cout << table << '\n'
              << "Reading the sweep: the first term ln ln n / ln(d-k+1) "
                 "shrinks as k grows (d-k = (budget-1)k\n"
                 "widens), while dk = budget/(budget-1) stays constant — so "
                 "larger k strictly helps until\n"
                 "d approaches n. That is the paper's 'constant max load at "
                 "O(n) messages' regime.\n";
    return 0;
}
