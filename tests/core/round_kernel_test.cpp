#include "core/round_kernel.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <numeric>
#include <vector>

#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::bin_load;
using kdc::core::load_vector;
using kdc::core::place_round;
using kdc::core::placed_ball;
using kdc::core::round_scratch;
using kdc::rng::xoshiro256ss;

std::uint64_t total(const load_vector& loads) {
    return std::accumulate(loads.begin(), loads.end(), std::uint64_t{0});
}

TEST(RoundKernel, PlacesExactlyKBalls) {
    load_vector loads(10, 0);
    xoshiro256ss gen(1);
    round_scratch scratch;
    const std::vector<std::uint32_t> samples{0, 1, 2, 3, 4};
    place_round(loads, samples, 3, gen, scratch);
    EXPECT_EQ(total(loads), 3u);
}

TEST(RoundKernel, ChoosesLeastLoadedWhenSamplesDistinct) {
    load_vector loads{5, 0, 3, 1, 9};
    xoshiro256ss gen(2);
    round_scratch scratch;
    const std::vector<std::uint32_t> samples{0, 1, 2, 3, 4};
    place_round(loads, samples, 2, gen, scratch);
    // Least loaded were bins 1 (load 0) and 3 (load 1).
    EXPECT_EQ(loads[1], 1u);
    EXPECT_EQ(loads[3], 2u);
    EXPECT_EQ(loads[0], 5u);
    EXPECT_EQ(loads[2], 3u);
    EXPECT_EQ(loads[4], 9u);
}

TEST(RoundKernel, MultiplicityRuleCapsBallsPerBin) {
    // Scenario (c) of Section 1 shape: only two distinct bins for 3 balls.
    load_vector loads{0, 0};
    xoshiro256ss gen(3);
    round_scratch scratch;
    // Bin 0 sampled twice, bin 1 sampled twice; place 3 balls.
    const std::vector<std::uint32_t> samples{0, 0, 1, 1};
    place_round(loads, samples, 3, gen, scratch);
    EXPECT_EQ(total(loads), 3u);
    EXPECT_LE(loads[0], 2u);
    EXPECT_LE(loads[1], 2u);
}

TEST(RoundKernel, SlotHeightsFollowOccurrenceIndex) {
    // One bin sampled three times with initial load 5: candidate heights
    // must be 6, 7, 8, and with k = 2 the kept heights are 6 and 7.
    load_vector loads{5};
    xoshiro256ss gen(4);
    round_scratch scratch;
    std::vector<placed_ball> placed;
    const std::vector<std::uint32_t> samples{0, 0, 0};
    place_round(loads, samples, 2, gen, scratch, &placed);
    ASSERT_EQ(placed.size(), 2u);
    EXPECT_EQ(placed[0].height, 6u);
    EXPECT_EQ(placed[1].height, 7u);
    EXPECT_EQ(loads[0], 7u);
}

TEST(RoundKernel, PlacedBallsSortedByHeight) {
    load_vector loads{4, 2, 0, 7, 1};
    xoshiro256ss gen(5);
    round_scratch scratch;
    std::vector<placed_ball> placed;
    const std::vector<std::uint32_t> samples{0, 1, 2, 3, 4};
    place_round(loads, samples, 3, gen, scratch, &placed);
    ASSERT_EQ(placed.size(), 3u);
    for (std::size_t i = 1; i < placed.size(); ++i) {
        EXPECT_LE(placed[i - 1].height, placed[i].height);
    }
}

TEST(RoundKernel, HeightEqualsLoadAfterPlacementForDistinctBins) {
    load_vector loads{3, 1, 4};
    xoshiro256ss gen(6);
    round_scratch scratch;
    std::vector<placed_ball> placed;
    const std::vector<std::uint32_t> samples{0, 1, 2};
    place_round(loads, samples, 2, gen, scratch, &placed);
    for (const auto& ball : placed) {
        EXPECT_EQ(ball.height, loads[ball.bin]);
    }
}

TEST(RoundKernel, KeptSlotConsistency) {
    // If a bin receives j balls, they must be the j lowest slots: final load
    // = initial + j, and heights initial+1 .. initial+j. Stress this with
    // heavy duplication.
    xoshiro256ss gen(7);
    round_scratch scratch;
    for (int trial = 0; trial < 200; ++trial) {
        load_vector loads{2, 2, 2};
        std::vector<placed_ball> placed;
        const std::vector<std::uint32_t> samples{0, 0, 0, 1, 1, 2};
        place_round(loads, samples, 4, gen, scratch, &placed);
        std::map<std::uint32_t, std::vector<bin_load>> by_bin;
        for (const auto& ball : placed) {
            by_bin[ball.bin].push_back(ball.height);
        }
        for (auto& [bin, heights] : by_bin) {
            std::sort(heights.begin(), heights.end());
            for (std::size_t j = 0; j < heights.size(); ++j) {
                EXPECT_EQ(heights[j], 2 + j + 1);
            }
            EXPECT_EQ(loads[bin], 2 + heights.size());
        }
    }
}

TEST(RoundKernel, TieBreakIsUniformAcrossBins) {
    // Four empty bins, k = 1: each should win about 1/4 of the time.
    xoshiro256ss gen(8);
    round_scratch scratch;
    std::vector<std::uint64_t> wins(4, 0);
    constexpr int trials = 40000;
    for (int t = 0; t < trials; ++t) {
        load_vector loads(4, 0);
        std::vector<placed_ball> placed;
        const std::vector<std::uint32_t> samples{0, 1, 2, 3};
        place_round(loads, samples, 1, gen, scratch, &placed);
        ++wins[placed[0].bin];
    }
    for (const auto w : wins) {
        EXPECT_NEAR(static_cast<double>(w), trials / 4.0, 500.0);
    }
}

TEST(RoundKernel, DuplicateSlowPathMatchesInvariants) {
    // Duplicates force the sort-and-group path; totals must still add up.
    xoshiro256ss gen(9);
    round_scratch scratch;
    load_vector loads(5, 0);
    std::uint64_t placed_total = 0;
    for (int round = 0; round < 100; ++round) {
        const std::vector<std::uint32_t> samples{0, 0, 1, 2, 2, 3};
        place_round(loads, samples, 4, gen, scratch);
        placed_total += 4;
    }
    EXPECT_EQ(total(loads), placed_total);
    EXPECT_EQ(loads[4], 0u); // never sampled
}

TEST(RoundKernel, KEqualsDTakesEverySlot) {
    load_vector loads{0, 0, 0};
    xoshiro256ss gen(10);
    round_scratch scratch;
    const std::vector<std::uint32_t> samples{0, 1, 2};
    place_round(loads, samples, 3, gen, scratch);
    EXPECT_EQ(loads, (load_vector{1, 1, 1}));
}

TEST(RoundKernel, ContractViolations) {
    load_vector loads(4, 0);
    xoshiro256ss gen(11);
    round_scratch scratch;
    const std::vector<std::uint32_t> samples{0, 1};
    EXPECT_THROW(place_round(loads, samples, 3, gen, scratch),
                 kdc::contract_violation); // k > slots
    EXPECT_THROW(place_round(loads, samples, 0, gen, scratch),
                 kdc::contract_violation); // k == 0
    const std::vector<std::uint32_t> out_of_range{0, 9};
    EXPECT_THROW(place_round(loads, out_of_range, 1, gen, scratch),
                 kdc::contract_violation);
}

TEST(RoundKernel, EpochWrapAroundStillDetectsDuplicates) {
    // Force the ++epoch == 0 clear-and-restart branch. If the wrap left
    // stale stamps behind, the duplicate bin 0 would not be grouped and its
    // two slots would BOTH sit at height 1 — making loads {2, 0} reachable.
    // Correct grouping gives slots (1, bin0), (2, bin0), (1, bin1): the two
    // kept slots are the height-1 pair, so the outcome is always {1, 1}.
    const std::vector<std::uint32_t> samples{0, 0, 1};
    for (std::uint64_t seed = 0; seed < 32; ++seed) {
        xoshiro256ss gen(seed);
        round_scratch scratch;
        // Warm the stamps (so the wrap path clears a used array), then
        // position the epoch one increment away from wrapping.
        load_vector warm(2, 0);
        place_round(warm, samples, 2, gen, scratch);
        scratch.epoch = std::numeric_limits<std::uint32_t>::max();

        load_vector loads(2, 0);
        place_round(loads, samples, 2, gen, scratch);
        EXPECT_EQ(scratch.epoch, 1u) << "wrap must restart the epoch at 1";
        EXPECT_EQ(loads[0], 1u) << "seed " << seed;
        EXPECT_EQ(loads[1], 1u) << "seed " << seed;
    }
}

TEST(RoundKernel, RoundsAfterEpochWrapStayCorrect) {
    // The round after a wrap runs with epoch 2 against freshly zeroed
    // stamps; duplicate detection must keep working.
    xoshiro256ss gen(7);
    round_scratch scratch;
    const std::vector<std::uint32_t> samples{0, 0, 1};
    load_vector warm(2, 0);
    place_round(warm, samples, 2, gen, scratch); // size the stamp array
    scratch.epoch = std::numeric_limits<std::uint32_t>::max();
    for (int round = 0; round < 4; ++round) {
        load_vector loads(2, 0);
        place_round(loads, samples, 2, gen, scratch);
        EXPECT_EQ(loads[0], 1u) << "round " << round;
        EXPECT_EQ(loads[1], 1u) << "round " << round;
    }
    EXPECT_EQ(scratch.epoch, 4u);
}

TEST(RoundKernel, ScratchReuseAcrossDifferentSizes) {
    xoshiro256ss gen(12);
    round_scratch scratch;
    load_vector small(3, 0);
    const std::vector<std::uint32_t> s1{0, 1, 2};
    place_round(small, s1, 1, gen, scratch);
    load_vector large(100, 0);
    const std::vector<std::uint32_t> s2{10, 20, 30, 40};
    place_round(large, s2, 2, gen, scratch);
    EXPECT_EQ(total(small), 1u);
    EXPECT_EQ(total(large), 2u);
}

} // namespace
