#include "stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::stats::chi_square_gof;
using kdc::stats::chi_square_uniform;
using kdc::stats::dominance_probability;
using kdc::stats::ks_two_sample;

TEST(ChiSquare, PerfectFitHasHighPValue) {
    const std::vector<std::uint64_t> observed{100, 100, 100, 100};
    const auto result = chi_square_uniform(observed);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_GT(result.p_value, 0.99);
}

TEST(ChiSquare, GrossMisfitHasTinyPValue) {
    const std::vector<std::uint64_t> observed{400, 0, 0, 0};
    const auto result = chi_square_uniform(observed);
    EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, HandComputedStatistic) {
    // observed {30, 70}, expected uniform on 100: chi2 = 2*(20^2/50) = 16.
    const std::vector<std::uint64_t> observed{30, 70};
    const auto result = chi_square_uniform(observed);
    EXPECT_NEAR(result.statistic, 16.0, 1e-9);
    EXPECT_EQ(result.dof, 1.0);
}

TEST(ChiSquare, NonUniformExpectedProbabilities) {
    const std::vector<std::uint64_t> observed{50, 25, 25};
    const std::vector<double> probs{0.5, 0.25, 0.25};
    const auto result = chi_square_gof(observed, probs);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
}

TEST(ChiSquare, SparseCellsArePooled) {
    // Expected counts of 1 would break the asymptotics; pooling must absorb
    // them without crashing or producing negative dof.
    const std::vector<std::uint64_t> observed{3, 1, 0, 2, 0, 1, 200};
    const std::vector<double> probs{0.005, 0.005, 0.005, 0.005,
                                    0.005, 0.005, 0.97};
    const auto result = chi_square_gof(observed, probs);
    EXPECT_GE(result.dof, 1.0);
    EXPECT_GE(result.p_value, 0.0);
    EXPECT_LE(result.p_value, 1.0);
}

TEST(ChiSquare, SizeMismatchViolatesContract) {
    const std::vector<std::uint64_t> observed{1, 2};
    const std::vector<double> probs{1.0};
    EXPECT_THROW((void)chi_square_gof(observed, probs),
                 kdc::contract_violation);
}

TEST(KsTwoSample, IdenticalSamplesHaveZeroDistance) {
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    const auto result = ks_two_sample(a, a);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTwoSample, DisjointSamplesHaveDistanceOne) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{10.0, 11.0, 12.0};
    const auto result = ks_two_sample(a, b);
    EXPECT_NEAR(result.statistic, 1.0, 1e-12);
}

TEST(KsTwoSample, SameDistributionAccepted) {
    kdc::rng::xoshiro256ss gen(1);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(kdc::rng::uniform_double(gen));
        b.push_back(kdc::rng::uniform_double(gen));
    }
    const auto result = ks_two_sample(a, b);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
    kdc::rng::xoshiro256ss gen(2);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(kdc::rng::uniform_double(gen));
        b.push_back(kdc::rng::uniform_double(gen) + 0.2);
    }
    const auto result = ks_two_sample(a, b);
    EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTwoSample, EmptySampleViolatesContract) {
    EXPECT_THROW((void)ks_two_sample({}, {1.0}), kdc::contract_violation);
}

TEST(Dominance, EqualSamplesGiveHalf) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(dominance_probability(a, a), 0.5);
}

TEST(Dominance, StrictOrderGivesOne) {
    const std::vector<double> lo{1.0, 2.0};
    const std::vector<double> hi{3.0, 4.0};
    EXPECT_DOUBLE_EQ(dominance_probability(hi, lo), 1.0);
    EXPECT_DOUBLE_EQ(dominance_probability(lo, hi), 0.0);
}

TEST(Dominance, HandComputedMixedCase) {
    // a = {1, 3}, b = {2}: P(a > b) = 1/2, P(a == b) = 0 -> 0.5;
    const std::vector<double> a{1.0, 3.0};
    const std::vector<double> b{2.0};
    EXPECT_DOUBLE_EQ(dominance_probability(a, b), 0.5);
    // a = {2, 3}, b = {2}: one tie (0.5) + one win (1) over 2 pairs = 0.75.
    const std::vector<double> c{2.0, 3.0};
    EXPECT_DOUBLE_EQ(dominance_probability(c, b), 0.75);
}

} // namespace
