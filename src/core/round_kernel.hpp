// One round of the (k,d)-choice process.
//
// The paper resolves the multi-sampling ambiguity (Section 1, scenarios
// (a)-(c)) with the rule "a bin sampled m >= 1 times receives at most m
// balls", equivalently: place d balls sequentially into the d sampled bins,
// then remove the d-k balls of maximal height. This kernel implements that
// rule directly as slot selection:
//
//   * every occurrence of bin b in the sample multiset contributes one
//     candidate slot with height load(b) + occurrence_index;
//   * the k slots of smallest height are kept, ties broken uniformly at
//     random via per-slot 64-bit keys ("ties broken randomly", Section 1.1);
//   * keeping the k smallest is self-consistent: a bin's slots have strictly
//     increasing heights, so a kept slot implies all lower slots of the same
//     bin are kept — exactly "remove the d-k balls with maximal height".
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/types.hpp"
#include "rng/uniform.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

/// Reusable scratch buffers so the per-round hot path never allocates.
struct round_scratch {
    struct slot {
        bin_load height = 0;
        std::uint64_t tie_key = 0;
        std::uint32_t bin = 0;
    };
    std::vector<std::uint32_t> sorted_samples;
    std::vector<slot> slots;
    /// Epoch stamps for O(d) duplicate detection (one entry per bin).
    std::vector<std::uint32_t> stamps;
    std::uint32_t epoch = 0;
};

/// Places `k` balls into `loads` for one round whose probe step sampled the
/// bins in `samples` (a multiset: duplicates are meaningful). Appends the
/// placed balls (bin, height) to `placed` when non-null, in increasing height
/// order. Requires 1 <= k <= samples.size() and all samples < loads.size().
template <typename G>
    requires std::uniform_random_bit_generator<G>
void place_round(load_vector& loads, std::span<const std::uint32_t> samples,
                 std::size_t k, G& gen, round_scratch& scratch,
                 std::vector<placed_ball>* placed = nullptr) {
    KD_EXPECTS(k >= 1);
    KD_EXPECTS_MSG(k <= samples.size(), "need at least k candidate slots");

    // Duplicate samples matter (a bin sampled m times owns m slots), but at
    // n >> d^2 they are rare, so detect them in O(d) with epoch stamps and
    // only fall back to the sort-and-group path when one exists.
    if (scratch.stamps.size() < loads.size()) {
        scratch.stamps.assign(loads.size(), 0);
        scratch.epoch = 0;
    }
    if (++scratch.epoch == 0) { // stamp wrap-around: clear and restart
        std::fill(scratch.stamps.begin(), scratch.stamps.end(), 0u);
        scratch.epoch = 1;
    }
    bool has_duplicates = false;
    for (const std::uint32_t bin : samples) {
        KD_EXPECTS(bin < loads.size());
        if (scratch.stamps[bin] == scratch.epoch) {
            has_duplicates = true;
            break;
        }
        scratch.stamps[bin] = scratch.epoch;
    }

    auto& slots = scratch.slots;
    slots.clear();
    slots.reserve(samples.size());
    if (!has_duplicates) {
        for (const std::uint32_t bin : samples) {
            slots.push_back(round_scratch::slot{
                loads[bin] + 1, static_cast<std::uint64_t>(gen()), bin});
        }
    } else {
        // Group duplicates so each occurrence gets its own slot height.
        auto& sorted = scratch.sorted_samples;
        sorted.assign(samples.begin(), samples.end());
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size();) {
            const std::uint32_t bin = sorted[i];
            bin_load occurrence = 0;
            for (; i < sorted.size() && sorted[i] == bin; ++i) {
                ++occurrence;
                slots.push_back(round_scratch::slot{
                    loads[bin] + occurrence, static_cast<std::uint64_t>(gen()),
                    bin});
            }
        }
    }

    // Keep the k smallest (height, tie_key) slots: select with nth_element
    // (O(d)), then order just the kept prefix (the serialized process of
    // Definition 1 relies on the kept slots being in increasing height
    // order). This keeps the k=1, d=large sweeps of Table 1 cheap.
    const auto by_height_then_key =
        [](const round_scratch::slot& a, const round_scratch::slot& b) {
            if (a.height != b.height) {
                return a.height < b.height;
            }
            return a.tie_key < b.tie_key;
        };
    if (k < slots.size()) {
        std::nth_element(slots.begin(),
                         slots.begin() + static_cast<std::ptrdiff_t>(k - 1),
                         slots.end(), by_height_then_key);
    }
    std::sort(slots.begin(), slots.begin() + static_cast<std::ptrdiff_t>(k),
              by_height_then_key);

    for (std::size_t i = 0; i < k; ++i) {
        loads[slots[i].bin] += 1;
        if (placed != nullptr) {
            placed->push_back(placed_ball{slots[i].bin, slots[i].height});
        }
    }
}

} // namespace kdc::core
