// Special functions needed by the hypothesis tests and the theory oracle:
// regularized incomplete gamma (for chi-square p-values), the Kolmogorov
// distribution tail, and log-factorial helpers (for Stirling inversions of
// the paper's y! <= 48*dk bound).
#pragma once

#include <cstdint>

namespace kdc::stats {

/// Regularized lower incomplete gamma P(a, x) = gamma(a,x)/Gamma(a),
/// a > 0, x >= 0. Series expansion for x < a+1, continued fraction otherwise
/// (Numerical Recipes construction, re-derived here).
[[nodiscard]] double regularized_gamma_p(double a, double x);

/// Upper tail Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

/// CDF of the chi-square distribution with `dof` degrees of freedom.
[[nodiscard]] double chi_square_cdf(double x, double dof);

/// Kolmogorov-Smirnov tail function Q_KS(lambda) = 2 sum_{j>=1} (-1)^{j-1}
/// exp(-2 j^2 lambda^2); the asymptotic p-value of the KS statistic.
[[nodiscard]] double kolmogorov_q(double lambda);

/// Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1]. Lentz
/// continued fraction with the symmetry fallback I_x(a,b) = 1 -
/// I_{1-x}(b,a) for the slow-convergence half (Numerical Recipes
/// construction, re-derived here). Backs the Student-t CDF below.
[[nodiscard]] double regularized_beta(double a, double b, double x);

/// CDF of Student's t distribution with `dof` degrees of freedom.
[[nodiscard]] double student_t_cdf(double t, double dof);

/// Quantile (inverse CDF) of Student's t distribution: the t with
/// student_t_cdf(t, dof) = p, p in (0, 1). Bisection on the CDF —
/// deterministic and accurate to ~1e-12, which is what the adaptive
/// stopping rule's confidence-width decisions require (the decision must be
/// identical on every platform and thread count).
[[nodiscard]] double student_t_quantile(double p, double dof);

/// ln(n!) computed via lgamma.
[[nodiscard]] double log_factorial(std::uint64_t n);

/// Smallest y >= 0 such that y! > bound (bound given as ln(bound)).
/// This inverts the paper's factorial inequalities, e.g. (11): y1! <= 48*dk.
[[nodiscard]] std::uint64_t smallest_factorial_exceeding_log(double log_bound);

} // namespace kdc::stats
