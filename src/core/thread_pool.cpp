#include "core/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "rng/splitmix64.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

namespace {

std::atomic<std::uint64_t> threads_spawned_total{0};

} // namespace

std::uint64_t thread_pool::threads_spawned() noexcept {
    return threads_spawned_total.load(std::memory_order_relaxed);
}

thread_pool::thread_pool(unsigned threads) {
    KD_EXPECTS_MSG(threads >= 1, "a thread pool needs at least one worker");
    deques_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        deques_.push_back(std::make_unique<worker_deque>());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
    threads_spawned_total.fetch_add(threads, std::memory_order_relaxed);
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(control_mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void thread_pool::submit(std::function<void()> job) {
    KD_EXPECTS_MSG(job != nullptr, "cannot submit an empty job");
    const std::size_t slot =
        next_deque_.fetch_add(1, std::memory_order_relaxed) % deques_.size();
    {
        const std::lock_guard<std::mutex> control(control_mutex_);
        KD_EXPECTS_MSG(!stopping_, "pool is shutting down");
        {
            const std::lock_guard<std::mutex> dq(deques_[slot]->mutex);
            deques_[slot]->jobs.push_back(std::move(job));
        }
        ++unclaimed_;
        ++in_flight_;
    }
    work_available_.notify_one();
}

void thread_pool::wait_idle() {
    std::unique_lock<std::mutex> lock(control_mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
    if (first_error_ != nullptr) {
        // First exception wins; clearing it here is what keeps the pool
        // reusable after a throwing batch.
        const std::exception_ptr error = std::exchange(first_error_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

namespace {

/// Shared state of one run_phase call. Held by shared_ptr: helper jobs that
/// only get scheduled after the phase has completed (the caller does not
/// wait for them) find no indices left and just drop their reference.
struct phase_state {
    std::atomic<std::size_t> next{0};      // next unclaimed index
    std::size_t count = 0;
    std::mutex mutex;                      // guards completed + error + cv
    std::condition_variable all_complete;
    std::size_t completed = 0;
    std::exception_ptr error;              // first body exception, if any
};

/// Claims and executes indices until none are left; returns how many this
/// participant finished. A throwing body records the phase's first error
/// and short-circuits the index counter — the failed index still counts as
/// finished so the completion barrier is reached, not deadlocked.
std::size_t drain_phase(phase_state& state,
                        const std::function<void(std::size_t)>& body) {
    std::size_t finished = 0;
    for (;;) {
        const std::size_t index =
            state.next.fetch_add(1, std::memory_order_relaxed);
        if (index >= state.count) {
            return finished;
        }
        try {
            body(index);
        } catch (...) {
            {
                const std::lock_guard<std::mutex> lock(state.mutex);
                if (state.error == nullptr) {
                    state.error = std::current_exception();
                }
            }
            // Abandon the unclaimed remainder: bump the counter past the
            // end so no participant claims another index, and credit this
            // participant with the failed index plus everything the bump
            // skipped — the completion count still reaches state.count, so
            // the barrier is reached, not deadlocked.
            const std::size_t stop = state.next.exchange(
                state.count, std::memory_order_relaxed);
            finished += 1;
            if (stop < state.count) {
                finished += state.count - stop;
            }
            continue;
        }
        ++finished;
    }
}

void record_finished(phase_state& state, std::size_t finished) {
    if (finished == 0) {
        return;
    }
    const std::lock_guard<std::mutex> lock(state.mutex);
    state.completed += finished;
    if (state.completed == state.count) {
        state.all_complete.notify_all();
    }
}

} // namespace

void thread_pool::run_phase(std::size_t count,
                            const std::function<void(std::size_t)>& body) {
    if (count == 0) {
        return;
    }
    auto state = std::make_shared<phase_state>();
    state->count = count;
    // At most one helper per worker beyond the caller; each helper loops
    // over the shared index counter, so a single helper suffices for
    // correctness and the rest only add parallelism.
    const std::size_t helpers =
        std::min<std::size_t>(workers_.size(), count > 1 ? count - 1 : 0);
    for (std::size_t i = 0; i < helpers; ++i) {
        submit([state, &body] {
            // `body` stays alive until the caller returns, and the caller
            // cannot return before every index is finished — any helper
            // still inside drain_phase holds an unfinished index.
            record_finished(*state, drain_phase(*state, body));
        });
    }
    record_finished(*state, drain_phase(*state, body));
    std::unique_lock<std::mutex> lock(state->mutex);
    state->all_complete.wait(lock,
                             [&] { return state->completed == state->count; });
    if (state->error != nullptr) {
        const std::exception_ptr error = state->error;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void thread_pool::run_ranges(
    std::uint64_t total, std::size_t parts,
    const std::function<void(std::size_t, std::uint64_t, std::uint64_t)>&
        body) {
    if (total == 0 || parts == 0) {
        return;
    }
    run_phase(parts, [total, parts, &body](std::size_t part) {
        const auto [begin, end] = phase_range(total, parts, part);
        body(part, begin, end);
    });
}

std::pair<std::uint64_t, std::uint64_t>
thread_pool::phase_range(std::uint64_t total, std::size_t parts,
                         std::size_t part) noexcept {
    const std::uint64_t base = total / parts;
    const std::uint64_t extra = total % parts;
    const std::uint64_t begin =
        part * base + std::min<std::uint64_t>(part, extra);
    return {begin, begin + base + (part < extra ? 1 : 0)};
}

bool thread_pool::try_pop_front(std::size_t queue_index,
                                std::function<void()>& job) {
    auto& dq = *deques_[queue_index];
    const std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty()) {
        return false;
    }
    job = std::move(dq.jobs.front());
    dq.jobs.pop_front();
    return true;
}

bool thread_pool::try_steal_back(std::size_t queue_index,
                                 std::function<void()>& job) {
    auto& dq = *deques_[queue_index];
    const std::lock_guard<std::mutex> lock(dq.mutex);
    if (dq.jobs.empty()) {
        return false;
    }
    job = std::move(dq.jobs.back());
    dq.jobs.pop_back();
    return true;
}

void thread_pool::worker_loop(unsigned index) {
    // Victim selection only needs decorrelation between workers, never
    // reproducibility: a per-worker SplitMix64 stream is plenty.
    rng::splitmix64 victim_rng(rng::derive_seed(0x5745454Bu, index));
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(control_mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || unclaimed_ > 0; });
            if (unclaimed_ == 0) {
                return; // stopping_ and every job claimed
            }
            // Claim a ticket: exactly one pushed-but-untaken job is now
            // reserved for this worker, so the scan below must succeed.
            --unclaimed_;
        }
        std::function<void()> job;
        while (!try_pop_front(index, job)) {
            const std::size_t start =
                static_cast<std::size_t>(victim_rng()) % deques_.size();
            bool stolen = false;
            for (std::size_t i = 0; i < deques_.size() && !stolen; ++i) {
                const std::size_t victim = (start + i) % deques_.size();
                if (victim == index) {
                    continue;
                }
                stolen = try_steal_back(victim, job);
            }
            if (stolen) {
                break;
            }
            // A reserved job always sits in some deque (push and ticket
            // count share one critical section), but concurrent claimers
            // can empty a deque behind this scan while a new job lands in
            // one already visited; yield and rescan.
            std::this_thread::yield();
        }
        try {
            job();
        } catch (...) {
            const std::lock_guard<std::mutex> lock(control_mutex_);
            if (first_error_ == nullptr) {
                first_error_ = std::current_exception();
            }
        }
        {
            const std::lock_guard<std::mutex> lock(control_mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

unsigned resolve_thread_count(unsigned requested) noexcept {
    if (requested != 0) {
        return requested;
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware != 0 ? hardware : 1;
}

thread_pool& persistent_pool(unsigned threads) {
    // The unique_ptr (not a plain static pool) makes the resize path
    // explicit: same resolved size -> hand back the live pool, different
    // size -> drain, join and respawn. Destroyed on process exit like any
    // other function-local static.
    static std::mutex pool_mutex;
    static std::unique_ptr<thread_pool> pool;

    const unsigned resolved = resolve_thread_count(threads);
    const std::lock_guard<std::mutex> lock(pool_mutex);
    if (!pool || pool->size() != resolved) {
        pool.reset(); // join the old workers before spawning replacements
        pool = std::make_unique<thread_pool>(resolved);
    }
    return *pool;
}

} // namespace kdc::core
