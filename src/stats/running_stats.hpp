// Streaming moments via Welford's algorithm: numerically stable mean and
// variance in one pass, plus min/max. Used to aggregate per-repetition
// metrics (max load, gap, response time, ...) without storing every sample.
#pragma once

#include <cstdint>
#include <limits>

#include "support/contracts.hpp"

namespace kdc::stats {

class running_stats {
public:
    void push(double x) noexcept {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        const double delta2 = x - mean_;
        m2_ += delta * delta2;
        if (x < min_) {
            min_ = x;
        }
        if (x > max_) {
            max_ = x;
        }
    }

    /// Merges another accumulator (parallel aggregation; Chan et al.).
    void merge(const running_stats& other) noexcept {
        if (other.count_ == 0) {
            return;
        }
        if (count_ == 0) {
            *this = other;
            return;
        }
        const double total =
            static_cast<double>(count_) + static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                               static_cast<double>(other.count_) / total;
        mean_ += delta * static_cast<double>(other.count_) / total;
        count_ += other.count_;
        if (other.min_ < min_) {
            min_ = other.min_;
        }
        if (other.max_ > max_) {
            max_ = other.max_;
        }
    }

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

    [[nodiscard]] double mean() const {
        KD_EXPECTS(count_ > 0);
        return mean_;
    }

    /// Unbiased sample variance (n-1 denominator). Requires >= 2 samples.
    [[nodiscard]] double variance() const {
        KD_EXPECTS(count_ >= 2);
        return m2_ / static_cast<double>(count_ - 1);
    }

    /// Population variance (n denominator). Requires >= 1 sample.
    [[nodiscard]] double population_variance() const {
        KD_EXPECTS(count_ >= 1);
        return m2_ / static_cast<double>(count_);
    }

    [[nodiscard]] double stddev() const;

    [[nodiscard]] double min() const {
        KD_EXPECTS(count_ > 0);
        return min_;
    }

    [[nodiscard]] double max() const {
        KD_EXPECTS(count_ > 0);
        return max_;
    }

    /// Half-width of the normal-approximation confidence interval for the
    /// mean at the given z value (1.96 ~ 95%). Requires >= 2 samples.
    [[nodiscard]] double mean_ci_halfwidth(double z = 1.96) const;

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace kdc::stats
