#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "stats/hypothesis.hpp"

namespace {

using kdc::core::compute_load_metrics;
using kdc::core::kd_choice_process;
using kdc::core::probe_mode;

TEST(ProbeMode, DefaultIsWithReplacement) {
    kd_choice_process process(16, 2, 4, 1);
    EXPECT_EQ(process.probes(), probe_mode::with_replacement);
}

TEST(ProbeMode, WithoutReplacementPlacesAllBalls) {
    kd_choice_process process(128, 2, 4, 3);
    process.set_probe_mode(probe_mode::without_replacement);
    process.run_balls(128);
    const auto& loads = process.loads();
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), std::uint64_t{0}),
              128u);
}

TEST(ProbeMode, WithoutReplacementDeterministic) {
    kd_choice_process a(64, 2, 4, 9);
    kd_choice_process b(64, 2, 4, 9);
    a.set_probe_mode(probe_mode::without_replacement);
    b.set_probe_mode(probe_mode::without_replacement);
    a.run_balls(64);
    b.run_balls(64);
    EXPECT_EQ(a.loads(), b.loads());
}

TEST(ProbeMode, WithoutReplacementDEqualsNIsPerfectlyInformed) {
    // Probing all n bins without replacement every round means the k balls
    // always go to the k globally least loaded bins: with k | n the final
    // allocation is perfectly flat.
    kd_choice_process process(16, 4, 16, 5);
    process.set_probe_mode(probe_mode::without_replacement);
    process.run_balls(16);
    const auto metrics = compute_load_metrics(process.loads());
    EXPECT_EQ(metrics.max_load, 1u);
    EXPECT_EQ(metrics.min_load, 1u);
}

TEST(ProbeMode, WithoutReplacementNeverWorseOnAverage) {
    // Distinct probes strictly enlarge the candidate set relative to
    // duplicated probes, so the mean max load cannot be (meaningfully)
    // worse. Small n makes duplicates frequent enough to measure.
    double with_sum = 0.0;
    double without_sum = 0.0;
    constexpr int reps = 80;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
        kd_choice_process with(64, 2, 8, 100 + seed);
        with.run_balls(64 * 4);
        with_sum += static_cast<double>(
            compute_load_metrics(with.loads()).max_load);

        kd_choice_process without(64, 2, 8, 100 + seed);
        without.set_probe_mode(probe_mode::without_replacement);
        without.run_balls(64 * 4);
        without_sum += static_cast<double>(
            compute_load_metrics(without.loads()).max_load);
    }
    EXPECT_LE(without_sum, with_sum + 0.1 * reps);
}

TEST(ProbeMode, LargeNDistributionsIndistinguishable) {
    // At n >> d^2 duplicates are rare, so the two modes agree in
    // distribution (KS on max loads).
    std::vector<double> with_max;
    std::vector<double> without_max;
    for (std::uint64_t seed = 0; seed < 120; ++seed) {
        kd_choice_process with(1024, 2, 4, 300 + seed);
        with.run_balls(1024);
        with_max.push_back(static_cast<double>(
            compute_load_metrics(with.loads()).max_load));

        kd_choice_process without(1024, 2, 4, 700 + seed);
        without.set_probe_mode(probe_mode::without_replacement);
        without.run_balls(1024);
        without_max.push_back(static_cast<double>(
            compute_load_metrics(without.loads()).max_load));
    }
    EXPECT_GT(kdc::stats::ks_two_sample(with_max, without_max).p_value, 1e-3);
}

} // namespace
