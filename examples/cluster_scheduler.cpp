// Cluster job scheduling with shared probing (Section 1.3 of the paper).
//
// A job = k parallel tasks; its response time is decided by its slowest
// task. This example schedules a stream of jobs on a simulated cluster and
// compares probing strategies at your chosen utilization:
//
//   $ ./cluster_scheduler --workers=128 --k=8 --util=0.7
//   $ ./cluster_scheduler --scenario="kd:n=128,k=8,d=16" --util=0.7
//
// Strategies: random, per-task d-choice (Sparrow-style), (k,d)-choice
// shared probing, and the Section 7 greedy variant. The scenario string
// (core/scenario.hpp) maps onto the cluster: n = workers, k = tasks per
// job, d = probe pool per job.
#include <iostream>

#include "core/scenario.hpp"
#include "sched/scheduler.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("workers", "128", "number of worker machines");
    args.add_option("jobs", "10000", "jobs to schedule");
    args.add_option("k", "8", "parallel tasks per job");
    args.add_option("d", "16", "probe pool per job for batch strategies");
    args.add_option("util", "0.7", "target cluster utilization (0,1)");
    args.add_option("seed", "1", "simulation seed");
    args.add_scenario_option();
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto jobs = static_cast<std::uint64_t>(args.get_int("jobs"));
    const double util = args.get_double("util");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario sc;
    sc.n = static_cast<std::uint64_t>(args.get_int("workers"));
    sc.k = static_cast<std::uint64_t>(args.get_int("k"));
    sc.d = static_cast<std::uint64_t>(args.get_int("d"));
    const auto merged = kdc::core::scenario_from_cli(args, sc);
    const auto workers = merged.n;
    const auto k = merged.k;
    const auto d = merged.d;

    using kdc::sched::probe_strategy;

    kdc::sched::scheduler_config base;
    base.workers = workers;
    base.jobs = jobs;
    base.tasks_per_job = k;
    base.mean_service = 1.0;
    base.arrival_rate = util * static_cast<double>(workers) /
                        static_cast<double>(k);
    base.seed = seed;

    std::cout << "Scheduling " << jobs << " jobs of " << k << " tasks on "
              << workers << " workers at utilization "
              << kdc::format_fixed(util, 2) << "\n\n";

    kdc::text_table table;
    table.set_header({"strategy", "mean resp", "median", "p99", "max",
                      "probes/job"});
    table.set_align(0, kdc::table_align::left);

    struct run_case {
        const char* label;
        probe_strategy strategy;
        std::uint64_t probes;
    };
    const run_case cases[] = {
        {"random", probe_strategy::random_worker, 1},
        {"per-task d-choice (d=2)", probe_strategy::per_task_d_choice, 2},
        {"(k,d)-choice shared", probe_strategy::batch_kd_choice, d},
        {"batch greedy (Sec. 7)", probe_strategy::batch_greedy, d},
    };
    for (const auto& c : cases) {
        auto config = base;
        config.strategy = c.strategy;
        config.probes = c.probes;
        const auto result = kdc::sched::simulate(config);
        table.add_row(
            {c.label, kdc::format_fixed(result.response_time.mean, 3),
             kdc::format_fixed(result.response_time.median, 2),
             kdc::format_fixed(result.response_time.p99, 2),
             kdc::format_fixed(result.response_time.max, 2),
             kdc::format_fixed(static_cast<double>(result.probe_messages) /
                                   static_cast<double>(jobs), 1)});
    }
    std::cout << table << '\n'
              << "Note the message column: (k,d) shared probing issues d "
                 "probes per job; per-task\n"
                 "d-choice issues d probes per TASK (k times more for the "
                 "same d).\n";
    return 0;
}
