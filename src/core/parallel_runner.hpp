// Thread-pool version of the multi-repetition experiment runner.
//
// Repetitions of an experiment are embarrassingly parallel: rep r depends
// only on derive_seed(master, r), never on rep r-1. run_parallel_experiment
// exploits that by fanning the reps of one experiment_config out across a
// pool of hardware threads, then folding the per-repetition results into the
// aggregate *in repetition order*. Because both the per-rep seeds and the
// fold order are independent of the thread count, the returned
// experiment_result is bit-identical to the serial run_experiment — at 1, 8,
// or 64 threads. That is the property the Table-1 / frontier sweeps rely on:
// `--threads` changes wall-clock time only, never a reported number.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/runner.hpp"

namespace kdc::core {

/// Work-stealing pool of worker threads. Each worker owns a deque of jobs;
/// submit() distributes jobs round-robin across the deques, a worker drains
/// its own deque front-first (FIFO) and, when empty, steals from the back of
/// a random victim's deque. The external API is unchanged from the original
/// FIFO pool — submit() and wait_idle() are all the experiment and sweep
/// runners need — and scheduling order never influences results: callers
/// fold per-job outputs in a fixed order of their own.
///
/// Jobs must not throw (run_repetitions and run_sweep wrap user code and
/// capture the first exception themselves). submit() is safe from any
/// thread, including from inside a running job; wait_idle() must be called
/// from outside the pool's own workers.
class thread_pool {
public:
    /// Spawns `threads` workers (>= 1 enforced by contract).
    explicit thread_pool(unsigned threads);

    /// Joins all workers; pending jobs are still drained first.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Enqueues a job for execution on some worker.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished executing.
    void wait_idle();

    [[nodiscard]] unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

private:
    /// One worker's job deque. Guarded by its own mutex so pushes, local
    /// pops and steals on different workers never contend with each other;
    /// the control mutex below is only taken for the brief counter updates.
    struct worker_deque {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void worker_loop(unsigned index);
    [[nodiscard]] bool try_pop_front(std::size_t queue_index,
                                     std::function<void()>& job);
    [[nodiscard]] bool try_steal_back(std::size_t queue_index,
                                      std::function<void()>& job);

    std::vector<std::unique_ptr<worker_deque>> deques_;

    // Counter invariant (both guarded by control_mutex_): a job is pushed to
    // a deque and counted in one critical section, so once a worker claims a
    // ticket (decrements unclaimed_) a matching job is guaranteed to sit in
    // some deque until that worker takes it.
    std::mutex control_mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::size_t unclaimed_ = 0;  // pushed but not yet claimed by a worker
    std::size_t in_flight_ = 0;  // unclaimed + currently executing jobs
    bool stopping_ = false;

    std::atomic<std::size_t> next_deque_{0};  // round-robin submit cursor
    std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count request: 0 means "all hardware
/// threads" (at least 1 even if the runtime cannot tell), anything else is
/// taken literally.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

/// Optional progress hook for grid runs: called after every finished
/// (cell, rep) job with the number of completed jobs and the grid total.
/// Calls are serialized by an internal mutex and `completed` is strictly
/// increasing, but they come from worker threads — write to stderr, never
/// to the stream carrying the run's deterministic output.
using sweep_progress =
    std::function<void(std::size_t completed, std::size_t total)>;

/// Low-level grid primitive: runs reps_per_cell[c] jobs for every cell c on
/// the shared pool and returns the per-cell, per-rep results in a
/// grid[cell][rep] layout. `run(cell, rep)` must be callable concurrently
/// from many threads and is invoked exactly once per pair, in no particular
/// order; the *placement* of results is by index, so folding grid[c] in rep
/// order afterwards is deterministic. Rethrows the first exception any job
/// (or the progress hook) threw — the grid still runs to completion so the
/// pool is quiescent on return.
///
/// run_parallel_experiment below is the one-cell case; core/sweep.hpp
/// builds named multi-cell sweeps and shared emission on top.
template <typename T, typename RunFn>
[[nodiscard]] std::vector<std::vector<T>>
run_grid(thread_pool& pool, std::span<const std::uint32_t> reps_per_cell,
         RunFn&& run, const sweep_progress& progress = {}) {
    // std::vector<bool> packs bits: adjacent rep slots would share a byte
    // and concurrent writes from workers would race. Wrap bools in a struct.
    static_assert(!std::is_same_v<T, bool>,
                  "run_grid<bool> is unsafe: vector<bool> slots are not "
                  "independent objects");
    std::vector<std::vector<T>> grid(reps_per_cell.size());
    std::size_t total = 0;
    for (std::size_t c = 0; c < reps_per_cell.size(); ++c) {
        KD_EXPECTS_MSG(reps_per_cell[c] >= 1,
                       "every grid cell needs at least one repetition");
        grid[c].resize(reps_per_cell[c]);
        total += reps_per_cell[c];
    }
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::size_t completed = 0;
    std::mutex progress_mutex;
    auto capture_error = [&] {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) {
            first_error = std::current_exception();
        }
    };
    for (std::size_t c = 0; c < grid.size(); ++c) {
        for (std::uint32_t rep = 0; rep < reps_per_cell[c]; ++rep) {
            pool.submit([&, c, rep] {
                try {
                    grid[c][rep] = run(c, rep);
                } catch (...) {
                    capture_error();
                }
                if (progress) {
                    // Pool jobs must not throw; a throwing hook is captured
                    // like a failing repetition.
                    try {
                        const std::lock_guard<std::mutex> lock(progress_mutex);
                        progress(++completed, total);
                    } catch (...) {
                        capture_error();
                    }
                }
            });
        }
    }
    pool.wait_idle();
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    return grid;
}

/// Parallel counterpart of run_experiment: the one-cell run_grid. The
/// factory must be callable concurrently from multiple threads (every
/// factory in this repo is: it only captures experiment parameters by
/// value). `threads` = 0 uses all hardware threads; the pool never holds
/// more workers than reps.
///
/// Guarantee: the result — reps vector, histogram, and every running_stats
/// aggregate — is bit-identical to run_experiment(config, factory).
template <typename Factory>
[[nodiscard]] experiment_result
run_parallel_experiment(const experiment_config& config, Factory&& factory,
                        unsigned threads = 0) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);

    const unsigned resolved = resolve_thread_count(threads);
    const unsigned workers =
        std::min<unsigned>(resolved, config.reps);
    thread_pool pool(workers);
    const std::uint32_t one_cell[1]{config.reps};
    auto grid = run_grid<repetition_result>(
        pool, one_cell, [&](std::size_t, std::uint32_t rep) {
            return run_one_repetition(rng::derive_seed(config.seed, rep),
                                      config.balls, factory);
        });

    // Fold in repetition order: running_stats and the histogram see exactly
    // the sequence the serial runner feeds them, so aggregates match bitwise.
    experiment_result out;
    out.reps = std::move(grid[0]);
    for (const auto& r : out.reps) {
        accumulate_repetition(out, r);
    }
    return out;
}

/// Parallel counterparts of the serial convenience runners. Same defaults:
/// balls = 0 means "as many whole rounds as fit n balls".
[[nodiscard]] experiment_result
run_kd_experiment_parallel(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           const experiment_config& config,
                           unsigned threads = 0);

[[nodiscard]] experiment_result
run_single_choice_experiment_parallel(std::uint64_t n,
                                      const experiment_config& config,
                                      unsigned threads = 0);

[[nodiscard]] experiment_result
run_d_choice_experiment_parallel(std::uint64_t n, std::uint64_t d,
                                 const experiment_config& config,
                                 unsigned threads = 0);

} // namespace kdc::core
