// Reproduces Figure 1 of the paper: the sorted bin-load vector of the
// (k,d)-choice process, with the landmark beta0 = n / (6 dk) at which the
// upper-bound analysis (Section 4) splits the maximum load into
//   B_1 = B_{beta0} + (B_1 - B_{beta0}).
//
// The paper's figure is schematic; this harness prints the *measured*
// profile B_x at geometrically spaced ranks x, the measured values of both
// decomposition terms, and the theory predictions for each term
// (Theorem 3 for B_{beta0}, Theorem 4 for B_1 - B_{beta0}).
//
// It also prints the nu_y profile against the Lemma 2 / Theorem 3 style
// envelope nu_y <= 8n / y!.
//
// Each repetition produces a whole sorted-load profile, so the bench sits
// on the execution engine's run_engine_grid (core/engine.hpp): repetitions
// run on the process-wide persistent pool and fold in repetition order, so
// output is bit-identical at any --threads value. Under --adaptive the
// confidence_width rule monitors the per-repetition max load B_1.
//
//   ./fig1_sorted_load [--n=196608] [--k=4] [--d=8] [--seed=1] [--reps=5]
//                      [--threads=0] [--csv]
//                      [--scenario "kd:n=...,kernel=level"]
//                      [--adaptive --ci-width=0.4 --max-reps=40]
//
// The repetition body runs a declarative scenario (core/scenario.hpp)
// through make_process, so the profile works on any kernel (the level
// kernel's sorted profile is lossless) and any policy; --scenario
// overrides the legacy flags key by key, byte-identically for equivalent
// settings.
#include <algorithm>
#include <array>
#include <cmath>
#include <iostream>

#include "core/kdchoice.hpp"
#include "rank_profile.hpp"
#include "stats/running_stats.hpp"
#include "stats/special_functions.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

namespace {

struct rep_profile {
    std::vector<double> at_ranks;
    std::vector<std::uint64_t> nu;
    double b1 = 0.0;
    double b_beta0 = 0.0;
    double gap = 0.0;
    double messages = 0.0;
};

/// nu_y (bins with load >= y) from a descending sorted load vector —
/// identical to core::nu_profile on integer loads, and kernel-agnostic.
std::vector<std::uint64_t> nu_from_sorted(const std::vector<double>& sorted) {
    const double max = sorted.empty() ? 0.0 : sorted.front();
    std::vector<std::uint64_t> nu(static_cast<std::size_t>(max) + 1, 0);
    nu[0] = sorted.size();
    for (std::size_t y = 1; y < nu.size(); ++y) {
        const auto first_below = std::partition_point(
            sorted.begin(), sorted.end(), [y](double load) {
                return load >= static_cast<double>(y);
            });
        nu[y] = static_cast<std::uint64_t>(
            std::distance(sorted.begin(), first_below));
    }
    return nu;
}

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("k", "4", "balls per round");
    args.add_option("d", "8", "bins probed per round");
    args.add_option("reps", "5", "independent repetitions to average");
    args.add_option("seed", "1", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (rank, mean B_x, landmark)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = static_cast<std::uint64_t>(args.get_int("d"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto k = merged.k;
    const auto d = merged.d;

    const double dk = kdc::theory::dk_ratio(k, d);
    const auto beta0 = static_cast<std::uint64_t>(
        std::max(1.0, kdc::theory::beta0_landmark(n, k, d)));

    // Geometrically spaced ranks plus the landmarks.
    std::vector<std::uint64_t> ranks{1};
    for (std::uint64_t x = 2; x < n; x = x * 3 / 2 + 1) {
        ranks.push_back(x);
    }
    ranks.push_back(beta0);
    ranks.push_back(n);
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

    const auto balls = kdc::core::resolved_balls(merged);
    const std::array<std::uint32_t, 1> reps_per_cell{reps};
    auto& pool = kdc::core::persistent_pool(args.get_threads());
    const auto grid = kdc::core::run_engine_grid<rep_profile>(
        pool, reps_per_cell,
        [&ranks, &merged, seed, balls, beta0](std::size_t,
                                              std::uint32_t rep) {
            auto process = kdc::core::make_process(
                merged, kdc::rng::derive_seed(seed, rep));
            process.run_balls(balls);
            const auto sorted = process.sorted_loads();
            rep_profile profile;
            profile.at_ranks.reserve(ranks.size());
            for (const auto rank : ranks) {
                profile.at_ranks.push_back(sorted[rank - 1]);
            }
            profile.b1 = sorted.front();
            profile.b_beta0 = sorted[beta0 - 1];
            profile.nu = nu_from_sorted(sorted);
            const auto obs = process.observe();
            profile.gap = obs.gap;
            profile.messages = static_cast<double>(obs.messages);
            return profile;
        },
        // Adaptive mode monitors the scenario's metric per repetition
        // (default: the max load B_1).
        [metric = merged.metric](std::size_t, const rep_profile& profile) {
            switch (metric) {
            case kdc::core::metric_kind::gap:
                return profile.gap;
            case kdc::core::metric_kind::messages:
                return profile.messages;
            case kdc::core::metric_kind::max_load:
                break;
            }
            return profile.b1;
        },
        kdc::core::stopping_rule_from_cli(args));

    // Fold in repetition order (grid[0] is rep-ordered by construction).
    std::vector<kdc::stats::running_stats> profile(ranks.size());
    kdc::stats::running_stats b1_stats;
    kdc::stats::running_stats b_beta0_stats;
    std::vector<kdc::stats::running_stats> nu_stats;
    for (const auto& rep : grid[0]) {
        for (std::size_t i = 0; i < ranks.size(); ++i) {
            profile[i].push(rep.at_ranks[i]);
        }
        b1_stats.push(rep.b1);
        b_beta0_stats.push(rep.b_beta0);
        if (rep.nu.size() > nu_stats.size()) {
            nu_stats.resize(rep.nu.size());
        }
        for (std::size_t y = 0; y < nu_stats.size(); ++y) {
            nu_stats[y].push(
                y < rep.nu.size() ? static_cast<double>(rep.nu[y]) : 0.0);
        }
    }

    std::cout << "Figure 1: sorted bin load vector of (" << k << "," << d
              << ")-choice, n = " << n << ", averaged over "
              << grid[0].size() << " runs\n"
              << "dk = d/(d-k) = " << kdc::format_fixed(dk, 3)
              << ", landmark beta0 = n/(6 dk) = " << beta0 << "\n\n";

    // Shared emission path: the same columns render the text table and the
    // --csv output (bench/rank_profile.hpp).
    std::vector<kdc_bench::rank_row> rows;
    rows.reserve(ranks.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::string note;
        if (ranks[i] == beta0) {
            note = "<- beta0 = n/(6 dk)";
        } else if (ranks[i] == 1) {
            note = "<- max load B_1";
        }
        rows.push_back({ranks[i], profile[i].mean(), std::move(note)});
    }
    const auto emitter = kdc_bench::make_rank_profile_emitter();
    emitter.write_table(std::cout, rows);

    // The decomposition of Section 4 with its two theorem bounds.
    const auto bound = kdc::theory::theorem1_bound(n, k, d);
    const double second = kdc::theory::second_term(k, d);
    std::cout << "Decomposition B_1 = B_{beta0} + (B_1 - B_{beta0}):\n"
              << "  measured B_{beta0}        = "
              << kdc::format_fixed(b_beta0_stats.mean(), 2)
              << "   (Theorem 3 predicts O(1) for dk = O(1), else ~ ln dk / "
                 "ln ln dk = "
              << kdc::format_fixed(second, 2) << ")\n"
              << "  measured B_1 - B_{beta0}  = "
              << kdc::format_fixed(b1_stats.mean() - b_beta0_stats.mean(), 2)
              << "   (Theorem 4 predicts <= ln ln n / ln(d-k+1) + O(1) = "
              << kdc::format_fixed(bound.first, 2) << " + O(1))\n"
              << "  measured B_1              = "
              << kdc::format_fixed(b1_stats.mean(), 2) << "\n\n";

    // nu_y profile against the 8n/y! envelope (Lemma 2 via Lemma 3).
    kdc::text_table nu_table;
    nu_table.set_header({"y", "nu_y (mean)", "8n/y! envelope"});
    for (std::size_t y = 1; y < nu_stats.size(); ++y) {
        const double envelope =
            8.0 * static_cast<double>(n) /
            std::exp(kdc::stats::log_factorial(y));
        nu_table.add_row({std::to_string(y),
                          kdc::format_fixed(nu_stats[y].mean(), 2),
                          kdc::format_general(envelope, 4)});
    }
    std::cout << "nu_y (bins with load >= y) vs the Lemma 2 envelope:\n"
              << nu_table;

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, rows);
    }
    return 0;
}
