// Snapshot integrity: the CRC-gated format-v2 envelope must reject EVERY
// single-byte corruption and EVERY truncation of a valid snapshot with a
// precise cli_error (the byte-flip fuzz loops below literally try them
// all), the weighted profile must round-trip exactly, and the snapshot
// stage's journal must replay committed stages byte for byte.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/fault_injection.hpp"
#include "core/level_profile.hpp"
#include "core/snapshot_stage.hpp"
#include "core/weighted.hpp"
#include "support/cli.hpp"
#include "support/crc32.hpp"

namespace {

using kdc::arg_parser;
using kdc::cli_error;
using kdc::core::level_profile;
using kdc::core::weight_profile;

template <typename Load>
void expect_every_corruption_rejected(const std::string& valid, Load load) {
    // Any single-byte change is a burst error of at most 8 bits, which
    // CRC-32 detects unconditionally — so every mutation must throw, no
    // matter which byte and no matter the new value.
    const std::array<unsigned char, 3> masks{0x01, 0x80, 0xFF};
    for (std::size_t pos = 0; pos < valid.size(); ++pos) {
        for (const unsigned char mask : masks) {
            std::string corrupt = valid;
            corrupt[pos] = static_cast<char>(corrupt[pos] ^ mask);
            EXPECT_THROW((void)load(corrupt), cli_error)
                << "byte " << pos << " xor 0x" << std::hex << +mask;
        }
    }
    // Every proper prefix is a truncation; all must be rejected too.
    for (std::size_t len = 0; len < valid.size(); ++len) {
        EXPECT_THROW((void)load(valid.substr(0, len)), cli_error)
            << "truncated to " << len << " bytes";
    }
}

TEST(SnapshotIntegrity, EveryLevelProfileCorruptionIsRejected) {
    const auto profile =
        level_profile::from_loads({7, 0, 3, 3, 1, 0, 0, 2, 2, 2});
    std::ostringstream out;
    profile.save(out);
    const std::string valid = out.str();
    expect_every_corruption_rejected(valid, [](const std::string& text) {
        std::istringstream in(text);
        return level_profile::load(in);
    });
    // Sanity: the untouched bytes still load.
    std::istringstream in(valid);
    EXPECT_TRUE(level_profile::load(in) == profile);
}

TEST(SnapshotIntegrity, EveryWeightProfileCorruptionIsRejected) {
    kdc::core::weighted_kd_level_process process(
        64, 2, 4, 33, kdc::core::uniform_weights(0.5, 2.0));
    process.run_balls(128);
    std::ostringstream out;
    process.profile().save(out);
    expect_every_corruption_rejected(out.str(), [](const std::string& text) {
        std::istringstream in(text);
        return weight_profile::load(in);
    });
}

TEST(SnapshotIntegrity, WeightProfileRoundTripsExactly) {
    kdc::core::weighted_kd_level_process process(
        128, 2, 4, 7, kdc::core::pareto_weights(2.5, 1.0));
    process.run_balls(512);
    const weight_profile& original = process.profile();

    std::stringstream snapshot;
    original.save(snapshot);
    const weight_profile restored = weight_profile::load(snapshot);
    EXPECT_EQ(restored.n(), original.n());
    EXPECT_EQ(restored.remaining_bins(), original.remaining_bins());
    EXPECT_DOUBLE_EQ(restored.total_weight(), original.total_weight());
    // max_digits10 output must reproduce every distinct value EXACTLY.
    EXPECT_EQ(restored.to_sorted_weights(), original.to_sorted_weights());

    // And a reloaded profile serializes to the same bytes (stable format).
    std::ostringstream again;
    restored.save(again);
    EXPECT_EQ(again.str(), snapshot.str());
}

TEST(SnapshotIntegrity, WeightProfileLoadRejectsSemanticErrors) {
    auto with_crc = [](const std::string& body) {
        char hex[16];
        std::snprintf(hex, sizeof hex, "%08x", kdc::crc32(body));
        return body + "crc32 " + hex + "\n";
    };
    auto load_of = [](const std::string& text) {
        std::istringstream in(text);
        return weight_profile::load(in);
    };
    // Out-of-order values.
    EXPECT_THROW((void)load_of(with_crc(
                     "kdc-weight-profile 1\n4 2\n2 2\n1 2\n")),
                 cli_error);
    // Repeated value.
    EXPECT_THROW((void)load_of(with_crc(
                     "kdc-weight-profile 1\n4 2\n1 2\n1 2\n")),
                 cli_error);
    // Counts that do not sum to n.
    EXPECT_THROW((void)load_of(with_crc(
                     "kdc-weight-profile 1\n4 2\n1 1\n2 1\n")),
                 cli_error);
    // Negative and non-finite values.
    EXPECT_THROW((void)load_of(with_crc(
                     "kdc-weight-profile 1\n4 1\n-1 4\n")),
                 cli_error);
    EXPECT_THROW((void)load_of(with_crc(
                     "kdc-weight-profile 1\n4 1\nnan 4\n")),
                 cli_error);
    // A valid hand-written profile loads.
    const auto ok = load_of(with_crc("kdc-weight-profile 1\n4 2\n0 3\n2 1\n"));
    EXPECT_EQ(ok.n(), 4u);
    EXPECT_EQ(ok.bins_at(2.0), 1u);
    EXPECT_DOUBLE_EQ(ok.total_weight(), 2.0);
}

// ---------------------------------------------------------------------------
// Snapshot stage: journal replay and resume-beats-ff precedence.
// ---------------------------------------------------------------------------

struct stage_args {
    arg_parser args;
    explicit stage_args(const std::vector<std::string>& extra) {
        args.add_snapshot_options();
        std::vector<const char*> argv{"prog"};
        for (const auto& arg : extra) {
            argv.push_back(arg.c_str());
        }
        if (!args.parse(static_cast<int>(argv.size()), argv.data())) {
            throw std::runtime_error("stage_args: parse failed");
        }
    }
};

kdc::core::scenario stage_scenario() {
    kdc::core::scenario sc;
    sc.n = 512;
    sc.k = 2;
    sc.d = 4;
    sc.kernel = kdc::core::kernel_choice::level;
    return sc;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(SnapshotStage, JournalReplaysCommittedStageByteForByte) {
    const std::string dir = ::testing::TempDir();
    const std::string snap = dir + "journal_replay.profile";
    std::remove(snap.c_str());
    std::remove((snap + ".journal").c_str());
    stage_args cli({"--snapshot-out=" + snap});
    const auto sc = stage_scenario();

    std::ostringstream first;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(cli.args, sc, 21, first));
    const std::string snapshot_bytes = read_file(snap);

    // Second run: same key, committed journal -> replayed stdout, and the
    // snapshot on disk stays bit-identical.
    std::ostringstream second;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(cli.args, sc, 21, second));
    EXPECT_EQ(second.str(), first.str());
    EXPECT_EQ(read_file(snap), snapshot_bytes);

    // A corrupted journal is ignored (with a redo), never trusted: flip one
    // byte and the stage must still produce identical output by rerunning.
    std::string journal = read_file(snap + ".journal");
    journal[journal.size() / 2] ^= 0x20;
    std::ofstream(snap + ".journal", std::ios::binary) << journal;
    std::ostringstream third;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(cli.args, sc, 21, third));
    EXPECT_EQ(third.str(), first.str());

    // A DIFFERENT seed must not replay the old journal (stale key).
    std::ostringstream other;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(cli.args, sc, 22, other));
    EXPECT_NE(other.str(), first.str());
}

TEST(SnapshotStage, ResumeWinsOverFastForwardSynthesis) {
    const std::string dir = ::testing::TempDir();
    const std::string snap = dir + "resume_vs_ff.profile";
    std::remove(snap.c_str());
    std::remove((snap + ".journal").c_str());

    // Stage 1 writes a real profile.
    stage_args writer({"--snapshot-out=" + snap});
    auto sc = stage_scenario();
    std::ostringstream stage1;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(writer.args, sc, 5, stage1));

    // Stage 2 asks for warmup=ff AND --resume: the real snapshot must win
    // over the synthesized steady-state profile.
    sc.warmup = kdc::core::warmup_mode::fast_forward;
    sc.balls = 16 * sc.n; // heavy enough that ff_balls would be nonzero
    stage_args resumer({"--resume=" + snap});
    std::ostringstream stage2;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(resumer.args, sc, 6, stage2));
    EXPECT_NE(stage2.str().find("resumed "), std::string::npos);
    EXPECT_EQ(stage2.str().find("fast-forwarded"), std::string::npos);

    // Without --resume the same scenario does fast-forward (the control).
    stage_args fresh({"--snapshot-out=" + snap + ".ff"});
    std::ostringstream stage3;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(fresh.args, sc, 6, stage3));
    EXPECT_NE(stage3.str().find("fast-forwarded"), std::string::npos);
}

TEST(SnapshotStage, ResumeRejectsCorruptAndMismatchedSnapshots) {
    const std::string dir = ::testing::TempDir();
    const std::string snap = dir + "resume_reject.profile";
    std::remove((snap + ".journal").c_str());
    stage_args writer({"--snapshot-out=" + snap});
    const auto sc = stage_scenario();
    std::ostringstream out;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(writer.args, sc, 9, out));

    // Corrupt one byte: --resume must refuse with a cli_error.
    std::string bytes = read_file(snap);
    bytes[bytes.size() / 3] ^= 0x04;
    const std::string bad = snap + ".bad";
    std::ofstream(bad, std::ios::binary) << bytes;
    stage_args resumer({"--resume=" + bad});
    std::ostringstream ignored;
    EXPECT_THROW(
        (void)kdc::core::run_snapshot_stage(resumer.args, sc, 9, ignored),
        cli_error);

    // A healthy snapshot with the WRONG n is refused too.
    auto small = sc;
    small.n = 256;
    stage_args mismatch({"--resume=" + snap});
    EXPECT_THROW((void)kdc::core::run_snapshot_stage(mismatch.args, small, 9,
                                                     ignored),
                 cli_error);
}

TEST(SnapshotStage, InjectedIoErrorIsRetriedToAnIdenticalSnapshot) {
    const std::string dir = ::testing::TempDir();
    const std::string clean_path = dir + "retry_clean.profile";
    const std::string faulty_path = dir + "retry_faulty.profile";
    for (const auto& p : {clean_path, faulty_path}) {
        std::remove(p.c_str());
        std::remove((p + ".journal").c_str());
    }
    const auto sc = stage_scenario();

    stage_args clean({"--snapshot-out=" + clean_path});
    std::ostringstream clean_out;
    ASSERT_TRUE(kdc::core::run_snapshot_stage(clean.args, sc, 13, clean_out));

    kdc::core::arm_faults(
        kdc::core::fault_plan::parse("snapshot.write:io_error@1"));
    stage_args faulty({"--snapshot-out=" + faulty_path});
    std::ostringstream faulty_out;
    ASSERT_TRUE(
        kdc::core::run_snapshot_stage(faulty.args, sc, 13, faulty_out));
    kdc::core::disarm_faults();

    // The retried write must land the SAME bytes a clean run writes, and
    // the stage stdout (which never mentions the path) matters only up to
    // the differing --snapshot-out value; compare the snapshots directly.
    EXPECT_EQ(read_file(faulty_path), read_file(clean_path));
}

TEST(SnapshotStage, PersistentIoErrorSurfacesAsCliError) {
    const std::string dir = ::testing::TempDir();
    const std::string snap = dir + "retry_exhausted.profile";
    std::remove(snap.c_str());
    std::remove((snap + ".journal").c_str());
    // Three rules, one per retry attempt: the bounded retry must give up.
    kdc::core::arm_faults(kdc::core::fault_plan::parse(
        "snapshot.write:io_error@1;snapshot.write:io_error@2;"
        "snapshot.write:io_error@3"));
    stage_args cli({"--snapshot-out=" + snap});
    std::ostringstream out;
    EXPECT_THROW((void)kdc::core::run_snapshot_stage(cli.args,
                                                     stage_scenario(), 3, out),
                 cli_error);
    kdc::core::disarm_faults();
}

} // namespace
