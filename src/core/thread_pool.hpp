// Work-stealing thread pool plus the process-wide persistent pool every
// execution-engine entry point shares.
//
// The pool used to live inside core/parallel_runner.hpp and was re-spawned
// by every bench invocation; it is now its own layer so that run_sweep,
// run_grid and run_parallel_experiment can all reuse ONE set of workers for
// the lifetime of the process (see persistent_pool below). Scheduling order
// never influences results: callers fold per-job outputs in a fixed order of
// their own.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace kdc::core {

/// Work-stealing pool of worker threads. Each worker owns a deque of jobs;
/// submit() distributes jobs round-robin across the deques, a worker drains
/// its own deque front-first (FIFO) and, when empty, steals from the back of
/// a random victim's deque.
///
/// Exception contract: a job that throws does NOT kill its worker. The
/// pool captures the FIRST exception (later ones are dropped), finishes
/// draining, and rethrows it from the next wait_idle() call — after which
/// the pool is clean and fully reusable. run_phase/run_ranges capture and
/// rethrow their first exception at the phase barrier instead (see
/// run_phase). submit() is safe from any thread, including from inside a
/// running job; wait_idle() must be called from outside the pool's own
/// workers.
class thread_pool {
public:
    /// Spawns `threads` workers (>= 1 enforced by contract).
    explicit thread_pool(unsigned threads);

    /// Joins all workers; pending jobs are still drained first.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Enqueues a job for execution on some worker.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished executing, then
    /// rethrows the first exception any of them threw (clearing it, so the
    /// pool stays usable afterwards).
    void wait_idle();

    /// Runs body(0), body(1), ..., body(count - 1) across the pool and
    /// returns when ALL of them have finished — the barrier primitive behind
    /// the sharded round-parallel kernel's phases (core/sharded_kernel.hpp).
    ///
    /// The calling thread PARTICIPATES: it claims indices like any worker,
    /// so run_phase makes progress even when every worker is busy with other
    /// jobs, and is therefore safe to call from inside a running job (unlike
    /// wait_idle). Indices are claimed dynamically in an unspecified order;
    /// bodies must write to disjoint state per index (the sharded kernel's
    /// phases do). A body that throws short-circuits the phase: remaining
    /// indices are abandoned (already-started ones still finish), the
    /// barrier completes, and the FIRST exception is rethrown here on the
    /// calling thread. Nested run_phase calls from inside a body are not
    /// supported.
    void run_phase(std::size_t count,
                   const std::function<void(std::size_t)>& body);

    /// Partitions [0, total) into `parts` contiguous ranges and runs
    /// body(part, begin, end) for each across the pool — run_phase with the
    /// index space pre-sliced by phase_range. The sharded kernel's
    /// segment-parallel phases (tape pregeneration slices, selection
    /// segments) are built on this. Same contract as run_phase: the caller
    /// participates, bodies write disjoint state, and the first exception a
    /// body throws is rethrown at the barrier.
    void run_ranges(std::uint64_t total, std::size_t parts,
                    const std::function<void(std::size_t, std::uint64_t,
                                             std::uint64_t)>& body);

    /// The [begin, end) slice part `part` owns when [0, total) is dealt
    /// into `parts` contiguous ranges: floor(total/parts) each, +1 for the
    /// first total mod parts — the same dealing rule as shard_layout, so
    /// range partitions and bin shards slice identically. Deterministic,
    /// pool-independent. Requires part < parts.
    [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t>
    phase_range(std::uint64_t total, std::size_t parts,
                std::size_t part) noexcept;

    [[nodiscard]] unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

    /// Total worker threads ever spawned by any thread_pool in this process.
    /// Monotone; lets tests assert that consecutive sweeps on the persistent
    /// pool did NOT re-spawn workers.
    [[nodiscard]] static std::uint64_t threads_spawned() noexcept;

private:
    /// One worker's job deque. Guarded by its own mutex so pushes, local
    /// pops and steals on different workers never contend with each other;
    /// the control mutex below is only taken for the brief counter updates.
    struct worker_deque {
        std::mutex mutex;
        std::deque<std::function<void()>> jobs;
    };

    void worker_loop(unsigned index);
    [[nodiscard]] bool try_pop_front(std::size_t queue_index,
                                     std::function<void()>& job);
    [[nodiscard]] bool try_steal_back(std::size_t queue_index,
                                      std::function<void()>& job);

    std::vector<std::unique_ptr<worker_deque>> deques_;

    // Counter invariant (both guarded by control_mutex_): a job is pushed to
    // a deque and counted in one critical section, so once a worker claims a
    // ticket (decrements unclaimed_) a matching job is guaranteed to sit in
    // some deque until that worker takes it.
    std::mutex control_mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::size_t unclaimed_ = 0;  // pushed but not yet claimed by a worker
    std::size_t in_flight_ = 0;  // unclaimed + currently executing jobs
    bool stopping_ = false;
    std::exception_ptr first_error_;  // first submit()-job exception, if any

    std::atomic<std::size_t> next_deque_{0};  // round-robin submit cursor
    std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count request: 0 means "all hardware
/// threads" (at least 1 even if the runtime cannot tell), anything else is
/// taken literally.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

/// The process-wide persistent pool: created on first use, then reused by
/// every subsequent call for the rest of the process (joined at exit).
/// `threads` is resolved via resolve_thread_count; asking for the size the
/// pool already has returns the live pool untouched — consecutive sweeps,
/// grids and experiments share one set of workers instead of re-spawning
/// them per invocation. Asking for a *different* resolved size tears the old
/// pool down (after its jobs drain) and spawns a fresh one; the previous
/// reference dangles, so callers must not hold the reference across a
/// resize. Serialized internally; must not be called from inside the pool's
/// own workers (resizing would join the calling thread).
[[nodiscard]] thread_pool& persistent_pool(unsigned threads = 0);

} // namespace kdc::core
