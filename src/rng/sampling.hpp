// Sampling utilities built on the unbiased bounded-uniform primitive:
// with-replacement bin sampling (the (k,d)-choice probe step), Floyd's
// without-replacement sampling, Fisher-Yates shuffling and random
// permutations (used by the serialized process of Definition 1).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/uniform.hpp"
#include "support/contracts.hpp"

namespace kdc::rng {

/// Fills `out` with indices drawn i.u.r. *with replacement* from [0, n).
/// This is exactly the probe step of the (k,d)-choice process.
template <typename G>
    requires std::uniform_random_bit_generator<G>
void sample_with_replacement(G& gen, std::uint64_t n,
                             std::span<std::uint32_t> out) {
    KD_EXPECTS(n >= 1);
    for (auto& slot : out) {
        slot = static_cast<std::uint32_t>(uniform_below(gen, n));
    }
}

/// In-place Fisher-Yates shuffle.
template <typename G, typename T>
    requires std::uniform_random_bit_generator<G>
void shuffle(G& gen, std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
        const auto j = static_cast<std::size_t>(uniform_below(gen, i));
        std::swap(items[i - 1], items[j]);
    }
}

/// Returns `count` distinct indices from [0, n) via Robert Floyd's algorithm
/// (O(count) expected work, no O(n) scratch). Output order is randomized.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t>
sample_without_replacement(G& gen, std::uint64_t n, std::uint64_t count) {
    KD_EXPECTS(count <= n);
    std::vector<std::uint32_t> chosen;
    chosen.reserve(count);
    for (std::uint64_t j = n - count; j < n; ++j) {
        const auto candidate =
            static_cast<std::uint32_t>(uniform_below(gen, j + 1));
        if (std::find(chosen.begin(), chosen.end(), candidate) ==
            chosen.end()) {
            chosen.push_back(candidate);
        } else {
            chosen.push_back(static_cast<std::uint32_t>(j));
        }
    }
    // Floyd's algorithm biases the *order* (later slots tend to hold larger
    // values); shuffle so callers may treat the output as a random sequence.
    shuffle(gen, std::span<std::uint32_t>(chosen));
    return chosen;
}

/// Returns a uniformly random permutation of {0, 1, ..., n-1}.
template <typename G>
    requires std::uniform_random_bit_generator<G>
[[nodiscard]] std::vector<std::uint32_t> random_permutation(G& gen,
                                                            std::uint32_t n) {
    std::vector<std::uint32_t> perm(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        perm[i] = i;
    }
    shuffle(gen, std::span<std::uint32_t>(perm));
    return perm;
}

} // namespace kdc::rng
