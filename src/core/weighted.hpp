// Weighted (k,d)-choice: balls carry weights, bins accumulate weight.
//
// The unweighted paper sits in a line of work on weighted balanced
// allocations (Talwar-Wieder [17], Peres-Talwar-Wieder [14], both cited in
// Section 1). This module extends the (k,d) batch discipline to weighted
// balls so the two axes can be studied together:
//
//   * each round draws k ball weights from a weight distribution;
//   * d bins are probed i.u.r. with replacement;
//   * candidate slots are ordered by *current weight load*, and the k
//     heaviest balls of the round are matched to the k lightest slots
//     (heaviest-ball-to-lightest-slot, the standard greedy matching);
//   * the multiplicity rule carries over: a bin sampled m times receives at
//     most m of the round's balls.
//
// With unit weights this reduces exactly to the paper's process (tested).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

/// Weight loads are doubles (weights need not be integral).
using weight_vector = std::vector<double>;

/// Draws one ball weight; must return a positive finite value.
using weight_distribution = std::function<double(rng::xoshiro256ss&)>;

/// All balls weigh 1 (recovers the unweighted process).
[[nodiscard]] weight_distribution unit_weights();

/// Weights uniform in [lo, hi], 0 < lo <= hi.
[[nodiscard]] weight_distribution uniform_weights(double lo, double hi);

/// Exponentially distributed weights with the given mean.
[[nodiscard]] weight_distribution exponential_weights(double mean);

/// Pareto(shape) weights with minimum x_min (heavy-tailed; shape > 1 for a
/// finite mean).
[[nodiscard]] weight_distribution pareto_weights(double shape, double x_min);

class weighted_kd_process {
public:
    weighted_kd_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                        std::uint64_t seed, weight_distribution weights);

    void run_round();
    /// Runs one round with explicit probes and explicit ball weights
    /// (|weights| == k, |samples| == d). Used by tests.
    void run_round_with(std::span<const std::uint32_t> samples,
                        std::span<const double> ball_weights);
    void run_rounds(std::uint64_t rounds);

    [[nodiscard]] const weight_vector& loads() const noexcept {
        return loads_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] double total_weight() const noexcept {
        return total_weight_;
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

    /// Max weight load and the weighted gap (max - total/n).
    [[nodiscard]] double max_load() const;
    [[nodiscard]] double gap() const;

private:
    weight_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    double total_weight_ = 0.0;
    weight_distribution weights_;
    std::vector<std::uint32_t> sample_buffer_;
    std::vector<double> weight_buffer_;
    rng::xoshiro256ss gen_;

    struct slot {
        double load = 0.0;      // bin weight at selection time
        std::uint64_t key = 0;  // random tie-break
        std::uint32_t bin = 0;
        std::uint32_t occurrence = 0; // multiplicity index within the round
    };
    std::vector<slot> slots_;
};

} // namespace kdc::core
