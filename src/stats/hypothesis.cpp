#include "stats/hypothesis.hpp"

#include <algorithm>
#include <cmath>

#include "stats/running_stats.hpp"
#include "stats/special_functions.hpp"
#include "support/contracts.hpp"

namespace kdc::stats {

chi_square_result chi_square_gof(std::span<const std::uint64_t> observed,
                                 std::span<const double> expected_probs) {
    KD_EXPECTS(observed.size() == expected_probs.size());
    KD_EXPECTS(observed.size() >= 2);

    std::uint64_t total = 0;
    for (const auto count : observed) {
        total += count;
    }
    KD_EXPECTS_MSG(total > 0, "chi-square needs at least one observation");

    // Pool adjacent categories until every pooled cell expects >= 5.
    std::vector<double> pooled_expected;
    std::vector<double> pooled_observed;
    double expected_acc = 0.0;
    double observed_acc = 0.0;
    for (std::size_t i = 0; i < observed.size(); ++i) {
        expected_acc += expected_probs[i] * static_cast<double>(total);
        observed_acc += static_cast<double>(observed[i]);
        if (expected_acc >= 5.0) {
            pooled_expected.push_back(expected_acc);
            pooled_observed.push_back(observed_acc);
            expected_acc = 0.0;
            observed_acc = 0.0;
        }
    }
    if (expected_acc > 0.0 || observed_acc > 0.0) {
        if (pooled_expected.empty()) {
            pooled_expected.push_back(expected_acc);
            pooled_observed.push_back(observed_acc);
        } else {
            pooled_expected.back() += expected_acc;
            pooled_observed.back() += observed_acc;
        }
    }

    chi_square_result result;
    if (pooled_expected.size() < 2) {
        return result; // degenerate: everything pooled into one cell
    }
    for (std::size_t i = 0; i < pooled_expected.size(); ++i) {
        const double diff = pooled_observed[i] - pooled_expected[i];
        result.statistic += diff * diff / pooled_expected[i];
    }
    result.dof = static_cast<double>(pooled_expected.size() - 1);
    result.p_value = 1.0 - chi_square_cdf(result.statistic, result.dof);
    return result;
}

chi_square_result chi_square_uniform(std::span<const std::uint64_t> observed) {
    const std::vector<double> uniform(
        observed.size(), 1.0 / static_cast<double>(observed.size()));
    return chi_square_gof(observed, uniform);
}

ks_result ks_two_sample(std::vector<double> a, std::vector<double> b) {
    KD_EXPECTS(!a.empty() && !b.empty());
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());

    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    std::size_t ia = 0;
    std::size_t ib = 0;
    double d_max = 0.0;
    while (ia < a.size() && ib < b.size()) {
        const double x = std::min(a[ia], b[ib]);
        while (ia < a.size() && a[ia] <= x) {
            ++ia;
        }
        while (ib < b.size() && b[ib] <= x) {
            ++ib;
        }
        const double fa = static_cast<double>(ia) / na;
        const double fb = static_cast<double>(ib) / nb;
        d_max = std::max(d_max, std::abs(fa - fb));
    }

    ks_result result;
    result.statistic = d_max;
    const double ne = na * nb / (na + nb);
    const double sqrt_ne = std::sqrt(ne);
    // Finite-sample correction from Stephens (1970).
    const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d_max;
    result.p_value = kolmogorov_q(lambda);
    return result;
}

double dominance_probability(std::span<const double> a,
                             std::span<const double> b) {
    KD_EXPECTS(!a.empty() && !b.empty());
    std::vector<double> sorted_b(b.begin(), b.end());
    std::sort(sorted_b.begin(), sorted_b.end());
    double score = 0.0;
    for (const double x : a) {
        const auto lower = std::lower_bound(sorted_b.begin(), sorted_b.end(), x);
        const auto upper = std::upper_bound(lower, sorted_b.end(), x);
        const auto less = static_cast<double>(lower - sorted_b.begin());
        const auto equal = static_cast<double>(upper - lower);
        score += less + 0.5 * equal;
    }
    return score /
           (static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

double t_ci_half_width(const running_stats& sample, double confidence) {
    KD_EXPECTS_MSG(sample.count() >= 2,
                   "a t confidence interval needs at least two samples");
    KD_EXPECTS_MSG(confidence > 0.0 && confidence < 1.0,
                   "confidence level must lie strictly between 0 and 1");
    const auto n = static_cast<double>(sample.count());
    const double quantile =
        student_t_quantile(0.5 * (1.0 + confidence), n - 1.0);
    return quantile * sample.stddev() / std::sqrt(n);
}

} // namespace kdc::stats
