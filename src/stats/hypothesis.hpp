// Hypothesis tests used by the test suite and the reproduction harnesses:
//  * chi-square goodness-of-fit — validates the RNG layer and uniform bin
//    sampling;
//  * two-sample Kolmogorov-Smirnov — checks distributional equivalence, e.g.
//    Property (i) of the paper (serialization A_sigma == A(k,d)) and the
//    cross-generator consistency checks;
//  * one-sided Mann-Whitney-style dominance score — quantifies the empirical
//    majorization chain (Properties (ii)-(v));
//  * Student-t confidence intervals for a sample mean — the decision
//    statistic of the execution engine's confidence_width stopping rule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace kdc::stats {

class running_stats;

struct chi_square_result {
    double statistic = 0.0;
    double dof = 0.0;
    double p_value = 1.0;
};

/// Chi-square goodness-of-fit of observed counts against expected
/// probabilities. `expected_probs` must sum to ~1 and have the same size as
/// `observed`. Categories with expected count < 5 are pooled into their
/// neighbor to keep the asymptotics honest.
[[nodiscard]] chi_square_result
chi_square_gof(std::span<const std::uint64_t> observed,
               std::span<const double> expected_probs);

/// Convenience: chi-square test that `observed` counts are uniform.
[[nodiscard]] chi_square_result
chi_square_uniform(std::span<const std::uint64_t> observed);

struct ks_result {
    double statistic = 0.0; ///< sup-norm distance between the two ECDFs
    double p_value = 1.0;   ///< asymptotic (conservative for tiny samples)
};

/// Two-sample Kolmogorov-Smirnov test. Sorts copies of both samples.
[[nodiscard]] ks_result ks_two_sample(std::vector<double> a,
                                      std::vector<double> b);

/// Empirical P(A > B) + 0.5 * P(A == B) over all pairs: 0.5 means no
/// stochastic ordering; > 0.5 means samples from `a` tend to be larger.
/// This is the common-language effect size of the Mann-Whitney U test.
[[nodiscard]] double dominance_probability(std::span<const double> a,
                                           std::span<const double> b);

/// Half-width of the two-sided Student-t confidence interval for the mean
/// of the accumulated sample: t_{(1+confidence)/2, n-1} * s / sqrt(n).
/// Exact for normal samples and the honest small-sample replacement for the
/// z-based running_stats::mean_ci_halfwidth; the execution engine's
/// confidence_width stopping rule compares this against its target.
/// Requires >= 2 samples and confidence strictly inside (0, 1).
[[nodiscard]] double t_ci_half_width(const running_stats& sample,
                                     double confidence);

} // namespace kdc::stats
