#include "theory/bounds.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace kdc::theory {

namespace {

constexpr double euler_e = 2.718281828459045;

[[nodiscard]] double ln(double x) { return std::log(x); }

} // namespace

void kd_params::validate() const {
    KD_EXPECTS_MSG(n >= 1, "need at least one bin");
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "the (k,d)-choice process requires k < d");
    KD_EXPECTS_MSG(d <= n, "cannot probe more bins than exist");
    KD_EXPECTS_MSG(n % k == 0,
                   "paper assumption: n is a multiple of k (whole rounds)");
}

double dk_ratio(std::uint64_t k, std::uint64_t d) {
    KD_EXPECTS(k < d);
    return static_cast<double>(d) / static_cast<double>(d - k);
}

double first_term(std::uint64_t n, std::uint64_t k, std::uint64_t d) {
    KD_EXPECTS(k < d);
    if (n < 16) {
        return 0.0; // ln ln n not meaningful at toy sizes
    }
    const double lnln_n = ln(ln(static_cast<double>(n)));
    return lnln_n / ln(static_cast<double>(d - k + 1));
}

double second_term(std::uint64_t k, std::uint64_t d) {
    const double dk = dk_ratio(k, d);
    if (dk <= euler_e) {
        return 0.0;
    }
    const double ln_dk = ln(dk);
    const double lnln_dk = std::max(ln(ln_dk), 1.0);
    return ln_dk / lnln_dk;
}

theorem1_prediction theorem1_bound(std::uint64_t n, std::uint64_t k,
                                   std::uint64_t d, double dk_small_cutoff) {
    theorem1_prediction out;
    out.first = first_term(n, k, d);
    out.dk_small = dk_ratio(k, d) <= dk_small_cutoff;
    out.second = out.dk_small ? 0.0 : second_term(k, d);
    out.total = out.first + out.second;
    return out;
}

bool corollary1_applies(std::uint64_t n, std::uint64_t k, std::uint64_t d) {
    if (n < 16) {
        return false;
    }
    const double lnln_n = ln(ln(static_cast<double>(n)));
    return ln(dk_ratio(k, d)) >= lnln_n * lnln_n * lnln_n;
}

theorem2_prediction theorem2_bound(std::uint64_t n, std::uint64_t k,
                                   std::uint64_t d) {
    KD_EXPECTS_MSG(d >= 2 * k, "Theorem 2 requires d >= 2k");
    theorem2_prediction out;
    out.lower = first_term(n, k, d);
    const auto floor_ratio = d / k; // >= 2 by the precondition
    const double lnln_n = n >= 16 ? ln(ln(static_cast<double>(n))) : 0.0;
    out.upper = lnln_n / ln(static_cast<double>(floor_ratio));
    return out;
}

double beta0_landmark(std::uint64_t n, std::uint64_t k, std::uint64_t d) {
    return static_cast<double>(n) / (6.0 * dk_ratio(k, d));
}

double gamma_star_landmark(std::uint64_t n, std::uint64_t k, std::uint64_t d) {
    return 4.0 * static_cast<double>(n) / dk_ratio(k, d);
}

double gamma0_landmark(std::uint64_t n, std::uint64_t d) {
    KD_EXPECTS(d >= 1);
    return static_cast<double>(n) / static_cast<double>(d);
}

double log_binomial(std::uint64_t n, std::uint64_t r) {
    KD_EXPECTS(r <= n);
    return std::lgamma(static_cast<double>(n) + 1.0) -
           std::lgamma(static_cast<double>(r) + 1.0) -
           std::lgamma(static_cast<double>(n - r) + 1.0);
}

std::vector<double> beta_sequence(std::uint64_t n, std::uint64_t k,
                                  std::uint64_t d) {
    KD_EXPECTS(k < d && d <= n);
    const double dn = static_cast<double>(n);
    const double floor_at = 6.0 * ln(dn);
    const double log_coeff = ln(6.0 * dn / static_cast<double>(k)) +
                             log_binomial(d, d - k + 1);
    const auto exponent = static_cast<double>(d - k + 1);

    std::vector<double> seq;
    double beta = beta0_landmark(n, k, d);
    seq.push_back(beta);
    // The recursion collapses doubly exponentially; 200 iterations is far
    // beyond any reachable i* (ln ln n / ln 2 < 6 even for n = 2^64).
    for (int i = 0; i < 200 && beta >= floor_at; ++i) {
        const double log_next = log_coeff + exponent * ln(beta / dn);
        beta = std::min(dn, std::exp(log_next));
        seq.push_back(beta);
        if (beta <= 0.0) {
            break;
        }
    }
    return seq;
}

std::vector<double> gamma_sequence(std::uint64_t n, std::uint64_t k,
                                   std::uint64_t d) {
    KD_EXPECTS(k < d && d <= n);
    const double dn = static_cast<double>(n);
    const double floor_at = 9.0 * ln(dn);
    const double log_coeff =
        ln(dn / static_cast<double>(k)) + log_binomial(d, d - k + 1);
    const auto exponent = static_cast<double>(d - k + 1);

    std::vector<double> seq;
    double gamma = gamma0_landmark(n, d);
    seq.push_back(gamma);
    for (int i = 0; i < 200 && gamma >= floor_at; ++i) {
        const double log_next = -static_cast<double>(i + 6) * ln(2.0) +
                                log_coeff + exponent * ln(gamma / dn);
        gamma = std::min(dn, std::exp(log_next));
        seq.push_back(gamma);
        if (gamma <= 0.0) {
            break;
        }
    }
    return seq;
}

double i_star_bound(std::uint64_t n, std::uint64_t k, std::uint64_t d) {
    return first_term(n, k, d);
}

double single_choice_max_load(std::uint64_t n) {
    KD_EXPECTS(n >= 16);
    const double ln_n = ln(static_cast<double>(n));
    return ln_n / ln(ln_n);
}

double d_choice_max_load(std::uint64_t n, std::uint64_t d) {
    KD_EXPECTS(n >= 16);
    KD_EXPECTS(d >= 2);
    return ln(ln(static_cast<double>(n))) / ln(static_cast<double>(d));
}

std::uint64_t message_cost(std::uint64_t m, std::uint64_t k, std::uint64_t d) {
    KD_EXPECTS(k >= 1);
    KD_EXPECTS_MSG(m % k == 0, "m must be a whole number of rounds");
    return (m / k) * d;
}

} // namespace kdc::theory
