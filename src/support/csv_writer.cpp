#include "support/csv_writer.hpp"

#include <algorithm>

namespace kdc {

std::string csv_escape(std::string_view field) {
    const bool needs_quotes =
        field.find_first_of(",\"\r\n") != std::string_view::npos;
    if (!needs_quotes) {
        return std::string(field);
    }
    std::string out;
    out.reserve(field.size() + 2);
    out.push_back('"');
    for (const char c : field) {
        if (c == '"') {
            out.push_back('"');
        }
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

void csv_writer::write_row(const std::vector<std::string>& fields) {
    bool first = true;
    for (const auto& field : fields) {
        if (!first) {
            *out_ << ',';
        }
        first = false;
        *out_ << csv_escape(field);
    }
    *out_ << '\n';
    ++rows_;
}

void csv_writer::write_row(std::initializer_list<std::string_view> fields) {
    std::vector<std::string> copy;
    copy.reserve(fields.size());
    std::transform(fields.begin(), fields.end(), std::back_inserter(copy),
                   [](std::string_view sv) { return std::string(sv); });
    write_row(copy);
}

} // namespace kdc
