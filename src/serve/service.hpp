// The allocation service: sessions, channels and the dispatcher wired onto
// the discrete-event simulator — plus the serial oracle the whole serve
// layer is checked against.
//
// run_service drives an open-loop Poisson workload (serve/session.hpp)
// through a memory_channel into the dispatcher and measures what the paper
// cares about — probe messages per placed ball — alongside what an
// operator cares about: allocate latency quantiles (p50/p99/p999) under a
// sweepable load. Timing model, all in simulated time:
//
//   client --(channel_delay)--> dispatcher inbox
//   dispatcher: waits batch_window after first pending request (or until
//     it is free again), drains up to max_batch requests, processes them,
//     and is busy for service_time * batch size;
//   dispatcher --(channel_delay)--> client, latency = response - arrival.
//
// Determinism contract (docs/service.md): the served ALLOCATION LOG — the
// id-ordered sequence "which bins did request i get" — is a pure function
// of the config. run_serial_oracle replays the same request sequence with
// no batching, no shards, no pool and an independent straight-line
// implementation of the selection rules; service_result::allocation_log is
// byte-identical between the two at every --threads and --shards setting.
// tests/serve/service_test.cpp holds that equality; the service-soak CI
// job re-checks it across processes.
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"
#include "serve/message.hpp"
#include "sim/event_queue.hpp"

namespace kdc::serve {

struct service_config {
    std::uint64_t bins = 1024;
    std::uint64_t k = 4;            ///< balls per allocate
    std::uint64_t d = 8;            ///< probe budget (batch mode: k <= d)
    probing mode = probing::batch;
    std::uint64_t seed = 1;
    std::uint64_t clients = 8;
    std::uint64_t requests = 1024;  ///< total arrivals across all clients
    double arrival_rate = 8.0;      ///< total Poisson rate (requests/time)
    double churn = 0.0;             ///< P(arrival releases | target live)
    double channel_delay = 0.5;     ///< one-way client<->dispatcher delay
    double batch_window = 1.0;      ///< dispatcher batching window
    double service_time = 0.05;     ///< dispatcher busy time per request
    std::uint64_t max_batch = 64;   ///< dispatcher drain limit per batch
    std::uint64_t shards = 1;       ///< 0 = auto (resolve_shard_count)
    unsigned threads = 1;           ///< 0 = all hardware threads
};

struct service_result {
    std::uint64_t allocations = 0;   ///< allocate requests served
    std::uint64_t releases = 0;      ///< release requests served
    std::uint64_t batches = 0;       ///< dispatcher batches processed
    std::uint64_t probe_messages = 0;
    /// probe_messages / allocations: d in batch mode, k*d in per-task mode
    /// (releases cost no probes) — the paper's message-cost axis.
    double messages_per_request = 0.0;
    double messages_per_ball = 0.0;  ///< messages_per_request / k
    double latency_mean = 0.0;       ///< allocate+release, simulated time
    double latency_p50 = 0.0;
    double latency_p99 = 0.0;
    double latency_p999 = 0.0;
    double latency_max = 0.0;
    sim::sim_time completed_at = 0.0; ///< last response delivery time
    std::uint64_t balls_held = 0;     ///< k*allocations - released balls
    std::uint64_t max_load = 0;       ///< highest final bin load
    /// One line per request in id order: "<id> a <bin> <bin> ..." or
    /// "<id> r <bin> ...". The byte-compare artifact of the determinism
    /// contract.
    std::string allocation_log;
    core::load_vector final_loads;
};

/// Runs the full event-driven service. Latency fields are 0 when the
/// config yields no requests (requires requests >= 1, clients >= 1).
[[nodiscard]] service_result run_service(const service_config& config);

/// The oracle: same request sequence, served one request at a time at zero
/// latency by an independent serial implementation. Latency/batch fields
/// are not meaningful (batches == requests, latencies 0); everything
/// else — allocation_log above all — must match run_service exactly.
[[nodiscard]] service_result run_serial_oracle(const service_config& config);

} // namespace kdc::serve
