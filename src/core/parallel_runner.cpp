#include "core/parallel_runner.hpp"

namespace kdc::core {

thread_pool::thread_pool(unsigned threads) {
    KD_EXPECTS_MSG(threads >= 1, "a thread pool needs at least one worker");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

thread_pool::~thread_pool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_) {
        worker.join();
    }
}

void thread_pool::submit(std::function<void()> job) {
    KD_EXPECTS_MSG(job != nullptr, "cannot submit an empty job");
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        KD_EXPECTS_MSG(!stopping_, "pool is shutting down");
        queue_.push_back(std::move(job));
        ++in_flight_;
    }
    work_available_.notify_one();
}

void thread_pool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void thread_pool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                return; // stopping_ and drained
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) {
                all_done_.notify_all();
            }
        }
    }
}

unsigned resolve_thread_count(unsigned requested) noexcept {
    if (requested != 0) {
        return requested;
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware != 0 ? hardware : 1;
}

experiment_result
run_kd_experiment_parallel(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           const experiment_config& config, unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = whole_rounds_balls(n, k);
    }
    return run_parallel_experiment(actual, [n, k, d](std::uint64_t seed) {
        return kd_choice_process(n, k, d, seed);
    }, threads);
}

experiment_result
run_single_choice_experiment_parallel(std::uint64_t n,
                                      const experiment_config& config,
                                      unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_parallel_experiment(actual, [n](std::uint64_t seed) {
        return single_choice_process(n, seed);
    }, threads);
}

experiment_result
run_d_choice_experiment_parallel(std::uint64_t n, std::uint64_t d,
                                 const experiment_config& config,
                                 unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_parallel_experiment(actual, [n, d](std::uint64_t seed) {
        return d_choice_process(n, d, seed);
    }, threads);
}

} // namespace kdc::core
