#include "core/parallel_runner.hpp"

#include "rng/splitmix64.hpp"

namespace kdc::core {

experiment_result
run_kd_experiment_parallel(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           const experiment_config& config, unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = whole_rounds_balls(n, k);
    }
    return run_parallel_experiment(actual, [n, k, d](std::uint64_t seed) {
        return kd_choice_process(n, k, d, seed);
    }, threads);
}

experiment_result
run_single_choice_experiment_parallel(std::uint64_t n,
                                      const experiment_config& config,
                                      unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_parallel_experiment(actual, [n](std::uint64_t seed) {
        return single_choice_process(n, seed);
    }, threads);
}

experiment_result
run_d_choice_experiment_parallel(std::uint64_t n, std::uint64_t d,
                                 const experiment_config& config,
                                 unsigned threads) {
    experiment_config actual = config;
    if (actual.balls == 0) {
        actual.balls = n;
    }
    return run_parallel_experiment(actual, [n, d](std::uint64_t seed) {
        return d_choice_process(n, d, seed);
    }, threads);
}

} // namespace kdc::core
