// Level-compressed state for exchangeable allocation processes: the number
// of bins at each load level, instead of one entry per bin.
//
// The (k,d)-choice process is exchangeable over bins — every probe is
// uniform and every rule depends only on loads — so its distribution is
// fully captured by the LOAD PROFILE c_l = #bins with load l. That is
// O(max load + 1) words of state instead of O(n): a billion-bin,
// heavily-loaded run fits in a few kilobytes, and the per-probe operation
// "pick a uniform random bin and tell me its load" becomes "pick level l
// with probability c_l / n" — answered in O(log L) by a Fenwick tree over
// levels (core/fenwick.hpp) instead of an O(1)-but-cache-missing load on a
// multi-gigabyte array.
//
// The profile also supports temporary EXTRACTION of single bins. One round
// of (k,d)-choice needs probes *without* replacement from the not-yet-probed
// bins (core/level_process.hpp simulates the with-replacement collisions
// explicitly); extract_bin removes one bin at a level from the sampling
// population, and insert_bin returns it at its post-round level.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/fenwick.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

class level_profile {
public:
    /// n bins, all at level 0. Requires n >= 1.
    explicit level_profile(std::uint64_t n);

    /// The profile of an existing per-bin load vector (snapshot resume and
    /// the per-bin/level equivalence tests).
    [[nodiscard]] static level_profile from_loads(const load_vector& loads);

    /// The profile with the given bins-per-level counts (level = index).
    /// n is the sum of the counts; requires at least one bin. This is the
    /// constructor behind split_profile/merge_profiles.
    [[nodiscard]] static level_profile
    from_counts(const std::vector<std::uint64_t>& counts);

    /// Total bins, including any currently extracted ones.
    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

    /// Bins currently in the sampling population (== n() unless a round is
    /// mid-probe with extracted bins).
    [[nodiscard]] std::uint64_t remaining_bins() const {
        return fenwick_.total();
    }

    /// Balls held by the non-extracted bins.
    [[nodiscard]] std::uint64_t total_balls() const noexcept {
        return total_balls_;
    }

    /// Highest level with at least one (non-extracted) bin.
    [[nodiscard]] std::uint64_t max_level() const noexcept {
        return max_level_;
    }

    /// Number of (non-extracted) bins at `level`; zero beyond capacity.
    [[nodiscard]] std::uint64_t bins_at(std::uint64_t level) const {
        return level < counts_.size() ? counts_[level] : 0;
    }

    /// Addressable levels [0, level_capacity()); insert_bin targets must
    /// stay below this. Grown amortized by ensure_levels.
    [[nodiscard]] std::uint64_t level_capacity() const noexcept {
        return counts_.size();
    }

    /// Grows the level domain to at least `level_count` levels (amortized
    /// doubling; existing counts preserved).
    void ensure_levels(std::uint64_t level_count);

    /// Removes one bin at `level` from the sampling population. Requires
    /// bins_at(level) >= 1.
    void extract_bin(std::uint64_t level);

    /// Returns one bin to the population at `level` (< level_capacity()).
    void insert_bin(std::uint64_t level);

    /// extract_bin(from) + insert_bin(to): one bin's load changes.
    void move_bin(std::uint64_t from, std::uint64_t to) {
        extract_bin(from);
        insert_bin(to);
    }

    /// The level of the bin with the given rank when the remaining bins are
    /// laid out level by level: uniform `rank` in [0, remaining_bins())
    /// yields a level with probability proportional to its count — the
    /// O(log L) "sample a uniform bin, observe its load" primitive.
    [[nodiscard]] std::uint64_t level_at_rank(std::uint64_t rank) const {
        return fenwick_.find_kth(rank);
    }

    /// The sorted (descending) load vector this profile represents — the
    /// lossless view for metrics and distribution tests. O(n) output;
    /// intended for small-n verification, not billion-bin runs. Requires no
    /// bin to be extracted.
    [[nodiscard]] load_vector to_sorted_loads() const;

    /// Load metrics straight from the profile in O(L) — no per-bin pass.
    /// Requires no bin to be extracted.
    [[nodiscard]] load_metrics metrics() const;

    /// Writes a small text snapshot (format v2: "kdc-level-profile 2", n
    /// and the level count, the per-level counts up to max_level, then a
    /// "crc32 <hex>" trailer over every preceding byte) — O(L) bytes even
    /// for billion-bin runs, which is what makes those runs resumable:
    /// save the profile, reload it later and hand it to a level process's
    /// snapshot constructor. Requires no bin to be extracted. See
    /// docs/robustness.md for the format.
    void save(std::ostream& out) const;

    /// Reconstructs a profile from a save() snapshot. The CRC trailer is
    /// verified BEFORE any field is parsed, so every single-byte
    /// corruption and every truncation is rejected; throws cli_error
    /// (support/cli.hpp) with a precise message on any malformed input
    /// (bad CRC, bad magic/version, missing or surplus fields, counts
    /// that do not sum to n). Version-1 snapshots (no trailer) are
    /// refused — regenerate them.
    [[nodiscard]] static level_profile load(std::istream& in);

    /// Structural equality: same bins-per-level counts (capacity beyond the
    /// top level is ignored). Extracted bins count as absent.
    [[nodiscard]] bool operator==(const level_profile& other) const;

private:
    std::vector<std::uint64_t> counts_;
    fenwick_tree fenwick_;
    std::uint64_t n_ = 0;
    std::uint64_t total_balls_ = 0;
    std::uint64_t max_level_ = 0;
};

/// Partitions a profile into `shards` per-shard profiles — the level
/// kernel's counterpart of the per-bin kernel's contiguous bin ranges
/// (core/sharded_kernel.hpp). Shard s receives floor(n/S) bins (+1 for the
/// first n mod S shards); bins are assigned deterministically, walking the
/// levels in increasing order and filling shards in increasing index order,
/// so the split is a pure function of the profile and S. Requires
/// 1 <= shards <= n; no bin may be extracted.
[[nodiscard]] std::vector<level_profile>
split_profile(const level_profile& profile, std::uint64_t shards);

/// Inverse of split_profile: sums the per-level counts of the shard
/// profiles back into one profile. merge_profiles(split_profile(p, S)) == p
/// for every valid S. Requires a non-empty shard list with no extracted
/// bins.
[[nodiscard]] level_profile
merge_profiles(const std::vector<level_profile>& shards);

/// Reads a whole CRC-trailed snapshot stream (format v2's shared envelope:
/// arbitrary text body followed by a final "crc32 <8 hex>" line), verifies
/// the trailer against the body, and returns the body. Shared by
/// level_profile::load, weight_profile::load and the snapshot-stage
/// journal. Throws cli_error — prefixed with `what` — when the trailer is
/// missing or malformed or the CRC does not match (which catches every
/// single-byte corruption and every truncation before parsing starts).
[[nodiscard]] std::string checked_snapshot_body(std::istream& in,
                                                const char* what);

} // namespace kdc::core
