// Allocation-as-a-service latency/throughput sweep: the serve/ subsystem
// (sessions -> channel -> sharded dispatcher) driven by open-loop Poisson
// arrivals across a utilization sweep, in both probing modes.
//
// The measurement marries the paper's message-cost axis to an operator's
// latency axis: batch (k,d)-choice spends exactly d probe messages per
// request where per-task d-choice spends k*d (the closed form
// sched/scheduler.hpp predicts), and this bench reports the allocate
// latency quantiles (p50/p99/p999, simulated time) either mode achieves at
// each offered load. All timing is simulated, so every number here is
// byte-deterministic — at any --threads value (the determinism contract,
// docs/service.md).
//
//   ./service_latency [--bins=4096] [--k=4] [--d=8] [--clients=16]
//                     [--requests=20000] [--churn=0.2] [--seed=17]
//                     [--shards=0] [--threads=1] [--mode=both]
//                     [--scenario "kd:n=4096,k=4,d=8"]
//
// --scenario maps n -> bins plus k and d, overriding the legacy flags key
// by key (core/scenario.hpp). Modes:
//
//   * default      — human-readable sweep table;
//   * --log        — print the base config's allocation log and exit; the
//                    service-soak CI job byte-compares this output across
//                    --threads values;
//   * --json       — write BENCH_service.json (schema
//                    kdchoice-bench-service/v1), the recorded
//                    latency/throughput trajectory;
//   * --guard      — with --json: fail (exit 1) if any cell's p99 is
//                    vacuous (<= 0 or ordered wrong), if a cell's message
//                    cost misses the closed form, or if the served
//                    sequence diverges from the serial oracle.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"

namespace {

using kdc::serve::probing;
using kdc::serve::service_config;
using kdc::serve::service_result;

struct sweep_cell {
    probing mode = probing::batch;
    double utilization = 0.0;
    service_config config;
    service_result result;
};

service_config base_config(const kdc::arg_parser& args) {
    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("bins"));
    base.k = static_cast<std::uint64_t>(args.get_int("k"));
    base.d = static_cast<std::uint64_t>(args.get_int("d"));
    const auto merged = kdc::core::scenario_from_cli(args, base);

    service_config config;
    config.bins = merged.n;
    config.k = merged.k;
    config.d = merged.d;
    config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    config.clients = static_cast<std::uint64_t>(args.get_int("clients"));
    config.requests = static_cast<std::uint64_t>(args.get_int("requests"));
    config.churn = args.get_double("churn");
    config.channel_delay = args.get_positive_double("delay");
    config.batch_window = args.get_positive_double("window");
    config.service_time = args.get_positive_double("service-time");
    config.max_batch = static_cast<std::uint64_t>(args.get_int("max-batch"));
    config.shards = static_cast<std::uint64_t>(args.get_int("shards"));
    config.threads = args.get_threads();
    return config;
}

std::vector<probing> modes_from_cli(const kdc::arg_parser& args) {
    const std::string mode = args.get_string("mode");
    if (mode == "batch") {
        return {probing::batch};
    }
    if (mode == "per_task") {
        return {probing::per_task};
    }
    if (mode == "both") {
        return {probing::batch, probing::per_task};
    }
    throw kdc::cli_error("--mode must be batch, per_task or both, got '" +
                         mode + "'");
}

std::vector<sweep_cell> run_sweep(const service_config& base,
                                  const std::vector<probing>& modes) {
    const std::vector<double> utilizations{0.3, 0.5, 0.7, 0.85};
    std::vector<sweep_cell> cells;
    for (const probing mode : modes) {
        for (const double util : utilizations) {
            sweep_cell cell;
            cell.mode = mode;
            cell.utilization = util;
            cell.config = base;
            cell.config.mode = mode;
            cell.config.arrival_rate = util / base.service_time;
            cell.result = kdc::serve::run_service(cell.config);
            cells.push_back(std::move(cell));
        }
    }
    return cells;
}

double throughput(const sweep_cell& cell) {
    const auto served = static_cast<double>(cell.result.allocations +
                                            cell.result.releases);
    return cell.result.completed_at > 0.0
               ? served / cell.result.completed_at
               : 0.0;
}

void write_json(const std::string& path, const service_config& base,
                const std::vector<sweep_cell>& cells) {
    std::ofstream out(path);
    if (!out) {
        throw std::runtime_error("cannot open --json-out path: " + path);
    }
    out << "{\n"
        << "  \"bench\": \"service_latency\",\n"
        << "  \"schema\": \"kdchoice-bench-service/v1\",\n"
        << "  \"bins\": " << base.bins << ",\n"
        << "  \"k\": " << base.k << ",\n"
        << "  \"d\": " << base.d << ",\n"
        << "  \"clients\": " << base.clients << ",\n"
        << "  \"requests\": " << base.requests << ",\n"
        << "  \"churn\": " << base.churn << ",\n"
        << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const sweep_cell& cell = cells[i];
        const service_result& r = cell.result;
        out << "    {\"mode\": \"" << probing_name(cell.mode)
            << "\", \"util\": " << cell.utilization
            << ", \"messages_per_request\": " << r.messages_per_request
            << ", \"messages_per_ball\": " << r.messages_per_ball
            << ", \"latency_p50\": " << r.latency_p50
            << ", \"latency_p99\": " << r.latency_p99
            << ", \"latency_p999\": " << r.latency_p999
            << ", \"latency_mean\": " << r.latency_mean
            << ", \"batches\": " << r.batches
            << ", \"max_load\": " << r.max_load
            << ", \"throughput\": " << throughput(cell) << "}"
            << (i + 1 < cells.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
}

/// The --guard arms. Returns the number of failed checks (0 = pass); every
/// failure prints its own diagnostic. A guard that checked nothing fails.
int run_guard(const service_config& base,
              const std::vector<sweep_cell>& cells) {
    int failures = 0;
    if (cells.empty()) {
        std::cerr << "guard: no cells to check — vacuous pass refused\n";
        return 1;
    }
    for (const sweep_cell& cell : cells) {
        const service_result& r = cell.result;
        const char* name = probing_name(cell.mode);
        // Arm 1: the latency quantiles must be real measurements. An empty
        // sample would leave p99 at 0.0 — the vacuous cell this guard
        // exists to catch.
        if (!(r.latency_p50 > 0.0 && r.latency_p99 >= r.latency_p50 &&
              r.latency_p999 >= r.latency_p99)) {
            std::cerr << "guard FAIL: vacuous/unordered latency cell ("
                      << name << ", util " << cell.utilization
                      << "): p50=" << r.latency_p50
                      << " p99=" << r.latency_p99
                      << " p999=" << r.latency_p999 << '\n';
            ++failures;
        }
        // Arm 2: the paper's message cost, exactly — d per request batched,
        // k*d per-task (deterministic counts, so equality, no tolerance).
        const auto expected = cell.mode == probing::batch
                                  ? base.d
                                  : base.k * base.d;
        if (r.probe_messages != r.allocations * expected) {
            std::cerr << "guard FAIL: message cost off closed form ("
                      << name << ", util " << cell.utilization
                      << "): " << r.probe_messages << " != "
                      << r.allocations << " * " << expected << '\n';
            ++failures;
        }
    }
    // Arm 3: the determinism contract itself — the served allocation
    // sequence must equal the serial oracle's byte for byte.
    service_config oracle_config = base;
    oracle_config.arrival_rate = 0.7 / base.service_time;
    const service_result served = kdc::serve::run_service(oracle_config);
    const service_result oracle =
        kdc::serve::run_serial_oracle(oracle_config);
    if (served.allocation_log != oracle.allocation_log) {
        std::cerr << "guard FAIL: served sequence diverged from the serial "
                     "oracle\n";
        ++failures;
    }
    if (failures == 0) {
        std::cerr << "guard OK: " << cells.size()
                  << " cells non-vacuous, message closed form exact, "
                     "oracle log identical\n";
    }
    return failures;
}

} // namespace

int main(int argc, char** argv) {
    try {
        kdc::arg_parser args;
        args.add_option("bins", "4096", "bins behind the service");
        args.add_option("k", "4", "balls per allocate request");
        args.add_option("d", "8", "probe budget per request");
        args.add_option("clients", "16", "concurrent client sessions");
        args.add_option("requests", "20000", "total arrivals");
        args.add_option("churn", "0.2",
                        "P(an arrival releases an earlier allocation)");
        args.add_option("seed", "17", "master seed");
        args.add_option("shards", "0", "dispatcher shards (0 = auto)");
        args.add_option("mode", "both", "batch, per_task or both");
        args.add_option("delay", "0.5", "one-way channel delay");
        args.add_option("window", "1.0", "dispatcher batching window");
        args.add_option("service-time", "0.05",
                        "dispatcher busy time per request");
        args.add_option("max-batch", "64", "dispatcher drain limit");
        args.add_threads_option();
        args.add_scenario_option();
        args.add_flag("log", "print the allocation log and exit "
                             "(byte-compared across --threads by CI)");
        args.add_flag("json", "write the JSON trajectory instead of a table");
        args.add_option("json-out", "BENCH_service.json", "output path");
        args.add_flag("guard", "with --json: fail on vacuous latency "
                               "cells, off-closed-form message costs or "
                               "oracle divergence");
        if (!args.parse(argc, argv)) {
            return 0;
        }
        const service_config base = base_config(args);

        if (args.get_flag("log")) {
            service_config config = base;
            config.arrival_rate = 0.7 / base.service_time;
            std::cout << kdc::serve::run_service(config).allocation_log;
            return 0;
        }

        const auto cells = run_sweep(base, modes_from_cli(args));

        if (args.get_flag("json")) {
            const std::string path = args.get_string("json-out");
            write_json(path, base, cells);
            std::cerr << "wrote " << path << " (" << cells.size()
                      << " cells)\n";
            return args.get_flag("guard") ? run_guard(base, cells) : 0;
        }

        std::cout << "Allocation service: " << base.bins << " bins, (k="
                  << base.k << ", d=" << base.d << "), " << base.clients
                  << " clients, " << base.requests
                  << " requests, churn " << base.churn
                  << ", simulated time units\n\n";
        kdc::text_table table;
        table.set_header({"util", "mode", "p50", "p99", "p999",
                          "msgs/req", "msgs/ball", "batches", "thrpt"});
        table.set_align(1, kdc::table_align::left);
        for (const sweep_cell& cell : cells) {
            const service_result& r = cell.result;
            table.add_row({kdc::format_fixed(cell.utilization, 2),
                           probing_name(cell.mode),
                           kdc::format_fixed(r.latency_p50, 2),
                           kdc::format_fixed(r.latency_p99, 2),
                           kdc::format_fixed(r.latency_p999, 2),
                           kdc::format_fixed(r.messages_per_request, 1),
                           kdc::format_fixed(r.messages_per_ball, 2),
                           std::to_string(r.batches),
                           kdc::format_fixed(throughput(cell), 2)});
        }
        std::cout << table << '\n'
                  << "Shapes to verify: batch mode holds msgs/req = d = "
                  << base.d << " (msgs/ball = d/k) while per_task spends "
                     "k*d = "
                  << base.k * base.d
                  << "; latency rises with utilization in both modes.\n";
        return 0;
    } catch (const std::exception& error) {
        std::cerr << "error: " << error.what() << '\n';
        return 1;
    }
}
