// Minimal RFC-4180 CSV emission. Benchmark harnesses can dump their series to
// CSV so plots can be regenerated outside the repo (gnuplot/pandas).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace kdc {

/// Escapes a single CSV field per RFC 4180 (quotes fields containing commas,
/// quotes, or newlines; doubles embedded quotes).
[[nodiscard]] std::string csv_escape(std::string_view field);

/// Streams rows of fields to an ostream as CSV. The writer does not own the
/// stream; the caller controls lifetime and flushing (Core Guidelines F.7).
class csv_writer {
public:
    explicit csv_writer(std::ostream& out) : out_(&out) {}

    /// Writes one row; fields are escaped as needed.
    void write_row(const std::vector<std::string>& fields);
    void write_row(std::initializer_list<std::string_view> fields);

    /// Number of rows written so far (including any header row).
    [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

private:
    std::ostream* out_;
    std::size_t rows_ = 0;
};

} // namespace kdc
