#include "core/weighted.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/metrics.hpp"
#include "core/process.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::exponential_weights;
using kdc::core::pareto_weights;
using kdc::core::uniform_weights;
using kdc::core::unit_weights;
using kdc::core::weighted_kd_process;

TEST(WeightedKd, ValidatesParameters) {
    EXPECT_THROW(weighted_kd_process(10, 3, 3, 1, unit_weights()),
                 kdc::contract_violation);
    EXPECT_THROW(weighted_kd_process(10, 1, 2, 1, nullptr),
                 kdc::contract_violation);
    EXPECT_NO_THROW(weighted_kd_process(10, 1, 2, 1, unit_weights()));
}

TEST(WeightedKd, TotalWeightConserved) {
    weighted_kd_process process(64, 2, 4, 5, uniform_weights(0.5, 1.5));
    process.run_rounds(32);
    const auto& loads = process.loads();
    const double sum = std::accumulate(loads.begin(), loads.end(), 0.0);
    EXPECT_NEAR(sum, process.total_weight(), 1e-9);
    EXPECT_EQ(process.balls_placed(), 64u);
}

TEST(WeightedKd, UnitWeightsMatchUnweightedInvariants) {
    weighted_kd_process process(128, 2, 4, 7, unit_weights());
    process.run_rounds(64);
    EXPECT_DOUBLE_EQ(process.total_weight(), 128.0);
    // Every load is a non-negative integer under unit weights.
    for (const double load : process.loads()) {
        EXPECT_DOUBLE_EQ(load, std::floor(load));
    }
}

TEST(WeightedKd, UnitWeightsMatchUnweightedDistribution) {
    // Mean max load must agree with the unweighted kd process.
    double weighted_sum = 0.0;
    double unweighted_sum = 0.0;
    constexpr int reps = 60;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
        weighted_kd_process w(512, 2, 4, 100 + seed, unit_weights());
        w.run_rounds(256);
        weighted_sum += w.max_load();
        kdc::core::kd_choice_process u(512, 2, 4, 900 + seed);
        u.run_balls(512);
        unweighted_sum += static_cast<double>(
            kdc::core::compute_load_metrics(u.loads()).max_load);
    }
    EXPECT_NEAR(weighted_sum / reps, unweighted_sum / reps, 0.25);
}

TEST(WeightedKd, ForcedRoundPlacesHeaviestIntoLightest) {
    // Three distinct bins with loads 0 / 5 / 10, two balls of weights 3, 1:
    // the 3-weight ball must land in the empty bin, the 1-weight ball in
    // the 5-load bin.
    weighted_kd_process process(3, 2, 3, 1, unit_weights());
    // Drive state by forced rounds: weights {5,10} onto bins 1,2 first.
    const std::vector<std::uint32_t> warm{1, 2, 0};
    const std::vector<double> warm_weights{5.0, 10.0};
    process.run_round_with(warm, warm_weights);
    // warm round: slots ordered by load (all zero): ties random, so instead
    // verify through totals: 15 weight placed in 2 balls on the 2 least
    // loaded slots of {0,1,2}: heaviest (10) to lightest slot.
    EXPECT_DOUBLE_EQ(process.total_weight(), 15.0);

    // Now run the real assertion on a fresh process with known loads:
    weighted_kd_process staged(3, 2, 3, 2, unit_weights());
    const std::vector<std::uint32_t> all_bins{0, 1, 2};
    const std::vector<double> staged_weights{6.0, 2.0};
    staged.run_round_with(all_bins, staged_weights);
    // All bins empty: heaviest ball to (random) lightest slot; after it
    // lands that bin holds 6, so the 2-weight ball goes to another bin.
    int nonzero = 0;
    for (const double load : staged.loads()) {
        nonzero += load > 0.0 ? 1 : 0;
    }
    EXPECT_EQ(nonzero, 2);
}

TEST(WeightedKd, MultiplicityRuleHolds) {
    // A bin sampled twice can receive at most 2 of the round's balls.
    const std::vector<std::uint32_t> dup_samples{0, 0, 1, 1};
    const std::vector<double> unit3{1.0, 1.0, 1.0};
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        weighted_kd_process process(4, 3, 4, seed, unit_weights());
        process.run_round_with(dup_samples, unit3);
        EXPECT_LE(process.loads()[0], 2.0);
        EXPECT_LE(process.loads()[1], 2.0);
        EXPECT_DOUBLE_EQ(process.loads()[2], 0.0);
    }
}

TEST(WeightedKd, GapSmallerThanSingleChoiceStyleRandom) {
    // (2,4)-weighted vs random placement of the same weights: batching into
    // least-loaded bins must reduce the weighted gap.
    kdc::rng::xoshiro256ss gen(11);
    double kd_gap = 0.0;
    double random_gap = 0.0;
    constexpr int reps = 20;
    for (std::uint64_t seed = 0; seed < reps; ++seed) {
        weighted_kd_process process(256, 2, 4, 50 + seed,
                                    exponential_weights(1.0));
        process.run_rounds(128 * 4);
        kd_gap += process.gap();

        // Random: place the same number of exponential weights uniformly.
        std::vector<double> loads(256, 0.0);
        double total = 0.0;
        for (int b = 0; b < 1024; ++b) {
            const double w = kdc::rng::exponential(gen, 1.0);
            loads[kdc::rng::uniform_below(gen, 256)] += w;
            total += w;
        }
        const double max = *std::max_element(loads.begin(), loads.end());
        random_gap += max - total / 256.0;
    }
    EXPECT_LT(kd_gap / reps, random_gap / reps);
}

TEST(WeightedKd, DeterministicUnderSeed) {
    weighted_kd_process a(64, 2, 4, 9, uniform_weights(1.0, 2.0));
    weighted_kd_process b(64, 2, 4, 9, uniform_weights(1.0, 2.0));
    a.run_rounds(32);
    b.run_rounds(32);
    EXPECT_EQ(a.loads(), b.loads());
}

TEST(WeightDistributions, MeansMatch) {
    kdc::rng::xoshiro256ss gen(1);
    auto mean_of = [&gen](const kdc::core::weight_distribution& dist) {
        double sum = 0.0;
        constexpr int draws = 100000;
        for (int i = 0; i < draws; ++i) {
            sum += dist(gen);
        }
        return sum / draws;
    };
    EXPECT_DOUBLE_EQ(mean_of(unit_weights()), 1.0);
    EXPECT_NEAR(mean_of(uniform_weights(1.0, 3.0)), 2.0, 0.02);
    EXPECT_NEAR(mean_of(exponential_weights(2.0)), 2.0, 0.05);
    // Pareto(3, 1): mean = 3/2.
    EXPECT_NEAR(mean_of(pareto_weights(3.0, 1.0)), 1.5, 0.05);
}

TEST(WeightDistributions, ParetoIsHeavyTailed) {
    kdc::rng::xoshiro256ss gen(2);
    const auto pareto = pareto_weights(2.0, 1.0);
    double max_seen = 0.0;
    for (int i = 0; i < 100000; ++i) {
        max_seen = std::max(max_seen, pareto(gen));
    }
    // With shape 2 and 1e5 draws the max is ~ sqrt(1e5) ~ 300; an
    // exponential would top out near ln(1e5) ~ 12.
    EXPECT_GT(max_seen, 50.0);
}

TEST(WeightDistributions, InvalidParametersRejected) {
    EXPECT_THROW((void)uniform_weights(0.0, 1.0), kdc::contract_violation);
    EXPECT_THROW((void)uniform_weights(2.0, 1.0), kdc::contract_violation);
    EXPECT_THROW((void)exponential_weights(0.0), kdc::contract_violation);
    EXPECT_THROW((void)pareto_weights(0.0, 1.0), kdc::contract_violation);
}

TEST(WeightedKd, RejectsNonPositiveDrawnWeights) {
    weighted_kd_process process(
        16, 1, 2, 1, [](kdc::rng::xoshiro256ss&) { return -1.0; });
    EXPECT_THROW(process.run_round(), kdc::contract_violation);
}

} // namespace
