// The paper's probabilistic lemmas, checked against simulation at scales
// where the stated failure probabilities are negligible:
//
//   Lemma 2:  mu^{SA}_y < 8n/y!  w.p. 1 - exp(-n/(12 y!))   (single choice)
//   Lemma 11: nu^{SA}_y > n/(8 y!) w.p. 1 - exp(-n/(32 y!))
//   Lemma 3:  mu^A_y is stochastically below mu^{SA}_y      ((k,d) vs SA)
//   Theorem 4, Part A: nu_{y0+i} <= beta_i along the recursion (16)
#include <gtest/gtest.h>

#include <cmath>

#include "core/kdchoice.hpp"
#include "stats/special_functions.hpp"
#include "theory/bounds.hpp"

namespace {

using kdc::core::kd_choice_process;
using kdc::core::mu_y;
using kdc::core::nu_y;
using kdc::core::single_choice_process;

constexpr std::uint64_t lemma_n = 1 << 14;

TEST(Lemma2Envelope, SingleChoiceMuBelowEightNOverYFactorial) {
    // For y <= 5, exp(-n/(12 y!)) <= exp(-11) at n = 2^14: the bound should
    // hold in every one of a handful of runs.
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        single_choice_process process(lemma_n, 100 + seed);
        process.run_balls(lemma_n);
        for (std::uint64_t y = 1; y <= 5; ++y) {
            const double envelope =
                8.0 * static_cast<double>(lemma_n) /
                std::exp(kdc::stats::log_factorial(y));
            EXPECT_LT(static_cast<double>(mu_y(process.loads(), y)),
                      envelope)
                << "y=" << y << " seed=" << seed;
        }
    }
}

TEST(Lemma11Envelope, SingleChoiceNuAboveNOverEightYFactorial) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        single_choice_process process(lemma_n, 200 + seed);
        process.run_balls(lemma_n);
        for (std::uint64_t y = 1; y <= 4; ++y) {
            const double floor_bound =
                static_cast<double>(lemma_n) /
                (8.0 * std::exp(kdc::stats::log_factorial(y)));
            EXPECT_GT(static_cast<double>(nu_y(process.loads(), y)),
                      floor_bound)
                << "y=" << y << " seed=" << seed;
        }
    }
}

TEST(Lemma3Domination, KdChoiceMuBelowSingleChoiceMuOnAverage) {
    // mu^A_y <=st mu^{SA}_y (Lemma 3): compare means over repetitions at
    // each height level.
    constexpr int reps = 15;
    for (std::uint64_t y = 2; y <= 4; ++y) {
        double kd_sum = 0.0;
        double sa_sum = 0.0;
        for (std::uint64_t seed = 0; seed < reps; ++seed) {
            kd_choice_process kd(lemma_n, 2, 4, 300 + seed);
            kd.run_balls(lemma_n);
            kd_sum += static_cast<double>(mu_y(kd.loads(), y));
            single_choice_process sa(lemma_n, 600 + seed);
            sa.run_balls(lemma_n);
            sa_sum += static_cast<double>(mu_y(sa.loads(), y));
        }
        EXPECT_LE(kd_sum, sa_sum) << "y=" << y;
    }
}

TEST(Theorem4PartA, NuFollowsBetaRecursion) {
    // Part A of Theorem 4: with y0 = smallest y with nu_y <= beta_0,
    // nu_{y0+i} <= beta_i holds for every i, w.p. 1 - O(i/n). Verify along
    // the whole recursion for several configurations and seeds.
    const std::uint64_t n = 1 << 16;
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {1, 2}, {2, 3}, {2, 4}, {4, 8}}) {
        const auto beta = kdc::theory::beta_sequence(n, k, d);
        ASSERT_GE(beta.size(), 2u);
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
            kd_choice_process process(n, k, d, 900 + seed);
            process.run_balls(n);

            // y0: smallest y with nu_y <= beta_0.
            std::uint64_t y0 = 0;
            while (static_cast<double>(nu_y(process.loads(), y0)) >
                   beta.front()) {
                ++y0;
                ASSERT_LT(y0, 64u);
            }
            for (std::size_t i = 0; i < beta.size(); ++i) {
                EXPECT_LE(static_cast<double>(
                              nu_y(process.loads(), y0 + i)),
                          beta[i] + 1.0)
                    << "k=" << k << " d=" << d << " i=" << i
                    << " seed=" << seed;
            }
        }
    }
}

TEST(Theorem3Inversion, MeasuredBBeta0MatchesStirlingInversion) {
    // Theorem 3's proof: y1! <= 48 dk, so B_{beta0} <= y1 + 1 with
    // y1 = smallest y with y! > 48 dk minus one. Check the measured load at
    // rank beta0 against that inversion (plus one unit of slack).
    const std::uint64_t n = 1 << 16;
    for (const auto& [k, d] :
         std::vector<std::pair<std::uint64_t, std::uint64_t>>{
             {1, 2}, {2, 4}, {16, 17}, {64, 65}}) {
        const double dk = kdc::theory::dk_ratio(k, d);
        const auto y_cut = kdc::stats::smallest_factorial_exceeding_log(
            std::log(48.0 * dk));
        const auto beta0 = static_cast<std::uint64_t>(
            std::max(1.0, kdc::theory::beta0_landmark(n, k, d)));
        for (std::uint64_t seed = 0; seed < 5; ++seed) {
            kd_choice_process process(n, k, d, 1700 + seed);
            process.run_balls(n - (n % k));
            const auto b_beta0 =
                kdc::core::load_of_rank(process.loads(), beta0);
            EXPECT_LE(b_beta0, y_cut + 1)
                << "k=" << k << " d=" << d << " seed=" << seed;
        }
    }
}

} // namespace
