#include "core/sweep.hpp"

#include <numeric>
#include <ostream>

#include "support/csv_writer.hpp"

namespace kdc::core {

std::vector<sweep_outcome> run_sweep(thread_pool& pool,
                                     const std::vector<sweep_cell>& cells,
                                     const sweep_progress& progress) {
    std::vector<std::uint32_t> reps_per_cell;
    reps_per_cell.reserve(cells.size());
    for (const auto& cell : cells) {
        KD_EXPECTS_MSG(cell.run_rep != nullptr,
                       "sweep cell has no repetition runner");
        KD_EXPECTS(cell.config.reps >= 1);
        KD_EXPECTS(cell.config.balls >= 1);
        reps_per_cell.push_back(cell.config.reps);
    }

    auto grid = run_grid<repetition_result>(
        pool, reps_per_cell,
        [&cells](std::size_t cell, std::uint32_t rep) {
            return cells[cell].run_rep(
                rng::derive_seed(cells[cell].config.seed, rep));
        },
        progress);

    std::vector<sweep_outcome> outcomes;
    outcomes.reserve(cells.size());
    for (std::size_t c = 0; c < cells.size(); ++c) {
        sweep_outcome outcome;
        outcome.name = cells[c].name;
        outcome.config = cells[c].config;
        outcome.result.reps = std::move(grid[c]);
        for (const auto& r : outcome.result.reps) {
            accumulate_repetition(outcome.result, r);
        }
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::vector<sweep_outcome> run_sweep(const std::vector<sweep_cell>& cells,
                                     const sweep_options& options) {
    if (cells.empty()) {
        return {};
    }
    const std::size_t total_jobs = std::accumulate(
        cells.begin(), cells.end(), std::size_t{0},
        [](std::size_t sum, const sweep_cell& cell) {
            return sum + std::max<std::uint32_t>(cell.config.reps, 1);
        });
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(resolve_thread_count(options.threads),
                              total_jobs));
    thread_pool pool(workers);
    return run_sweep(pool, cells, options.progress);
}

sweep_emitter& sweep_emitter::add_column(std::string header, value_fn value,
                                         table_align align) {
    KD_EXPECTS_MSG(value != nullptr, "emitter column needs a value function");
    columns_.push_back(
        column{std::move(header), std::move(value), align});
    return *this;
}

sweep_emitter& sweep_emitter::add_name_column(std::string header) {
    return add_column(
        std::move(header),
        [](const sweep_outcome& outcome, std::size_t) {
            return outcome.name;
        },
        table_align::left);
}

sweep_emitter& sweep_emitter::add_max_load_set_column(std::string header) {
    return add_column(std::move(header),
                      [](const sweep_outcome& outcome, std::size_t) {
                          return outcome.result.max_load_set();
                      });
}

sweep_emitter& sweep_emitter::add_stat_column(
    std::string header, std::function<double(const sweep_outcome&)> stat,
    int precision) {
    KD_EXPECTS_MSG(stat != nullptr, "stat column needs a statistic function");
    return add_column(std::move(header),
                      [stat = std::move(stat),
                       precision](const sweep_outcome& outcome, std::size_t) {
                          return format_fixed(stat(outcome), precision);
                      });
}

text_table
sweep_emitter::to_table(const std::vector<sweep_outcome>& outcomes) const {
    KD_EXPECTS_MSG(!columns_.empty(), "emitter has no columns");
    text_table table;
    std::vector<std::string> header;
    header.reserve(columns_.size());
    for (const auto& col : columns_) {
        header.push_back(col.header);
    }
    table.set_header(std::move(header));
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        table.set_align(c, columns_[c].align);
    }
    for (std::size_t row = 0; row < outcomes.size(); ++row) {
        std::vector<std::string> cells;
        cells.reserve(columns_.size());
        for (const auto& col : columns_) {
            cells.push_back(col.value(outcomes[row], row));
        }
        table.add_row(std::move(cells));
    }
    return table;
}

void sweep_emitter::write_table(
    std::ostream& out, const std::vector<sweep_outcome>& outcomes) const {
    out << to_table(outcomes) << '\n';
}

void sweep_emitter::write_csv(
    std::ostream& out, const std::vector<sweep_outcome>& outcomes) const {
    KD_EXPECTS_MSG(!columns_.empty(), "emitter has no columns");
    csv_writer csv(out);
    std::vector<std::string> header;
    header.reserve(columns_.size());
    for (const auto& col : columns_) {
        header.push_back(col.header);
    }
    csv.write_row(header);
    for (std::size_t row = 0; row < outcomes.size(); ++row) {
        std::vector<std::string> cells;
        cells.reserve(columns_.size());
        for (const auto& col : columns_) {
            cells.push_back(col.value(outcomes[row], row));
        }
        csv.write_row(cells);
    }
}

} // namespace kdc::core
