// Thread-pool version of the multi-repetition experiment runner.
//
// Repetitions of an experiment are embarrassingly parallel: rep r depends
// only on derive_seed(master, r), never on rep r-1. run_parallel_experiment
// exploits that by fanning the reps of one experiment_config out across a
// pool of hardware threads, then folding the per-repetition results into the
// aggregate *in repetition order*. Because both the per-rep seeds and the
// fold order are independent of the thread count, the returned
// experiment_result is bit-identical to the serial run_experiment — at 1, 8,
// or 64 threads. That is the property the Table-1 / frontier sweeps rely on:
// `--threads` changes wall-clock time only, never a reported number.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runner.hpp"

namespace kdc::core {

/// Fixed-size pool of worker threads draining a FIFO job queue. Small by
/// design: submit() and wait_idle() are all the experiment runner needs.
/// Jobs must not throw (run_repetitions wraps user code and captures the
/// first exception itself).
class thread_pool {
public:
    /// Spawns `threads` workers (>= 1 enforced by contract).
    explicit thread_pool(unsigned threads);

    /// Joins all workers; pending jobs are still drained first.
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Enqueues a job for execution on some worker.
    void submit(std::function<void()> job);

    /// Blocks until every submitted job has finished executing.
    void wait_idle();

    [[nodiscard]] unsigned size() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

private:
    void worker_loop();

    std::mutex mutex_;
    std::condition_variable work_available_;
    std::condition_variable all_done_;
    std::deque<std::function<void()>> queue_;
    std::size_t in_flight_ = 0;  // queued + currently executing jobs
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/// Resolves a user-facing thread-count request: 0 means "all hardware
/// threads" (at least 1 even if the runtime cannot tell), anything else is
/// taken literally.
[[nodiscard]] unsigned resolve_thread_count(unsigned requested) noexcept;

namespace detail {

/// Runs reps repetitions of `factory` on `pool`, writing slot r of the
/// returned vector from seed derive_seed(seed, r). Rethrows the first
/// exception any repetition threw (remaining reps still run to completion so
/// the pool is quiescent on return).
template <typename Factory>
[[nodiscard]] std::vector<repetition_result>
run_repetitions(thread_pool& pool, const experiment_config& config,
                Factory&& factory) {
    std::vector<repetition_result> results(config.reps);
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (std::uint32_t rep = 0; rep < config.reps; ++rep) {
        pool.submit([&, rep] {
            try {
                results[rep] =
                    run_one_repetition(rng::derive_seed(config.seed, rep),
                                       config.balls, factory);
            } catch (...) {
                const std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        });
    }
    pool.wait_idle();
    if (first_error) {
        std::rethrow_exception(first_error);
    }
    return results;
}

} // namespace detail

/// Parallel counterpart of run_experiment. `factory(seed)` must be callable
/// concurrently from multiple threads (every factory in this repo is: it
/// only captures experiment parameters by value). `threads` = 0 uses all
/// hardware threads; the pool never holds more workers than reps.
///
/// Guarantee: the result — reps vector, histogram, and every running_stats
/// aggregate — is bit-identical to run_experiment(config, factory).
template <typename Factory>
[[nodiscard]] experiment_result
run_parallel_experiment(const experiment_config& config, Factory&& factory,
                        unsigned threads = 0) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);

    const unsigned resolved = resolve_thread_count(threads);
    const unsigned workers =
        std::min<unsigned>(resolved, config.reps);
    thread_pool pool(workers);
    auto reps = detail::run_repetitions(pool, config, factory);

    // Fold in repetition order: running_stats and the histogram see exactly
    // the sequence the serial runner feeds them, so aggregates match bitwise.
    experiment_result out;
    out.reps = std::move(reps);
    for (const auto& r : out.reps) {
        accumulate_repetition(out, r);
    }
    return out;
}

/// Parallel counterparts of the serial convenience runners. Same defaults:
/// balls = 0 means "as many whole rounds as fit n balls".
[[nodiscard]] experiment_result
run_kd_experiment_parallel(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           const experiment_config& config,
                           unsigned threads = 0);

[[nodiscard]] experiment_result
run_single_choice_experiment_parallel(std::uint64_t n,
                                      const experiment_config& config,
                                      unsigned threads = 0);

[[nodiscard]] experiment_result
run_d_choice_experiment_parallel(std::uint64_t n, std::uint64_t d,
                                 const experiment_config& config,
                                 unsigned threads = 0);

} // namespace kdc::core
