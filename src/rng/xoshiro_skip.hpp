// Arbitrary-N skip-ahead for xoshiro256**.
//
// The generator's STATE transition (not its starred output scrambler) is
// linear over GF(2): every next-state bit is an XOR of current-state bits
// (shifts, rotates and XORs only). One step is therefore a 256x256 bit
// matrix M, and advancing by N steps is applying M^N — computable in
// O(log N) matrix applications from the precomputed squares M^(2^j).
//
// This is the same algebra behind xoshiro256ss::jump()/long_jump() (fixed
// polynomials for N = 2^128 / 2^192); here the exponent is arbitrary, which
// is what the sharded kernel's parallel tape pregeneration needs: worker w
// reconstructs the generator state at its slice boundary — a known number
// of generator calls past the chunk start — without replaying the serial
// stream (core/sharded_kernel.cpp).
//
// Cost model: the 64 square matrices are built once per process (lazy,
// ~8 KiB each, a few ms total) behind a thread-safe magic static; one
// skip() is then popcount(N) matrix applications of ~256 conditional
// 4-word XORs — microseconds, amortized over millions of tape slots.
#pragma once

#include <cstdint>

#include "rng/xoshiro256ss.hpp"

namespace kdc::rng {

/// Returns a copy of `gen` advanced by exactly `steps` operator() calls.
/// xoshiro_skip(g, n) == calling g() n times, for every n (0 included).
[[nodiscard]] xoshiro256ss xoshiro_skip(const xoshiro256ss& gen,
                                        std::uint64_t steps);

} // namespace kdc::rng
