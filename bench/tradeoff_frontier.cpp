// The max-load / message-cost tradeoff frontier of Section 1.1.
//
// Headline claims reproduced here, all at the same n:
//   * single choice: n messages, Theta(ln n / ln ln n) max load;
//   * classic d-choice: d*n messages, ln ln n / ln d + O(1);
//   * (k, 2k) with k = Theta(polylog n): 2n messages, O(1) max load —
//     "a constant maximum load and O(n) messages", which no previously
//     known non-adaptive scheme achieved;
//   * k >= Theta(ln^2 n), d-k = Theta(ln n): (1+o(1))n messages, o(ln ln n)
//     max load;
//   * the adaptive threshold baseline (Czumaj-Stemann flavor) for context.
//
// All schemes run as one cross-cell sweep on a shared work-stealing pool
// (core/sweep.hpp); aggregates are bit-identical to a serial run at any
// --threads value.
//
//   ./tradeoff_frontier [--n=196608] [--reps=10] [--seed=5] [--threads=0]
//                       [--csv] [--scenario "kd:n=...,kernel=auto"]
//                       [--adaptive --ci-width=0.4 --min-reps=3 --max-reps=40]
//
// Every scheme on the frontier is a declarative scenario
// (core/scenario.hpp): single choice, d-choice, the (1+beta) mixture and
// the adaptive threshold baseline are all policy-registry entries, so one
// make_scenario_cell call constructs each of them. --scenario overrides
// the legacy flags key by key (kernel=level/auto applies to every cell
// whose policy has a level kernel; the threshold baseline is per-bin
// only, so asking it for kernel=level is an error by design).
#include <cmath>
#include <iostream>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("reps", "10", "repetitions per scheme");
    args.add_option("seed", "5", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (scheme, msgs/ball, mean max)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;

    const auto ln_n = static_cast<std::uint64_t>(
        std::log(static_cast<double>(n)));
    // k = Theta(ln^2 n), rounded to divide n reasonably.
    const std::uint64_t k_polylog = ln_n * ln_n; // ~146 at n = 3*2^16

    // Cell seeds replicate the original bench: scheme i used seed ^ i.
    // Every scheme is one scenario stamped onto the merged base.
    std::vector<kdc::core::sweep_cell> cells;
    auto add_scenario = [&](const std::string& name,
                            const kdc::core::scenario& sc,
                            std::uint64_t balls) {
        cells.push_back(kdc::core::make_scenario_cell(
            name, sc,
            {.balls = balls, .reps = reps, .seed = seed ^ cells.size()}));
    };

    {
        auto sc = merged;
        sc.family = "single";
        sc.probe = kdc::core::probe_policy::uniform;
        add_scenario("single choice", sc, n);
    }
    {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = kdc::core::probe_policy::one_plus_beta;
        sc.beta = 0.5;
        add_scenario("(1+beta), beta=0.5", sc, n);
    }
    for (const std::uint64_t d : {2, 4}) {
        auto sc = merged;
        sc.family = "dchoice";
        sc.probe = kdc::core::probe_policy::uniform;
        sc.k = 1;
        sc.d = d;
        add_scenario(std::to_string(d) + "-choice", sc, n);
    }
    {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = kdc::core::probe_policy::threshold;
        sc.threshold = 2;
        sc.cap = 16;
        add_scenario("adaptive T=2 (Czumaj-Stemann flavor)", sc, n);
    }

    struct kd_config {
        std::uint64_t k, d;
        const char* note;
    };
    const std::vector<kd_config> kd_configs{
        {2, 3, "(k,d)=(2,3): 1.5n msgs"},
        {k_polylog, 2 * k_polylog, "(k,2k), k~ln^2 n: 2n msgs, O(1) load"},
        {k_polylog, k_polylog + ln_n,
         "(k,k+ln n), k~ln^2 n: (1+o(1))n msgs"},
        {8 * k_polylog, 8 * k_polylog + ln_n,
         "(k,k+ln n), k~8 ln^2 n: (1+o(1))n msgs"},
    };
    for (const auto& cfg : kd_configs) {
        auto sc = merged;
        sc.family = "kd";
        sc.probe = kdc::core::probe_policy::uniform;
        sc.k = cfg.k;
        sc.d = cfg.d;
        add_scenario(cfg.note, sc, kdc::core::whole_rounds_balls(n, cfg.k));
    }

    kdc::core::sweep_options options;
    options.threads = args.get_threads();
    options.stopping = kdc::core::stopping_rule_from_cli(args);
    const auto outcomes = kdc::core::run_sweep(cells, options);

    kdc::core::sweep_emitter emitter;
    emitter.add_name_column("scheme")
        .add_reps_column()
        .add_column("msgs/ball",
                    [](const kdc::core::sweep_outcome& outcome, std::size_t) {
                        return kdc::format_fixed(
                            outcome.result.message_stats.mean() /
                                static_cast<double>(outcome.config.balls),
                            3);
                    })
        .add_stat_column("mean max load",
                         [](const kdc::core::sweep_outcome& outcome) {
                             return outcome.result.max_load_stats.mean();
                         })
        .add_max_load_set_column();

    std::cout << "Max-load vs message-cost frontier at n = " << n << " ("
              << reps << " reps)\n\n";
    emitter.write_table(std::cout, outcomes);
    std::cout << "Claims to check:\n"
                 "  * (k,2k) with k ~ ln^2 n: ~2 msgs/ball and a max load "
                 "that is a small constant\n"
                 "    (matches 2-choice quality at the same message cost "
                 "budget as 2-choice,\n"
                 "    and beats every O(n)-message non-adaptive scheme's "
                 "Theta(ln ln n)).\n"
                 "  * (k,k+ln n): ~1 msg/ball — single-choice message cost — "
                 "with far lower max load.\n"
                 "  * single choice: Theta(ln n / ln ln n) = "
              << kdc::format_fixed(kdc::theory::single_choice_max_load(n), 2)
              << " predicted.\n";

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, outcomes);
    }
    return 0;
}
