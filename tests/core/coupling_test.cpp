#include "core/coupling.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/metrics.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::core::couple_property_ii;
using kdc::core::couple_property_iv;

TEST(CouplingPropertyII, ParameterValidation) {
    EXPECT_THROW((void)couple_property_ii(8, 2, 2, 1, 4, 1),
                 kdc::contract_violation); // k == d
    EXPECT_THROW((void)couple_property_ii(8, 1, 7, 2, 4, 1),
                 kdc::contract_violation); // d + alpha > n
    EXPECT_NO_THROW((void)couple_property_ii(8, 1, 2, 1, 4, 1));
}

TEST(CouplingPropertyII, PrefixOrderingHoldsThroughout) {
    // The shared-probe coupling of Property (ii): the (k, d+alpha) process
    // never has a larger top-x load sum than the (k, d) process, at any
    // round, for any x.
    for (const auto& [k, d, alpha] :
         std::vector<std::tuple<std::uint64_t, std::uint64_t,
                                std::uint64_t>>{
             {1, 2, 1}, {1, 2, 4}, {2, 4, 2}, {4, 8, 8}, {3, 5, 2}}) {
        const auto report =
            couple_property_ii(256, k, d, alpha, 256 / k, 17);
        EXPECT_EQ(report.violations, 0u)
            << "k=" << k << " d=" << d << " alpha=" << alpha
            << " rate=" << report.violation_rate();
    }
}

TEST(CouplingPropertyII, BothProcessesPlaceSameBallCount) {
    const auto report = couple_property_ii(128, 2, 4, 3, 64, 5);
    const auto total = [](const kdc::core::load_vector& v) {
        return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
    };
    EXPECT_EQ(total(report.final_better), total(report.final_worse));
    EXPECT_EQ(total(report.final_better), 128u);
}

TEST(CouplingPropertyII, FinalMaxLoadOrdered) {
    const auto report = couple_property_ii(512, 2, 4, 4, 256, 23);
    EXPECT_LE(kdc::core::compute_load_metrics(report.final_better).max_load,
              kdc::core::compute_load_metrics(report.final_worse).max_load);
}

TEST(CouplingPropertyIV, ParameterValidation) {
    EXPECT_THROW((void)couple_property_iv(8, 1, 5, 2, 4, 1),
                 kdc::contract_violation); // alpha*d > n
    EXPECT_NO_THROW((void)couple_property_iv(8, 1, 2, 2, 4, 1));
}

TEST(CouplingPropertyIV, BallCountsMatchPerSuperRound) {
    const auto report = couple_property_iv(128, 2, 4, 2, 32, 7);
    const auto total = [](const kdc::core::load_vector& v) {
        return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
    };
    EXPECT_EQ(total(report.final_better), total(report.final_worse));
    EXPECT_EQ(total(report.final_better), 128u); // 32 super-rounds * 2k
}

TEST(CouplingPropertyIV, ViolationRateSmall) {
    // Unlike (ii), this implementation breaks ties independently on the two
    // sides, so the paper's exact invariant degrades to a statistical one:
    // the prefix ordering holds for the overwhelming majority of (round, x)
    // pairs, and the mean max load is ordered.
    double better_max = 0.0;
    double worse_max = 0.0;
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
        const auto report = couple_property_iv(256, 2, 4, 2, 64, 100 + seed);
        EXPECT_LT(report.violation_rate(), 0.30) << "seed=" << seed;
        better_max += static_cast<double>(
            kdc::core::compute_load_metrics(report.final_better).max_load);
        worse_max += static_cast<double>(
            kdc::core::compute_load_metrics(report.final_worse).max_load);
    }
    EXPECT_LE(better_max, worse_max + 1.0);
}

TEST(CouplingDeterminism, SameSeedSameReport) {
    const auto a = couple_property_ii(128, 1, 3, 2, 64, 99);
    const auto b = couple_property_ii(128, 1, 3, 2, 64, 99);
    EXPECT_EQ(a.final_better, b.final_better);
    EXPECT_EQ(a.final_worse, b.final_worse);
    EXPECT_EQ(a.violations, b.violations);
}

} // namespace
