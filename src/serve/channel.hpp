// The channel abstraction between sessions and the dispatcher: a
// socket-shaped, FIFO, typed message queue.
//
// The interface is deliberately the non-blocking half of a socket —
// send / try_receive / pending — so a future transport (a real socket, a
// zmq-style dispatcher as in APSI's sender_dispatcher/senderchannel split)
// can slot in behind the same calls. The in-memory implementation used by
// the simulation is deterministic by construction: messages come out in
// exactly the order they went in (one sequence counter, no reordering),
// which combined with the event queue's FIFO tie-breaking
// (sim/event_queue.hpp) gives the service its determinism contract
// (docs/service.md).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "support/contracts.hpp"

namespace kdc::serve {

/// Abstract one-directional typed channel. Implementations must be FIFO:
/// try_receive yields messages in send order.
template <typename M>
class channel {
public:
    virtual ~channel() = default;

    /// Enqueues a message (takes ownership).
    virtual void send(M message) = 0;

    /// Dequeues the oldest pending message into `out`; false when empty.
    [[nodiscard]] virtual bool try_receive(M& out) = 0;

    /// Messages sent but not yet received.
    [[nodiscard]] virtual std::size_t pending() const noexcept = 0;
};

/// The deterministic in-memory channel: an unbounded FIFO with send /
/// receive counters. "Delivery latency" is not modeled here — the service
/// schedules the send() call itself at arrival time + channel delay on the
/// simulator, so one channel class serves both directions.
template <typename M>
class memory_channel final : public channel<M> {
public:
    void send(M message) override {
        queue_.push_back(std::move(message));
        ++sent_;
    }

    [[nodiscard]] bool try_receive(M& out) override {
        if (queue_.empty()) {
            return false;
        }
        out = std::move(queue_.front());
        queue_.pop_front();
        ++received_;
        return true;
    }

    [[nodiscard]] std::size_t pending() const noexcept override {
        return queue_.size();
    }

    /// Lifetime counters (monotone), for tests and stats.
    [[nodiscard]] std::uint64_t total_sent() const noexcept { return sent_; }
    [[nodiscard]] std::uint64_t total_received() const noexcept {
        return received_;
    }

private:
    std::deque<M> queue_;
    std::uint64_t sent_ = 0;
    std::uint64_t received_ = 0;
};

} // namespace kdc::serve
