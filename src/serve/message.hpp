// Wire vocabulary of the allocation service: the request/response messages
// that flow between client sessions and the dispatcher over a channel
// (serve/channel.hpp).
//
// The paper's (k,d)-choice is a dispatcher protocol — k tasks share one
// pool of d probes, cutting the message cost from k*d (per-task d-choice,
// the Sparrow style modeled in sched/scheduler.hpp) to d per request. The
// service speaks exactly that protocol: an `allocate` request asks for k
// bins chosen by the (k,d) rule, a `release` request returns a previous
// allocation's balls (the churn direction of the ROADMAP). Requests carry
// a globally unique id assigned in ARRIVAL order; the dispatcher processes
// requests in id order, which is what makes the served allocation sequence
// reproducible by a serial oracle (serve/service.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace kdc::serve {

/// How an allocate request spends its probe budget: `batch` is the paper's
/// (k,d)-choice (ONE pool of d probes shared by the k tasks, d messages);
/// `per_task` is the Sparrow-style baseline (each of the k tasks probes d
/// bins independently, k*d messages). The two spellings mirror
/// sched::probe_strategy::{batch_kd_choice, per_task_d_choice}, so the
/// service's measured message cost lands on the same closed form the
/// scheduler model predicts.
enum class probing : std::uint8_t { batch, per_task };

[[nodiscard]] constexpr const char* probing_name(probing mode) noexcept {
    return mode == probing::batch ? "batch" : "per_task";
}

enum class request_kind : std::uint8_t {
    allocate, ///< place k balls via the configured probing mode
    release   ///< free the balls of an earlier allocate (churn)
};

/// One client request. `id` is assigned by the service in arrival order
/// and doubles as the RNG stream selector: every probe and tie-break draw
/// of request `id` comes from a generator seeded by (service seed, id), so
/// the drawn probes are a pure function of the request — independent of
/// batching, shard count and thread count.
struct request {
    request_kind kind = request_kind::allocate;
    std::uint64_t client = 0;
    std::uint64_t id = 0;
    /// release only: the id of the earlier allocate to undo. The
    /// dispatcher resolves it to bins server-side, so a release's content
    /// never depends on whether the allocate's RESPONSE already arrived —
    /// one of the two properties that make the oracle comparison exact.
    std::uint64_t target = 0;
};

/// The dispatcher's answer. For an allocate, `bins` holds the k chosen
/// bins in increasing post-placement height order (ties by tie key, then
/// probe index — the same order the round kernel reports placed balls).
/// For a release, `bins` echoes the freed bins.
struct response {
    std::uint64_t client = 0;
    std::uint64_t id = 0;
    std::vector<std::uint32_t> bins;
    /// Probe messages this request cost: d for batch, k*d for per_task,
    /// 0 for a release (the client already names the allocation).
    std::uint64_t probe_messages = 0;
};

} // namespace kdc::serve
