// Reproduces Figure 2 of the paper: the sorted bin-load vector with the
// *lower-bound* landmarks of Section 5,
//     gamma* = 4 n / dk     (Theorem 6: B_{gamma*} >= (1-o(1)) ln dk / ln ln dk)
//     gamma0 = n / d        (Theorem 7: B_1 - B_{gamma0} >= ln ln n /
//                            ln(d-k+1) - O(1))
// for a configuration with dk -> infinity (the regime Figure 2 illustrates;
// default (64,65), dk = 65).
//
//   ./fig2_lowerbound_landmarks [--n=196608] [--k=64] [--d=65] [--reps=5]
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/kdchoice.hpp"
#include "stats/running_stats.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "196608", "number of bins and balls");
    args.add_option("k", "64", "balls per round");
    args.add_option("d", "65", "bins probed per round");
    args.add_option("reps", "5", "independent repetitions to average");
    args.add_option("seed", "2", "master seed");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto n = static_cast<std::uint64_t>(args.get_int("n"));
    const auto k = static_cast<std::uint64_t>(args.get_int("k"));
    const auto d = static_cast<std::uint64_t>(args.get_int("d"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    const double dk = kdc::theory::dk_ratio(k, d);
    const auto gamma_star = static_cast<std::uint64_t>(
        std::max(1.0, kdc::theory::gamma_star_landmark(n, k, d)));
    const auto gamma0 = static_cast<std::uint64_t>(
        std::max(1.0, kdc::theory::gamma0_landmark(n, d)));

    std::cout << "Figure 2: sorted bin load vector of (" << k << "," << d
              << ")-choice with lower-bound landmarks, n = " << n << "\n"
              << "dk = " << kdc::format_fixed(dk, 2)
              << ", gamma* = 4n/dk = " << gamma_star
              << ", gamma0 = n/d = " << gamma0 << "\n\n";

    std::vector<std::uint64_t> ranks{1, gamma0, gamma_star, n};
    for (std::uint64_t x = 2; x < n; x = x * 2 + 1) {
        ranks.push_back(x);
    }
    std::sort(ranks.begin(), ranks.end());
    ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());

    std::vector<kdc::stats::running_stats> profile(ranks.size());
    kdc::stats::running_stats b1;
    kdc::stats::running_stats b_gamma_star;
    kdc::stats::running_stats b_gamma0;

    const auto balls = n - (n % k);
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
        kdc::core::kd_choice_process process(
            n, k, d, kdc::rng::derive_seed(seed, rep));
        process.run_balls(balls);
        const auto sorted = kdc::core::sorted_loads_desc(process.loads());
        for (std::size_t i = 0; i < ranks.size(); ++i) {
            profile[i].push(static_cast<double>(sorted[ranks[i] - 1]));
        }
        b1.push(static_cast<double>(sorted.front()));
        b_gamma_star.push(static_cast<double>(sorted[gamma_star - 1]));
        b_gamma0.push(static_cast<double>(sorted[gamma0 - 1]));
    }

    kdc::text_table table;
    table.set_header({"rank x", "B_x (mean)", "note"});
    for (std::size_t i = 0; i < ranks.size(); ++i) {
        std::string note;
        if (ranks[i] == gamma_star) {
            note = "<- gamma* = 4n/dk";
        } else if (ranks[i] == gamma0) {
            note = "<- gamma0 = n/d";
        } else if (ranks[i] == 1) {
            note = "<- max load B_1";
        }
        table.add_row({std::to_string(ranks[i]),
                       kdc::format_fixed(profile[i].mean(), 2), note});
    }
    std::cout << table << '\n';

    const double theorem6 = kdc::theory::second_term(k, d);
    const double theorem7 = kdc::theory::first_term(n, k, d);
    std::cout
        << "Lower-bound decomposition (Section 5, Figure 2):\n"
        << "  measured B_{gamma*}       = "
        << kdc::format_fixed(b_gamma_star.mean(), 2)
        << "   (Theorem 6 lower bound ~ (1-o(1)) ln dk / ln ln dk = "
        << kdc::format_fixed(theorem6, 2) << ")\n"
        << "  measured B_1 - B_{gamma0} = "
        << kdc::format_fixed(b1.mean() - b_gamma0.mean(), 2)
        << "   (Theorem 7 lower bound ~ ln ln n / ln(d-k+1) - O(1) = "
        << kdc::format_fixed(theorem7, 2) << " - O(1))\n"
        << "  measured B_1              = " << kdc::format_fixed(b1.mean(), 2)
        << "   (their sum lower-bounds the max load)\n";
    return 0;
}
