// The serve fault-site guard (satellite of the service PR): every
// registered serve.* site must be reachable through a live service run,
// and every serve.* name in the global registry must be listed in
// serve_sites(). Registering a site without instrumenting it — or
// instrumenting one without listing it — fails here.
#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/service.hpp"

namespace kdc::serve {
namespace {

using core::fault_plan;
using core::fault_site;
using core::fault_site_name;

service_config small_config() {
    service_config config;
    config.bins = 32;
    config.k = 2;
    config.d = 4;
    config.seed = 77;
    config.clients = 2;
    config.requests = 24;
    config.arrival_rate = 4.0;
    config.churn = 0.25;
    config.shards = 2;
    config.threads = 1;
    return config;
}

TEST(ServeFaultSites, EveryServePrefixedSiteIsListed) {
    std::vector<std::string> listed;
    for (const fault_site site : core::serve_sites()) {
        listed.emplace_back(fault_site_name(site));
    }
    std::vector<std::string> prefixed;
    for (const std::string& name : core::fault_site_names()) {
        if (name.starts_with("serve.")) {
            prefixed.push_back(name);
        }
    }
    // Same sets, same (enum) order: serve_sites() IS the serve.* registry.
    EXPECT_EQ(listed, prefixed);
    EXPECT_FALSE(listed.empty());
}

TEST(ServeFaultSites, EveryListedSiteFiresDuringALiveRun) {
    for (const fault_site site : core::serve_sites()) {
        const std::string plan =
            std::string(fault_site_name(site)) + ":io_error@1";
        core::arm_faults(fault_plan::parse(plan));
        bool fired = false;
        try {
            (void)run_service(small_config());
        } catch (const core::injected_io_error& error) {
            fired = true;
            EXPECT_EQ(error.site(), site);
        }
        core::disarm_faults();
        EXPECT_TRUE(fired) << "site " << fault_site_name(site)
                           << " is registered but never reached by "
                              "run_service — instrument it";
    }
}

TEST(ServeFaultSites, LaterHitsPassUntouched) {
    // An @hit beyond the run's site arrivals must leave the run intact —
    // the disarmed/armed-but-silent path the hot-path guard also covers.
    core::arm_faults(
        fault_plan::parse("serve.accept:io_error@1000000"));
    const service_result result = run_service(small_config());
    core::disarm_faults();
    EXPECT_EQ(result.allocations + result.releases, 24u);
}

} // namespace
} // namespace kdc::serve
