// Deterministic fault injection: named sites at the pipeline's phase
// boundaries, armed with a plan that says WHICH site fails, HOW, and on
// WHICH hit.
//
// The simulation pipeline is deterministic by design (same seed, same
// output at any thread count), which makes its failure handling testable
// the same way: a fault plan like "snapshot.rename:crash@1" kills the
// process at a precisely reproducible point, and the kill/resume harness
// (tests/integration/crash_recovery_test.cpp) then proves that rerunning
// the command recovers byte-identical output. Three actions cover the
// interesting failure classes:
//
//   * crash      — raise SIGKILL (no destructors, no flushes: a power cut);
//   * io_error   — throw injected_io_error (a transient stream failure;
//                  the snapshot writer retries these with backoff);
//   * alloc_fail — throw std::bad_alloc (exercises the perbin -> level
//                  degradation path in make_process).
//
// Sites cost ONE relaxed atomic load when no plan is armed (fault_point is
// inline; the slow path is out of line), so instrumentation stays in
// release builds — the bench guard (micro_throughput --sharded-floor)
// asserts the armed-but-never-firing cost stays under 1% too.
//
// Plans come from the `--inject-faults` CLI option (support/cli.hpp,
// add_fault_options) or the KDC_FAULTS environment variable (which wins, so
// a harness can inject into a binary whose flags it does not control).
// Grammar, recovery semantics and the site catalog: docs/robustness.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace kdc {
class arg_parser;
} // namespace kdc

namespace kdc::core {

/// Every named injection site, one per instrumented phase boundary.
enum class fault_site : std::uint8_t {
    shard_pregen,       ///< sharded kernel: before the probe-tape pregen
    shard_bucket,       ///< sharded kernel: before bucketing slots by shard
    shard_gather,       ///< sharded kernel: before the gather phase
    shard_select,       ///< sharded kernel: before selection sweeps
    shard_handoff,      ///< sharded kernel: before the dirty-round replay
    shard_commit,       ///< sharded kernel: before the commit phase
    snapshot_serialize, ///< snapshot stage: before serializing the profile
    snapshot_write,     ///< snapshot stage: before writing the temp file
    snapshot_rename,    ///< snapshot stage: before the atomic rename
    journal_commit,     ///< snapshot stage: before committing the journal
    resume_load,        ///< snapshot stage: before reading --resume bytes
    resume_validate,    ///< snapshot stage: before validating the profile
    steady_pilot,       ///< steady state: before each warmup=ff pilot sim
    perbin_alloc,       ///< make_process: before a per-bin state allocation
    serve_accept,       ///< dispatcher: on accepting a batch from the channel
    serve_batch,        ///< dispatcher: before a batch's gather/select phases
    serve_commit,       ///< dispatcher: before the parallel commit phase
    count_              ///< sentinel, not a site
};

inline constexpr std::size_t fault_site_count =
    static_cast<std::size_t>(fault_site::count_);

/// The site's spelled name ("shard.pregen", "snapshot.rename", ...).
[[nodiscard]] const char* fault_site_name(fault_site site) noexcept;

/// All site names in enum order — the authority the docs table and the
/// generated crash-test matrix are checked against.
[[nodiscard]] std::vector<std::string> fault_site_names();

/// The sites on the snapshot/resume path — the set the kill/resume harness
/// must cover (tests/CMakeLists.txt generates one ctest per entry and a
/// completeness check against this list, so adding a site here without a
/// matrix entry fails the suite).
[[nodiscard]] std::vector<fault_site> snapshot_path_sites();

/// The sites inside the allocation service's dispatcher (the `serve.*`
/// prefix). Mirrors snapshot_path_sites: the serve fault suite
/// (tests/serve/fault_sites_test.cpp) fires every listed site through a
/// live service run and separately checks that every `serve.`-prefixed
/// name in fault_site_names() appears here — so registering a serve site
/// without instrumenting it (or without extending this list) fails a test.
[[nodiscard]] std::vector<fault_site> serve_sites();

enum class fault_action : std::uint8_t { crash, io_error, alloc_fail };

[[nodiscard]] const char* fault_action_name(fault_action action) noexcept;

/// One armed rule: on the `hit`-th arrival (1-based) at `site`, apply
/// `action`. Earlier and later arrivals pass through untouched.
struct fault_rule {
    fault_site site = fault_site::count_;
    fault_action action = fault_action::crash;
    std::uint64_t hit = 1;
};

/// A parsed `--inject-faults` / KDC_FAULTS spec.
///
/// Grammar:  spec  := rule (';' rule)*
///           rule  := site ':' action ['@' hit]
/// where `site` is a fault_site_name, `action` is crash | io_error |
/// alloc_fail and `hit` is a positive integer (default 1). Example:
/// "snapshot.write:io_error@1;snapshot.rename:crash@2".
struct fault_plan {
    std::vector<fault_rule> rules;

    [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

    /// Parses a spec; throws cli_error with a precise message on an
    /// unknown site/action, malformed hit count or empty rule.
    [[nodiscard]] static fault_plan parse(std::string_view spec);
};

/// Thrown by an armed io_error rule (and only then) — callers that retry
/// transient I/O failures catch exactly this type.
class injected_io_error : public std::runtime_error {
public:
    explicit injected_io_error(fault_site site);
    [[nodiscard]] fault_site site() const noexcept { return site_; }

private:
    fault_site site_;
};

/// Arms `plan` process-wide and resets every site's hit counter. An empty
/// plan disarms. Not meant to be called concurrently with running
/// simulations (arm first, then run).
void arm_faults(fault_plan plan);

/// Disarms all fault injection (fault_point returns to the one-load path).
void disarm_faults() noexcept;

[[nodiscard]] bool faults_armed() noexcept;

/// Reads KDC_FAULTS (which wins when set and non-empty) or the binary's
/// `--inject-faults` option, parses it, and arms the result. Returns true
/// when a non-empty plan was armed. The binary must have declared the
/// option via arg_parser::add_fault_options().
bool arm_faults_from_cli(const arg_parser& args);

namespace detail {
extern std::atomic<bool> faults_armed_flag;
void fault_point_slow(fault_site site);
} // namespace detail

/// The per-site instrumentation hook: a single relaxed atomic load when no
/// plan is armed, the out-of-line hit-counting path otherwise.
inline void fault_point(fault_site site) {
    if (detail::faults_armed_flag.load(std::memory_order_relaxed)) {
        detail::fault_point_slow(site);
    }
}

} // namespace kdc::core
