// Theorem 2 reproduction (heavily loaded case): for m > n balls and d >= 2k,
//   ln ln n / ln(d-k+1) - O(1)  <=  M(k,d,m,n) - m/n  <=  ln ln n /
//   ln floor(d/k) + O(1)
// via the majorization sandwich A(1, d-k+1) <=mj A(k,d) <=mj A(1, floor(d/k)).
//
// The harness sweeps m/n and prints, per configuration, the measured gap
// (max load minus mean load m/n) for the (k,d)-choice process and for both
// d-choice brackets, plus the Theorem 2 bound values. The shape to verify:
// the (k,d) gap sits between the two brackets and stays flat in m
// (Berenbrink et al.'s m-independence, which the paper's proof leans on).
//
// Every (config, m/n, role) triple is one cell of a single sweep on the
// shared work-stealing pool (core/engine.hpp scheduling); numbers are
// bit-identical at any --threads value. This is exactly the regime the
// level-compressed kernel exists for — `--kernel=level` runs the whole
// sweep in O(max-load) state per repetition, so m/n and n can be pushed
// orders of magnitude beyond the per-bin kernel's memory reach.
//
//   ./theorem2_heavy [--n=65536] [--reps=5] [--seed=4] [--threads=0]
//                    [--max-factor=32] [--csv] [--kernel=perbin|level]
//                    [--scenario "kd:n=...,kernel=auto,metric=gap"]
//                    [--adaptive --ci-width=0.4 --min-reps=3 --max-reps=40]
//
// Cells are declarative scenarios (core/scenario.hpp): the (k,d) process
// is the "kd" family, the two majorization brackets are "dchoice", and
// --scenario overrides the legacy flags key by key (byte-identical output
// for equivalent settings).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/kdchoice.hpp"
#include "support/cli.hpp"
#include "support/text_table.hpp"
#include "theory/bounds.hpp"

namespace {

struct config {
    std::uint64_t k, d;
};

struct cell_meta {
    std::size_t config_index = 0;
    std::uint64_t load_factor = 0;
    const char* role = ""; // "lo" | "mid" | "hi"
};

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins");
    args.add_option("reps", "5", "repetitions per point");
    args.add_option("seed", "4", "master seed");
    args.add_option("max-factor", "32",
                    "largest m/n load factor (doubling from 1)");
    args.add_threads_option();
    args.add_kernel_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_snapshot_options();
    args.add_fault_options();
    args.add_option("warmup", "full",
                    "'ff' fast-forwards each run to the steady state "
                    "(see docs/scenario-grammar.md)");
    args.add_flag("csv", "also emit CSV rows (k, d, m/n, role, gap mean)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    kdc::core::arm_faults_from_cli(args);
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const auto max_factor =
        static_cast<std::uint64_t>(args.get_int("max-factor"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.kernel =
        kdc::core::to_kernel_choice(kdc::core::kernel_from_cli(args));
    base.warmup = kdc::core::warmup_from_name(args.get_string("warmup"));
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto kernel = kdc::core::resolve_kernel(merged);

    // --snapshot-out / --resume turn the invocation into one stage of a
    // resumable heavy campaign instead of the full sandwich sweep.
    if (kdc::core::run_snapshot_stage(args, merged, seed, std::cout)) {
        return 0;
    }

    const std::vector<config> configs{{2, 4}, {2, 6}, {4, 8}, {8, 16}};
    std::vector<std::uint64_t> load_factors;
    for (std::uint64_t factor = 1; factor <= max_factor; factor *= 2) {
        load_factors.push_back(factor);
    }

    // One sweep over every (config, factor) point; the lo/mid/hi seeds
    // reproduce the original serial loop exactly (point_seed, +7000, +9000).
    std::vector<kdc::core::sweep_cell> cells;
    std::vector<cell_meta> meta;
    std::uint64_t point_seed = seed;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const auto& cfg = configs[c];
        for (const auto factor : load_factors) {
            ++point_seed;
            const std::uint64_t m = factor * n;
            const std::string point = "(" + std::to_string(cfg.k) + "," +
                                      std::to_string(cfg.d) +
                                      ") m/n=" + std::to_string(factor);
            auto bracket = merged;
            bracket.family = "dchoice";
            bracket.probe = kdc::core::probe_policy::uniform;
            bracket.k = 1;
            bracket.d = cfg.d - cfg.k + 1;
            cells.push_back(kdc::core::make_scenario_cell(
                point + " lo", bracket,
                {.balls = m, .reps = reps, .seed = point_seed + 7000}));
            meta.push_back({c, factor, "lo"});
            auto mid = merged;
            mid.k = cfg.k;
            mid.d = cfg.d;
            cells.push_back(kdc::core::make_scenario_cell(
                point + " mid", mid,
                {.balls = m, .reps = reps, .seed = point_seed}));
            meta.push_back({c, factor, "mid"});
            bracket.d = cfg.d / cfg.k;
            cells.push_back(kdc::core::make_scenario_cell(
                point + " hi", bracket,
                {.balls = m, .reps = reps, .seed = point_seed + 9000}));
            meta.push_back({c, factor, "hi"});
        }
    }

    kdc::core::sweep_options options;
    options.threads = args.get_threads();
    options.stopping = kdc::core::stopping_rule_from_cli(args);
    const auto outcomes = kdc::core::run_sweep(cells, options);

    std::cout << "Theorem 2: heavily loaded (k,d)-choice for d >= 2k, n = "
              << n << ", kernel = " << kdc::core::kernel_name(kernel) << "\n"
              << "gap = measured max load - m/n; brackets are the d-choice "
                 "processes of the majorization sandwich\n\n";

    std::size_t cursor = 0;
    for (const auto& cfg : configs) {
        const auto bound = kdc::theory::theorem2_bound(n, cfg.k, cfg.d);
        std::cout << "(k,d) = (" << cfg.k << "," << cfg.d
                  << "): Theorem 2 bounds: lower ~ "
                  << kdc::format_fixed(bound.lower, 2) << " - O(1), upper ~ "
                  << kdc::format_fixed(bound.upper, 2) << " + O(1)\n";
        kdc::text_table table;
        table.set_header({"m/n", "gap A(1," +
                              std::to_string(cfg.d - cfg.k + 1) + ") [lo]",
                          "gap (k,d)", "gap A(1," +
                              std::to_string(cfg.d / cfg.k) + ") [hi]"});
        for (const auto factor : load_factors) {
            const auto& lo = outcomes[cursor++].result;
            const auto& mid = outcomes[cursor++].result;
            const auto& hi = outcomes[cursor++].result;
            table.add_row({std::to_string(factor),
                           kdc::format_fixed(lo.gap_stats.mean(), 2),
                           kdc::format_fixed(mid.gap_stats.mean(), 2),
                           kdc::format_fixed(hi.gap_stats.mean(), 2)});
        }
        std::cout << table << '\n';
    }
    std::cout << "Expected shape: middle column between the brackets, all "
                 "three flat in m/n.\n";

    if (args.get_flag("csv")) {
        kdc::core::sweep_emitter emitter;
        emitter
            .add_column("k",
                        [&](const kdc::core::sweep_outcome&, std::size_t row) {
                            return std::to_string(
                                configs[meta[row].config_index].k);
                        })
            .add_column("d",
                        [&](const kdc::core::sweep_outcome&, std::size_t row) {
                            return std::to_string(
                                configs[meta[row].config_index].d);
                        })
            .add_column("m_over_n",
                        [&](const kdc::core::sweep_outcome&, std::size_t row) {
                            return std::to_string(meta[row].load_factor);
                        })
            .add_column("role",
                        [&](const kdc::core::sweep_outcome&, std::size_t row) {
                            return std::string(meta[row].role);
                        })
            .add_reps_column()
            .add_stat_column("gap_mean",
                             [](const kdc::core::sweep_outcome& outcome) {
                                 return outcome.result.gap_stats.mean();
                             });
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, outcomes);
    }
    return 0;
}
