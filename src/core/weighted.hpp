// Weighted (k,d)-choice: balls carry weights, bins accumulate weight.
//
// The unweighted paper sits in a line of work on weighted balanced
// allocations (Talwar-Wieder [17], Peres-Talwar-Wieder [14], both cited in
// Section 1). This module extends the (k,d) batch discipline to weighted
// balls so the two axes can be studied together:
//
//   * each round draws k ball weights from a weight distribution;
//   * d bins are probed i.u.r. with replacement;
//   * candidate slots are ordered by *current weight load*, and the k
//     heaviest balls of the round are matched to the k lightest slots
//     (heaviest-ball-to-lightest-slot, the standard greedy matching);
//   * the multiplicity rule carries over: a bin sampled m times receives at
//     most m of the round's balls.
//
// With unit weights this reduces exactly to the paper's process (tested).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "core/fenwick.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

/// Weight loads are doubles (weights need not be integral).
using weight_vector = std::vector<double>;

/// Draws one ball weight; must return a positive finite value.
using weight_distribution = std::function<double(rng::xoshiro256ss&)>;

/// All balls weigh 1 (recovers the unweighted process).
[[nodiscard]] weight_distribution unit_weights();

/// Weights uniform in [lo, hi], 0 < lo <= hi.
[[nodiscard]] weight_distribution uniform_weights(double lo, double hi);

/// Exponentially distributed weights with the given mean.
[[nodiscard]] weight_distribution exponential_weights(double mean);

/// Pareto(shape) weights with minimum x_min (heavy-tailed; shape > 1 for a
/// finite mean).
[[nodiscard]] weight_distribution pareto_weights(double shape, double x_min);

/// Level-compressed state for the weighted process: the multiset of bin
/// weight loads, as counts per DISTINCT load value. The weighted process is
/// exchangeable over bins just like the unweighted one, so this multiset is
/// a lossless view of the state; "pick a uniform bin and observe its weight
/// load" is an O(log D) Fenwick walk over the D distinct values.
///
/// Unlike the integer level_profile, D is not bounded by the max load:
/// continuous weights generically give every non-empty bin its own value,
/// so the state is O(min(n, placements)) — genuinely compressed for unit /
/// discrete weights and in the early phase, and never worse than per-bin
/// asymptotically. Values are arena-indexed (slot order is creation order);
/// the sorted map only serves exact lookup and ordered traversal.
class weight_profile {
public:
    /// n bins, all at weight 0.0. Requires n >= 1.
    explicit weight_profile(std::uint64_t n);

    /// Total bins, including any currently extracted ones.
    [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

    /// Bins currently in the sampling population.
    [[nodiscard]] std::uint64_t remaining_bins() const {
        return counts_.total();
    }

    /// Summed weight load of the non-extracted bins.
    [[nodiscard]] double total_weight() const noexcept {
        return total_weight_;
    }

    /// The weight load of the bin with the given rank: uniform `rank` in
    /// [0, remaining_bins()) observes a uniform random bin's load.
    [[nodiscard]] double value_at_rank(std::uint64_t rank) const {
        return values_[counts_.find_kth(rank)];
    }

    /// Number of (non-extracted) bins at exactly `value`.
    [[nodiscard]] std::uint64_t bins_at(double value) const;

    /// Removes one bin at `value` from the sampling population. Requires
    /// bins_at(value) >= 1.
    void extract_value(double value);

    /// Returns one bin to the population at `value` (a fresh value
    /// allocates a slot; merging onto an existing value just counts up).
    void insert_value(double value);

    /// Largest weight load held by any bin. Requires no bin extracted.
    [[nodiscard]] double max_load() const;

    /// max_load() - total_weight() / n. Requires no bin extracted.
    [[nodiscard]] double gap() const;

    /// The sorted (descending) weight-load vector this profile represents —
    /// O(n) output for small-n verification. Requires no bin extracted.
    [[nodiscard]] std::vector<double> to_sorted_weights() const;

    /// Writes a text snapshot ("kdc-weight-profile 1", n and the distinct
    /// value count, one "<value> <count>" row per distinct weight load in
    /// ascending value order at max_digits10 precision, then the shared
    /// "crc32 <hex>" trailer). Doubles round-trip exactly. Requires no bin
    /// extracted. See docs/robustness.md.
    void save(std::ostream& out) const;

    /// Reconstructs a profile from a save() snapshot. CRC-gated before
    /// parsing (every single-byte corruption or truncation is rejected);
    /// throws cli_error with a precise message on bad magic/version,
    /// malformed rows, out-of-order or repeated values, or counts that do
    /// not sum to n.
    [[nodiscard]] static weight_profile load(std::istream& in);

private:
    std::vector<double> values_;           ///< arena: slot -> value
    fenwick_tree counts_;                  ///< slot -> bins at that value
    std::map<double, std::size_t> index_;  ///< value -> slot, sorted
    std::vector<std::size_t> free_slots_;  ///< slots whose count hit zero
    std::uint64_t n_ = 0;
    double total_weight_ = 0.0;
};

/// Weighted (k,d)-choice on the weight_profile state. Distributionally
/// identical to weighted_kd_process (verified by two-sample KS tests in the
/// suite) from a different RNG stream. The with-replacement probe step uses
/// the same exact collision simulation as the unweighted level kernel: with
/// j distinct bins probed so far, one uniform draw v in [0, n) duplicates
/// distinct probe v when v < j and otherwise extracts a fresh bin of rank
/// v - j from the remaining profile.
class weighted_kd_level_process {
public:
    weighted_kd_level_process(std::uint64_t n, std::uint64_t k,
                              std::uint64_t d, std::uint64_t seed,
                              weight_distribution weights);

    void run_round();
    void run_rounds(std::uint64_t rounds);
    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const weight_profile& profile() const noexcept {
        return profile_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] double total_weight() const noexcept {
        return profile_.total_weight();
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return profile_.n(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

    [[nodiscard]] double max_load() const { return profile_.max_load(); }
    [[nodiscard]] double gap() const { return profile_.gap(); }

private:
    /// One distinct bin probed this round: its pre-round weight load, its
    /// running load as the greedy matching assigns balls, and how many of
    /// the d probes hit it (its slot count under the multiplicity rule).
    struct distinct_probe {
        double value = 0.0;
        double current = 0.0;
        std::uint32_t multiplicity = 0;
    };
    /// One candidate slot: owning distinct probe + random tie key.
    struct slot {
        std::uint64_t tie_key = 0;
        std::uint32_t probe = 0;
    };

    weight_profile profile_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    weight_distribution weights_;
    std::vector<double> weight_buffer_;
    std::vector<distinct_probe> distinct_;
    std::vector<slot> slots_;
    std::vector<char> slot_used_;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_;
};

class weighted_kd_process {
public:
    weighted_kd_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                        std::uint64_t seed, weight_distribution weights);

    void run_round();
    /// Runs one round with explicit probes and explicit ball weights
    /// (|weights| == k, |samples| == d). Used by tests.
    void run_round_with(std::span<const std::uint32_t> samples,
                        std::span<const double> ball_weights);
    void run_rounds(std::uint64_t rounds);
    /// Places `balls` balls (must be a multiple of k: whole rounds) — the
    /// run_balls spelling every other process shares.
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const weight_vector& loads() const noexcept {
        return loads_;
    }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
    [[nodiscard]] double total_weight() const noexcept {
        return total_weight_;
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

    /// Max weight load and the weighted gap (max - total/n).
    [[nodiscard]] double max_load() const;
    [[nodiscard]] double gap() const;

private:
    weight_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t messages_ = 0;
    double total_weight_ = 0.0;
    weight_distribution weights_;
    std::vector<std::uint32_t> sample_buffer_;
    std::vector<double> weight_buffer_;
    rng::xoshiro256ss gen_;

    struct slot {
        double load = 0.0;      // bin weight at selection time
        std::uint64_t key = 0;  // random tie-break
        std::uint32_t bin = 0;
        std::uint32_t occurrence = 0; // multiplicity index within the round
    };
    std::vector<slot> slots_;
};

} // namespace kdc::core
