#include "stats/hypothesis.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"
#include "stats/running_stats.hpp"
#include "support/contracts.hpp"

namespace {

using kdc::stats::chi_square_gof;
using kdc::stats::chi_square_uniform;
using kdc::stats::dominance_probability;
using kdc::stats::ks_two_sample;
using kdc::stats::t_ci_half_width;

TEST(ChiSquare, PerfectFitHasHighPValue) {
    const std::vector<std::uint64_t> observed{100, 100, 100, 100};
    const auto result = chi_square_uniform(observed);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_GT(result.p_value, 0.99);
}

TEST(ChiSquare, GrossMisfitHasTinyPValue) {
    const std::vector<std::uint64_t> observed{400, 0, 0, 0};
    const auto result = chi_square_uniform(observed);
    EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, HandComputedStatistic) {
    // observed {30, 70}, expected uniform on 100: chi2 = 2*(20^2/50) = 16.
    const std::vector<std::uint64_t> observed{30, 70};
    const auto result = chi_square_uniform(observed);
    EXPECT_NEAR(result.statistic, 16.0, 1e-9);
    EXPECT_EQ(result.dof, 1.0);
}

TEST(ChiSquare, NonUniformExpectedProbabilities) {
    const std::vector<std::uint64_t> observed{50, 25, 25};
    const std::vector<double> probs{0.5, 0.25, 0.25};
    const auto result = chi_square_gof(observed, probs);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
}

TEST(ChiSquare, SparseCellsArePooled) {
    // Expected counts of 1 would break the asymptotics; pooling must absorb
    // them without crashing or producing negative dof.
    const std::vector<std::uint64_t> observed{3, 1, 0, 2, 0, 1, 200};
    const std::vector<double> probs{0.005, 0.005, 0.005, 0.005,
                                    0.005, 0.005, 0.97};
    const auto result = chi_square_gof(observed, probs);
    EXPECT_GE(result.dof, 1.0);
    EXPECT_GE(result.p_value, 0.0);
    EXPECT_LE(result.p_value, 1.0);
}

TEST(ChiSquare, SizeMismatchViolatesContract) {
    const std::vector<std::uint64_t> observed{1, 2};
    const std::vector<double> probs{1.0};
    EXPECT_THROW((void)chi_square_gof(observed, probs),
                 kdc::contract_violation);
}

TEST(KsTwoSample, IdenticalSamplesHaveZeroDistance) {
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    const auto result = ks_two_sample(a, a);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_GT(result.p_value, 0.99);
}

TEST(KsTwoSample, DisjointSamplesHaveDistanceOne) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    const std::vector<double> b{10.0, 11.0, 12.0};
    const auto result = ks_two_sample(a, b);
    EXPECT_NEAR(result.statistic, 1.0, 1e-12);
}

TEST(KsTwoSample, SameDistributionAccepted) {
    kdc::rng::xoshiro256ss gen(1);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(kdc::rng::uniform_double(gen));
        b.push_back(kdc::rng::uniform_double(gen));
    }
    const auto result = ks_two_sample(a, b);
    EXPECT_GT(result.p_value, 1e-4);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
    kdc::rng::xoshiro256ss gen(2);
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 3000; ++i) {
        a.push_back(kdc::rng::uniform_double(gen));
        b.push_back(kdc::rng::uniform_double(gen) + 0.2);
    }
    const auto result = ks_two_sample(a, b);
    EXPECT_LT(result.p_value, 1e-6);
}

TEST(KsTwoSample, EmptySampleViolatesContract) {
    EXPECT_THROW((void)ks_two_sample({}, {1.0}), kdc::contract_violation);
}

TEST(Dominance, EqualSamplesGiveHalf) {
    const std::vector<double> a{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(dominance_probability(a, a), 0.5);
}

TEST(Dominance, StrictOrderGivesOne) {
    const std::vector<double> lo{1.0, 2.0};
    const std::vector<double> hi{3.0, 4.0};
    EXPECT_DOUBLE_EQ(dominance_probability(hi, lo), 1.0);
    EXPECT_DOUBLE_EQ(dominance_probability(lo, hi), 0.0);
}

TEST(Dominance, HandComputedMixedCase) {
    // a = {1, 3}, b = {2}: P(a > b) = 1/2, P(a == b) = 0 -> 0.5;
    const std::vector<double> a{1.0, 3.0};
    const std::vector<double> b{2.0};
    EXPECT_DOUBLE_EQ(dominance_probability(a, b), 0.5);
    // a = {2, 3}, b = {2}: one tie (0.5) + one win (1) over 2 pairs = 0.75.
    const std::vector<double> c{2.0, 3.0};
    EXPECT_DOUBLE_EQ(dominance_probability(c, b), 0.75);
}

TEST(TConfidenceInterval, HalfWidthMatchesHandComputedReference) {
    // Sample {2,4,4,4,5,5,7,9}: n = 8, s = 2.13808993529940. Reference
    // half-widths (mpmath): t_{0.975,7} * s / sqrt(8) = 1.78748791823621,
    // t_{0.995,7} * s / sqrt(8) = 2.64536072057534.
    kdc::stats::running_stats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.push(x);
    }
    EXPECT_NEAR(t_ci_half_width(s, 0.95), 1.78748791823621, 1e-9);
    EXPECT_NEAR(t_ci_half_width(s, 0.99), 2.64536072057534, 1e-9);
}

TEST(TConfidenceInterval, WiderThanNormalApproximationForSmallSamples) {
    // The z-based running_stats interval underestimates small-sample
    // uncertainty; the t interval must dominate it (t quantile > z).
    kdc::stats::running_stats s;
    for (const double x : {1.0, 2.0, 4.0, 8.0}) {
        s.push(x);
    }
    EXPECT_GT(t_ci_half_width(s, 0.95), s.mean_ci_halfwidth(1.96));
}

TEST(TConfidenceInterval, ShrinksTowardZeroWithMoreSamples) {
    kdc::stats::running_stats small;
    kdc::stats::running_stats large;
    for (int i = 0; i < 8; ++i) {
        small.push(i % 2 == 0 ? 1.0 : 2.0);
    }
    for (int i = 0; i < 800; ++i) {
        large.push(i % 2 == 0 ? 1.0 : 2.0);
    }
    EXPECT_GT(t_ci_half_width(small, 0.95), t_ci_half_width(large, 0.95));
}

TEST(TConfidenceInterval, ZeroVarianceSampleHasZeroWidth) {
    kdc::stats::running_stats s;
    s.push(3.0);
    s.push(3.0);
    EXPECT_DOUBLE_EQ(t_ci_half_width(s, 0.95), 0.0);
}

TEST(TConfidenceInterval, RejectsDegenerateSamplesAndLevels) {
    // n = 0 and n = 1 cannot produce an interval: no variance estimate.
    kdc::stats::running_stats empty;
    EXPECT_THROW((void)t_ci_half_width(empty, 0.95),
                 kdc::contract_violation);
    kdc::stats::running_stats one;
    one.push(1.0);
    EXPECT_THROW((void)t_ci_half_width(one, 0.95), kdc::contract_violation);
    kdc::stats::running_stats two;
    two.push(1.0);
    two.push(2.0);
    EXPECT_THROW((void)t_ci_half_width(two, 0.0), kdc::contract_violation);
    EXPECT_THROW((void)t_ci_half_width(two, 1.0), kdc::contract_violation);
}

} // namespace
