// Structured row emission shared by every table-producing bench: declare
// columns once over an arbitrary row type, then render the same rows as an
// aligned text table and/or RFC-4180 CSV. core/sweep.hpp derives its
// sweep_emitter (rows = sweep outcomes) from this; benches whose rows are
// ranks, scheme pairs or other side metadata instantiate it directly, so
// the --csv path is one implementation repo-wide.
#pragma once

#include <cstddef>
#include <functional>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/contracts.hpp"
#include "support/csv_writer.hpp"
#include "support/text_table.hpp"

namespace kdc {

template <typename Row>
class row_emitter {
public:
    /// Renders one column value. `row_index` is the row's position in the
    /// emitted span, so callers can look up parallel side metadata.
    using value_fn =
        std::function<std::string(const Row& row, std::size_t row_index)>;

    /// Appends a column. Returns *this for chaining.
    row_emitter& add_column(std::string header, value_fn value,
                            table_align align = table_align::right) {
        KD_EXPECTS_MSG(value != nullptr,
                       "emitter column needs a value function");
        columns_.push_back(
            column{std::move(header), std::move(value), align});
        return *this;
    }

    /// Canned column: any scalar statistic of the row, fixed-precision.
    row_emitter& add_stat_column(std::string header,
                                 std::function<double(const Row&)> stat,
                                 int precision = 2) {
        KD_EXPECTS_MSG(stat != nullptr,
                       "stat column needs a statistic function");
        return add_column(std::move(header),
                          [stat = std::move(stat),
                           precision](const Row& row, std::size_t) {
                              return format_fixed(stat(row), precision);
                          });
    }

    /// Renders the rows as an aligned text_table (header + one row per
    /// element, column alignments applied).
    [[nodiscard]] text_table to_table(std::span<const Row> rows) const {
        KD_EXPECTS_MSG(!columns_.empty(), "emitter has no columns");
        text_table table;
        table.set_header(header_cells());
        for (std::size_t c = 0; c < columns_.size(); ++c) {
            table.set_align(c, columns_[c].align);
        }
        for (std::size_t row = 0; row < rows.size(); ++row) {
            table.add_row(render_row(rows[row], row));
        }
        return table;
    }

    /// Streams to_table() followed by a newline.
    void write_table(std::ostream& out, std::span<const Row> rows) const {
        out << to_table(rows) << '\n';
    }

    /// Streams an RFC-4180 CSV: a header row of column names, then one row
    /// per element.
    void write_csv(std::ostream& out, std::span<const Row> rows) const {
        KD_EXPECTS_MSG(!columns_.empty(), "emitter has no columns");
        csv_writer csv(out);
        csv.write_row(header_cells());
        for (std::size_t row = 0; row < rows.size(); ++row) {
            csv.write_row(render_row(rows[row], row));
        }
    }

private:
    struct column {
        std::string header;
        value_fn value;
        table_align align;
    };

    [[nodiscard]] std::vector<std::string> header_cells() const {
        std::vector<std::string> header;
        header.reserve(columns_.size());
        for (const auto& col : columns_) {
            header.push_back(col.header);
        }
        return header;
    }

    [[nodiscard]] std::vector<std::string> render_row(const Row& row,
                                                      std::size_t index) const {
        std::vector<std::string> cells;
        cells.reserve(columns_.size());
        for (const auto& col : columns_) {
            cells.push_back(col.value(row, index));
        }
        return cells;
    }

    std::vector<column> columns_;
};

} // namespace kdc
