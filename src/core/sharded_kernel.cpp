#include "core/sharded_kernel.hpp"

#include <algorithm>

#include "core/process.hpp"
#include "core/thread_pool.hpp"

namespace kdc::core {

static_assert(allocation_process<sharded_kd_process>);
static_assert(allocation_process<sharded_kd_level_process>);

namespace {

/// Bit 31 of a gathered chunk-start load flags a conflicted bin (probed by
/// more than one slot this chunk): heights for those slots come from the
/// overlay table instead of the gathered value.
constexpr std::uint32_t conflict_flag = 0x80000000u;

/// Chunk sizing: enough slots per chunk that the per-shard gather pass
/// amortizes its bin window (~16 * slots / n load-line touches per miss),
/// capped so the tape stays a modest, streamable buffer even at huge n.
constexpr std::uint64_t max_chunk_slots = std::uint64_t{1} << 23;

std::uint64_t resolve_chunk_rounds(std::uint64_t n, std::uint64_t d) {
    const std::uint64_t target =
        std::clamp<std::uint64_t>(n / 4, d, max_chunk_slots);
    return std::max<std::uint64_t>(1, target / d);
}

} // namespace

std::uint64_t resolve_shard_count(std::uint64_t n, std::uint64_t requested) {
    KD_EXPECTS_MSG(n >= 1, "need at least one bin");
    // ~32k bins per shard keeps a shard's load window L2-resident (128 KiB);
    // the 4096 cap bounds the bucketing tables at any n.
    const std::uint64_t cap = std::min<std::uint64_t>(n, 4096);
    const std::uint64_t want = requested == 0 ? n / 32768 : requested;
    return std::clamp<std::uint64_t>(want, 1, cap);
}

// ---------------------------------------------------------------------------
// sharded_kd_process
// ---------------------------------------------------------------------------

sharded_kd_process::sharded_kd_process(std::uint64_t n, std::uint64_t k,
                                       std::uint64_t d, std::uint64_t seed,
                                       std::uint64_t shards)
    : sharded_kd_process(load_vector(n, 0), k, d, seed, shards) {}

sharded_kd_process::sharded_kd_process(load_vector initial_loads,
                                       std::uint64_t k, std::uint64_t d,
                                       std::uint64_t seed,
                                       std::uint64_t shards)
    : loads_(std::move(initial_loads)), k_(k), d_(d),
      layout_(loads_.size(), resolve_shard_count(loads_.size(), shards)),
      gen_(seed), probe_draws_(loads_.size()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= loads_.size(), "cannot probe more bins than exist");
    KD_EXPECTS_MSG(loads_.size() < 0xFFFFFFFFull,
                   "bins are 32-bit indices (one value reserved)");
    max_chunk_rounds_ = resolve_chunk_rounds(loads_.size(), d_);
    first_slot_.assign(loads_.size(), slot_unseen);
    const std::uint64_t shard_count = layout_.shards();
    conflicts_.resize(shard_count);
    shard_counts_.resize(shard_count);
    bucket_start_.resize(shard_count + 1);
    sample_buffer_.resize(d_);
    sorted_samples_.reserve(d_);
    round_slots_.resize(d_);
    round_vals_.resize(d_);
}

void sharded_kd_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    std::uint64_t rounds = balls / k_;
    while (rounds > 0) {
        const std::uint64_t take = std::min(rounds, max_chunk_rounds_);
        run_chunk(take);
        rounds -= take;
    }
}

void sharded_kd_process::run_chunk(std::uint64_t rounds) {
    const std::uint64_t slots = rounds * d_;
    slot_bin_.resize(slots);
    slot_occ_.resize(slots);
    slot_key_.resize(slots);
    probe_load_.resize(slots);
    kept_.assign(slots, 0);
    bucket_.resize(slots);

    pregenerate_tape(rounds);
    bucket_by_shard(slots);
    for_each_shard_parallel(&sharded_kd_process::gather_shard);

    std::size_t conflicted_bins = 0;
    for (const auto& list : conflicts_) {
        conflicted_bins += list.size();
    }
    overlay_.rebuild(conflicted_bins);
    for (const auto& list : conflicts_) {
        for (const auto& [bin, load] : list) {
            overlay_.insert(bin, load);
        }
    }

    select_rounds(rounds);
    for_each_shard_parallel(&sharded_kd_process::commit_shard);

    balls_placed_ += k_ * rounds;
    rounds_run_ += rounds;
    messages_ += d_ * rounds;
}

void sharded_kd_process::pregenerate_tape(std::uint64_t rounds) {
    // Replays kd_choice_process's RNG call order exactly: per round, d
    // batched probe draws, then one direct generator word per slot for the
    // tie key — probe order when the d samples are distinct, sorted-group
    // order (occurrence heights) when any duplicate exists, as in
    // place_round. Duplicates are detected with a pairwise scan of the d
    // samples instead of the serial kernel's n-sized stamp array (this
    // phase must not touch per-bin state); the boolean agrees, and the
    // generator is only consumed by the key draws, so the tape is
    // bit-identical to the serial kernel's.
    std::uint64_t pos = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
        for (auto& sample : sample_buffer_) {
            sample = static_cast<std::uint32_t>(probe_draws_.next(gen_));
        }
        // Pairwise equality agrees exactly with the serial kernel's stamp
        // test, and at d << sqrt(n) duplicate rounds are rare enough that
        // the grouped path below (copy + sort) almost never runs.
        bool has_duplicates = false;
        for (std::size_t i = 0; i + 1 < sample_buffer_.size(); ++i) {
            for (std::size_t j = i + 1; j < sample_buffer_.size(); ++j) {
                has_duplicates |= sample_buffer_[i] == sample_buffer_[j];
            }
        }
        if (!has_duplicates) {
            for (const std::uint32_t bin : sample_buffer_) {
                slot_bin_[pos] = bin;
                slot_occ_[pos] = 1;
                slot_key_[pos] = static_cast<std::uint64_t>(gen_());
                ++pos;
            }
        } else {
            sorted_samples_.assign(sample_buffer_.begin(),
                                   sample_buffer_.end());
            std::sort(sorted_samples_.begin(), sorted_samples_.end());
            for (std::size_t i = 0; i < sorted_samples_.size();) {
                const std::uint32_t bin = sorted_samples_[i];
                std::uint32_t occurrence = 0;
                for (; i < sorted_samples_.size() && sorted_samples_[i] == bin;
                     ++i) {
                    ++occurrence;
                    slot_bin_[pos] = bin;
                    slot_occ_[pos] = occurrence;
                    slot_key_[pos] = static_cast<std::uint64_t>(gen_());
                    ++pos;
                }
            }
        }
    }
}

void sharded_kd_process::bucket_by_shard(std::uint64_t slots) {
    // Stable counting sort of the chunk's slots by owning shard; the pair
    // encoding (bin << 32 | slot) lets the per-shard sort in gather_shard
    // order by bin with slot (time) order preserved inside each bin.
    std::fill(shard_counts_.begin(), shard_counts_.end(), 0);
    for (std::uint64_t idx = 0; idx < slots; ++idx) {
        ++shard_counts_[layout_.shard_of(slot_bin_[idx])];
    }
    bucket_start_[0] = 0;
    for (std::uint64_t s = 0; s < layout_.shards(); ++s) {
        bucket_start_[s + 1] = bucket_start_[s] + shard_counts_[s];
    }
    std::copy(bucket_start_.begin(), bucket_start_.end() - 1,
              shard_counts_.begin()); // reuse as write cursors
    for (std::uint64_t idx = 0; idx < slots; ++idx) {
        const std::uint32_t bin = slot_bin_[idx];
        const std::uint64_t s = layout_.shard_of(bin);
        bucket_[shard_counts_[s]++] =
            (static_cast<std::uint64_t>(bin) << 32) | idx;
    }
}

void sharded_kd_process::gather_shard(std::uint64_t shard) {
    // Everything this phase touches is shard-local: the bucket slice, the
    // shard's stripes of loads_ and first_slot_, its conflict list — plus
    // scattered writes into probe_load_ (stores overlap; the latency-bound
    // random READS of the serial kernel are what this pipeline removes).
    // Conflict detection is one linear pass over the slice: a bin's first
    // probe parks its slot index in first_slot_; a second probe upgrades
    // both to conflicted and records the bin once.
    auto& list = conflicts_[shard];
    list.clear();
    for (std::uint64_t pos = bucket_start_[shard];
         pos < bucket_start_[shard + 1]; ++pos) {
        const std::uint64_t pair = bucket_[pos];
        const auto bin = static_cast<std::uint32_t>(pair >> 32);
        const auto idx = static_cast<std::uint32_t>(pair);
        const std::uint32_t base = loads_[bin];
        KD_EXPECTS_MSG(base < conflict_flag, "bin load exceeds 2^31 - 1");
        const std::uint32_t seen = first_slot_[bin];
        if (seen == slot_unseen) {
            first_slot_[bin] = idx;
            probe_load_[idx] = base;
        } else {
            if (seen != slot_conflicted) {
                probe_load_[seen] |= conflict_flag;
                list.emplace_back(bin, base);
                first_slot_[bin] = slot_conflicted;
            }
            probe_load_[idx] = base | conflict_flag;
        }
    }
}

void sharded_kd_process::select_rounds(std::uint64_t rounds) {
    // One serial sweep in round order — the only phase that sees live
    // intra-chunk loads, and only through the overlay (conflicted bins).
    // Slot construction order, heights and comparator match place_round,
    // so nth_element keeps the identical k slots; the serial kernel's
    // final sort of the kept prefix only orders commits (+1 each), which
    // the flag representation makes irrelevant.
    const auto by_height_then_key = [](const slot_candidate& a,
                                       const slot_candidate& b) {
        if (a.height != b.height) {
            return a.height < b.height;
        }
        return a.tie_key < b.tie_key;
    };
    for (std::uint64_t round = 0; round < rounds; ++round) {
        const std::uint64_t first = round * d_;
        for (std::uint64_t j = 0; j < d_; ++j) {
            const std::uint64_t idx = first + j;
            const std::uint32_t gathered = probe_load_[idx];
            std::uint32_t* live = nullptr;
            std::uint32_t base = gathered;
            if ((gathered & conflict_flag) != 0) {
                live = overlay_.find(slot_bin_[idx]);
                base = *live;
            }
            round_vals_[j] = live; // one hash probe per slot, reused below
            round_slots_[j] = slot_candidate{base + slot_occ_[idx],
                                             slot_key_[idx],
                                             static_cast<std::uint32_t>(j)};
        }
        std::nth_element(round_slots_.begin(),
                         round_slots_.begin() +
                             static_cast<std::ptrdiff_t>(k_ - 1),
                         round_slots_.end(), by_height_then_key);
        for (std::uint64_t i = 0; i < k_; ++i) {
            const std::uint32_t j = round_slots_[i].slot;
            kept_[first + j] = 1;
            if (round_vals_[j] != nullptr) {
                *round_vals_[j] += 1;
            }
        }
    }
}

void sharded_kd_process::commit_shard(std::uint64_t shard) {
    // The same cache window as gather_shard, with +1 commits whose order
    // cannot matter; resetting first_slot_ here (every probed bin appears
    // in this slice) readies the detector for the next chunk for free.
    for (std::uint64_t pos = bucket_start_[shard];
         pos < bucket_start_[shard + 1]; ++pos) {
        const std::uint64_t pair = bucket_[pos];
        const auto bin = static_cast<std::uint32_t>(pair >> 32);
        loads_[bin] += kept_[static_cast<std::uint32_t>(pair)];
        first_slot_[bin] = slot_unseen;
    }
}

void sharded_kd_process::for_each_shard_parallel(
    void (sharded_kd_process::*phase)(std::uint64_t)) {
    const std::uint64_t shard_count = layout_.shards();
    if (pool_ != nullptr && shard_count > 1) {
        pool_->run_phase(static_cast<std::size_t>(shard_count),
                         [this, phase](std::size_t s) { (this->*phase)(s); });
    } else {
        for (std::uint64_t s = 0; s < shard_count; ++s) {
            (this->*phase)(s);
        }
    }
}

void sharded_kd_process::conflict_table::rebuild(std::size_t entries) {
    std::size_t capacity = 16;
    while (capacity < entries * 2) {
        capacity <<= 1;
    }
    keys.assign(capacity, empty_key);
    vals.assign(capacity, 0);
    mask = capacity - 1;
}

void sharded_kd_process::conflict_table::insert(std::uint32_t bin,
                                                std::uint32_t load) {
    std::uint64_t h =
        (static_cast<std::uint64_t>(bin) * 0x9E3779B97F4A7C15ull >> 32) &
        mask;
    while (keys[h] != empty_key) {
        h = (h + 1) & mask;
    }
    keys[h] = bin;
    vals[h] = load;
}

std::uint32_t* sharded_kd_process::conflict_table::find(std::uint32_t bin) {
    // Callers only look up bins inserted this chunk, so the probe chain
    // always terminates at the key (never at an empty slot).
    std::uint64_t h =
        (static_cast<std::uint64_t>(bin) * 0x9E3779B97F4A7C15ull >> 32) &
        mask;
    while (keys[h] != bin) {
        h = (h + 1) & mask;
    }
    return &vals[h];
}

// ---------------------------------------------------------------------------
// sharded_kd_level_process
// ---------------------------------------------------------------------------

sharded_kd_level_process::sharded_kd_level_process(std::uint64_t n,
                                                   std::uint64_t k,
                                                   std::uint64_t d,
                                                   std::uint64_t seed,
                                                   std::uint64_t shards)
    : sharded_kd_level_process(level_profile(n), k, d, seed, shards) {}

sharded_kd_level_process::sharded_kd_level_process(level_profile initial,
                                                   std::uint64_t k,
                                                   std::uint64_t d,
                                                   std::uint64_t seed,
                                                   std::uint64_t shards)
    : profile_(std::move(initial)),
      shard_profiles_(split_profile(
          profile_, resolve_shard_count(profile_.n(), shards))),
      k_(k), d_(d), gen_(seed), probe_draws_(profile_.n()) {
    KD_EXPECTS_MSG(k >= 1, "k must be positive");
    KD_EXPECTS_MSG(k < d, "(k,d)-choice requires k < d");
    KD_EXPECTS_MSG(d <= profile_.n(), "cannot probe more bins than exist");
    distinct_.reserve(d);
    slots_.reserve(d);
    kept_per_probe_.reserve(d);
}

void sharded_kd_level_process::run_round() {
    // Authoritative replay of kd_choice_level_process::run_round on the
    // global profile (identical draws, ranks and selection), with the S
    // shard profiles maintained in lockstep: every fresh probe extracts a
    // bin from the lowest-indexed shard holding one at the probed level
    // and reinserts into that same shard post-round — a pure function of
    // the tape, so the partition never depends on scheduling.
    profile_.ensure_levels(profile_.max_level() + d_ + 1);

    distinct_.clear();
    for (std::uint64_t probe = 0; probe < d_; ++probe) {
        const std::uint64_t v = probe_draws_.next(gen_);
        const auto j = static_cast<std::uint64_t>(distinct_.size());
        if (v < j) {
            ++distinct_[static_cast<std::size_t>(v)].multiplicity;
        } else {
            const std::uint64_t level = profile_.level_at_rank(v - j);
            profile_.extract_bin(level);
            std::uint32_t shard = 0;
            while (shard_profiles_[shard].bins_at(level) == 0) {
                ++shard; // terminates: the shard counts sum to the global
            }
            shard_profiles_[shard].extract_bin(level);
            distinct_.push_back({level, 1, shard});
        }
    }

    // Tie keys follow the serial level kernel's discipline: drawn only in
    // rounds with a duplicated probe; duplicate-free rounds break height
    // ties by probe order (bins at a level are exchangeable, so the global
    // profile is identical either way, and the shard assignment stays a
    // pure function of the tape).
    const bool has_duplicate = distinct_.size() < d_;
    slots_.clear();
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const auto& probe = distinct_[t];
        for (std::uint32_t occurrence = 1; occurrence <= probe.multiplicity;
             ++occurrence) {
            slots_.push_back(
                slot{probe.level + occurrence,
                     has_duplicate ? static_cast<std::uint64_t>(gen_()) : t,
                     t});
        }
    }
    if (k_ < slots_.size()) {
        std::nth_element(
            slots_.begin(),
            slots_.begin() + static_cast<std::ptrdiff_t>(k_ - 1), slots_.end(),
            [](const slot& a, const slot& b) {
                if (a.height != b.height) {
                    return a.height < b.height;
                }
                return a.tie_key < b.tie_key;
            });
    }

    kept_per_probe_.assign(distinct_.size(), 0);
    for (std::size_t i = 0; i < k_; ++i) {
        ++kept_per_probe_[slots_[i].probe];
    }
    for (std::uint32_t t = 0; t < distinct_.size(); ++t) {
        const std::uint64_t target = distinct_[t].level + kept_per_probe_[t];
        profile_.insert_bin(target);
        auto& shard = shard_profiles_[distinct_[t].shard];
        shard.ensure_levels(target + 1);
        shard.insert_bin(target);
    }

    balls_placed_ += k_;
    rounds_run_ += 1;
    messages_ += d_;
}

void sharded_kd_level_process::run_balls(std::uint64_t balls) {
    KD_EXPECTS_MSG(balls % k_ == 0,
                   "balls must be a multiple of k (whole rounds)");
    for (std::uint64_t placed = 0; placed < balls; placed += k_) {
        run_round();
    }
}

} // namespace kdc::core
