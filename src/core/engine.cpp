#include "core/engine.hpp"

#include <cmath>
#include <string>

#include "stats/hypothesis.hpp"
#include "support/cli.hpp"

namespace kdc::core {

namespace {

constexpr std::uint32_t default_min_reps = 3;

} // namespace

stopping_rule fixed_reps_rule() noexcept { return stopping_rule{}; }

stopping_rule confidence_width_rule(double ci_half_width,
                                    std::uint32_t min_reps,
                                    std::uint32_t max_reps,
                                    double confidence) {
    stopping_rule rule;
    rule.mode = stopping_mode::confidence_width;
    rule.ci_half_width = ci_half_width;
    rule.confidence = confidence;
    rule.min_reps = min_reps;
    rule.max_reps = max_reps;
    validate_stopping_rule(rule);
    return rule;
}

stopping_rule relative_width_rule(double ci_rel, std::uint32_t min_reps,
                                  std::uint32_t max_reps, double confidence) {
    stopping_rule rule;
    rule.mode = stopping_mode::confidence_width;
    rule.ci_rel = ci_rel;
    rule.confidence = confidence;
    rule.min_reps = min_reps;
    rule.max_reps = max_reps;
    validate_stopping_rule(rule);
    return rule;
}

void validate_stopping_rule(const stopping_rule& rule) {
    if (rule.mode == stopping_mode::fixed_reps) {
        return; // all other fields are ignored
    }
    const bool absolute =
        std::isfinite(rule.ci_half_width) && rule.ci_half_width > 0.0;
    const bool relative = std::isfinite(rule.ci_rel) && rule.ci_rel > 0.0;
    KD_EXPECTS_MSG(absolute != relative,
                   "confidence_width needs exactly one width target: a "
                   "positive finite ci_half_width or a positive finite "
                   "ci_rel (mean-scaled)");
    KD_EXPECTS_MSG(rule.confidence > 0.0 && rule.confidence < 1.0,
                   "confidence level must lie strictly between 0 and 1");
    KD_EXPECTS_MSG(rule.min_reps == 0 || rule.min_reps >= 2,
                   "the adaptive floor needs >= 2 reps to estimate variance");
    KD_EXPECTS_MSG(rule.min_reps == 0 || rule.max_reps == 0 ||
                       rule.min_reps <= rule.max_reps,
                   "adaptive min_reps must not exceed max_reps");
}

cell_plan resolve_cell_plan(const stopping_rule& rule,
                            std::uint32_t configured_reps) {
    KD_EXPECTS(configured_reps >= 1);
    cell_plan plan;
    if (rule.mode == stopping_mode::fixed_reps) {
        plan.first_chunk = configured_reps;
        plan.chunk = configured_reps;
        plan.max_reps = configured_reps;
        plan.adaptive = false;
        return plan;
    }
    plan.adaptive = true;
    plan.max_reps = rule.max_reps != 0 ? rule.max_reps : configured_reps;
    std::uint32_t floor = rule.min_reps != 0 ? rule.min_reps
                                             : default_min_reps;
    // The decision needs a variance, hence >= 2 folded reps; a cap below
    // that simply runs to the cap without ever deciding.
    floor = std::max<std::uint32_t>(floor, 2);
    plan.first_chunk = std::min(floor, plan.max_reps);
    plan.chunk = rule.chunk_reps != 0 ? rule.chunk_reps
                                      : std::max<std::uint32_t>(1, floor / 2);
    return plan;
}

bool confidence_reached(const stats::running_stats& monitor,
                        const stopping_rule& rule) {
    if (monitor.count() < 2) {
        return false; // no variance estimate yet
    }
    // Under a relative rule the target shrinks/grows with the monitored
    // mean itself, re-evaluated at every chunk boundary. A zero mean makes
    // the relative target unreachable unless the spread is zero too.
    const double target = rule.ci_rel > 0.0
                              ? rule.ci_rel * std::abs(monitor.mean())
                              : rule.ci_half_width;
    return stats::t_ci_half_width(monitor, rule.confidence) <= target;
}

stopping_rule stopping_rule_from_cli(const arg_parser& args) {
    if (!args.get_flag("adaptive")) {
        return fixed_reps_rule();
    }
    stopping_rule rule;
    rule.mode = stopping_mode::confidence_width;
    // --ci-rel switches the target from an absolute half-width to a
    // mean-scaled one; the two are mutually exclusive when both are spelled
    // out explicitly.
    if (args.has_value("ci-rel")) {
        if (args.has_value("ci-width")) {
            throw cli_error("options --ci-width and --ci-rel are mutually "
                            "exclusive: pick an absolute or a mean-scaled "
                            "CI width target");
        }
        rule.ci_rel = args.get_positive_double("ci-rel");
    } else {
        rule.ci_half_width = args.get_positive_double("ci-width");
    }

    const std::int64_t min_reps = args.get_int("min-reps");
    if (min_reps < 2 || min_reps > 1'000'000'000) {
        throw cli_error("option --min-reps must be an integer in [2, 1e9] "
                        "(the adaptive rule needs >= 2 reps to estimate "
                        "variance), got " +
                        std::to_string(min_reps));
    }
    const std::int64_t max_reps = args.get_int("max-reps");
    if (max_reps < 0 || max_reps > 1'000'000'000) {
        throw cli_error("option --max-reps must be an integer in [0, 1e9] "
                        "(0 = the cell's configured --reps), got " +
                        std::to_string(max_reps));
    }
    if (max_reps != 0 && max_reps < min_reps) {
        throw cli_error("option --max-reps (" + std::to_string(max_reps) +
                        ") must be >= --min-reps (" +
                        std::to_string(min_reps) + ")");
    }
    rule.min_reps = static_cast<std::uint32_t>(min_reps);
    rule.max_reps = static_cast<std::uint32_t>(max_reps);
    validate_stopping_rule(rule);
    return rule;
}

} // namespace kdc::core
