// The installed umbrella header: the whole public surface of the kdchoice
// library behind one include.
//
//   #include <kdchoice.hpp>               // installed tree
//   #include "kdchoice.hpp"               // in-tree, src/ on the path
//
//   auto sc = kdc::core::parse_scenario("kd:n=1e6,k=2,d=4,kernel=auto");
//   auto process = kdc::core::make_process(sc, /*seed=*/42);
//   process.run_balls(kdc::core::resolved_balls(sc));
//   std::cout << process.observe().max_load << '\n';
//
// The scenario API (core/scenario.hpp) is the recommended entry point —
// one declarative value, one registry, one factory behind every kernel.
// The concrete process/engine/stats layers it is built from are all
// exported here too; see examples/quickstart.cpp for the walk-through.
#pragma once

#include "core/kdchoice.hpp"      // processes, kernels, engine, sweeps
#include "core/parallel_runner.hpp" // parallel one-cell experiments
#include "core/scenario.hpp"      // the declarative scenario API
#include "serve/service.hpp"      // the allocation service + serial oracle
#include "stats/histogram.hpp"    // aggregation used by experiment results
#include "stats/hypothesis.hpp"   // KS / Mann-Whitney / t-interval tests
#include "stats/running_stats.hpp"
#include "support/cli.hpp"        // --scenario / --kernel / --adaptive flags
#include "support/csv_writer.hpp"
#include "support/row_emitter.hpp" // shared table/CSV emission
#include "support/text_table.hpp"
#include "theory/bounds.hpp"      // the paper's closed-form bounds
