// The (k,d)-choice allocation process (the paper's primary contribution) and
// the classical single-choice process it generalizes.
//
// All processes share a tiny informal interface used by the generic
// experiment runner (core/runner.hpp):
//     void run_balls(std::uint64_t balls);
//     const load_vector& loads() const;
//     std::uint64_t balls_placed() const;
//     std::uint64_t messages() const;   // bins probed so far (footnote 1)
#pragma once

#include <concepts>
#include <cstdint>
#include <span>
#include <vector>

#include "core/round_kernel.hpp"
#include "core/types.hpp"
#include "rng/sampling.hpp"
#include "rng/xoshiro256ss.hpp"
#include "support/contracts.hpp"

namespace kdc::core {

/// A process whose final state is a per-bin load vector (O(n) state).
template <typename P>
concept per_bin_observable = requires(const P cp) {
    { cp.loads() } -> std::convertible_to<const load_vector&>;
};

/// A process whose final state is a level profile — counts of bins per load
/// level (O(max-load) state, core/level_profile.hpp). Bins are exchangeable
/// for every process in this library, so the profile is a lossless view of
/// the load distribution even though per-bin identities are gone.
template <typename P>
concept level_observable = requires(const P cp) {
    cp.profile().metrics();
    cp.profile().to_sorted_loads();
};

/// Concept for the process interface shared by every allocator in this
/// library; the experiment runner and the benchmarks are generic over it.
/// State is observable either per bin (loads()) or level-compressed
/// (profile()); core/runner.hpp's observed_load_metrics dispatches on which
/// view a process provides.
template <typename P>
concept allocation_process =
    (per_bin_observable<P> || level_observable<P>) &&
    requires(P p, const P cp, std::uint64_t balls) {
        p.run_balls(balls);
        { cp.balls_placed() } -> std::convertible_to<std::uint64_t>;
        { cp.messages() } -> std::convertible_to<std::uint64_t>;
    };

/// How a round's d probes are drawn. The paper uses with_replacement
/// (Section 1.1); without_replacement is an ablation: it removes the
/// multiplicity ambiguity entirely (every probe is a distinct bin) at the
/// cost of a slightly slower sampler, and can only improve the allocation.
enum class probe_mode { with_replacement, without_replacement };

/// The (k,d)-choice process: in each round, k balls go to the k least loaded
/// of d bins chosen i.u.r. with replacement, under the multiplicity rule
/// (a bin sampled m times receives at most m balls). Section 1.1.
class kd_choice_process {
public:
    /// Requires 1 <= k < d <= n.
    kd_choice_process(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                      std::uint64_t seed);

    /// Starts from an existing load vector (snapshot resume, heavily loaded
    /// starts, and the worked scenarios of Sections 1 and 7).
    /// balls_placed()/messages() count only activity after construction.
    kd_choice_process(load_vector initial_loads, std::uint64_t k,
                      std::uint64_t d, std::uint64_t seed);

    /// Runs one round: samples d bins and places k balls.
    void run_round();

    /// Runs one round with an explicitly supplied probe multiset (tests and
    /// the worked scenarios of Section 1 use this; sampling is bypassed but
    /// tie-breaking randomness still applies). samples.size() must equal d.
    void run_round_with_samples(std::span<const std::uint32_t> samples);

    /// Places `balls` balls (must be a multiple of k: whole rounds).
    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept {
        return rounds_run_;
    }
    /// Probe messages issued so far: d per round (footnote 1 of the paper).
    [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

    /// Switches the probe sampler (default: with_replacement, the paper's
    /// model). Takes effect from the next round.
    void set_probe_mode(probe_mode mode) noexcept { probe_mode_ = mode; }
    [[nodiscard]] probe_mode probes() const noexcept { return probe_mode_; }

    /// Heights of all balls placed so far, in placement order within each
    /// round (increasing height). Recording is off by default (hot path);
    /// enable before running.
    void record_heights(bool enable) { record_heights_ = enable; }
    [[nodiscard]] const std::vector<placed_ball>& height_log() const noexcept {
        return height_log_;
    }

private:
    load_vector loads_;
    std::uint64_t k_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    std::uint64_t rounds_run_ = 0;
    std::uint64_t messages_ = 0;
    probe_mode probe_mode_ = probe_mode::with_replacement;
    bool record_heights_ = false;
    std::vector<placed_ball> height_log_;
    std::vector<std::uint32_t> sample_buffer_;
    rng::sample_scratch sample_scratch_; // without_replacement probe mode
    round_scratch scratch_;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched (hot probe path)
};

/// Classical single-choice: every ball goes to one bin chosen i.u.r.
/// Max load (1+o(1)) ln n / ln ln n w.h.p. [Raab-Steger]. This is also the
/// paper's SA = SA(k,k) equivalence: placing k balls into k random bins per
/// round is the same process ball-by-ball.
class single_choice_process {
public:
    single_choice_process(std::uint64_t n, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept {
        return balls_placed_; // one probe per ball
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }

private:
    load_vector loads_;
    std::uint64_t balls_placed_ = 0;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched
};

/// Classical d-choice of Azar et al. = (1, d)-choice: each ball goes to the
/// least loaded of d bins chosen i.u.r. Provided as a dedicated fast path
/// (no slot sort needed when k == 1); distributionally identical to
/// kd_choice_process with k = 1.
class d_choice_process {
public:
    d_choice_process(std::uint64_t n, std::uint64_t d, std::uint64_t seed);

    void run_balls(std::uint64_t balls);

    [[nodiscard]] const load_vector& loads() const noexcept { return loads_; }
    [[nodiscard]] std::uint64_t balls_placed() const noexcept {
        return balls_placed_;
    }
    [[nodiscard]] std::uint64_t messages() const noexcept {
        return balls_placed_ * d_;
    }
    [[nodiscard]] std::uint64_t n() const noexcept { return loads_.size(); }
    [[nodiscard]] std::uint64_t d() const noexcept { return d_; }

private:
    load_vector loads_;
    std::uint64_t d_;
    std::uint64_t balls_placed_ = 0;
    rng::xoshiro256ss gen_;
    rng::batched_uniform probe_draws_; // bound n, batched
};

static_assert(allocation_process<kd_choice_process>);
static_assert(allocation_process<single_choice_process>);
static_assert(allocation_process<d_choice_process>);

} // namespace kdc::core
