#include "support/cli.hpp"

#include <gtest/gtest.h>

#include <array>

#include "support/contracts.hpp"

namespace {

using kdc::arg_parser;
using kdc::cli_error;

TEST(ArgParser, DefaultsApplyWhenAbsent) {
    arg_parser parser;
    parser.add_option("n", "1024", "bins");
    const std::array argv{"prog"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(parser.get_int("n"), 1024);
}

TEST(ArgParser, ParsesKeyValue) {
    arg_parser parser;
    parser.add_option("n", "1024", "bins");
    parser.add_option("label", "none", "text");
    const std::array argv{"prog", "--n=65536", "--label=table1"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(parser.get_int("n"), 65536);
    EXPECT_EQ(parser.get_string("label"), "table1");
}

TEST(ArgParser, ParsesDouble) {
    arg_parser parser;
    parser.add_option("beta", "0.5", "mix");
    const std::array argv{"prog", "--beta=0.25"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_DOUBLE_EQ(parser.get_double("beta"), 0.25);
}

TEST(ArgParser, FlagDefaultsFalseAndSetsTrue) {
    arg_parser parser;
    parser.add_flag("csv", "emit csv");
    {
        const std::array argv{"prog"};
        arg_parser fresh = parser;
        ASSERT_TRUE(fresh.parse(static_cast<int>(argv.size()), argv.data()));
        EXPECT_FALSE(fresh.get_flag("csv"));
    }
    {
        const std::array argv{"prog", "--csv"};
        ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
        EXPECT_TRUE(parser.get_flag("csv"));
    }
}

TEST(ArgParser, UnknownOptionThrows) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--typo=3"};
    EXPECT_THROW((void)parser.parse(static_cast<int>(argv.size()), argv.data()),
                 cli_error);
}

TEST(ArgParser, MalformedIntThrows) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--n=abc"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_THROW((void)parser.get_int("n"), cli_error);
}

TEST(ArgParser, OptionWithoutValueThrows) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--n"};
    EXPECT_THROW((void)parser.parse(static_cast<int>(argv.size()), argv.data()),
                 cli_error);
}

TEST(ArgParser, FlagWithValueThrows) {
    arg_parser parser;
    parser.add_flag("csv", "emit csv");
    const std::array argv{"prog", "--csv=yes"};
    EXPECT_THROW((void)parser.parse(static_cast<int>(argv.size()), argv.data()),
                 cli_error);
}

TEST(ArgParser, BareDoubleDashIsMalformed) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--"};
    try {
        (void)parser.parse(static_cast<int>(argv.size()), argv.data());
        FAIL() << "expected cli_error";
    } catch (const cli_error& e) {
        // Regression: this used to report the misleading "unknown option --".
        EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
    }
}

TEST(ArgParser, EmptyKeyWithValueIsMalformed) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--=3"};
    try {
        (void)parser.parse(static_cast<int>(argv.size()), argv.data());
        FAIL() << "expected cli_error";
    } catch (const cli_error& e) {
        EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("--=3"), std::string::npos);
    }
}

TEST(ArgParser, ThreadsOptionDefaultsToAutoSentinel) {
    arg_parser parser;
    parser.add_threads_option();
    const std::array argv{"prog"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(parser.get_threads(), 0u);
}

TEST(ArgParser, ThreadsOptionParsesExplicitCount) {
    arg_parser parser;
    parser.add_threads_option();
    const std::array argv{"prog", "--threads=8"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(parser.get_threads(), 8u);
}

TEST(ArgParser, ThreadsOptionRejectsOverflowingCount) {
    arg_parser parser;
    parser.add_threads_option();
    // 2^32 would wrap to the 0 "all hardware threads" sentinel if the cast
    // were unchecked.
    const std::array argv{"prog", "--threads=4294967296"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_THROW((void)parser.get_threads(), cli_error);
}

TEST(ArgParser, ThreadsOptionRejectsNegative) {
    arg_parser parser;
    parser.add_threads_option();
    const std::array argv{"prog", "--threads=-2"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_THROW((void)parser.get_threads(), cli_error);
}

TEST(ArgParser, PositionalArgumentsCollected) {
    arg_parser parser;
    const std::array argv{"prog", "input.csv", "output.csv"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    ASSERT_EQ(parser.positional().size(), 2u);
    EXPECT_EQ(parser.positional()[0], "input.csv");
}

TEST(ArgParser, HelpReturnsFalse) {
    arg_parser parser;
    parser.add_option("n", "1", "bins");
    const std::array argv{"prog", "--help"};
    testing::internal::CaptureStdout();
    EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    const std::string help = testing::internal::GetCapturedStdout();
    EXPECT_NE(help.find("--n"), std::string::npos);
}

TEST(ArgParser, UndeclaredGetViolatesContract) {
    arg_parser parser;
    EXPECT_THROW((void)parser.get_string("nope"), kdc::contract_violation);
}

TEST(ArgParser, UsageListsDefaults) {
    arg_parser parser;
    parser.add_option("reps", "10", "repetitions");
    const std::string usage = parser.usage("prog");
    EXPECT_NE(usage.find("default: 10"), std::string::npos);
    EXPECT_NE(usage.find("repetitions"), std::string::npos);
}

/// Parses one --ci-width value through a fresh parser and returns the
/// cli_error message get_positive_double produced (empty if it accepted).
std::string positive_double_error(const std::string& value) {
    arg_parser parser;
    parser.add_option("ci-width", "0.5", "target half-width");
    const std::string arg = "--ci-width=" + value;
    const std::array argv{"prog", arg.c_str()};
    if (!parser.parse(static_cast<int>(argv.size()), argv.data())) {
        return "help?";
    }
    try {
        (void)parser.get_positive_double("ci-width");
        return "";
    } catch (const cli_error& e) {
        return e.what();
    }
}

TEST(ArgParser, PositiveDoubleAcceptsOrdinaryValues) {
    EXPECT_EQ(positive_double_error("0.25"), "");
    EXPECT_EQ(positive_double_error("3"), "");
    EXPECT_EQ(positive_double_error("1e-3"), "");
}

TEST(ArgParser, PositiveDoubleRejectsZeroAndNegativesPrecisely) {
    // Each rejection names the option, the offending text, and the rule —
    // never a silent fall-back to the default.
    EXPECT_NE(positive_double_error("0").find("--ci-width must be > 0"),
              std::string::npos);
    EXPECT_NE(positive_double_error("0").find("'0'"), std::string::npos);
    EXPECT_NE(positive_double_error("-0.5").find("must be > 0"),
              std::string::npos);
}

TEST(ArgParser, DoubleRejectsGarbageAndTrailingJunk) {
    EXPECT_NE(positive_double_error("abc").find("expects a number"),
              std::string::npos);
    EXPECT_NE(positive_double_error("abc").find("'abc'"), std::string::npos);
    EXPECT_NE(positive_double_error("1.5abc").find("trailing characters"),
              std::string::npos);
    EXPECT_NE(positive_double_error("").find("expects a number"),
              std::string::npos);
}

TEST(ArgParser, DoubleRejectsOutOfRangeAndNonFiniteValues) {
    EXPECT_NE(positive_double_error("1e999").find("out of range"),
              std::string::npos);
    EXPECT_NE(positive_double_error("inf").find("must be finite"),
              std::string::npos);
    EXPECT_NE(positive_double_error("nan").find("must be finite"),
              std::string::npos);
}

TEST(ArgParser, AdaptiveOptionsDeclareDocumentedDefaults) {
    arg_parser parser;
    parser.add_adaptive_options();
    const std::array argv{"prog"};
    ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_FALSE(parser.get_flag("adaptive"));
    EXPECT_DOUBLE_EQ(parser.get_positive_double("ci-width"), 0.5);
    EXPECT_EQ(parser.get_int("min-reps"), 3);
    EXPECT_EQ(parser.get_int("max-reps"), 0);
}

} // namespace
