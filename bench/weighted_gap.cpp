// Extension bench: weighted (k,d)-choice (the Talwar-Wieder axis cited in
// Section 1 of the paper). Compares the weighted gap (max weight load minus
// average) across weight distributions and (k,d) configurations.
//
// Shape to verify: the (k,d) ordering of the unweighted process survives
// weighting — more probes / smaller k still shrink the gap — and
// heavy-tailed weights (Pareto) inflate every scheme's gap toward the
// single-ball dominance regime where the placement policy stops mattering.
//
// Weighted observations are doubles, so this bench sits on the execution
// engine's run_engine_grid (core/engine.hpp) rather than repetition_result
// cells: every (cell, rep) pair still runs on the process-wide persistent
// pool and folds in repetition order, so output is bit-identical at any
// --threads value. Under --adaptive the confidence_width rule monitors the
// per-repetition weighted max load.
//
//   ./weighted_gap [--n=65536] [--rounds-factor=4] [--reps=5] [--threads=0]
//                  [--csv] [--scenario "kd:n=...,kernel=level,metric=gap"]
//                  [--adaptive --ci-width=0.4 --max-reps=40]
//
// --scenario (core/scenario.hpp) sets the shared knobs: n, the simulation
// kernel (kernel=level runs every cell on the level-compressed
// weighted_kd_level_process — the weighted process is exchangeable too,
// so its weight-load multiset is lossless state) and the monitored metric
// for --adaptive (metric=gap suits this bench; the default is the
// weighted max load). The weight-distribution grid itself stays richer
// than the scenario skew knob on purpose.
#include <cstddef>
#include <iostream>
#include <vector>

#include "core/scenario.hpp"
#include "core/sweep.hpp"
#include "core/weighted.hpp"
#include "stats/running_stats.hpp"
#include "support/cli.hpp"
#include "support/row_emitter.hpp"
#include "support/text_table.hpp"

namespace {

struct rep_observation {
    double gap = 0.0;
    double max_load = 0.0;
    std::uint64_t messages = 0;
};

} // namespace

int main(int argc, char** argv) {
    kdc::arg_parser args;
    args.add_option("n", "65536", "number of bins");
    args.add_option("rounds-factor", "4",
                    "rounds = factor * n / k (total balls = factor * n)");
    args.add_option("reps", "5", "repetitions per cell");
    args.add_option("seed", "11", "master seed");
    args.add_threads_option();
    args.add_scenario_option();
    args.add_adaptive_options();
    args.add_flag("csv", "also emit CSV rows (weights, k, d, gap, max)");
    if (!args.parse(argc, argv)) {
        return 0;
    }
    const auto factor =
        static_cast<std::uint64_t>(args.get_int("rounds-factor"));
    const auto reps = static_cast<std::uint32_t>(args.get_int("reps"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    kdc::core::scenario base;
    base.n = static_cast<std::uint64_t>(args.get_int("n"));
    base.probe = kdc::core::probe_policy::weighted;
    base.kernel = kdc::core::kernel_choice::per_bin; // legacy default
    const auto merged = kdc::core::scenario_from_cli(args, base);
    const auto n = merged.n;
    const auto kernel = kdc::core::resolve_kernel(merged);
    const auto metric = merged.metric;

    struct weight_case {
        const char* name;
        kdc::core::weight_distribution dist;
    };
    const std::vector<weight_case> weight_cases{
        {"unit", kdc::core::unit_weights()},
        {"uniform[0.5,1.5]", kdc::core::uniform_weights(0.5, 1.5)},
        {"exponential(1)", kdc::core::exponential_weights(1.0)},
        {"pareto(2.5)", kdc::core::pareto_weights(2.5, 0.6)},
    };
    struct kd_case {
        std::uint64_t k, d;
    };
    const std::vector<kd_case> kd_cases{{1, 2}, {2, 4}, {8, 16}, {31, 32}};

    // Flatten the weights x (k,d) grid into cells. The original serial bench
    // advanced the master seed once per *repetition* (derive_seed(++cell_seed,
    // rep)); precompute the identical per-rep master seeds so the sweep
    // reproduces its numbers byte-for-byte. Seeds are laid out up to the
    // stopping rule's repetition CAP, so an adaptive run with
    // --max-reps > --reps never indexes past the precomputed masters (and a
    // fixed run, where the cap equals --reps, keeps the legacy seed stream).
    const auto stopping = kdc::core::stopping_rule_from_cli(args);
    const std::uint32_t rep_cap =
        kdc::core::resolve_cell_plan(stopping, reps).max_reps;
    struct grid_cell {
        const weight_case* weights;
        kd_case kd;
        std::vector<std::uint64_t> rep_masters;
    };
    std::vector<grid_cell> grid_cells;
    std::uint64_t cell_seed = seed;
    for (const auto& w : weight_cases) {
        for (const auto& kd : kd_cases) {
            grid_cell cell{&w, kd, {}};
            cell.rep_masters.reserve(rep_cap);
            for (std::uint32_t rep = 0; rep < rep_cap; ++rep) {
                cell.rep_masters.push_back(++cell_seed);
            }
            grid_cells.push_back(std::move(cell));
        }
    }

    const std::vector<std::uint32_t> reps_per_cell(grid_cells.size(), reps);
    auto& pool = kdc::core::persistent_pool(args.get_threads());
    const auto grid = kdc::core::run_engine_grid<rep_observation>(
        pool, reps_per_cell,
        [&grid_cells, n, factor, kernel](std::size_t c, std::uint32_t rep) {
            const auto& cell = grid_cells[c];
            const auto rep_seed =
                kdc::rng::derive_seed(cell.rep_masters[rep], rep);
            const auto rounds = factor * n / cell.kd.k;
            if (kernel == kdc::core::kernel_kind::level) {
                kdc::core::weighted_kd_level_process process(
                    n, cell.kd.k, cell.kd.d, rep_seed, cell.weights->dist);
                process.run_rounds(rounds);
                return rep_observation{process.gap(), process.max_load(),
                                       process.messages()};
            }
            kdc::core::weighted_kd_process process(
                n, cell.kd.k, cell.kd.d, rep_seed, cell.weights->dist);
            process.run_rounds(rounds);
            return rep_observation{process.gap(), process.max_load(),
                                   process.messages()};
        },
        // Adaptive mode monitors the scenario's metric per repetition
        // (default: the weighted max load).
        [metric](std::size_t, const rep_observation& obs) {
            switch (metric) {
            case kdc::core::metric_kind::gap:
                return obs.gap;
            case kdc::core::metric_kind::messages:
                return static_cast<double>(obs.messages);
            case kdc::core::metric_kind::max_load:
                break;
            }
            return obs.max_load;
        },
        stopping);

    std::cout << "Weighted (k,d)-choice gap, n = " << n << ", "
              << factor << "n total weight-1-mean balls, " << reps
              << " reps\n\n";

    // Fold each cell in repetition order, then emit table and CSV through
    // one shared column declaration (support/row_emitter.hpp).
    struct cell_row {
        const grid_cell* cell;
        std::size_t reps_used = 0;
        double mean_gap = 0.0;
        double mean_max = 0.0;
    };
    std::vector<cell_row> rows;
    rows.reserve(grid_cells.size());
    for (std::size_t c = 0; c < grid_cells.size(); ++c) {
        kdc::stats::running_stats gap_stats;
        kdc::stats::running_stats max_stats;
        for (const auto& obs : grid[c]) { // fold in repetition order
            gap_stats.push(obs.gap);
            max_stats.push(obs.max_load);
        }
        rows.push_back({&grid_cells[c], grid[c].size(), gap_stats.mean(),
                        max_stats.mean()});
    }
    kdc::row_emitter<cell_row> emitter;
    emitter
        .add_column("weights",
                    [](const cell_row& row, std::size_t) {
                        return std::string(row.cell->weights->name);
                    },
                    kdc::table_align::left)
        .add_column("(k,d)",
                    [](const cell_row& row, std::size_t) {
                        return "(" + std::to_string(row.cell->kd.k) + "," +
                               std::to_string(row.cell->kd.d) + ")";
                    })
        .add_column("reps",
                    [](const cell_row& row, std::size_t) {
                        return std::to_string(row.reps_used);
                    })
        .add_stat_column("mean gap",
                         [](const cell_row& row) { return row.mean_gap; }, 3)
        .add_stat_column("mean max load",
                         [](const cell_row& row) { return row.mean_max; }, 3);
    emitter.write_table(std::cout, rows);
    std::cout << "Shapes: within each weight family the gap shrinks with "
                 "more probes per ball\n"
                 "(smaller k/d ratio); heavier tails raise all gaps.\n";

    if (args.get_flag("csv")) {
        std::cout << "\nCSV:\n";
        emitter.write_csv(std::cout, rows);
    }
    return 0;
}
