// Microbenchmarks (google-benchmark): throughput of the allocation kernels
// and the RNG layer. These quantify the engineering claims of the library
// itself (balls/second at various (k,d)), not the paper's statistical
// results.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/kdchoice.hpp"
#include "core/parallel_runner.hpp"
#include "core/runner.hpp"
#include "rng/pcg32.hpp"
#include "rng/sampling.hpp"
#include "rng/uniform.hpp"
#include "rng/xoshiro256ss.hpp"

namespace {

void bm_xoshiro256ss(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_xoshiro256ss);

void bm_pcg32(benchmark::State& state) {
    kdc::rng::pcg32 gen(42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_pcg32);

void bm_uniform_below(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    const auto bound = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(kdc::rng::uniform_below(gen, bound));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_uniform_below)->Arg(193)->Arg(1 << 16)->Arg(1 << 30);

void bm_sample_with_replacement(benchmark::State& state) {
    kdc::rng::xoshiro256ss gen(42);
    std::vector<std::uint32_t> out(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        kdc::rng::sample_with_replacement(gen, 1 << 16,
                                          std::span<std::uint32_t>(out));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sample_with_replacement)->Arg(4)->Arg(64)->Arg(193);

/// Balls/second for a full (k,d)-choice run at n = 2^16.
void bm_kd_choice(benchmark::State& state) {
    const auto k = static_cast<std::uint64_t>(state.range(0));
    const auto d = static_cast<std::uint64_t>(state.range(1));
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::kd_choice_process process(n, k, d, ++seed);
        process.run_balls(n - (n % k));
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * (n - (n % k)));
}
BENCHMARK(bm_kd_choice)
    ->Args({1, 2})
    ->Args({2, 4})
    ->Args({8, 16})
    ->Args({64, 128})
    ->Args({1, 193})
    ->Args({128, 193})
    ->Args({192, 193});

void bm_single_choice(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::single_choice_process process(n, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_single_choice);

void bm_d_choice_fast_path(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 16;
    const auto d = static_cast<std::uint64_t>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        kdc::core::d_choice_process process(n, d, ++seed);
        process.run_balls(n);
        benchmark::DoNotOptimize(process.loads().data());
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(bm_d_choice_fast_path)->Arg(2)->Arg(4)->Arg(8);

/// Serial repetition sweep baseline for the parallel-runner comparison:
/// a Table-1-style cell, 10 reps of (8,16)-choice at n = 2^15.
void bm_experiment_serial(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 15;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto result = kdc::core::run_kd_experiment(
            n, 8, 16, {.balls = n, .reps = 10, .seed = ++seed});
        benchmark::DoNotOptimize(result.reps.data());
    }
    state.SetItemsProcessed(state.iterations() * 10 * n);
}
BENCHMARK(bm_experiment_serial)->Unit(benchmark::kMillisecond);

/// The same sweep fanned out over a thread pool. Aggregates are bit-identical
/// to the serial baseline; only wall-clock time may differ.
void bm_experiment_parallel(benchmark::State& state) {
    constexpr std::uint64_t n = 1 << 15;
    const auto threads = static_cast<unsigned>(state.range(0));
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const auto result = kdc::core::run_kd_experiment_parallel(
            n, 8, 16, {.balls = n, .reps = 10, .seed = ++seed}, threads);
        benchmark::DoNotOptimize(result.reps.data());
    }
    state.SetItemsProcessed(state.iterations() * 10 * n);
}
BENCHMARK(bm_experiment_parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_sorted_loads(benchmark::State& state) {
    kdc::core::kd_choice_process process(1 << 16, 2, 4, 7);
    process.run_balls(1 << 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kdc::core::sorted_loads_desc(process.loads()));
    }
}
BENCHMARK(bm_sorted_loads);

} // namespace

BENCHMARK_MAIN();
