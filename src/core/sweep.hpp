// Cross-cell sweep layer of the execution engine: runs a whole parameter
// grid — many named experiment cells, each with its own repetition count —
// on ONE shared work-stealing thread pool, instead of parallelizing only
// within a cell.
//
// The paper's headline artifacts (Table 1 over the (k,d) grid, the tradeoff
// frontier, the d*k = Theta(log n) landmark sweeps) are grids of independent
// cells; scheduling every (cell, rep) pair onto one pool keeps all hardware
// threads busy even when individual cells have few repetitions. The
// scheduling core (chunked dispatch + pluggable stopping rules) is
// core/engine.hpp; this layer adds named cells, repetition_result folding
// and shared table/CSV emission.
//
// Determinism contract, inherited from core/engine.hpp: repetition r of a
// cell always runs with rng::derive_seed(cell.config.seed, r), each cell's
// repetitions are folded in repetition order, and adaptive stopping
// decisions are taken on those rep-order folds at deterministic chunk
// boundaries. The returned outcomes — including how many repetitions an
// adaptive rule executed — are therefore bit-identical at any thread count,
// under any steal schedule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "core/parallel_runner.hpp"
#include "support/row_emitter.hpp"

namespace kdc::core {

/// One named cell of a sweep: an experiment configuration plus a type-erased
/// per-repetition runner. `run_rep(derived_seed)` receives the already
/// derived seed for its repetition and must be callable concurrently.
/// `metric` selects the per-repetition statistic an adaptive stopping rule
/// monitors for THIS cell (cells of one sweep may monitor different
/// metrics; fixed_reps ignores it).
struct sweep_cell {
    std::string name;
    experiment_config config;
    std::function<repetition_result(std::uint64_t derived_seed)> run_rep;
    metric_kind metric = metric_kind::max_load;
};

/// Builds a sweep_cell from a process factory (the same factory shape the
/// serial and parallel runners accept). The factory must be const-callable:
/// repetitions of the cell invoke it concurrently. config.balls must be the
/// resolved ball count (>= 1); use whole_rounds_balls for the k-round
/// default.
template <typename Factory>
[[nodiscard]] sweep_cell make_sweep_cell(std::string name,
                                         const experiment_config& config,
                                         Factory factory) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);
    return sweep_cell{
        std::move(name), config,
        [factory = std::move(factory),
         balls = config.balls](std::uint64_t derived_seed) {
            return run_one_repetition(derived_seed, balls, factory);
        }};
}

/// Kernel-parameterized cell factories for the standard processes: one
/// call site in a bench serves both `--kernel=perbin` and `--kernel=level`
/// (core/level_process.hpp) instead of duplicating every factory lambda.
/// config.balls must be the resolved ball count, as for make_sweep_cell.
[[nodiscard]] sweep_cell
make_kd_sweep_cell(std::string name, std::uint64_t n, std::uint64_t k,
                   std::uint64_t d, const experiment_config& config,
                   kernel_kind kernel = kernel_kind::per_bin);
[[nodiscard]] sweep_cell
make_single_choice_sweep_cell(std::string name, std::uint64_t n,
                              const experiment_config& config,
                              kernel_kind kernel = kernel_kind::per_bin);
[[nodiscard]] sweep_cell
make_d_choice_sweep_cell(std::string name, std::uint64_t n, std::uint64_t d,
                         const experiment_config& config,
                         kernel_kind kernel = kernel_kind::per_bin);

/// One cell's folded outcome. Under fixed_reps, `result` is bit-identical
/// to run_experiment(config, factory) on the same cell; under an adaptive
/// rule, result.reps.size() reports how many repetitions the stopping rule
/// actually executed (between the rule's floor and cap).
struct sweep_outcome {
    std::string name;
    experiment_config config;
    experiment_result result;
};

/// Options shared by both run_sweep overloads.
struct sweep_options {
    /// Worker threads for the pool-owning overload, resolved by
    /// resolve_thread_count (0 = all hardware threads) and applied to the
    /// process-wide persistent pool. Ignored by the caller-pool overload.
    unsigned threads = 0;
    /// Stopping rule applied to every cell; fixed_reps by default. Under
    /// confidence_width the monitored statistic is the per-repetition
    /// maximum load.
    stopping_rule stopping;
    sweep_progress progress;
};

/// Runs every cell of the grid on the caller's pool under options.stopping
/// and folds each cell in repetition order (options.threads is ignored —
/// the pool is already sized). Sharing one pool across successive sweeps
/// (e.g. the two ablation phases of a bench) avoids re-spawning workers.
/// Must be called from outside the pool's own workers.
[[nodiscard]] std::vector<sweep_outcome>
run_sweep(thread_pool& pool, const std::vector<sweep_cell>& cells,
          const sweep_options& options = {});

/// Convenience overload: runs the grid on the process-wide persistent pool
/// sized by options.threads — consecutive calls in one process reuse the
/// same workers. An empty grid returns an empty vector without touching the
/// pool.
[[nodiscard]] std::vector<sweep_outcome>
run_sweep(const std::vector<sweep_cell>& cells,
          const sweep_options& options = {});

/// Structured emission for sweep outcomes: the generic row_emitter over
/// sweep_outcome rows (declare columns once, render the same rows as an
/// aligned text table and/or CSV — see support/row_emitter.hpp) plus the
/// canned columns every sweep bench shares. The add_* shadows only restore
/// the derived return type so chains can keep mixing generic and canned
/// columns.
class sweep_emitter : public row_emitter<sweep_outcome> {
public:
    sweep_emitter& add_column(std::string header, value_fn value,
                              table_align align = table_align::right) {
        row_emitter::add_column(std::move(header), std::move(value), align);
        return *this;
    }

    sweep_emitter& add_stat_column(
        std::string header,
        std::function<double(const sweep_outcome&)> stat,
        int precision = 2) {
        row_emitter::add_stat_column(std::move(header), std::move(stat),
                                     precision);
        return *this;
    }

    /// Canned column: the cell name (left-aligned by convention).
    sweep_emitter& add_name_column(std::string header = "cell");

    /// Canned column: the paper's Table-1 "distinct max loads" set.
    sweep_emitter& add_max_load_set_column(
        std::string header = "max loads seen");

    /// Canned column: how many repetitions the cell executed — the
    /// interesting number under an adaptive stopping rule.
    sweep_emitter& add_reps_column(std::string header = "reps");
};

} // namespace kdc::core
