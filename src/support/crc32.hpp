// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum behind the
// snapshot trailers (core/level_profile.hpp, core/weighted.hpp,
// core/snapshot_stage.cpp). A 32-bit CRC detects every burst error up to 32
// bits long, so in particular EVERY single-byte corruption of a snapshot is
// caught by the trailer check before any field is parsed.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace kdc {

namespace detail {

consteval std::array<std::uint32_t, 256> make_crc32_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t byte = 0; byte < 256; ++byte) {
        std::uint32_t crc = byte;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
        }
        table[byte] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32_table =
    make_crc32_table();

} // namespace detail

/// CRC-32 of the given bytes (standard init/final XOR with ~0).
[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) noexcept {
    std::uint32_t crc = 0xFFFFFFFFu;
    for (const char c : bytes) {
        crc = (crc >> 8) ^
              detail::crc32_table[(crc ^ static_cast<unsigned char>(c)) &
                                  0xFFu];
    }
    return crc ^ 0xFFFFFFFFu;
}

} // namespace kdc
