// Experiment-level entry points of the execution engine.
//
// Repetitions of an experiment are embarrassingly parallel: rep r depends
// only on derive_seed(master, r), never on rep r-1. run_parallel_experiment
// fans the reps of one experiment_config out across the process-wide
// persistent pool (core/thread_pool.hpp), then folds the per-repetition
// results into the aggregate *in repetition order*. Because both the
// per-rep seeds and the fold order are independent of the thread count, the
// returned experiment_result is bit-identical to the serial run_experiment
// — at 1, 8, or 64 threads. That is the property the Table-1 / frontier
// sweeps rely on: `--threads` changes wall-clock time only, never a
// reported number.
//
// The scheduling core (chunked dispatch + pluggable stopping rules) lives
// in core/engine.hpp; core/sweep.hpp builds named multi-cell sweeps and
// shared emission on the same engine.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "core/runner.hpp"
#include "core/thread_pool.hpp"

namespace kdc::core {

/// Fixed-size grid primitive: runs reps_per_cell[c] jobs for every cell c
/// on the shared pool and returns the per-cell, per-rep results in a
/// grid[cell][rep] layout. `run(cell, rep)` must be callable concurrently
/// from many threads and is invoked exactly once per pair, in no particular
/// order; the *placement* of results is by index, so folding grid[c] in rep
/// order afterwards is deterministic. Rethrows the first exception any job
/// (or the progress hook) threw — the grid still runs to completion so the
/// pool is quiescent on return.
///
/// This is the engine's fixed_reps mode; pass a stopping rule to
/// run_engine_grid directly for adaptive repetition counts.
template <typename T, typename RunFn>
[[nodiscard]] std::vector<std::vector<T>>
run_grid(thread_pool& pool, std::span<const std::uint32_t> reps_per_cell,
         RunFn&& run, const sweep_progress& progress = {}) {
    return run_engine_grid<T>(
        pool, reps_per_cell, std::forward<RunFn>(run),
        // metric unused under fixed_reps
        [](std::size_t, const T&) { return 0.0; }, fixed_reps_rule(),
        progress);
}

/// Parallel counterpart of run_experiment: the one-cell grid, run on the
/// process-wide persistent pool (consecutive calls reuse the same workers).
/// The factory must be callable concurrently from multiple threads (every
/// factory in this repo is: it only captures experiment parameters by
/// value). `threads` = 0 uses all hardware threads.
///
/// Guarantee: the result — reps vector, histogram, and every running_stats
/// aggregate — is bit-identical to run_experiment(config, factory).
template <typename Factory>
[[nodiscard]] experiment_result
run_parallel_experiment(const experiment_config& config, Factory&& factory,
                        unsigned threads = 0) {
    KD_EXPECTS(config.reps >= 1);
    KD_EXPECTS(config.balls >= 1);

    thread_pool& pool = persistent_pool(threads);
    const std::uint32_t one_cell[1]{config.reps};
    auto grid = run_grid<repetition_result>(
        pool, one_cell, [&](std::size_t, std::uint32_t rep) {
            return run_one_repetition(rng::derive_seed(config.seed, rep),
                                      config.balls, factory);
        });

    // Fold in repetition order: running_stats and the histogram see exactly
    // the sequence the serial runner feeds them, so aggregates match bitwise.
    experiment_result out;
    out.reps = std::move(grid[0]);
    for (const auto& r : out.reps) {
        accumulate_repetition(out, r);
    }
    return out;
}

/// Parallel counterparts of the serial convenience runners. Same defaults:
/// balls = 0 means "as many whole rounds as fit n balls".
[[nodiscard]] experiment_result
run_kd_experiment_parallel(std::uint64_t n, std::uint64_t k, std::uint64_t d,
                           const experiment_config& config,
                           unsigned threads = 0);

[[nodiscard]] experiment_result
run_single_choice_experiment_parallel(std::uint64_t n,
                                      const experiment_config& config,
                                      unsigned threads = 0);

[[nodiscard]] experiment_result
run_d_choice_experiment_parallel(std::uint64_t n, std::uint64_t d,
                                 const experiment_config& config,
                                 unsigned threads = 0);

} // namespace kdc::core
