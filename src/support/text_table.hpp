// Fixed-width text table rendering, used by the benchmark harnesses to print
// paper-style tables (e.g. Table 1 of the (k,d)-choice paper) on stdout.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace kdc {

/// Column alignment inside a text_table.
enum class table_align { left, right };

/// A small, allocation-friendly text table. Rows are added as strings; the
/// table computes column widths on render. No wrapping: harness output is
/// meant for wide terminals and log files.
class text_table {
public:
    text_table() = default;

    /// Sets the header row. Resets column alignment to `right` for every
    /// column except the first, which is `left` (the common layout for
    /// parameter-vs-metric tables).
    void set_header(std::vector<std::string> header);

    /// Overrides alignment for column `col` (0-based).
    void set_align(std::size_t col, table_align align);

    /// Appends a data row. Rows may be ragged; short rows render with empty
    /// trailing cells.
    void add_row(std::vector<std::string> row);

    /// Number of data rows added so far.
    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    /// Renders the table with a separator line under the header.
    [[nodiscard]] std::string to_string() const;

    /// Streams the rendered table.
    friend std::ostream& operator<<(std::ostream& os, const text_table& table);

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<table_align> aligns_;

    [[nodiscard]] std::vector<std::size_t> column_widths() const;
};

/// Formats a double with `precision` digits after the decimal point.
[[nodiscard]] std::string format_fixed(double value, int precision);

/// Formats a double in the shortest round-trippable style with up to
/// `significant` significant digits (trailing zeros stripped).
[[nodiscard]] std::string format_general(double value, int significant = 4);

} // namespace kdc
